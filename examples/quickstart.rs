//! Quickstart: compare a regular and a voltage-stacked PDN on the paper's
//! 8-layer, 16-core-per-layer platform.
//!
//! Run with `cargo run --release -p vstack --example quickstart`.

use vstack::em_study::paper_em_lifetimes;
use vstack::pdn::TsvTopology;
use vstack::scenario::DesignScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layers = 8;
    println!("== vstack quickstart: {layers}-layer, 16-core-per-layer 3D processor ==\n");

    // --- Regular PDN: every layer's current crosses the same pads. ---
    let regular = DesignScenario::paper_baseline()
        .layers(layers)
        .tsv_topology(TsvTopology::Sparse)
        .power_c4_fraction(0.5);
    let reg_sol = regular.solve_regular_peak()?;
    let reg_life = paper_em_lifetimes(&reg_sol);
    println!("Regular PDN (Sparse TSV, 50% power C4), all layers active:");
    println!(
        "  max IR drop        : {:.2}% Vdd",
        100.0 * reg_sol.max_ir_drop_frac
    );
    println!(
        "  max C4 pad current : {:.1} mA",
        1000.0 * reg_sol.vdd_c4.max_current()
    );
    println!(
        "  max TSV current    : {:.1} mA",
        1000.0 * reg_sol.tsv.max_current()
    );
    println!("  C4 EM lifetime     : {:.2e} h", reg_life.c4_hours);
    println!("  TSV EM lifetime    : {:.2e} h\n", reg_life.tsv_hours);

    // --- Voltage-stacked PDN: layers in series, converters handle the
    //     inter-layer mismatch. 65% is the paper's application-average
    //     workload imbalance. ---
    let stacked = DesignScenario::paper_baseline()
        .layers(layers)
        .tsv_topology(TsvTopology::Few)
        .converters_per_core(8);
    let vs_sol = stacked.solve_voltage_stacked(0.65)?;
    let vs_life = paper_em_lifetimes(&vs_sol);
    println!("Voltage-stacked PDN (Few TSV, 8 SC converters/core), 65% imbalance:");
    println!(
        "  max IR drop        : {:.2}% Vdd",
        100.0 * vs_sol.max_ir_drop_frac
    );
    println!(
        "  max C4 pad current : {:.1} mA",
        1000.0 * vs_sol.vdd_c4.max_current()
    );
    println!(
        "  max TSV current    : {:.1} mA",
        1000.0 * vs_sol.tsv.max_current()
    );
    println!("  C4 EM lifetime     : {:.2e} h", vs_life.c4_hours);
    println!("  TSV EM lifetime    : {:.2e} h", vs_life.tsv_hours);
    println!(
        "  system efficiency  : {:.1}%  ({} converters, {} overloaded)\n",
        100.0 * vs_sol.efficiency(),
        vs_sol.converter_currents.len(),
        vs_sol.overloaded_converters
    );

    println!(
        "V-S vs regular: {:.1}x C4 lifetime, {:.1}x TSV lifetime, {:+.2}% Vdd IR-drop delta",
        vs_life.c4_hours / reg_life.c4_hours,
        vs_life.tsv_hours / reg_life.tsv_hours,
        100.0 * (vs_sol.max_ir_drop_frac - reg_sol.max_ir_drop_frac),
    );
    Ok(())
}
