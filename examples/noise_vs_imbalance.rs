//! Supply-noise exploration: sweep the workload-imbalance ratio and watch
//! the V-S PDN's IR drop cross the equal-area regular PDN (the paper's
//! Fig 6 experiment as a library walkthrough).
//!
//! Run with `cargo run --release -p vstack --example noise_vs_imbalance`.

use vstack::pdn::TsvTopology;
use vstack::scenario::DesignScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layers = 8;

    // Equal-area comparison (paper §5.2): a V-S PDN with Few TSVs and
    // 8 converters/core occupies about the same silicon as a regular PDN
    // with Dense TSVs.
    let vs = DesignScenario::paper_baseline()
        .layers(layers)
        .tsv_topology(TsvTopology::Few)
        .converters_per_core(8);
    let reg = DesignScenario::paper_baseline()
        .layers(layers)
        .tsv_topology(TsvTopology::Dense)
        .power_c4_fraction(0.5);

    println!(
        "Equal-area check: V-S overhead {:.1}% vs Dense-TSV overhead {:.1}% per core\n",
        100.0 * vs.vs_area_overhead_per_core(),
        100.0 * TsvTopology::Dense.area_overhead(vs.pdn_params()),
    );

    let reg_drop = reg.solve_regular_peak()?.max_ir_drop_frac;
    println!(
        "Regular PDN (Dense TSV) worst-case IR drop: {:.2}% Vdd",
        100.0 * reg_drop
    );
    println!("(independent of imbalance — its worst case is all layers active)\n");

    println!(
        "{:<12} {:>16} {:>12}",
        "imbalance", "V-S IR drop", "V-S wins?"
    );
    let pdn = vs.voltage_stacked_pdn();
    let mut crossover: Option<f64> = None;
    let mut prev: Option<(f64, f64)> = None;
    for pct in (0..=100).step_by(10) {
        let x = pct as f64 / 100.0;
        let sol = pdn.solve(&vs.interleaved_loads(x))?;
        if sol.has_overload() {
            println!("{:<12} {:>16} {:>12}", format!("{pct}%"), "(overload)", "-");
            continue;
        }
        let drop = sol.max_ir_drop_frac;
        println!(
            "{:<12} {:>15.2}% {:>12}",
            format!("{pct}%"),
            100.0 * drop,
            if drop < reg_drop { "yes" } else { "no" }
        );
        if let Some((px, pd)) = prev {
            if pd < reg_drop && drop >= reg_drop {
                // Linear interpolation of the crossover imbalance.
                crossover = Some(px + (x - px) * (reg_drop - pd) / (drop - pd));
            }
        }
        prev = Some((x, drop));
    }

    match crossover {
        Some(x) => println!(
            "\nCrossover at ≈{:.0}% imbalance (the paper reports ≈50%): below it,\n\
             the V-S PDN is quieter than the equal-area regular PDN.",
            100.0 * x
        ),
        None => println!("\nNo crossover within the feasible sweep."),
    }
    Ok(())
}
