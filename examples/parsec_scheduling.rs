//! Imbalance-aware scheduling: the paper's §5.2 closing observation is
//! that scheduling instances of the *same* application onto the cores of a
//! core-stack keeps inter-layer imbalance (and hence V-S noise) low, while
//! mixing applications across layers can be much worse.
//!
//! This example quantifies that with the Parsec workload sampler: it
//! builds an 8-layer stack whose layers run (a) samples of one
//! application and (b) samples of alternating applications, and compares
//! the V-S PDN's IR drop.
//!
//! Run with `cargo run --release -p vstack --example parsec_scheduling`.

use vstack::pdn::StackLoads;
use vstack::power::workload::{ParsecApp, WorkloadSampler};
use vstack::scenario::DesignScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layers = 8;
    let scenario = DesignScenario::paper_baseline()
        .layers(layers)
        .converters_per_core(8);
    let pdn = scenario.voltage_stacked_pdn();
    let sampler = WorkloadSampler::paper_setup();

    // (a) Same-application scheduling: all layers run blackscholes-like
    //     samples — intra-app variation only.
    let bs = sampler.samples(ParsecApp::Blackscholes);
    let same_app: Vec<_> = bs.iter().take(layers).copied().collect();
    let same_loads = StackLoads::from_samples(scenario.pdn_params(), &same_app);
    let same_sol = pdn.solve(&same_loads)?;

    // (b) Mixed scheduling: alternate a compute-bound app (swaptions) with
    //     a memory-bound one (canneal) — the worst realistic pairing.
    let hot = sampler.samples(ParsecApp::Swaptions);
    let cold = sampler.samples(ParsecApp::Canneal);
    let mixed: Vec<_> = (0..layers)
        .map(|l| if l % 2 == 0 { hot[l] } else { cold[l] })
        .collect();
    let mixed_loads = StackLoads::from_samples(scenario.pdn_params(), &mixed);
    let mixed_sol = pdn.solve(&mixed_loads)?;

    println!("8-layer V-S PDN, 8 converters/core, Parsec-sampled layer loads\n");
    println!(
        "same-app scheduling (blackscholes on every layer): {:.2}% Vdd max IR drop",
        100.0 * same_sol.max_ir_drop_frac
    );
    println!(
        "mixed scheduling (swaptions / canneal interleaved): {:.2}% Vdd max IR drop",
        100.0 * mixed_sol.max_ir_drop_frac
    );
    println!(
        "\nconverter load: same-app max {:.0} mA, mixed max {:.0} mA (rating 100 mA)",
        1000.0
            * same_sol
                .converter_currents
                .iter()
                .fold(0.0f64, |m, i| m.max(i.abs())),
        1000.0
            * mixed_sol
                .converter_currents
                .iter()
                .fold(0.0f64, |m, i| m.max(i.abs())),
    );
    println!(
        "\nReading: co-scheduling threads of the same application onto a\n\
         core-stack keeps the stacked layers' currents matched, so the\n\
         converters stay lightly loaded and the V-S noise penalty nearly\n\
         vanishes — the paper's scheduling recommendation."
    );
    Ok(())
}
