//! EM-lifetime scaling study: how stacking more layers wears out the C4
//! and TSV arrays of a regular PDN while a voltage-stacked PDN barely
//! notices (the paper's Fig 5 experiment as a library walkthrough).
//!
//! Run with `cargo run --release -p vstack --example em_lifetime_study`.

use vstack::em::black::BlackModel;
use vstack::em_study::{c4_array_lifetime, tsv_array_lifetime};
use vstack::pdn::TsvTopology;
use vstack::scenario::DesignScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let c4_model = BlackModel::paper_c4();
    let tsv_model = BlackModel::paper_tsv();

    println!("EM-damage-free lifetime vs layer count (normalized to 2-layer V-S)\n");
    println!(
        "{:<8} {:>14} {:>14} {:>14} {:>14}",
        "layers", "Reg C4", "Reg TSV", "V-S C4", "V-S TSV"
    );

    // Normalization references: the 2-layer V-S PDN.
    let vs_ref = DesignScenario::paper_baseline()
        .layers(2)
        .power_c4_fraction(0.25)
        .solve_voltage_stacked(0.0)?;
    let c4_ref = c4_array_lifetime(&vs_ref, &c4_model);
    let tsv_ref = tsv_array_lifetime(&vs_ref, &tsv_model);

    for layers in [2usize, 4, 6, 8] {
        let reg = DesignScenario::paper_baseline()
            .layers(layers)
            .tsv_topology(TsvTopology::Few)
            .power_c4_fraction(0.25)
            .solve_regular_peak()?;
        let vs_c4 = DesignScenario::paper_baseline()
            .layers(layers)
            .power_c4_fraction(0.25)
            .solve_voltage_stacked(0.0)?;
        println!(
            "{:<8} {:>14.3} {:>14.3} {:>14.3} {:>14.3}",
            layers,
            c4_array_lifetime(&reg, &c4_model) / c4_ref,
            tsv_array_lifetime(&reg, &tsv_model) / tsv_ref,
            c4_array_lifetime(&vs_c4, &c4_model) / c4_ref,
            tsv_array_lifetime(&vs_c4, &tsv_model) / tsv_ref,
        );
    }

    println!(
        "\nReading: regular-PDN lifetimes collapse with layer count; V-S\n\
         lifetimes are nearly layer-independent because charge recycling\n\
         keeps pad and TSV current density constant."
    );
    Ok(())
}
