//! Load-step transient walkthrough: what the V-S rails do in the
//! nanoseconds after workload imbalance appears (extension study; the
//! paper's analysis is steady-state).
//!
//! Run with `cargo run --release -p vstack --example transient_droop`.

use vstack::pdn::transient::PdnTransientConfig;
use vstack::scenario::DesignScenario;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = DesignScenario::paper_baseline()
        .layers(8)
        .converters_per_core(8);
    let pdn = scenario.voltage_stacked_pdn();
    let before = scenario.interleaved_loads(0.0); // balanced
    let after = scenario.interleaved_loads(0.65); // barrier: half the layers idle

    println!("8-layer V-S PDN, 8 converters/core: balanced -> 65% imbalance at t=0\n");
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "decap", "peak drop", "final drop", "settle"
    );
    for decap_nf in [10.0, 40.0, 100.0] {
        let cfg = PdnTransientConfig {
            decap_per_core_f: decap_nf * 1e-9,
            ..PdnTransientConfig::default()
        };
        let resp = pdn.solve_transient_step(&before, &after, &cfg)?;
        println!(
            "{:>8.0}nF {:>11.2}% {:>11.2}% {:>12}",
            decap_nf,
            100.0 * resp.peak_drop(),
            100.0 * resp.final_drop(),
            resp.settling_time(0.001)
                .map(|t| format!("{:.0} ns", t * 1e9))
                .unwrap_or_else(|| "—".into()),
        );
    }

    // Sample trajectory for the 40 nF case.
    let cfg = PdnTransientConfig::default();
    let resp = pdn.solve_transient_step(&before, &after, &cfg)?;
    println!("\nTrajectory (40 nF): worst drop vs time");
    for step in [0usize, 9, 19, 49, 99, 199, 399] {
        println!(
            "  t = {:>5.1} ns : {:.2}% Vdd",
            resp.times_s[step] * 1e9,
            100.0 * resp.max_drop_series[step]
        );
    }
    println!(
        "\nReading: the rails slew monotonically to the new operating point\n\
         (no inductive ringing on-chip); decap sets how long the stack\n\
         coasts before the converters take over, so bigger decap buys time\n\
         for closed-loop controllers to react, not a lower settled drop."
    );
    Ok(())
}
