//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this vendor crate
//! implements the subset of criterion the workspace's benches use:
//! `criterion_group!` / `criterion_main!`, `Criterion::benchmark_group`,
//! `BenchmarkGroup::{sample_size, bench_function, bench_with_input, finish}`,
//! `Criterion::bench_function`, `BenchmarkId::from_parameter`, and
//! `Bencher::iter`. Timing uses wall-clock medians over a fixed number of
//! samples and prints one line per benchmark — no plotting, no statistics
//! engine, no output files.

#![forbid(unsafe_code)]

use std::fmt;
use std::time::Instant;

/// Identifier for a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier rendered from a function name and a parameter.
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Identifier rendered from the parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-iteration timing context handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples_ns: Vec<u128>,
    sample_size: usize,
}

impl Bencher {
    /// Time `inner`, recording `sample_size` samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut inner: R) {
        // One warm-up iteration, then the timed samples.
        let _ = inner();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            let out = inner();
            self.samples_ns.push(start.elapsed().as_nanos());
            drop(out);
        }
    }

    fn median_ns(&self) -> u128 {
        if self.samples_ns.is_empty() {
            return 0;
        }
        let mut sorted = self.samples_ns.clone();
        sorted.sort_unstable();
        sorted[sorted.len() / 2]
    }
}

/// One completed benchmark's timing record, kept by [`Criterion`] so
/// harness binaries can emit machine-readable baselines after the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BenchReport {
    /// Full benchmark name (`group/id` or the bare id).
    pub name: String,
    /// Median wall-clock time per iteration, nanoseconds.
    pub median_ns: u128,
}

fn report(group: Option<&str>, id: &str, bencher: &Bencher) -> BenchReport {
    let name = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    let ns = bencher.median_ns();
    if ns >= 1_000_000 {
        println!("bench {name:<48} {:>12.3} ms/iter", ns as f64 / 1e6);
    } else {
        println!("bench {name:<48} {:>12.3} µs/iter", ns as f64 / 1e3);
    }
    BenchReport {
        name,
        median_ns: ns,
    }
}

/// A named set of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher);
        let record = report(Some(&self.name), &id.to_string(), &bencher);
        self.criterion.reports.push(record);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        let record = report(Some(&self.name), &id.to_string(), &bencher);
        self.criterion.reports.push(record);
        self
    }

    /// Finish the group (prints nothing extra; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    reports: Vec<BenchReport>,
}

impl Criterion {
    /// Begin a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples_ns: Vec::new(),
            sample_size: 10,
        };
        f(&mut bencher);
        let record = report(None, id, &bencher);
        self.reports.push(record);
        self
    }

    /// Every benchmark completed so far, in run order — the hook harness
    /// binaries use to emit machine-readable baselines (e.g.
    /// `BENCH_solver.json`).
    pub fn reports(&self) -> &[BenchReport] {
        &self.reports
    }
}

/// Collect benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("unit");
        g.sample_size(3);
        let mut count = 0u64;
        g.bench_function("counting", |b| {
            b.iter(|| {
                count += 1;
            })
        });
        g.finish();
        // Warm-up + 3 samples.
        assert_eq!(count, 4);
        assert_eq!(c.reports().len(), 1);
        assert_eq!(c.reports()[0].name, "unit/counting");
    }

    #[test]
    fn benchmark_id_renders() {
        assert_eq!(BenchmarkId::from_parameter(3).to_string(), "3");
        assert_eq!(BenchmarkId::new("f", 2).to_string(), "f/2");
    }
}
