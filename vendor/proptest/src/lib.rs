//! Offline, deterministic stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this vendor crate
//! implements the subset of proptest the workspace's property tests use:
//! the `proptest!` macro (with optional `#![proptest_config(..)]`), range
//! and tuple strategies, `prop::collection::vec`, `.prop_map`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Unlike real proptest there is no shrinking: a failing case panics with
//! the case index so it can be replayed deterministically (generation is a
//! pure function of the test name and case index).

#![forbid(unsafe_code)]

/// Test-runner configuration types.
pub mod test_runner {
    /// Configuration accepted by `#![proptest_config(..)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use core::ops::Range;

    /// Deterministic generator used to produce test cases. Seeded from the
    /// test name and case index so every run generates the same inputs.
    #[derive(Debug, Clone)]
    pub struct StrategyRng {
        state: u64,
    }

    impl StrategyRng {
        /// Generator for one named test case.
        pub fn for_case(test_name: &str, case: u64) -> Self {
            // FNV-1a over the test name, mixed with the case index.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in test_name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
            StrategyRng {
                state: h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            }
        }

        /// Next 64 uniform bits (splitmix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform `usize` in `[0, bound)`.
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0, "cannot sample from empty range");
            (self.next_u64() % bound as u64) as usize
        }
    }

    /// A strategy produces values of `Self::Value` from random bits.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generate one value.
        fn generate(&self, rng: &mut StrategyRng) -> Self::Value;

        /// Transform generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy adaptor created by [`Strategy::prop_map`].
    #[derive(Debug, Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut StrategyRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut StrategyRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StrategyRng) -> f64 {
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StrategyRng) -> $t {
                    let span = (self.end - self.start) as u64;
                    assert!(span > 0, "cannot sample from empty range");
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, i64, i32);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+);)*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut StrategyRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }
    tuple_strategy! {
        (A);
        (A, B);
        (A, B, C);
        (A, B, C, D);
        (A, B, C, D, E);
        (A, B, C, D, E, F);
    }

    /// Strategy yielding a fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StrategyRng) -> T {
            self.0.clone()
        }
    }
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::strategy::{Strategy, StrategyRng};
    use core::ops::Range;

    /// Inclusive-exclusive size bounds for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating `Vec`s of values from an element strategy.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector whose length is drawn from `size` and whose elements come
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StrategyRng) -> Vec<S::Value> {
            let len = if self.size.hi > self.size.lo + 1 {
                self.size.lo + rng.below(self.size.hi - self.size.lo)
            } else {
                self.size.lo
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Namespace mirror of `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests. Mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(
            @cfg ($crate::test_runner::ProptestConfig::default());
            $($rest)*
        );
    };
}

/// Internal recursion for [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            for __case in 0..(__config.cases as u64) {
                let mut __rng = $crate::strategy::StrategyRng::for_case(
                    concat!(module_path!(), "::", stringify!($name)),
                    __case,
                );
                $(
                    let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                )+
                $body
            }
        }
        $crate::__proptest_impl!(@cfg ($cfg); $($rest)*);
    };
    (@cfg ($cfg:expr);) => {};
}

/// Assert a condition inside a property test.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Assert equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*);
    };
}

/// Assert inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {
        assert_ne!($a, $b);
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_ne!($a, $b, $($fmt)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        use crate::strategy::{Strategy, StrategyRng};
        let strat = (0usize..10, -1.0..1.0f64);
        let mut a = StrategyRng::for_case("t", 3);
        let mut b = StrategyRng::for_case("t", 3);
        assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Range strategies respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 2.0..5.0f64, k in 1usize..7) {
            prop_assert!((2.0..5.0).contains(&x));
            prop_assert!((1..7).contains(&k));
        }

        /// Vec strategies respect requested lengths.
        #[test]
        fn vec_lengths(v in prop::collection::vec(0.0..1.0f64, 4), w in prop::collection::vec(0usize..3, 1..5)) {
            prop_assert_eq!(v.len(), 4);
            prop_assert!((1..5).contains(&w.len()));
        }

        /// prop_map composes.
        #[test]
        fn mapping(d in (0usize..4, 0usize..4).prop_map(|(a, b)| a + b)) {
            prop_assert!(d <= 6);
        }
    }
}
