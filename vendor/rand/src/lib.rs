//! Offline, deterministic stand-in for the `rand` crate (0.9-style API).
//!
//! The build environment for this repository has no registry access, so this
//! vendor crate implements exactly the surface the workspace uses:
//! `StdRng::seed_from_u64`, `Rng::random::<f64>()` and
//! `Rng::random_range(Range<_>)`. The generator is a seeded splitmix64 /
//! xoshiro256++ pair — high-quality, reproducible, and dependency-free.

#![forbid(unsafe_code)]

use core::ops::Range;

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Create a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling interface matching the subset of `rand::Rng` this workspace uses.
pub trait Rng: RngCore {
    /// Sample a value from the "standard" distribution of `T`
    /// (uniform in `[0, 1)` for floats).
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Sample uniformly from a half-open range.
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample_from(self.next_u64())
    }
}

impl<T: RngCore> Rng for T {}

/// Minimal core generator interface.
pub trait RngCore {
    /// Produce the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Types samplable from 64 random bits.
pub trait StandardSample {
    /// Map 64 uniform bits onto the type's standard distribution.
    fn sample(bits: u64) -> Self;
}

impl StandardSample for f64 {
    fn sample(bits: u64) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl StandardSample for bool {
    fn sample(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// Ranges supporting uniform sampling.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Sample uniformly from the range using 64 random bits.
    fn sample_from(self, bits: u64) -> Self::Output;
}

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from(self, bits: u64) -> f64 {
        let u = f64::sample(bits);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for Range<usize> {
    type Output = usize;
    fn sample_from(self, bits: u64) -> usize {
        let span = self.end - self.start;
        assert!(span > 0, "cannot sample from empty range");
        self.start + (bits % span as u64) as usize
    }
}

impl SampleRange for Range<u64> {
    type Output = u64;
    fn sample_from(self, bits: u64) -> u64 {
        let span = self.end - self.start;
        assert!(span > 0, "cannot sample from empty range");
        self.start + bits % span
    }
}

impl SampleRange for Range<i64> {
    type Output = i64;
    fn sample_from(self, bits: u64) -> i64 {
        let span = (self.end - self.start) as u64;
        assert!(span > 0, "cannot sample from empty range");
        self.start + (bits % span) as i64
    }
}

impl SampleRange for Range<u32> {
    type Output = u32;
    fn sample_from(self, bits: u64) -> u32 {
        let span = self.end - self.start;
        assert!(span > 0, "cannot sample from empty range");
        self.start + (bits % span as u64) as u32
    }
}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator seeded via splitmix64.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            let x: f64 = a.random();
            let y: f64 = b.random();
            assert_eq!(x, y);
        }
    }

    #[test]
    fn uniform_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn range_sampling_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.random_range(0.2..0.8);
            assert!((0.2..0.8).contains(&x));
            let k = rng.random_range(0usize..5);
            assert!(k < 5);
        }
    }
}
