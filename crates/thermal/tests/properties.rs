//! Property-based tests for the thermal model: heat-equation linearity
//! and physical orderings.

use proptest::prelude::*;
use vstack_thermal::{StackThermalModel, ThermalParams};

fn model(layers: usize) -> StackThermalModel {
    StackThermalModel::new(ThermalParams::paper_air_cooled(), layers, 4, 4)
}

fn power_map(layers: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, 16), layers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Temperatures never fall below ambient with non-negative power.
    #[test]
    fn above_ambient(power in power_map(3)) {
        let sol = model(3).solve(&power).expect("solvable");
        for layer in 0..3 {
            for cell in 0..16 {
                prop_assert!(sol.temperature_c(layer, cell) >= 45.0 - 1e-9);
            }
        }
    }

    /// The temperature *rise* is linear in power: doubling every cell's
    /// power doubles every rise.
    #[test]
    fn linearity(power in power_map(2)) {
        let m = model(2);
        let s1 = m.solve(&power).expect("solve");
        let doubled: Vec<Vec<f64>> = power
            .iter()
            .map(|l| l.iter().map(|p| 2.0 * p).collect())
            .collect();
        let s2 = m.solve(&doubled).expect("solve");
        for layer in 0..2 {
            for cell in 0..16 {
                let r1 = s1.temperature_c(layer, cell) - 45.0;
                let r2 = s2.temperature_c(layer, cell) - 45.0;
                prop_assert!((r2 - 2.0 * r1).abs() < 1e-6);
            }
        }
    }

    /// Superposition: the rise from two power maps applied together is
    /// the sum of their separate rises.
    #[test]
    fn superposition(a in power_map(2), b in power_map(2)) {
        let m = model(2);
        let sum_map: Vec<Vec<f64>> = a
            .iter()
            .zip(&b)
            .map(|(la, lb)| la.iter().zip(lb).map(|(x, y)| x + y).collect())
            .collect();
        let sa = m.solve(&a).expect("solve");
        let sb = m.solve(&b).expect("solve");
        let sab = m.solve(&sum_map).expect("solve");
        for layer in 0..2 {
            for cell in 0..16 {
                let lhs = sab.temperature_c(layer, cell) - 45.0;
                let rhs = (sa.temperature_c(layer, cell) - 45.0)
                    + (sb.temperature_c(layer, cell) - 45.0);
                prop_assert!((lhs - rhs).abs() < 1e-6);
            }
        }
    }

    /// Energy conservation: every injected watt leaves through the sink,
    /// so the mean top-layer rise equals total power × (sink resistance +
    /// the top half-die's vertical spreading resistance). This pins the
    /// boundary condition itself, not just orderings.
    #[test]
    fn sink_carries_all_injected_power(power in power_map(3), sink in 0.1..1.0f64) {
        let mut params = ThermalParams::paper_air_cooled();
        params.sink_resistance_k_per_w = sink;
        let m = StackThermalModel::new(params, 3, 4, 4);
        let sol = m.solve(&power).expect("solve");
        let total_w: f64 = power.iter().flatten().sum();
        let die_area = params.die_width_m * params.die_height_m;
        let r_half_die = (params.si_thickness_m / 2.0) / (params.si_conductivity * die_area);
        let expected_rise = total_w * (sink + r_half_die);
        let mean_top_rise = sol.layer_mean_c(2) - params.ambient_c;
        prop_assert!(
            (mean_top_rise - expected_rise).abs() <= 1e-6 * expected_rise.max(1e-12),
            "mean top rise {mean_top_rise}, expected {expected_rise}"
        );
    }

    /// `max_feasible_layers` is consistent with direct solves: the
    /// returned depth stays under the limit and one more layer breaks it.
    #[test]
    fn max_feasible_layers_matches_direct_solves(
        per_cell_w in 0.05..0.5f64,
        limit_rise in 10.0..60.0f64,
    ) {
        let params = ThermalParams::paper_air_cooled();
        let limit_c = params.ambient_c + limit_rise;
        let max_probe = 6;
        let f = StackThermalModel::max_feasible_layers(params, 4, 4, per_cell_w, limit_c, max_probe)
            .expect("probe");
        let peak = |n: usize| {
            let m = StackThermalModel::new(params, n, 4, 4);
            m.solve(&vec![vec![per_cell_w; 16]; n]).expect("solve").max_temperature_c()
        };
        if f > 0 {
            prop_assert!(peak(f) < limit_c, "returned depth {f} must be feasible");
        }
        if f < max_probe {
            prop_assert!(peak(f + 1) >= limit_c, "depth {} must break the limit", f + 1);
        }
    }

    /// Adding power anywhere can only heat every cell (monotonicity of
    /// the resistive heat network).
    #[test]
    fn monotonicity(power in power_map(2), extra_cell in 0usize..16, extra in 0.1..1.0f64) {
        let m = model(2);
        let s1 = m.solve(&power).expect("solve");
        let mut hotter = power.clone();
        hotter[1][extra_cell] += extra;
        let s2 = m.solve(&hotter).expect("solve");
        for layer in 0..2 {
            for cell in 0..16 {
                prop_assert!(
                    s2.temperature_c(layer, cell) >= s1.temperature_c(layer, cell) - 1e-9
                );
            }
        }
    }
}
