//! Property-based tests for the thermal model: heat-equation linearity
//! and physical orderings.

use proptest::prelude::*;
use vstack_thermal::{StackThermalModel, ThermalParams};

fn model(layers: usize) -> StackThermalModel {
    StackThermalModel::new(ThermalParams::paper_air_cooled(), layers, 4, 4)
}

fn power_map(layers: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(prop::collection::vec(0.0..1.0f64, 16), layers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Temperatures never fall below ambient with non-negative power.
    #[test]
    fn above_ambient(power in power_map(3)) {
        let sol = model(3).solve(&power).expect("solvable");
        for layer in 0..3 {
            for cell in 0..16 {
                prop_assert!(sol.temperature_c(layer, cell) >= 45.0 - 1e-9);
            }
        }
    }

    /// The temperature *rise* is linear in power: doubling every cell's
    /// power doubles every rise.
    #[test]
    fn linearity(power in power_map(2)) {
        let m = model(2);
        let s1 = m.solve(&power).expect("solve");
        let doubled: Vec<Vec<f64>> = power
            .iter()
            .map(|l| l.iter().map(|p| 2.0 * p).collect())
            .collect();
        let s2 = m.solve(&doubled).expect("solve");
        for layer in 0..2 {
            for cell in 0..16 {
                let r1 = s1.temperature_c(layer, cell) - 45.0;
                let r2 = s2.temperature_c(layer, cell) - 45.0;
                prop_assert!((r2 - 2.0 * r1).abs() < 1e-6);
            }
        }
    }

    /// Superposition: the rise from two power maps applied together is
    /// the sum of their separate rises.
    #[test]
    fn superposition(a in power_map(2), b in power_map(2)) {
        let m = model(2);
        let sum_map: Vec<Vec<f64>> = a
            .iter()
            .zip(&b)
            .map(|(la, lb)| la.iter().zip(lb).map(|(x, y)| x + y).collect())
            .collect();
        let sa = m.solve(&a).expect("solve");
        let sb = m.solve(&b).expect("solve");
        let sab = m.solve(&sum_map).expect("solve");
        for layer in 0..2 {
            for cell in 0..16 {
                let lhs = sab.temperature_c(layer, cell) - 45.0;
                let rhs = (sa.temperature_c(layer, cell) - 45.0)
                    + (sb.temperature_c(layer, cell) - 45.0);
                prop_assert!((lhs - rhs).abs() < 1e-6);
            }
        }
    }

    /// Adding power anywhere can only heat every cell (monotonicity of
    /// the resistive heat network).
    #[test]
    fn monotonicity(power in power_map(2), extra_cell in 0usize..16, extra in 0.1..1.0f64) {
        let m = model(2);
        let s1 = m.solve(&power).expect("solve");
        let mut hotter = power.clone();
        hotter[1][extra_cell] += extra;
        let s2 = m.solve(&hotter).expect("solve");
        for layer in 0..2 {
            for cell in 0..16 {
                prop_assert!(
                    s2.temperature_c(layer, cell) >= s1.temperature_c(layer, cell) - 1e-9
                );
            }
        }
    }
}
