//! HotSpot-style steady-state compact thermal model for 3D stacks.
//!
//! The paper uses HotSpot (ref \[16\]) for one gating decision: with a
//! conventional air-cooled heatsink, how many 16-core layers can stack
//! before the hotspot crosses the 100 °C limit? (Answer: 8, §4.1.) This
//! crate reproduces that feasibility analysis — and supplies the junction
//! temperature that Black's equation needs — with the same physics HotSpot
//! uses: a steady-state thermal resistance network.
//!
//! Geometry: each silicon layer is discretized at core-tile granularity
//! (4 × 4 cells); cells conduct laterally through silicon, vertically
//! through the die and the bond/TSV interface to the next layer, and the
//! top layer couples through TIM + spreader + heatsink convection to
//! ambient. The resulting SPD system is solved with conjugate gradient.
//!
//! # Example
//!
//! ```
//! use vstack_thermal::{StackThermalModel, ThermalParams};
//!
//! # fn main() -> Result<(), vstack_sparse::SolveError> {
//! let model = StackThermalModel::new(ThermalParams::paper_air_cooled(), 8, 4, 4);
//! // Every core of every layer at its 0.475 W peak.
//! let power = vec![vec![7.6 / 16.0; 16]; 8];
//! let sol = model.solve(&power)?;
//! assert!(sol.max_temperature_c() < 100.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use vstack_sparse::solver::{cg, CgOptions};
use vstack_sparse::{SolveError, TripletMatrix};

/// Material and boundary parameters of the stack's thermal path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ThermalParams {
    /// Silicon thermal conductivity, W/(m·K).
    pub si_conductivity: f64,
    /// Thinned die thickness, m.
    pub si_thickness_m: f64,
    /// Bond/TSV interface layer conductivity, W/(m·K). TSVs raise this
    /// well above plain underfill.
    pub bond_conductivity: f64,
    /// Bond layer thickness, m.
    pub bond_thickness_m: f64,
    /// TIM + spreader + heatsink resistance from the top die to ambient,
    /// K/W over the whole die (0.3 K/W ≈ a good tower air cooler).
    pub sink_resistance_k_per_w: f64,
    /// Ambient (case inlet) temperature, °C.
    pub ambient_c: f64,
    /// Die width, m.
    pub die_width_m: f64,
    /// Die height, m.
    pub die_height_m: f64,
}

impl ThermalParams {
    /// Air-cooled defaults for the paper's 44.12 mm² die: 100 µm thinned
    /// dies, TSV-enhanced bonds, 0.3 K/W heatsink, 45 °C ambient.
    pub fn paper_air_cooled() -> Self {
        let side = (44.12e-6f64).sqrt();
        ThermalParams {
            si_conductivity: 110.0,
            si_thickness_m: 100e-6,
            bond_conductivity: 4.5,
            bond_thickness_m: 20e-6,
            sink_resistance_k_per_w: 0.30,
            ambient_c: 45.0,
            die_width_m: side,
            die_height_m: side,
        }
    }
}

/// Steady-state thermal model of an `n_layers` stack at `cols × rows`
/// cell granularity per layer (one cell per core tile).
///
/// Layer 0 is the **bottom** die (C4 side); the heatsink mounts on the top
/// die, so lower layers run hotter.
#[derive(Debug, Clone, PartialEq)]
pub struct StackThermalModel {
    params: ThermalParams,
    n_layers: usize,
    cols: usize,
    rows: usize,
}

impl StackThermalModel {
    /// Creates the model.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub fn new(params: ThermalParams, n_layers: usize, cols: usize, rows: usize) -> Self {
        assert!(
            n_layers > 0 && cols > 0 && rows > 0,
            "dimensions must be positive"
        );
        StackThermalModel {
            params,
            n_layers,
            cols,
            rows,
        }
    }

    /// Number of stacked layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    fn cells(&self) -> usize {
        self.cols * self.rows
    }

    fn node(&self, layer: usize, cell: usize) -> usize {
        layer * self.cells() + cell
    }

    /// Solves for cell temperatures given per-layer, per-cell power in
    /// watts (`power[layer][cell]`, layer 0 at the bottom).
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] if CG fails to converge.
    ///
    /// # Panics
    ///
    /// Panics if `power` does not match the model's layer/cell counts.
    pub fn solve(&self, power: &[Vec<f64>]) -> Result<ThermalSolution, SolveError> {
        assert_eq!(power.len(), self.n_layers, "layer count mismatch");
        for layer in power {
            assert_eq!(layer.len(), self.cells(), "cell count mismatch");
        }
        let p = &self.params;
        let cells = self.cells();
        let n = self.n_layers * cells;
        let cell_w = p.die_width_m / self.cols as f64;
        let cell_h = p.die_height_m / self.rows as f64;
        let cell_area = cell_w * cell_h;

        // Vertical conductances per cell (W/K).
        let g_si_half = p.si_conductivity * cell_area / (p.si_thickness_m / 2.0);
        let g_bond = p.bond_conductivity * cell_area / p.bond_thickness_m;
        // Series: half-die + bond + half-die between adjacent layer centers.
        let g_interlayer = 1.0 / (1.0 / g_si_half + 1.0 / g_bond + 1.0 / g_si_half);
        // Series: half-die + sink share from the top layer to ambient.
        let r_sink_cell = p.sink_resistance_k_per_w * cells as f64;
        let g_sink = 1.0 / (1.0 / g_si_half + r_sink_cell);

        // Lateral conductance between adjacent cells (through the die).
        let g_lat_x = p.si_conductivity * (cell_h * p.si_thickness_m) / cell_w;
        let g_lat_y = p.si_conductivity * (cell_w * p.si_thickness_m) / cell_h;

        let mut m = TripletMatrix::new(n, n);
        let mut rhs = vec![0.0; n];
        for (layer, layer_power) in power.iter().enumerate() {
            for cy in 0..self.rows {
                for cx in 0..self.cols {
                    let cell = cy * self.cols + cx;
                    let a = self.node(layer, cell);
                    rhs[a] += layer_power[cell];
                    if cx + 1 < self.cols {
                        m.stamp_conductance(Some(a), Some(self.node(layer, cell + 1)), g_lat_x);
                    }
                    if cy + 1 < self.rows {
                        m.stamp_conductance(
                            Some(a),
                            Some(self.node(layer, cell + self.cols)),
                            g_lat_y,
                        );
                    }
                    if layer + 1 < self.n_layers {
                        m.stamp_conductance(
                            Some(a),
                            Some(self.node(layer + 1, cell)),
                            g_interlayer,
                        );
                    } else {
                        // Top layer: Dirichlet tie to ambient through the
                        // sink; temperatures are solved relative to ambient.
                        m.stamp_conductance(Some(a), None, g_sink);
                    }
                }
            }
        }

        let a = m.to_csr();
        let opts = CgOptions {
            tolerance: 1e-10,
            max_iterations: 20_000,
            ..CgOptions::default()
        };
        let delta = cg(&a, &rhs, &opts)?;
        let temps: Vec<Vec<f64>> = (0..self.n_layers)
            .map(|l| {
                (0..cells)
                    .map(|c| p.ambient_c + delta[self.node(l, c)])
                    .collect()
            })
            .collect();
        Ok(ThermalSolution { temps })
    }

    /// Largest layer count whose fully-active hotspot stays below
    /// `limit_c`, probing 1..=`max_layers`. Returns 0 if even one layer
    /// exceeds the limit.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`].
    pub fn max_feasible_layers(
        params: ThermalParams,
        cols: usize,
        rows: usize,
        per_cell_power_w: f64,
        limit_c: f64,
        max_layers: usize,
    ) -> Result<usize, SolveError> {
        let mut feasible = 0;
        for n in 1..=max_layers {
            let model = StackThermalModel::new(params, n, cols, rows);
            let power = vec![vec![per_cell_power_w; cols * rows]; n];
            let sol = model.solve(&power)?;
            if sol.max_temperature_c() < limit_c {
                feasible = n;
            } else {
                break;
            }
        }
        Ok(feasible)
    }
}

/// Solved cell temperatures.
#[derive(Debug, Clone, PartialEq)]
pub struct ThermalSolution {
    /// `temps[layer][cell]` in °C; layer 0 at the bottom.
    temps: Vec<Vec<f64>>,
}

impl ThermalSolution {
    /// Temperature of one cell in °C.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn temperature_c(&self, layer: usize, cell: usize) -> f64 {
        self.temps[layer][cell]
    }

    /// Hotspot temperature in °C.
    pub fn max_temperature_c(&self) -> f64 {
        self.temps
            .iter()
            .flatten()
            .copied()
            .fold(f64::MIN, f64::max)
    }

    /// Hotspot temperature in kelvin (for Black's equation).
    pub fn max_temperature_k(&self) -> f64 {
        self.max_temperature_c() + 273.15
    }

    /// Layer containing the hotspot.
    pub fn hotspot_layer(&self) -> usize {
        let mut best = (0, f64::MIN);
        for (l, layer) in self.temps.iter().enumerate() {
            for &t in layer {
                if t > best.1 {
                    best = (l, t);
                }
            }
        }
        best.0
    }

    /// Mean temperature of one layer in °C.
    ///
    /// # Panics
    ///
    /// Panics if `layer` is out of range.
    pub fn layer_mean_c(&self, layer: usize) -> f64 {
        let l = &self.temps[layer];
        l.iter().sum::<f64>() / l.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE_W: f64 = 7.6 / 16.0;

    fn model(layers: usize) -> StackThermalModel {
        StackThermalModel::new(ThermalParams::paper_air_cooled(), layers, 4, 4)
    }

    fn full_power(layers: usize) -> Vec<Vec<f64>> {
        vec![vec![CORE_W; 16]; layers]
    }

    #[test]
    fn eight_layers_stay_below_100c() {
        // The paper's §4.1 feasibility claim.
        let sol = model(8).solve(&full_power(8)).unwrap();
        let t = sol.max_temperature_c();
        assert!(t < 100.0, "8-layer hotspot {t} °C");
        assert!(t > 80.0, "8 layers should run hot, got {t} °C");
    }

    #[test]
    fn single_layer_runs_cool() {
        let sol = model(1).solve(&full_power(1)).unwrap();
        let t = sol.max_temperature_c();
        assert!(t > 45.0 && t < 60.0, "got {t} °C");
    }

    #[test]
    fn temperature_grows_with_layer_count() {
        let mut prev = 0.0;
        for n in [1, 2, 4, 8] {
            let t = model(n).solve(&full_power(n)).unwrap().max_temperature_c();
            assert!(t > prev, "{n} layers: {t} ≤ {prev}");
            prev = t;
        }
    }

    #[test]
    fn hotspot_is_on_the_bottom_layer() {
        // Heatsink on top → layer 0 (furthest from the sink) is hottest.
        let sol = model(4).solve(&full_power(4)).unwrap();
        assert_eq!(sol.hotspot_layer(), 0);
        assert!(sol.layer_mean_c(0) > sol.layer_mean_c(3));
    }

    #[test]
    fn zero_power_sits_at_ambient() {
        let sol = model(3).solve(&vec![vec![0.0; 16]; 3]).unwrap();
        assert!((sol.max_temperature_c() - 45.0).abs() < 1e-6);
    }

    #[test]
    fn asymmetric_power_creates_lateral_gradient() {
        let mut power = vec![vec![0.0; 16]; 1];
        power[0][0] = 4.0; // one hot corner core
        let sol = model(1).solve(&power).unwrap();
        assert!(sol.temperature_c(0, 0) > sol.temperature_c(0, 15));
    }

    #[test]
    fn kelvin_conversion() {
        let sol = model(1).solve(&full_power(1)).unwrap();
        assert!((sol.max_temperature_k() - sol.max_temperature_c() - 273.15).abs() < 1e-12);
    }

    #[test]
    fn feasible_layer_search_matches_direct_solve() {
        let n = StackThermalModel::max_feasible_layers(
            ThermalParams::paper_air_cooled(),
            4,
            4,
            CORE_W,
            100.0,
            12,
        )
        .unwrap();
        assert!(
            (8..=10).contains(&n),
            "paper says 8 layers are feasible under air cooling, got {n}"
        );
    }

    #[test]
    #[should_panic(expected = "layer count mismatch")]
    fn wrong_power_shape_rejected() {
        let _ = model(2).solve(&full_power(3));
    }
}
