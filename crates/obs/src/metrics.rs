//! Static metrics registry: monotonic counters and fixed-bucket histograms.
//!
//! The registry is a single static [`Metrics`] struct rather than a
//! dynamic name→metric map: every metric is a named field, so hot-path
//! updates are a relaxed atomic add with zero lookup cost, the snapshot
//! field order is fixed by declaration order (deterministic output), and
//! adding a metric is a compile-time change reviewed like any other API.
//!
//! Naming convention: counters and histograms whose name ends in `_us`
//! accumulate wall-clock microseconds and are therefore not reproducible
//! across runs. Everything else counts discrete events and is
//! deterministic for a deterministic workload — tests zero the `_us`
//! fields and byte-compare the rest (see `canonicalize_snapshot`).

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Schema tag embedded in every snapshot. Bump on any incompatible change
/// to the snapshot layout or to bucket edges.
pub const SCHEMA: &str = "vstack-obs-metrics/1";

/// A monotonic counter (relaxed atomic).
#[derive(Debug)]
pub struct Counter(AtomicU64);

impl Counter {
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Counter::new()
    }
}

/// Upper bound on `edges.len() + 1` for any [`Histogram`].
pub const MAX_BUCKETS: usize = 16;

/// Bucket edges for iteration-count style distributions.
pub const ITERATION_EDGES: &[u64] = &[1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000];
/// Bucket edges for microsecond durations (10 µs … 10 s).
pub const US_EDGES: &[u64] = &[10, 100, 1_000, 10_000, 100_000, 1_000_000, 10_000_000];
/// Bucket edges for batch/queue sizes.
pub const SIZE_EDGES: &[u64] = &[1, 2, 4, 8, 16, 32, 64, 128, 256];
/// Bucket edges for per-iteration temperature deltas in milli-kelvin
/// (1 mK … 100 K), the convergence trajectory of the coupling loop.
pub const DELTA_T_MK_EDGES: &[u64] = &[1, 10, 100, 1_000, 10_000, 100_000];

/// Fixed-bucket histogram. Bucket `i` counts observations `v` with
/// `edges[i-1] < v <= edges[i]` (bucket 0: `v <= edges[0]`); the final
/// bucket counts `v > edges.last()`.
#[derive(Debug)]
pub struct Histogram {
    edges: &'static [u64],
    buckets: [AtomicU64; MAX_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Histogram {
    pub const fn new(edges: &'static [u64]) -> Self {
        assert!(edges.len() < MAX_BUCKETS, "too many histogram edges");
        Histogram {
            edges,
            buckets: [const { AtomicU64::new(0) }; MAX_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.edges.partition_point(|&e| e < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Bucket counts, length `edges.len() + 1` (last bucket is overflow).
    pub fn buckets(&self) -> Vec<u64> {
        self.buckets[..=self.edges.len()]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    pub fn edges(&self) -> &'static [u64] {
        self.edges
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Log-spaced bucket edges for request-latency telemetry (50 µs … 5 s).
/// Denser than [`US_EDGES`] so windowed p50/p99/p999 estimates resolve
/// sub-millisecond serving latencies.
pub const TELEMETRY_US_EDGES: &[u64] = &[
    50, 100, 200, 500, 1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000,
    1_000_000, 2_000_000, 5_000_000,
];

/// One time window of a [`WindowedHistogram`]: a plain (non-atomic)
/// bucket array plus the window index it currently accumulates.
#[derive(Debug, Clone)]
struct Window {
    /// Which fixed-width window (`elapsed / width`) this slot holds;
    /// `u64::MAX` marks a slot that has never been written.
    index: u64,
    buckets: Vec<u64>,
    count: u64,
    sum: u64,
    /// Observations strictly above the SLO threshold.
    over_slo: u64,
}

impl Window {
    fn clear(&mut self, index: u64) {
        self.index = index;
        self.buckets.iter_mut().for_each(|b| *b = 0);
        self.count = 0;
        self.sum = 0;
        self.over_slo = 0;
    }
}

/// Rolling aggregate over the live windows of a [`WindowedHistogram`].
#[derive(Debug, Clone, PartialEq)]
pub struct WindowRollup {
    /// Observations inside the rolling horizon.
    pub count: u64,
    /// Sum of those observations.
    pub sum: u64,
    /// Observations above the SLO threshold.
    pub over_slo: u64,
    /// Merged bucket counts (length `edges.len() + 1`).
    pub buckets: Vec<u64>,
    /// Upper-edge estimates of the rolling percentiles. The final
    /// (overflow) bucket saturates at twice the last edge.
    pub p50: u64,
    /// 99th percentile (same estimator as `p50`).
    pub p99: u64,
    /// 99.9th percentile (same estimator as `p50`).
    pub p999: u64,
    /// SLO burn rate: the observed error fraction divided by the error
    /// budget (`1 - target`). 1.0 means the budget is being consumed
    /// exactly as fast as it accrues; above 1.0 the SLO is burning down.
    pub burn_rate: f64,
}

/// A ring of fixed-width time windows, each a log-bucket histogram —
/// the rolling-percentile / SLO-burn-rate primitive behind the serving
/// daemon's `telemetry` verb.
///
/// Unlike [`Histogram`] (cumulative, static registry), windowed
/// histograms are constructed per shard at runtime. `observe` locks the
/// current window's mutex for a handful of adds; windows other than the
/// current one are only touched by `rollup`, so steady-state contention
/// is writer-vs-writer on one shard's current window only. A window that
/// falls out of the rolling horizon is lazily reset the next time its
/// ring slot is reused, and `rollup` simply skips stale windows — no
/// background rotation thread exists.
#[derive(Debug)]
pub struct WindowedHistogram {
    edges: &'static [u64],
    width: Duration,
    slo_threshold: u64,
    slo_target: f64,
    epoch: Instant,
    windows: Vec<Mutex<Window>>,
    /// Monotonic total across the histogram's lifetime (never reset by
    /// window rotation) — what concurrency tests assert monotonicity on.
    total: AtomicU64,
}

impl WindowedHistogram {
    /// A ring of `windows` windows of `width` each. `slo_threshold` is
    /// the latency bound observations are judged against and
    /// `slo_target` the availability objective (e.g. `0.999`).
    pub fn new(
        edges: &'static [u64],
        width: Duration,
        windows: usize,
        slo_threshold: u64,
        slo_target: f64,
    ) -> Self {
        assert!(!edges.is_empty(), "windowed histogram needs bucket edges");
        assert!(
            slo_target > 0.0 && slo_target < 1.0,
            "slo_target must be in (0, 1)"
        );
        let windows = windows.max(2);
        WindowedHistogram {
            edges,
            width: width.max(Duration::from_millis(1)),
            slo_threshold,
            slo_target,
            epoch: Instant::now(),
            windows: (0..windows)
                .map(|_| {
                    Mutex::new(Window {
                        index: u64::MAX,
                        buckets: vec![0; edges.len() + 1],
                        count: 0,
                        sum: 0,
                        over_slo: 0,
                    })
                })
                .collect(),
            total: AtomicU64::new(0),
        }
    }

    /// The serving default: a rolling minute of 1-second windows.
    pub fn per_second_minute(slo_threshold: u64, slo_target: f64) -> Self {
        WindowedHistogram::new(
            TELEMETRY_US_EDGES,
            Duration::from_secs(1),
            60,
            slo_threshold,
            slo_target,
        )
    }

    /// Bucket edges shared by every window.
    pub fn edges(&self) -> &'static [u64] {
        self.edges
    }

    /// The SLO threshold observations are judged against.
    pub fn slo_threshold(&self) -> u64 {
        self.slo_threshold
    }

    /// The availability objective.
    pub fn slo_target(&self) -> f64 {
        self.slo_target
    }

    /// Observations across the histogram's lifetime; monotonic (window
    /// rotation never decreases it).
    pub fn total_count(&self) -> u64 {
        self.total.load(Ordering::Relaxed)
    }

    fn window_index(&self) -> u64 {
        (self.epoch.elapsed().as_micros() / self.width.as_micros().max(1)) as u64
    }

    /// Records one observation into the current time window.
    pub fn observe(&self, v: u64) {
        let index = self.window_index();
        let slot = (index % self.windows.len() as u64) as usize;
        let mut w = self.windows[slot].lock().expect("window lock");
        if w.index != index {
            w.clear(index);
        }
        let bucket = self.edges.partition_point(|&e| e < v);
        w.buckets[bucket] += 1;
        w.count += 1;
        w.sum += v;
        if v > self.slo_threshold {
            w.over_slo += 1;
        }
        drop(w);
        self.total.fetch_add(1, Ordering::Relaxed);
    }

    /// Merges every window still inside the rolling horizon into one
    /// aggregate with percentile estimates and the SLO burn rate.
    pub fn rollup(&self) -> WindowRollup {
        let current = self.window_index();
        let oldest = current.saturating_sub(self.windows.len() as u64 - 1);
        let mut buckets = vec![0u64; self.edges.len() + 1];
        let (mut count, mut sum, mut over_slo) = (0u64, 0u64, 0u64);
        for slot in &self.windows {
            let w = slot.lock().expect("window lock");
            if w.index < oldest || w.index > current {
                continue; // stale (or never-written) slot
            }
            for (acc, b) in buckets.iter_mut().zip(&w.buckets) {
                *acc += b;
            }
            count += w.count;
            sum += w.sum;
            over_slo += w.over_slo;
        }
        let quantile = |q: f64| bucket_quantile(self.edges, &buckets, count, q);
        let burn_rate = if count == 0 {
            0.0
        } else {
            (over_slo as f64 / count as f64) / (1.0 - self.slo_target)
        };
        WindowRollup {
            p50: quantile(0.50),
            p99: quantile(0.99),
            p999: quantile(0.999),
            burn_rate,
            count,
            sum,
            over_slo,
            buckets,
        }
    }
}

/// Upper-edge quantile estimate over merged log buckets: the value
/// reported for quantile `q` is the upper edge of the bucket holding the
/// `ceil(q * count)`-th observation (overflow bucket: twice the last
/// edge). Deterministic and conservative — never underestimates by more
/// than one bucket width.
pub fn bucket_quantile(edges: &[u64], buckets: &[u64], count: u64, q: f64) -> u64 {
    if count == 0 {
        return 0;
    }
    let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
    let mut cumulative = 0u64;
    for (i, b) in buckets.iter().enumerate() {
        cumulative += b;
        if cumulative >= rank {
            return edges
                .get(i)
                .copied()
                .unwrap_or_else(|| edges.last().copied().unwrap_or(0).saturating_mul(2));
        }
    }
    edges.last().copied().unwrap_or(0).saturating_mul(2)
}

/// Every metric the workspace records. All fields are always-on; updates
/// are relaxed atomic adds from the instrumented crates.
#[derive(Debug)]
pub struct Metrics {
    // -- sparse: Krylov solvers --------------------------------------------
    /// Completed CG solves (any preconditioner).
    pub cg_solves: Counter,
    /// Completed BiCGSTAB solves.
    pub bicgstab_solves: Counter,
    /// Total Krylov iterations across completed solves.
    pub solver_iterations: Counter,
    /// Accumulated preconditioner setup wall-time (µs).
    pub solver_setup_us: Counter,
    /// Accumulated iteration-loop wall-time (µs).
    pub solver_solve_us: Counter,

    // -- sparse: escalation ladder -----------------------------------------
    /// `solve_robust*` entries.
    pub ladder_solves: Counter,
    /// Rung-to-rung escalations (one per recorded fallback step).
    pub ladder_escalations: Counter,
    /// Solves that succeeded only after at least one escalation.
    pub ladder_rescued: Counter,
    /// Solves abandoned at a rung boundary because their cancellation
    /// token fired (deadline passed or shutdown requested).
    pub ladder_cancelled: Counter,

    // -- sparse: AMG -------------------------------------------------------
    /// Successful AMG hierarchy builds.
    pub amg_builds: Counter,
    /// AMG hierarchy builds that failed (degenerate coarsening etc.).
    pub amg_build_failures: Counter,
    /// Individual V-cycle applications.
    pub amg_vcycles: Counter,
    /// Matrix-free stencil-operator SpMV applications.
    pub stencil_applies: Counter,
    /// Mixed-precision refinement sweeps (f32 V-cycle applications).
    pub refinement_sweeps: Counter,
    /// f32 hierarchy mirrors built from an f64 AMG hierarchy.
    pub f32_hierarchy_builds: Counter,

    // -- sparse: thread pool -----------------------------------------------
    /// Broadcasts dispatched to pool worker threads.
    pub pool_broadcasts: Counter,
    /// Broadcasts run inline (pool width 1 or nested).
    pub pool_serial_runs: Counter,

    // -- pdn ---------------------------------------------------------------
    /// PDN operating-point solves.
    pub pdn_solves: Counter,
    /// Re-solves that re-stamped values into a cached CSR pattern.
    pub pdn_pattern_reuses: Counter,
    /// Solves that built the CSR pattern from scratch.
    pub pdn_pattern_builds: Counter,
    /// AMG-eligible solves that reused a cached hierarchy.
    pub amg_cache_hits: Counter,
    /// AMG-eligible solves with no cached hierarchy.
    pub amg_cache_misses: Counter,
    /// Accumulated conductance-stamping wall-time (µs).
    pub pdn_stamp_us: Counter,
    /// Fault-sketch baseline builds (initial builds and rebases).
    pub fault_sketch_builds: Counter,
    /// Fault queries answered from the sketch (SMW update or baseline).
    pub fault_sketch_hits: Counter,
    /// Fault queries that fell back to the exact ladder solve.
    pub fault_sketch_fallbacks: Counter,

    // -- engine ------------------------------------------------------------
    /// Requests received by `query_batch`.
    pub engine_requests: Counter,
    /// Requests rejected by validation.
    pub engine_invalid: Counter,
    /// Requests served from the in-memory LRU.
    pub engine_memory_hits: Counter,
    /// Requests served from the on-disk cache.
    pub engine_disk_hits: Counter,
    /// Duplicate requests coalesced within a batch.
    pub engine_deduped: Counter,
    /// Solves warm-started from a neighbouring cached solution.
    pub engine_warm_solves: Counter,
    /// Solves started cold.
    pub engine_cold_solves: Counter,
    /// Disk-cache entries rejected for schema mismatch.
    pub engine_schema_rejects: Counter,
    /// Disk-cache entries rejected as corrupt.
    pub engine_corrupt_rejects: Counter,

    // -- thermal–EM–IR coupling --------------------------------------------
    /// Coupled fixed-point runs started.
    pub coupling_runs: Counter,
    /// Total thermal–IR fixed-point iterations across all runs.
    pub coupling_iterations: Counter,
    /// Runs that hit the iteration cap and fell back to the uncoupled
    /// result.
    pub coupling_nonconverged: Counter,

    // -- serving daemon ----------------------------------------------------
    /// Connections accepted by the serving daemon.
    pub serve_connections: Counter,
    /// Requests admitted past admission control.
    pub serve_accepted: Counter,
    /// Requests shed by admission control (bounded queue full).
    pub serve_shed: Counter,
    /// Requests that missed their deadline (cancelled or answered late).
    pub serve_deadline_exceeded: Counter,
    /// Requests that joined an identical in-flight fingerprint instead of
    /// queueing their own solve.
    pub serve_dedup_joins: Counter,
    /// Worker-shard panics contained by `catch_unwind` (shard kept alive).
    pub serve_worker_panics: Counter,
    /// Queued jobs shed during shutdown drain instead of being solved.
    pub serve_drained_jobs: Counter,
    /// Corrupt disk-cache files quarantined to `*.corrupt` on load.
    pub serve_cache_quarantined: Counter,

    // -- histograms --------------------------------------------------------
    /// Krylov iterations per completed solve.
    pub solver_iterations_hist: Histogram,
    /// V-cycles (== preconditioned iterations) per AMG-preconditioned solve.
    pub amg_vcycles_per_solve: Histogram,
    /// Requests per `query_batch` call.
    pub engine_batch_size: Histogram,
    /// Deduplicated solve jobs per batch (scheduler queue depth).
    pub engine_queue_depth: Histogram,
    /// Per-solve iteration-loop wall-time (µs).
    pub solve_us_hist: Histogram,
    /// Per-solve preconditioner setup wall-time (µs).
    pub setup_us_hist: Histogram,
    /// Per-batch end-to-end wall-time (µs).
    pub engine_batch_us: Histogram,
    /// Shard queue depth observed at each admission decision.
    pub serve_queue_depth: Histogram,
    /// End-to-end request latency inside the daemon (µs), admission to
    /// response.
    pub serve_request_us: Histogram,
    /// Max per-layer temperature change per coupling iteration, in
    /// milli-kelvin (deterministic for a deterministic workload).
    pub coupling_delta_t_mk: Histogram,
    /// Wall-clock microseconds per sketch-answered fault query (the SMW
    /// update against a warm sketch, excluding lazy column solves).
    pub fault_query_us: Histogram,
}

impl Metrics {
    pub const fn new() -> Self {
        Metrics {
            cg_solves: Counter::new(),
            bicgstab_solves: Counter::new(),
            solver_iterations: Counter::new(),
            solver_setup_us: Counter::new(),
            solver_solve_us: Counter::new(),
            ladder_solves: Counter::new(),
            ladder_escalations: Counter::new(),
            ladder_rescued: Counter::new(),
            ladder_cancelled: Counter::new(),
            amg_builds: Counter::new(),
            amg_build_failures: Counter::new(),
            amg_vcycles: Counter::new(),
            stencil_applies: Counter::new(),
            refinement_sweeps: Counter::new(),
            f32_hierarchy_builds: Counter::new(),
            pool_broadcasts: Counter::new(),
            pool_serial_runs: Counter::new(),
            pdn_solves: Counter::new(),
            pdn_pattern_reuses: Counter::new(),
            pdn_pattern_builds: Counter::new(),
            amg_cache_hits: Counter::new(),
            amg_cache_misses: Counter::new(),
            pdn_stamp_us: Counter::new(),
            fault_sketch_builds: Counter::new(),
            fault_sketch_hits: Counter::new(),
            fault_sketch_fallbacks: Counter::new(),
            engine_requests: Counter::new(),
            engine_invalid: Counter::new(),
            engine_memory_hits: Counter::new(),
            engine_disk_hits: Counter::new(),
            engine_deduped: Counter::new(),
            engine_warm_solves: Counter::new(),
            engine_cold_solves: Counter::new(),
            engine_schema_rejects: Counter::new(),
            engine_corrupt_rejects: Counter::new(),
            coupling_runs: Counter::new(),
            coupling_iterations: Counter::new(),
            coupling_nonconverged: Counter::new(),
            serve_connections: Counter::new(),
            serve_accepted: Counter::new(),
            serve_shed: Counter::new(),
            serve_deadline_exceeded: Counter::new(),
            serve_dedup_joins: Counter::new(),
            serve_worker_panics: Counter::new(),
            serve_drained_jobs: Counter::new(),
            serve_cache_quarantined: Counter::new(),
            solver_iterations_hist: Histogram::new(ITERATION_EDGES),
            amg_vcycles_per_solve: Histogram::new(ITERATION_EDGES),
            engine_batch_size: Histogram::new(SIZE_EDGES),
            engine_queue_depth: Histogram::new(SIZE_EDGES),
            solve_us_hist: Histogram::new(US_EDGES),
            setup_us_hist: Histogram::new(US_EDGES),
            engine_batch_us: Histogram::new(US_EDGES),
            serve_queue_depth: Histogram::new(SIZE_EDGES),
            serve_request_us: Histogram::new(US_EDGES),
            coupling_delta_t_mk: Histogram::new(DELTA_T_MK_EDGES),
            fault_query_us: Histogram::new(US_EDGES),
        }
    }

    /// Named counters in snapshot order.
    pub fn counters(&self) -> Vec<(&'static str, &Counter)> {
        vec![
            ("cg_solves", &self.cg_solves),
            ("bicgstab_solves", &self.bicgstab_solves),
            ("solver_iterations", &self.solver_iterations),
            ("solver_setup_us", &self.solver_setup_us),
            ("solver_solve_us", &self.solver_solve_us),
            ("ladder_solves", &self.ladder_solves),
            ("ladder_escalations", &self.ladder_escalations),
            ("ladder_rescued", &self.ladder_rescued),
            ("ladder_cancelled", &self.ladder_cancelled),
            ("amg_builds", &self.amg_builds),
            ("amg_build_failures", &self.amg_build_failures),
            ("amg_vcycles", &self.amg_vcycles),
            ("stencil_applies", &self.stencil_applies),
            ("refinement_sweeps", &self.refinement_sweeps),
            ("f32_hierarchy_builds", &self.f32_hierarchy_builds),
            ("pool_broadcasts", &self.pool_broadcasts),
            ("pool_serial_runs", &self.pool_serial_runs),
            ("pdn_solves", &self.pdn_solves),
            ("pdn_pattern_reuses", &self.pdn_pattern_reuses),
            ("pdn_pattern_builds", &self.pdn_pattern_builds),
            ("amg_cache_hits", &self.amg_cache_hits),
            ("amg_cache_misses", &self.amg_cache_misses),
            ("pdn_stamp_us", &self.pdn_stamp_us),
            ("fault_sketch_builds", &self.fault_sketch_builds),
            ("fault_sketch_hits", &self.fault_sketch_hits),
            ("fault_sketch_fallbacks", &self.fault_sketch_fallbacks),
            ("engine_requests", &self.engine_requests),
            ("engine_invalid", &self.engine_invalid),
            ("engine_memory_hits", &self.engine_memory_hits),
            ("engine_disk_hits", &self.engine_disk_hits),
            ("engine_deduped", &self.engine_deduped),
            ("engine_warm_solves", &self.engine_warm_solves),
            ("engine_cold_solves", &self.engine_cold_solves),
            ("engine_schema_rejects", &self.engine_schema_rejects),
            ("engine_corrupt_rejects", &self.engine_corrupt_rejects),
            ("coupling_runs", &self.coupling_runs),
            ("coupling_iterations", &self.coupling_iterations),
            ("coupling_nonconverged", &self.coupling_nonconverged),
            ("serve_connections", &self.serve_connections),
            ("serve_accepted", &self.serve_accepted),
            ("serve_shed", &self.serve_shed),
            ("serve_deadline_exceeded", &self.serve_deadline_exceeded),
            ("serve_dedup_joins", &self.serve_dedup_joins),
            ("serve_worker_panics", &self.serve_worker_panics),
            ("serve_drained_jobs", &self.serve_drained_jobs),
            ("serve_cache_quarantined", &self.serve_cache_quarantined),
        ]
    }

    /// Named histograms in snapshot order.
    pub fn histograms(&self) -> Vec<(&'static str, &Histogram)> {
        vec![
            ("solver_iterations_hist", &self.solver_iterations_hist),
            ("amg_vcycles_per_solve", &self.amg_vcycles_per_solve),
            ("engine_batch_size", &self.engine_batch_size),
            ("engine_queue_depth", &self.engine_queue_depth),
            ("solve_us_hist", &self.solve_us_hist),
            ("setup_us_hist", &self.setup_us_hist),
            ("engine_batch_us", &self.engine_batch_us),
            ("serve_queue_depth", &self.serve_queue_depth),
            ("serve_request_us", &self.serve_request_us),
            ("coupling_delta_t_mk", &self.coupling_delta_t_mk),
            ("fault_query_us", &self.fault_query_us),
        ]
    }

    /// Serialize every metric to a single JSON object (no trailing newline).
    pub fn snapshot_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"schema\":\"{SCHEMA}\",\"counters\":{{");
        for (i, (name, c)) in self.counters().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{}", c.get());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in self.histograms().into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":{{\"edges\":[");
            push_u64s(&mut out, h.edges());
            out.push_str("],\"buckets\":[");
            push_u64s(&mut out, &h.buckets());
            let _ = write!(out, "],\"count\":{},\"sum\":{}}}", h.count(), h.sum());
        }
        out.push_str("}}");
        out
    }

    /// Zero every metric. Intended for tests; production counters are
    /// monotonic for the life of the process.
    pub fn reset(&self) {
        for (_, c) in self.counters() {
            c.reset();
        }
        for (_, h) in self.histograms() {
            h.reset();
        }
    }
}

impl Default for Metrics {
    fn default() -> Self {
        Metrics::new()
    }
}

fn push_u64s(out: &mut String, values: &[u64]) {
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
}

/// The process-wide registry.
pub fn global() -> &'static Metrics {
    static METRICS: Metrics = Metrics::new();
    &METRICS
}

/// Snapshot the global registry as JSON.
pub fn snapshot_json() -> String {
    global().snapshot_json()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_observations() {
        let h = Histogram::new(&[10, 100]);
        for v in [1, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.buckets(), vec![2, 2, 2]);
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 5223);
    }

    #[test]
    fn snapshot_is_valid_shape_and_resets() {
        let m = Metrics::new();
        m.cg_solves.inc();
        m.solver_iterations.add(17);
        m.solver_iterations_hist.observe(17);
        let snap = m.snapshot_json();
        assert!(snap.starts_with(&format!("{{\"schema\":\"{SCHEMA}\"")));
        assert!(snap.contains("\"cg_solves\":1"));
        assert!(snap.contains("\"solver_iterations\":17"));
        assert!(snap.contains("\"solver_iterations_hist\":{\"edges\":[1,2,5"));
        m.reset();
        let zeroed = m.snapshot_json();
        assert!(zeroed.contains("\"cg_solves\":0"));
        assert_eq!(m.solver_iterations_hist.count(), 0);
    }

    #[test]
    fn snapshot_is_deterministic_for_equal_state() {
        let a = Metrics::new();
        let b = Metrics::new();
        for m in [&a, &b] {
            m.engine_requests.add(3);
            m.engine_batch_size.observe(3);
        }
        assert_eq!(a.snapshot_json(), b.snapshot_json());
    }

    #[test]
    fn global_registry_is_shared() {
        let before = global().ladder_solves.get();
        global().ladder_solves.inc();
        assert_eq!(global().ladder_solves.get(), before + 1);
    }

    #[test]
    fn windowed_histogram_rolls_up_current_horizon() {
        // Wide windows so every observation lands in the same window.
        let w = WindowedHistogram::new(
            TELEMETRY_US_EDGES,
            Duration::from_secs(3600),
            4,
            1_000,
            0.99,
        );
        for v in [100, 200, 900, 1_500, 40_000] {
            w.observe(v);
        }
        let r = w.rollup();
        assert_eq!(r.count, 5);
        assert_eq!(r.sum, 42_700);
        assert_eq!(r.over_slo, 2); // 1_500 and 40_000 exceed the 1 ms SLO
        assert_eq!(w.total_count(), 5);
        // 2/5 over a 1% error budget => burn rate 40.
        assert!((r.burn_rate - 40.0).abs() < 1e-9, "burn {}", r.burn_rate);
        // Upper-edge estimates: p50 is the 3rd of 5 observations (900 -> edge 1000).
        assert_eq!(r.p50, 1_000);
        assert_eq!(r.p99, 50_000);
        assert_eq!(r.p999, 50_000);
    }

    #[test]
    fn windowed_histogram_empty_rollup_is_zero() {
        let w = WindowedHistogram::per_second_minute(1_000, 0.999);
        let r = w.rollup();
        assert_eq!(r.count, 0);
        assert_eq!(r.p50, 0);
        assert_eq!(r.burn_rate, 0.0);
        assert_eq!(w.total_count(), 0);
    }

    #[test]
    fn windowed_histogram_expires_old_windows() {
        // 1 ms windows, 2-slot ring: after sleeping past the horizon the
        // old observations drop out of the rollup but not the total.
        let w = WindowedHistogram::new(TELEMETRY_US_EDGES, Duration::from_millis(1), 2, 1_000, 0.9);
        w.observe(77);
        std::thread::sleep(Duration::from_millis(5));
        let r = w.rollup();
        assert_eq!(r.count, 0, "window should have expired");
        assert_eq!(w.total_count(), 1, "lifetime total is monotone");
    }

    #[test]
    fn bucket_quantile_upper_edge_and_overflow() {
        let edges = &[10u64, 100];
        // 3 observations in bucket 0, 1 in the overflow bucket.
        let buckets = vec![3u64, 0, 1];
        assert_eq!(bucket_quantile(edges, &buckets, 4, 0.50), 10);
        assert_eq!(bucket_quantile(edges, &buckets, 4, 0.99), 200);
        assert_eq!(bucket_quantile(edges, &buckets, 0, 0.5), 0);
    }
}
