//! # vstack-obs — observability primitives for the vstack workspace
//!
//! Std-only (no external dependencies, matching the workspace rule) and a
//! dependency *leaf*: every other crate in the workspace may depend on it,
//! so it must not pull in `vstack-sparse`, `vstack-engine`, or anything
//! above them. It therefore carries its own tiny JSON *emitters* (never a
//! parser — consumers that need to re-read snapshots already have one).
//!
//! Three independent facilities:
//!
//! * [`trace`] — span-based tracer. `span!("cg_solve")` returns an RAII
//!   guard; on drop the completed span (wall-time, thread index, full
//!   ancestor stack) is recorded into a per-thread ring buffer. Buffers
//!   are drained centrally and serialized as NDJSON or as a
//!   collapsed-stack file consumable by `inferno` / `flamegraph.pl`.
//!   Tracing is **off by default**; a disabled span costs one relaxed
//!   atomic load and a branch. A per-thread *current-trace* slot
//!   ([`trace::trace_scope`]) tags every span recorded inside it with a
//!   caller-minted 64-bit `trace_id`, so a serving daemon can correlate
//!   spans with the request that caused them with no call-site churn.
//! * [`metrics`] — static registry of monotonic counters and fixed-bucket
//!   histograms, always on (relaxed atomic adds), snapshot-serializable
//!   to JSON with a schema version. Field names ending in `_us` are
//!   wall-clock dependent by convention; everything else is deterministic
//!   for a deterministic workload, which is what tests assert on. Also
//!   hosts [`metrics::WindowedHistogram`], a ring of fixed-width
//!   time-windowed log-bucket histograms for rolling p50/p99/p999 and
//!   SLO burn-rate reporting (constructed per call-site, not global).
//! * [`log`] — leveled stderr logger filtered by the `VSTACK_LOG`
//!   environment variable (`warn|info|debug[,target=level]*`), replacing
//!   scattered bare `eprintln!`s. Includes a [`warn_once!`] macro for
//!   messages that must not repeat per process.

#![forbid(unsafe_code)]

pub mod log;
pub mod metrics;
pub mod trace;
