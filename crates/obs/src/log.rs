//! Leveled stderr logger with a `VSTACK_LOG` environment filter.
//!
//! Filter syntax (comma-separated, case-insensitive):
//!
//! ```text
//! VSTACK_LOG=warn                 # global max level (the default)
//! VSTACK_LOG=info                 # info and below everywhere
//! VSTACK_LOG=debug,serve=info     # debug globally, but serve capped at info
//! VSTACK_LOG=warn,pool=debug      # quiet except the pool target
//! ```
//!
//! Unknown tokens are ignored rather than erroring — a typo in an env var
//! must never take down a serve process. The filter is parsed once per
//! process on first use.

use std::fmt;
use std::sync::OnceLock;

/// Severity, ordered from most to least severe.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    Error,
    Warn,
    Info,
    Debug,
    Trace,
}

impl Level {
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
            Level::Trace => "trace",
        }
    }

    pub fn parse(s: &str) -> Option<Level> {
        match s.trim().to_ascii_lowercase().as_str() {
            "error" => Some(Level::Error),
            "warn" | "warning" => Some(Level::Warn),
            "info" => Some(Level::Info),
            "debug" => Some(Level::Debug),
            "trace" => Some(Level::Trace),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A parsed `VSTACK_LOG` specification.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Filter {
    default: Level,
    targets: Vec<(String, Level)>,
}

impl Filter {
    /// Parse a filter spec; malformed fragments are skipped.
    pub fn parse(spec: &str) -> Filter {
        let mut filter = Filter {
            default: Level::Warn,
            targets: Vec::new(),
        };
        for part in spec.split(',') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            match part.split_once('=') {
                None => {
                    if let Some(level) = Level::parse(part) {
                        filter.default = level;
                    }
                }
                Some((target, level)) => {
                    if let Some(level) = Level::parse(level) {
                        let target = target.trim().to_string();
                        if !target.is_empty() {
                            filter.targets.push((target, level));
                        }
                    }
                }
            }
        }
        filter
    }

    /// Maximum level emitted for `target`.
    pub fn level_for(&self, target: &str) -> Level {
        self.targets
            .iter()
            .rev()
            .find(|(t, _)| t == target)
            .map(|(_, l)| *l)
            .unwrap_or(self.default)
    }

    /// Whether a record at `level` for `target` passes the filter.
    pub fn enabled(&self, target: &str, level: Level) -> bool {
        level <= self.level_for(target)
    }
}

fn filter() -> &'static Filter {
    static FILTER: OnceLock<Filter> = OnceLock::new();
    FILTER.get_or_init(|| Filter::parse(std::env::var("VSTACK_LOG").as_deref().unwrap_or("warn")))
}

/// Whether a message at `level` for `target` would be emitted.
pub fn enabled(target: &str, level: Level) -> bool {
    filter().enabled(target, level)
}

/// Emit one record to stderr if the filter passes. Prefer the macros.
pub fn log(target: &str, level: Level, args: fmt::Arguments<'_>) {
    if enabled(target, level) {
        eprintln!("[vstack {level} {target}] {args}");
    }
}

/// Log at error level: `log_error!("serve", "bind failed: {e}")`.
#[macro_export]
macro_rules! log_error {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Error, format_args!($($arg)*))
    };
}

/// Log at warn level.
#[macro_export]
macro_rules! log_warn {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Warn, format_args!($($arg)*))
    };
}

/// Log at info level.
#[macro_export]
macro_rules! log_info {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Info, format_args!($($arg)*))
    };
}

/// Log at debug level.
#[macro_export]
macro_rules! log_debug {
    ($target:expr, $($arg:tt)*) => {
        $crate::log::log($target, $crate::log::Level::Debug, format_args!($($arg)*))
    };
}

/// Warn exactly once per process per call site, however often the
/// surrounding code runs — for configuration diagnostics that would
/// otherwise repeat on every pool construction in a long-lived server.
#[macro_export]
macro_rules! warn_once {
    ($target:expr, $($arg:tt)*) => {{
        static ONCE: ::std::sync::atomic::AtomicBool =
            ::std::sync::atomic::AtomicBool::new(false);
        if !ONCE.swap(true, ::std::sync::atomic::Ordering::Relaxed) {
            $crate::log::log($target, $crate::log::Level::Warn, format_args!($($arg)*));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_filter_is_warn() {
        let f = Filter::parse("");
        assert!(f.enabled("pool", Level::Error));
        assert!(f.enabled("pool", Level::Warn));
        assert!(!f.enabled("pool", Level::Info));
    }

    #[test]
    fn target_overrides_win_and_later_entries_shadow() {
        let f = Filter::parse("warn,pool=debug,pool=info");
        assert_eq!(f.level_for("pool"), Level::Info);
        assert_eq!(f.level_for("serve"), Level::Warn);
        assert!(f.enabled("pool", Level::Info));
        assert!(!f.enabled("pool", Level::Debug));
    }

    #[test]
    fn malformed_fragments_are_ignored() {
        let f = Filter::parse("bogus,=debug,serve=,serve=nope,info");
        assert_eq!(
            f,
            Filter {
                default: Level::Info,
                targets: Vec::new()
            }
        );
    }

    #[test]
    fn warn_once_fires_once() {
        use std::sync::atomic::{AtomicU32, Ordering};
        static HITS: AtomicU32 = AtomicU32::new(0);
        for _ in 0..3 {
            // Mirror the macro's guard shape without writing to stderr.
            static ONCE: std::sync::atomic::AtomicBool = std::sync::atomic::AtomicBool::new(false);
            if !ONCE.swap(true, Ordering::Relaxed) {
                HITS.fetch_add(1, Ordering::Relaxed);
            }
        }
        assert_eq!(HITS.load(Ordering::Relaxed), 1);
    }
}
