//! Span-based tracer with per-thread ring buffers.
//!
//! Design:
//!
//! * A single process-global enable flag ([`set_enabled`]). The disabled
//!   fast path in [`span`] is one `Relaxed` atomic load and a branch — no
//!   clock read, no TLS access, no allocation — so instrumentation can be
//!   left compiled into hot solver loops.
//! * When enabled, each guard snapshots the microsecond offset from a
//!   process epoch at construction and records a [`SpanRecord`] on drop.
//!   Records land in a ring buffer owned by the recording thread. The
//!   buffer is guarded by a `Mutex`, but the owning thread is its only
//!   steady-state user: the lock is uncontended except during a
//!   [`drain`], so recording never blocks on other recording threads.
//! * Each record carries the full ancestor stack (a clone of the
//!   thread-local name stack, `&'static str` pointers only), which is
//!   what makes the collapsed-stack output a one-pass aggregation.
//! * Ring capacity is fixed ([`RING_CAPACITY`] spans per thread); on
//!   overflow the oldest records are overwritten and counted in
//!   [`TraceDump::dropped`] rather than blocking or reallocating.
//!
//! Output is deterministic modulo timestamps for a deterministic
//! single-threaded workload: records sort by `(thread, seq)` and span
//! names are compile-time string literals. With a thread pool the
//! span→thread assignment follows the pool's work distribution; run with
//! `VSTACK_THREADS=1` when byte-stable traces are required.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Spans retained per recording thread before the oldest are overwritten.
pub const RING_CAPACITY: usize = 1 << 16;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_THREAD: AtomicU32 = AtomicU32::new(0);
static RINGS: Mutex<Vec<Arc<Mutex<Ring>>>> = Mutex::new(Vec::new());

/// Turn span recording on or off process-wide.
///
/// Enabling also pins the process epoch so `start_us` offsets are
/// anchored at (or before) the first recorded span.
pub fn set_enabled(on: bool) {
    if on {
        let _ = epoch();
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// One completed span.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Dense index assigned to the recording thread on its first span.
    pub thread: u32,
    /// Per-thread completion sequence number (drop order).
    pub seq: u64,
    /// Nesting depth; 0 for a root span.
    pub depth: u32,
    /// Ancestor names root-first; the span's own name is last.
    pub stack: Vec<&'static str>,
    /// Microseconds from the process trace epoch to span start.
    pub start_us: u64,
    /// Span duration in microseconds.
    pub dur_us: u64,
    /// Request trace id active on the recording thread when the span
    /// closed ([`current_trace`]); 0 when no request context was set.
    pub trace_id: u64,
}

impl SpanRecord {
    /// The span's own name (last element of `stack`).
    pub fn name(&self) -> &'static str {
        self.stack.last().expect("span stack is never empty")
    }
}

struct Ring {
    records: Vec<SpanRecord>,
    /// Index of the oldest record once the ring has wrapped.
    head: usize,
    dropped: u64,
    seq: u64,
}

impl Ring {
    const fn new() -> Self {
        Ring {
            records: Vec::new(),
            head: 0,
            dropped: 0,
            seq: 0,
        }
    }

    fn push(&mut self, record: SpanRecord) {
        if self.records.len() < RING_CAPACITY {
            self.records.push(record);
        } else {
            self.records[self.head] = record;
            self.head = (self.head + 1) % RING_CAPACITY;
            self.dropped += 1;
        }
    }

    fn take(&mut self) -> Vec<SpanRecord> {
        let head = self.head;
        self.head = 0;
        let mut out = std::mem::take(&mut self.records);
        out.rotate_left(head);
        out
    }
}

struct ThreadState {
    thread: u32,
    stack: Vec<&'static str>,
    ring: Arc<Mutex<Ring>>,
}

thread_local! {
    static STATE: RefCell<Option<ThreadState>> = const { RefCell::new(None) };
    /// The request trace id active on this thread; 0 means "no request
    /// context". Deliberately separate from `STATE`: reading it must not
    /// lazily register a trace ring for threads that only propagate ids.
    static CURRENT_TRACE: Cell<u64> = const { Cell::new(0) };
}

/// The request trace id active on the current thread (0 when none).
///
/// Serving tiers set this at admission via [`trace_scope`]; every
/// [`span!`](crate::span) record closed while the scope is live carries
/// the id, so existing instrumentation picks up request attribution with
/// no call-site changes. Thread pools that fan a request out re-publish
/// the id on their worker threads by capturing `current_trace()` before
/// dispatch and opening a nested `trace_scope` inside each job.
#[inline]
pub fn current_trace() -> u64 {
    CURRENT_TRACE.with(Cell::get)
}

/// RAII guard restoring the previous per-thread trace id on drop.
#[must_use = "dropping the scope immediately restores the previous trace id"]
pub struct TraceScope {
    prev: u64,
}

/// Installs `trace_id` as the current thread's request trace id until the
/// returned guard drops (scopes nest; the previous id is restored).
#[inline]
pub fn trace_scope(trace_id: u64) -> TraceScope {
    let prev = CURRENT_TRACE.with(|c| c.replace(trace_id));
    TraceScope { prev }
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        CURRENT_TRACE.with(|c| c.set(self.prev));
    }
}

fn with_state<R>(f: impl FnOnce(&mut ThreadState) -> R) -> R {
    STATE.with(|cell| {
        let mut slot = cell.borrow_mut();
        let state = slot.get_or_insert_with(|| {
            let ring = Arc::new(Mutex::new(Ring::new()));
            RINGS
                .lock()
                .expect("trace registry poisoned")
                .push(Arc::clone(&ring));
            ThreadState {
                thread: NEXT_THREAD.fetch_add(1, Ordering::Relaxed),
                stack: Vec::new(),
                ring,
            }
        });
        f(state)
    })
}

/// RAII guard returned by [`span`]; records the span when dropped.
#[must_use = "a span guard records on drop; binding it to _ ends the span immediately"]
pub struct SpanGuard {
    live: bool,
    start_us: u64,
}

/// Open a span. Prefer the [`span!`](crate::span) macro at call sites.
///
/// Span names must be plain static identifiers (no `"` `\` `;` or
/// whitespace) so both serializers can emit them unescaped.
#[inline]
pub fn span(name: &'static str) -> SpanGuard {
    if !ENABLED.load(Ordering::Relaxed) {
        return SpanGuard {
            live: false,
            start_us: 0,
        };
    }
    span_slow(name)
}

#[cold]
fn span_slow(name: &'static str) -> SpanGuard {
    debug_assert!(
        !name.is_empty()
            && name
                .bytes()
                .all(|b| !b.is_ascii_whitespace() && b != b'"' && b != b'\\' && b != b';'),
        "span name {name:?} must be a plain identifier"
    );
    let start_us = epoch().elapsed().as_micros() as u64;
    with_state(|state| state.stack.push(name));
    SpanGuard {
        live: true,
        start_us,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if !self.live {
            return;
        }
        let end_us = epoch().elapsed().as_micros() as u64;
        with_state(|state| {
            let stack = state.stack.clone();
            state.stack.pop();
            debug_assert!(
                !stack.is_empty(),
                "span guard dropped with empty name stack"
            );
            let mut ring = state.ring.lock().expect("trace ring poisoned");
            let seq = ring.seq;
            ring.seq += 1;
            ring.push(SpanRecord {
                thread: state.thread,
                seq,
                depth: (stack.len() as u32).saturating_sub(1),
                stack,
                start_us: self.start_us,
                dur_us: end_us.saturating_sub(self.start_us),
                trace_id: current_trace(),
            });
        });
    }
}

/// Everything drained from the per-thread rings.
#[derive(Debug, Default)]
pub struct TraceDump {
    /// Completed spans, sorted by `(thread, seq)`.
    pub records: Vec<SpanRecord>,
    /// Spans lost to ring overflow since the previous drain.
    pub dropped: u64,
}

/// Drain all per-thread rings, leaving them empty.
///
/// Spans still open (guards not yet dropped) are not included.
pub fn drain() -> TraceDump {
    let rings: Vec<Arc<Mutex<Ring>>> = RINGS.lock().expect("trace registry poisoned").clone();
    let mut dump = TraceDump::default();
    for ring in rings {
        let mut guard = ring.lock().expect("trace ring poisoned");
        dump.dropped += guard.dropped;
        guard.dropped = 0;
        dump.records.extend(guard.take());
    }
    dump.records.sort_by_key(|r| (r.thread, r.seq));
    dump
}

/// Serialize a dump as NDJSON: one span object per line.
pub fn to_ndjson(dump: &TraceDump) -> String {
    let mut out = String::new();
    for r in &dump.records {
        let _ = write!(out, "{{\"name\":\"{}\",\"stack\":\"", r.name());
        push_stack(&mut out, &r.stack);
        let _ = writeln!(
            out,
            "\",\"thread\":{},\"seq\":{},\"depth\":{},\"start_us\":{},\"dur_us\":{},\"trace_id\":\"{:016x}\"}}",
            r.thread, r.seq, r.depth, r.start_us, r.dur_us, r.trace_id
        );
    }
    out
}

/// Serialize a dump in collapsed-stack ("folded") form:
/// `root;child;leaf <self_us>` per line, sorted, threads merged.
///
/// Values are *self* microseconds — each span's inclusive time minus its
/// direct children's inclusive time — so frame widths in a flamegraph sum
/// correctly instead of double-counting parents.
pub fn to_collapsed(dump: &TraceDump) -> String {
    let mut inclusive: BTreeMap<Vec<&'static str>, u64> = BTreeMap::new();
    for r in &dump.records {
        *inclusive.entry(r.stack.clone()).or_insert(0) += r.dur_us;
    }
    let mut self_us = inclusive.clone();
    for (stack, incl) in &inclusive {
        if stack.len() > 1 {
            if let Some(parent) = self_us.get_mut(&stack[..stack.len() - 1]) {
                *parent = parent.saturating_sub(*incl);
            }
        }
    }
    let mut out = String::new();
    for (stack, v) in &self_us {
        push_stack(&mut out, stack);
        let _ = writeln!(out, " {v}");
    }
    out
}

fn push_stack(out: &mut String, stack: &[&'static str]) {
    for (i, frame) in stack.iter().enumerate() {
        if i > 0 {
            out.push(';');
        }
        out.push_str(frame);
    }
}

/// Drain the tracer and write `path` (NDJSON) plus `<path>.folded`
/// (collapsed stacks). Returns the folded path.
pub fn write_trace(path: &Path) -> std::io::Result<PathBuf> {
    let dump = drain();
    let mut folded = path.as_os_str().to_owned();
    folded.push(".folded");
    let folded = PathBuf::from(folded);
    std::fs::File::create(path)?.write_all(to_ndjson(&dump).as_bytes())?;
    std::fs::File::create(&folded)?.write_all(to_collapsed(&dump).as_bytes())?;
    Ok(folded)
}

/// Open a tracing span; returns the RAII [`SpanGuard`](crate::trace::SpanGuard).
///
/// ```
/// let _span = vstack_obs::span!("cg_solve");
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::trace::span($name)
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tracer state is process-global; serialize the tests that toggle it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _gate = lock();
        set_enabled(false);
        drain();
        {
            let _a = span("quiet_outer");
            let _b = span("quiet_inner");
        }
        assert!(drain().records.is_empty());
    }

    #[test]
    fn nested_spans_capture_ancestor_stacks() {
        let _gate = lock();
        set_enabled(false);
        drain();
        set_enabled(true);
        {
            let _a = span("outer_span");
            {
                let _b = span("inner_span");
            }
            {
                let _c = span("sibling_span");
            }
        }
        set_enabled(false);
        let dump = drain();
        let stacks: Vec<Vec<&str>> = dump.records.iter().map(|r| r.stack.clone()).collect();
        assert_eq!(
            stacks,
            vec![
                vec!["outer_span", "inner_span"],
                vec!["outer_span", "sibling_span"],
                vec!["outer_span"],
            ]
        );
        assert_eq!(dump.records[0].depth, 1);
        assert_eq!(dump.records[2].depth, 0);
        assert_eq!(dump.dropped, 0);
    }

    #[test]
    fn collapsed_output_reports_self_time() {
        let dump = TraceDump {
            records: vec![
                SpanRecord {
                    thread: 0,
                    seq: 0,
                    depth: 1,
                    stack: vec!["root", "leaf"],
                    start_us: 0,
                    dur_us: 30,
                    trace_id: 0,
                },
                SpanRecord {
                    thread: 0,
                    seq: 1,
                    depth: 0,
                    stack: vec!["root"],
                    start_us: 0,
                    dur_us: 100,
                    trace_id: 0,
                },
            ],
            dropped: 0,
        };
        assert_eq!(to_collapsed(&dump), "root 70\nroot;leaf 30\n");
        let ndjson = to_ndjson(&dump);
        assert_eq!(ndjson.lines().count(), 2);
        assert!(ndjson.starts_with(
            "{\"name\":\"leaf\",\"stack\":\"root;leaf\",\"thread\":0,\"seq\":0,\"depth\":1,"
        ));
    }

    #[test]
    fn trace_scope_tags_spans_and_restores_on_drop() {
        let _gate = lock();
        set_enabled(false);
        drain();
        assert_eq!(current_trace(), 0);
        set_enabled(true);
        {
            let _outer = trace_scope(0xabcd);
            assert_eq!(current_trace(), 0xabcd);
            {
                let _nested = trace_scope(0x1234);
                assert_eq!(current_trace(), 0x1234);
                let _s = span("traced_inner");
            }
            assert_eq!(current_trace(), 0xabcd);
            let _s = span("traced_outer");
        }
        assert_eq!(current_trace(), 0);
        {
            let _s = span("untraced_span");
        }
        set_enabled(false);
        let dump = drain();
        let by_name: std::collections::BTreeMap<&str, u64> = dump
            .records
            .iter()
            .map(|r| (r.name(), r.trace_id))
            .collect();
        assert_eq!(by_name["traced_inner"], 0x1234);
        assert_eq!(by_name["traced_outer"], 0xabcd);
        assert_eq!(by_name["untraced_span"], 0);
        assert!(to_ndjson(&dump).contains("\"trace_id\":\"0000000000001234\""));
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let mut ring = Ring::new();
        for seq in 0..(RING_CAPACITY as u64 + 3) {
            ring.push(SpanRecord {
                thread: 0,
                seq,
                depth: 0,
                stack: vec!["overflow_probe"],
                start_us: 0,
                dur_us: 0,
                trace_id: 0,
            });
        }
        assert_eq!(ring.dropped, 3);
        let records = ring.take();
        assert_eq!(records.len(), RING_CAPACITY);
        assert_eq!(records.first().map(|r| r.seq), Some(3));
        assert_eq!(
            records.last().map(|r| r.seq),
            Some(RING_CAPACITY as u64 + 2)
        );
    }
}
