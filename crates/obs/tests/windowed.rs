//! Process-isolated concurrency test for the windowed SLO histograms:
//! four writer threads (one per simulated shard worker) hammer a shared
//! [`WindowedHistogram`] while a reader polls rollups, asserting that
//! the lifetime total is monotone and that no rollup is ever torn
//! (bucket sums always equal the merged count, over-SLO never exceeds
//! the count, and the mean stays inside the observed value range).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use vstack_obs::metrics::{WindowedHistogram, TELEMETRY_US_EDGES};

#[test]
fn four_shard_threads_never_tear_a_window() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;

    // Narrow 5 ms windows in an 8-slot ring so the test exercises
    // rotation and lazy reset, not just a single hot window.
    let hist = Arc::new(WindowedHistogram::new(
        TELEMETRY_US_EDGES,
        Duration::from_millis(5),
        8,
        1_000,
        0.999,
    ));
    let stop = Arc::new(AtomicBool::new(false));

    let reader = {
        let hist = Arc::clone(&hist);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut last_total = 0u64;
            let mut rollups = 0u64;
            while !stop.load(Ordering::Acquire) {
                let total = hist.total_count();
                assert!(
                    total >= last_total,
                    "lifetime total went backwards: {last_total} -> {total}"
                );
                last_total = total;

                let r = hist.rollup();
                let bucket_sum: u64 = r.buckets.iter().sum();
                assert_eq!(
                    bucket_sum, r.count,
                    "torn window: bucket sum {bucket_sum} != count {}",
                    r.count
                );
                assert!(r.over_slo <= r.count, "over_slo exceeds count");
                if let Some(mean) = r.sum.checked_div(r.count) {
                    assert!(
                        (7..=1_900).contains(&mean),
                        "mean {mean} outside observed value range"
                    );
                    assert!(r.p50 >= 1, "p50 must be a real edge when count > 0");
                }
                rollups += 1;
            }
            rollups
        })
    };

    let writers: Vec<_> = (0..WRITERS)
        .map(|shard| {
            let hist = Arc::clone(&hist);
            std::thread::spawn(move || {
                // Deterministic per-shard value stream: mostly fast
                // requests with a sprinkle of SLO-busting outliers.
                for i in 0..PER_WRITER {
                    let v = match i % 101 {
                        0 => 1_900,
                        _ => 7 + ((i * 37 + shard as u64) % 750),
                    };
                    hist.observe(v);
                }
            })
        })
        .collect();

    for w in writers {
        w.join().expect("writer panicked");
    }
    stop.store(true, Ordering::Release);
    let rollups = reader.join().expect("reader panicked");
    assert!(rollups > 0, "reader must have observed at least one rollup");

    assert_eq!(hist.total_count(), WRITERS as u64 * PER_WRITER);
    // After all writers finish, everything recorded within the horizon
    // must still be internally consistent.
    let r = hist.rollup();
    let bucket_sum: u64 = r.buckets.iter().sum();
    assert_eq!(bucket_sum, r.count);
    assert!(r.count <= hist.total_count());
}
