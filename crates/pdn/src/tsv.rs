//! Power-delivery TSV topologies (the paper's Table 2).
//!
//! The number of power TSVs is a first-class design knob: more TSVs lower
//! vertical resistance and per-TSV current density (better noise and EM),
//! but each TSV's keep-out zone (KoZ) costs active-silicon area. The paper
//! studies three allocations:
//!
//! | Topology | Effective pitch | TSVs per core | Area overhead |
//! |----------|-----------------|---------------|---------------|
//! | Dense    | 20 µm           | 6650          | 24.2%         |
//! | Sparse   | 40 µm           | 1675          | 6.1%          |
//! | Few      | 240 µm          | 110           | 0.4%          |

use crate::params::PdnParams;

/// The three TSV allocations of Table 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TsvTopology {
    /// Conservative allocation: 20 µm effective pitch.
    Dense,
    /// Average allocation: 40 µm effective pitch.
    Sparse,
    /// Aggressive allocation: 240 µm effective pitch.
    Few,
}

/// All topologies in Table 2 order.
pub const TSV_TOPOLOGIES: [TsvTopology; 3] =
    [TsvTopology::Dense, TsvTopology::Sparse, TsvTopology::Few];

impl TsvTopology {
    /// Display name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            TsvTopology::Dense => "Dense TSV",
            TsvTopology::Sparse => "Sparse TSV",
            TsvTopology::Few => "Few TSV",
        }
    }

    /// Effective pitch in µm (Table 2).
    pub fn effective_pitch_um(self) -> f64 {
        match self {
            TsvTopology::Dense => 20.0,
            TsvTopology::Sparse => 40.0,
            TsvTopology::Few => 240.0,
        }
    }

    /// Power TSVs per core (Table 2), split evenly between supply and
    /// return nets.
    pub fn tsvs_per_core(self) -> usize {
        match self {
            TsvTopology::Dense => 6650,
            TsvTopology::Sparse => 1675,
            TsvTopology::Few => 110,
        }
    }

    /// Supply-net TSVs per core (half the total).
    pub fn vdd_tsvs_per_core(self) -> usize {
        self.tsvs_per_core() / 2
    }

    /// Area overhead of the KoZs as a fraction of core area.
    ///
    /// Reproduces Table 2's totals (24.2% / 6.1% / 0.4%).
    pub fn area_overhead(self, params: &PdnParams) -> f64 {
        let koz_um2 = params.tsv_koz_side_um * params.tsv_koz_side_um;
        let core_um2 = params.core.area_mm2() * 1e6;
        self.tsvs_per_core() as f64 * koz_um2 / core_um2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_area_overheads() {
        let p = PdnParams::paper_defaults();
        let dense = TsvTopology::Dense.area_overhead(&p);
        let sparse = TsvTopology::Sparse.area_overhead(&p);
        let few = TsvTopology::Few.area_overhead(&p);
        assert!((dense - 0.242).abs() < 0.01, "dense {dense}");
        assert!((sparse - 0.061).abs() < 0.005, "sparse {sparse}");
        assert!((few - 0.004).abs() < 0.001, "few {few}");
    }

    #[test]
    fn denser_topology_has_more_tsvs() {
        assert!(TsvTopology::Dense.tsvs_per_core() > TsvTopology::Sparse.tsvs_per_core());
        assert!(TsvTopology::Sparse.tsvs_per_core() > TsvTopology::Few.tsvs_per_core());
    }

    #[test]
    fn vdd_half_of_total() {
        for t in TSV_TOPOLOGIES {
            assert_eq!(t.vdd_tsvs_per_core(), t.tsvs_per_core() / 2);
        }
    }

    #[test]
    fn names_match_paper() {
        assert_eq!(TsvTopology::Few.name(), "Few TSV");
    }
}
