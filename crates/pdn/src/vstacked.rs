//! The voltage-stacked (charge-recycled) 3D PDN topology — paper Fig 4b.
//!
//! Layers are wired in series: layer *l*'s ground net and layer *l−1*'s
//! supply net share intermediate rail *l*. The board supplies `N·Vdd` to
//! the **top** layer through dedicated through-via stacks (one per Vdd C4
//! pad, paper §5.1) and collects the return from the bottom layer's ground
//! net. Push-pull SC converters regulate every intermediate rail,
//! sourcing/sinking only the mismatch current between adjacent layers.
//!
//! Because the converter compact model stamps as a rank-1 PSD matrix (see
//! [`crate::network::NetworkBuilder::converter`]), the whole V-S network is
//! one SPD system solved by CG.

use vstack_power::floorplan::Floorplan;
use vstack_sc::compact::ScConverter;
use vstack_sparse::{SolveError, StencilDescriptor};

use crate::c4::{C4Array, PadNet};
use crate::error::PdnError;
use crate::fault::{FaultSet, FaultedSolution, TsvGroupCurrent};
use crate::network::{core_load_weights, core_node_map, GridSpec, NetworkBuilder, SolveScratch};
use crate::params::PdnParams;
use crate::solution::{ConductorCurrents, PdnSolution};
use crate::stack::StackLoads;
use crate::tsv::TsvTopology;

/// What a converter cell at intermediate rail `r` regulates against.
///
/// The paper's scalable **multi-output ladder SC** (§2.1, Fig 1) rotates
/// its fly capacitors through the whole stack, so each output rail is
/// effectively regulated against the stiff stack boundaries — that is
/// [`ConverterReference::BoundaryLadder`], the default, and the only
/// variant consistent with the paper's Fig 6 magnitudes.
/// [`ConverterReference::AdjacentRails`] models independent 2:1 cells that
/// only sense their neighbouring rails; chained midpoint references let
/// converter drops accumulate quadratically across the stack (a discrete
/// Poisson "voltage bowl"), which is why naive per-interface regulation
/// scales poorly — retained as an ablation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConverterReference {
    /// Rail `r` regulated to `r/N` of the local stack span (ladder SC).
    #[default]
    BoundaryLadder,
    /// Rail `r` regulated to the midpoint of rails `r±1` (independent 2:1
    /// cells).
    AdjacentRails,
}

/// Output of the assembly phase: the stamped network plus the handles the
/// extraction and transient phases need. Pads carry their ordinal among
/// power pads of the same net so fault injection and extraction agree on
/// identity across solves.
struct AssembledVs {
    nb: NetworkBuilder,
    vdd_pads: Vec<(usize, usize)>,
    gnd_pads: Vec<(usize, usize)>,
    g_via_stack: f64,
    g_gnd_pad: f64,
    v_supply: f64,
}

/// A voltage-stacked PDN ready to solve against load scenarios.
#[derive(Debug, Clone)]
pub struct VstackPdn {
    params: PdnParams,
    n_layers: usize,
    topology: TsvTopology,
    c4: C4Array,
    converter: ScConverter,
    converters_per_core: usize,
    reference: ConverterReference,
    grid: GridSpec,
    floorplan: Floorplan,
    core_nodes: Vec<Vec<usize>>,
    core_weights: Vec<Vec<f64>>,
}

impl VstackPdn {
    /// Builds an `n_layers` voltage-stacked PDN.
    ///
    /// `converters_per_core` converter cells regulate each intermediate
    /// rail within every core footprint (the paper sweeps 2/4/6/8);
    /// `power_c4_fraction` allocates pads exactly as in the regular PDN
    /// (the paper evaluates V-S at 25%).
    ///
    /// # Panics
    ///
    /// Panics if `n_layers < 2` or `converters_per_core == 0`.
    pub fn new(
        params: &PdnParams,
        n_layers: usize,
        topology: TsvTopology,
        power_c4_fraction: f64,
        converter: ScConverter,
        converters_per_core: usize,
    ) -> Self {
        assert!(n_layers >= 2, "voltage stacking needs at least two layers");
        assert!(
            converters_per_core >= 1,
            "need at least one converter per core"
        );
        let c4 = C4Array::new(params, power_c4_fraction);
        let grid = GridSpec::from_params(params);
        let floorplan = params.floorplan();
        let core_nodes = core_node_map(&grid, &floorplan);
        let core_weights = core_load_weights(
            &grid,
            &floorplan,
            &params.core,
            &core_nodes,
            params.load_distribution,
        );
        VstackPdn {
            params: params.clone(),
            n_layers,
            topology,
            c4,
            converter,
            converters_per_core,
            reference: ConverterReference::default(),
            grid,
            floorplan,
            core_nodes,
            core_weights,
        }
    }

    /// Returns a copy using a different converter rail reference (the
    /// adjacent-rails variant is an ablation; see [`ConverterReference`]).
    pub fn with_reference(mut self, reference: ConverterReference) -> Self {
        self.reference = reference;
        self
    }

    /// The converter rail reference in use.
    pub fn reference(&self) -> ConverterReference {
        self.reference
    }

    /// Number of stacked layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// Converter cells per core per intermediate rail.
    pub fn converters_per_core(&self) -> usize {
        self.converters_per_core
    }

    /// The converter design used at every cell.
    pub fn converter(&self) -> &ScConverter {
        &self.converter
    }

    /// The C4 array.
    pub fn c4(&self) -> &C4Array {
        &self.c4
    }

    /// Flat unknown index of grid node `n` on layer `layer`'s ground
    /// (`net = 0`, rail `layer`) or supply (`net = 1`, rail `layer + 1`)
    /// net.
    fn node(&self, layer: usize, net: usize, n: usize) -> usize {
        (layer * 2 + net) * self.grid.count() + n
    }

    /// Solves the stacked network for the given loads, honouring the
    /// converter's control policy.
    ///
    /// Open-loop converters present a fixed `R_SERIES`, so one SPD solve
    /// suffices. Closed-loop converters modulate their switching frequency
    /// — and therefore their output impedance — with their own load
    /// current, which couples the network nonlinearly; that case runs the
    /// damped Picard iteration of [`VstackPdn::solve_closed_loop`].
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the CG solve fails.
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve(&self, loads: &StackLoads) -> Result<PdnSolution, SolveError> {
        self.solve_faulted(loads, &FaultSet::new(), None)
            .map(|f| f.solution)
            .map_err(PdnError::into_solve_error)
    }

    /// Solves the stacked network with the conductors in `faults`
    /// open-circuited, optionally warm-starting from a previous solution's
    /// [`FaultedSolution::voltages`].
    ///
    /// A failed supply pad takes its entire through-via stack with it (the
    /// pad and its dedicated TSV column form one series path); interface
    /// TSV faults shrink the surviving `(interface, core)` bundle.
    /// Closed-loop converters run the damped Picard iteration with the
    /// faults applied at every inner solve.
    ///
    /// # Errors
    ///
    /// [`PdnError::Disconnected`] once the faults isolate part of the grid
    /// from every board rail; [`PdnError::Solve`] if the escalation ladder
    /// is exhausted or the Picard iteration does not settle.
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_faulted(
        &self,
        loads: &StackLoads,
        faults: &FaultSet,
        guess: Option<&[f64]>,
    ) -> Result<FaultedSolution, PdnError> {
        self.solve_faulted_scratch(loads, faults, guess, &mut SolveScratch::new())
    }

    /// [`VstackPdn::solve_faulted`] with reusable cross-solve state.
    ///
    /// Wearout loops and converter sweeps re-solve one topology hundreds
    /// of times; passing one [`SolveScratch`] lets every solve after the
    /// first re-stamp values onto the cached sparsity pattern and recycle
    /// the solver's working vectors (closed-loop Picard iterations share
    /// the scratch internally as well). Results are bit-identical to
    /// [`VstackPdn::solve_faulted`].
    ///
    /// # Errors
    ///
    /// As for [`VstackPdn::solve_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_faulted_scratch(
        &self,
        loads: &StackLoads,
        faults: &FaultSet,
        guess: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        match self.converter.control {
            vstack_sc::ControlPolicy::OpenLoop => {
                let sites = self.converter_sites();
                let g = vec![1.0 / self.converter.r_series(self.converter.f_nom); sites.len()];
                let f = vec![self.converter.f_nom; sites.len()];
                self.solve_with_conductances(loads, &sites, &g, &f, faults, guess, scratch)
            }
            vstack_sc::ControlPolicy::ClosedLoop { .. } => Ok(self
                .solve_closed_loop_faulted_scratch(loads, faults, guess, scratch)?
                .0),
        }
    }

    /// Warm-started fault-free solve: the entry point serving layers
    /// (sweep schedulers, the `vstack-engine` query cache) use for
    /// repeated healthy-topology solves.
    ///
    /// Equivalent to [`VstackPdn::solve_faulted_scratch`] with an empty
    /// [`FaultSet`]: `guess` seeds the Krylov iteration (a converged guess
    /// returns unchanged, bit-identical, in zero iterations) and `scratch`
    /// recycles the symbolic CSR pattern and working vectors across calls.
    /// Dispatches through the converter control policy exactly like
    /// [`VstackPdn::solve`].
    ///
    /// # Errors
    ///
    /// As for [`VstackPdn::solve_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_warm(
        &self,
        loads: &StackLoads,
        guess: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        self.solve_faulted_scratch(loads, &FaultSet::new(), guess, scratch)
    }

    /// [`VstackPdn::solve_faulted_scratch`] accelerated by the rank-k
    /// fault sketch ([`crate::sketch::FaultSketch`]).
    ///
    /// Open-loop stacks answer fault what-ifs through the
    /// Sherman–Morrison–Woodbury identity against a cached, tightly-solved
    /// baseline: a failed supply pad removes its through-via-stack rail
    /// conductance, a failed interface TSV scales the bundle's series edge
    /// columns. Closed-loop stacks always take the exact Picard path (the
    /// matrix changes every fixed-point iteration, so no single baseline
    /// factorization applies) and count as sketch fallbacks.
    ///
    /// # Errors
    ///
    /// As for [`VstackPdn::solve_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_faulted_sketched(
        &self,
        loads: &StackLoads,
        faults: &FaultSet,
        scratch: &mut SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        if matches!(
            self.converter.control,
            vstack_sc::ControlPolicy::ClosedLoop { .. }
        ) {
            vstack_obs::metrics::global().fault_sketch_fallbacks.inc();
            return Ok(self
                .solve_closed_loop_faulted_scratch(loads, faults, None, scratch)?
                .0);
        }
        let fp = self.sketch_fingerprint(loads);
        let mut sketch = scratch.take_sketch().filter(|s| s.fingerprint() == fp);
        let sites = self.converter_sites();
        let conv_g = vec![1.0 / self.converter.r_series(self.converter.f_nom); sites.len()];
        let conv_f = vec![self.converter.f_nom; sites.len()];
        let n = self.n_layers;
        let g_gnd_pad = 1.0 / (self.params.c4_resistance_ohm + self.params.package_r_per_pad_ohm);
        let g_via_stack = 1.0
            / (self.params.c4_resistance_ohm
                + self.params.package_r_per_pad_ohm
                + n as f64 * self.params.tsv_resistance_ohm);
        let v_supply = n as f64 * self.params.vdd;
        let answered = crate::sketch::answer_with_sketch(
            faults,
            &mut sketch,
            scratch,
            |base, scr| self.build_sketch(loads, base.clone(), &sites, &conv_g, scr),
            |sk, v, report| {
                let (vdd_pads, gnd_pads) = sk.alive_pads(faults);
                self.extract(
                    loads,
                    v,
                    &vdd_pads,
                    &gnd_pads,
                    g_via_stack,
                    g_gnd_pad,
                    v_supply,
                    &sites,
                    &conv_g,
                    &conv_f,
                    faults,
                    report,
                )
            },
        );
        let result = match answered {
            Ok(Some(sol)) => Ok(sol),
            Ok(None) => {
                vstack_obs::metrics::global().fault_sketch_fallbacks.inc();
                let guess = sketch.as_ref().map(|s| s.baseline_voltages());
                self.solve_with_conductances(
                    loads,
                    &sites,
                    &conv_g,
                    &conv_f,
                    faults,
                    guess.as_deref(),
                    scratch,
                )
            }
            Err(e) => Err(e),
        };
        if let Some(s) = sketch {
            scratch.put_sketch(s);
        }
        result
    }

    /// FNV-1a fingerprint of every value that shapes the stamped baseline
    /// system (open-loop): topology dimensions, conductances, converter
    /// design, supply voltage, and the per-core load currents.
    fn sketch_fingerprint(&self, loads: &StackLoads) -> u64 {
        use crate::params::LoadDistribution;
        let mut h = crate::sketch::FingerprintHasher::new();
        h.usize(2); // topology kind: voltage-stacked
        h.usize(self.n_layers);
        h.usize(self.grid.nx);
        h.usize(self.grid.ny);
        h.usize(self.topology.tsvs_per_core());
        h.usize(self.c4.vdd_count());
        h.usize(self.c4.gnd_count());
        h.usize(self.converters_per_core);
        h.usize(match self.reference {
            ConverterReference::BoundaryLadder => 0,
            ConverterReference::AdjacentRails => 1,
        });
        h.f64(self.converter.f_nom);
        h.f64(self.converter.r_series(self.converter.f_nom));
        h.f64(self.params.vdd);
        h.f64(self.params.c4_resistance_ohm);
        h.f64(self.params.package_r_per_pad_ohm);
        h.f64(self.params.tsv_resistance_ohm);
        h.f64(self.params.grid_segment_resistance_ohm());
        for layer in 0..self.n_layers {
            h.f64(self.params.layer_resistance_scale(layer));
        }
        h.usize(match self.params.load_distribution {
            LoadDistribution::Uniform => 0,
            LoadDistribution::PerBlock => 1,
        });
        for layer in 0..loads.n_layers() {
            for core in 0..loads.cores_per_layer() {
                h.f64(loads.core_current(layer, core));
            }
        }
        h.finish()
    }

    /// Builds a fault sketch with `base` as its baseline fault set:
    /// assembles and solves the open-loop baseline tightly, then registers
    /// every surviving through-via-stack rail, ground pad rail, and
    /// interface-TSV bundle as a candidate fault column.
    fn build_sketch(
        &self,
        loads: &StackLoads,
        base: FaultSet,
        sites: &[(usize, usize, usize, f64)],
        conv_g: &[f64],
        scratch: &mut SolveScratch,
    ) -> Result<crate::sketch::FaultSketch, PdnError> {
        let asm = self.assemble_with_conductances(loads, sites, conv_g, &base);
        let n = self.n_layers;
        let mut sk = crate::sketch::FaultSketch::build(
            self.sketch_fingerprint(loads),
            base.clone(),
            &asm.nb,
            asm.vdd_pads.clone(),
            asm.gnd_pads.clone(),
            (self.c4.vdd_count(), self.c4.gnd_count()),
            (n - 1, self.core_nodes.len()),
            scratch,
        )?;
        for &(ord, node) in &asm.vdd_pads {
            sk.register_vdd_pad(ord, node, asm.g_via_stack, -asm.g_via_stack * asm.v_supply);
        }
        for &(ord, node) in &asm.gnd_pads {
            sk.register_gnd_pad(ord, node, asm.g_gnd_pad);
        }
        let g_tsv = 1.0 / self.params.tsv_resistance_ohm;
        for layer in 0..n - 1 {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                if self.alive_tsvs(&base, layer, core) == 0.0 {
                    continue; // dead at base: extra faults are no-ops
                }
                let edges: Vec<(usize, usize)> = nodes
                    .iter()
                    .map(|&gn| (self.node(layer, 1, gn), self.node(layer + 1, 0, gn)))
                    .collect();
                sk.register_tsv_bundle(
                    layer,
                    core,
                    &edges,
                    g_tsv / nodes.len() as f64,
                    self.topology.tsvs_per_core(),
                );
            }
        }
        Ok(sk)
    }

    /// Solves a closed-loop-controlled stack by damped Picard iteration:
    /// each converter's switching frequency (hence `R_SERIES` and
    /// parasitic power) follows its own output current from the previous
    /// solve, until the per-converter conductances stabilize.
    ///
    /// Returns the converged solution together with the number of
    /// fixed-point iterations taken. Converges in a handful of iterations
    /// because `R_SSL(f)` is monotone in the load.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if an inner CG solve fails or the fixed
    /// point has not stabilized after 50 iterations.
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_closed_loop(
        &self,
        loads: &StackLoads,
    ) -> Result<(PdnSolution, usize), SolveError> {
        self.solve_closed_loop_faulted(loads, &FaultSet::new(), None)
            .map(|(f, it)| (f.solution, it))
            .map_err(PdnError::into_solve_error)
    }

    /// Fault-aware closed-loop solve: the Picard iteration of
    /// [`VstackPdn::solve_closed_loop`] with `faults` applied at every
    /// inner solve, each warm-started from the previous iterate.
    ///
    /// # Errors
    ///
    /// As for [`VstackPdn::solve_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_closed_loop_faulted(
        &self,
        loads: &StackLoads,
        faults: &FaultSet,
        guess: Option<&[f64]>,
    ) -> Result<(FaultedSolution, usize), PdnError> {
        self.solve_closed_loop_faulted_scratch(loads, faults, guess, &mut SolveScratch::new())
    }

    /// [`VstackPdn::solve_closed_loop_faulted`] with reusable cross-solve
    /// state. Every Picard iteration re-stamps the same sparsity pattern
    /// (only the converter conductances change), so the scratch turns the
    /// whole fixed-point loop into one symbolic build plus cheap value
    /// re-stamps.
    ///
    /// # Errors
    ///
    /// As for [`VstackPdn::solve_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_closed_loop_faulted_scratch(
        &self,
        loads: &StackLoads,
        faults: &FaultSet,
        guess: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<(FaultedSolution, usize), PdnError> {
        let sites = self.converter_sites();
        let mut f: Vec<f64> = vec![self.converter.f_nom; sites.len()];
        let mut g: Vec<f64> = f
            .iter()
            .map(|&fi| 1.0 / self.converter.r_series(fi))
            .collect();
        let mut last =
            self.solve_with_conductances(loads, &sites, &g, &f, faults, guess, scratch)?;
        // The k cells within one core on one rail are phases of a single
        // interleaved converter sharing one controller clock, so frequency
        // feedback acts on the group-average current. (Per-cell feedback
        // would be degenerate: with R_SSL ∝ 1/f ∝ 1/i, any current split
        // between parallel cells is a fixed point.)
        //
        // Convergence is judged on the physical outputs (worst IR drop and
        // parasitic power): the internal per-cell current distribution has
        // a slow drift mode that the outputs are insensitive to.
        let group = self.converters_per_core;
        for iteration in 1..=50 {
            for (gidx, currents) in last.solution.converter_currents.chunks(group).enumerate() {
                let i_mean = currents.iter().map(|i| i.abs()).sum::<f64>() / currents.len() as f64;
                let f_new = self.converter.control.frequency(
                    self.converter.f_nom,
                    i_mean,
                    self.converter.i_rated,
                );
                for k in gidx * group..gidx * group + currents.len() {
                    // Damping keeps the alternation between light-load and
                    // heavy-load impedance from limit-cycling.
                    f[k] = 0.5 * (f[k] + f_new);
                    g[k] = 1.0 / self.converter.r_series(f[k]);
                }
            }
            let next = self.solve_with_conductances(
                loads,
                &sites,
                &g,
                &f,
                faults,
                Some(&last.voltages),
                scratch,
            )?;
            let drop_change =
                (next.solution.max_ir_drop_frac - last.solution.max_ir_drop_frac).abs();
            let par_change = (next.solution.p_parasitic_w - last.solution.p_parasitic_w).abs()
                / last.solution.p_parasitic_w.max(f64::MIN_POSITIVE);
            last = next;
            if drop_change < 1e-5 && par_change < 1e-3 {
                return Ok((last, iteration));
            }
        }
        Err(PdnError::Solve(SolveError::NotConverged {
            iterations: 50,
            residual: f64::NAN,
        }))
    }

    /// The placed converter cells: `(out, top, bottom, alpha)` node
    /// tuples, ordered by rail, then core, then replica.
    fn converter_sites(&self) -> Vec<(usize, usize, usize, f64)> {
        let n = self.n_layers;
        let mut sites = Vec::new();
        for rail in 1..n {
            for core in 0..self.floorplan.core_count() {
                let positions = self
                    .floorplan
                    .uniform_positions_in_core(core, self.converters_per_core);
                for (x, y) in positions {
                    let (i, j) = self.grid.nearest(x, y);
                    let gn = self.grid.index(i, j);
                    let out = self.node(rail, 0, gn);
                    let (top, bottom, alpha) = match self.reference {
                        ConverterReference::BoundaryLadder => (
                            self.node(n - 1, 1, gn),
                            self.node(0, 0, gn),
                            rail as f64 / n as f64,
                        ),
                        ConverterReference::AdjacentRails => {
                            (self.node(rail, 1, gn), self.node(rail - 1, 0, gn), 0.5)
                        }
                    };
                    sites.push((out, top, bottom, alpha));
                }
            }
        }
        sites
    }

    /// Backward-Euler step response: the stack sits at the DC solution of
    /// `before`, the loads switch to `after` at `t = 0`, and per-layer
    /// decoupling capacitance (see
    /// [`crate::transient::PdnTransientConfig::decap_per_core_f`]) carries
    /// the charge while the rails re-settle through the converters and the
    /// through-via stacks.
    ///
    /// Converters use their nominal (open-loop) impedance — frequency
    /// modulation is far slower than the decap RC, so the open-loop
    /// impedance is the correct small-time model even for closed-loop
    /// designs.
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the DC or per-step CG solves.
    ///
    /// # Panics
    ///
    /// Panics if either load set does not match this PDN's layer/core
    /// counts, or the config is invalid.
    pub fn solve_transient_step(
        &self,
        before: &StackLoads,
        after: &StackLoads,
        config: &crate::transient::PdnTransientConfig,
    ) -> Result<crate::transient::StepResponse, SolveError> {
        use vstack_sparse::solver::{cg_with_guess_ws, CgOptions, SolveWorkspace};

        let steps = config.steps();
        assert!(
            config.decap_per_core_f.is_finite() && config.decap_per_core_f > 0.0,
            "decap must be positive"
        );
        let sites = self.converter_sites();
        let g_conv = vec![1.0 / self.converter.r_series(self.converter.f_nom); sites.len()];

        // Initial state: DC under the pre-step loads.
        let no_faults = FaultSet::new();
        let v0 = self
            .assemble_with_conductances(before, &sites, &g_conv, &no_faults)
            .nb
            .solve(None)?;

        // Post-step system plus the backward-Euler decap companion
        // conductances C/Δt between each layer's local supply/return pair.
        let mut asm = self.assemble_with_conductances(after, &sites, &g_conv, &no_faults);
        let mut decap_pairs: Vec<(usize, usize, f64)> = Vec::new();
        for layer in 0..self.n_layers {
            for nodes in &self.core_nodes {
                let c_node = config.decap_per_core_f / nodes.len() as f64;
                for &gn in nodes {
                    let a = self.node(layer, 1, gn);
                    let b = self.node(layer, 0, gn);
                    asm.nb.conductance(a, b, c_node / config.dt_s);
                    decap_pairs.push((a, b, c_node));
                }
            }
        }
        let a_t = asm.nb.to_matrix();
        let rhs_base = asm.nb.rhs().to_vec();

        let opts = CgOptions {
            tolerance: 1e-9,
            max_iterations: 50_000,
            ..CgOptions::default()
        };
        let mut v = v0.clone();
        let mut times_s = Vec::with_capacity(steps);
        let mut max_drop_series = Vec::with_capacity(steps);
        let mut rhs = vec![0.0; rhs_base.len()];
        // One workspace outside the time loop: every backward-Euler step
        // reuses the same Krylov vectors instead of reallocating them.
        let mut ws = SolveWorkspace::new();
        for step in 1..=steps {
            rhs.copy_from_slice(&rhs_base);
            for &(a, b, c) in &decap_pairs {
                let i_companion = (c / config.dt_s) * (v[a] - v[b]);
                rhs[a] += i_companion;
                rhs[b] -= i_companion;
            }
            v = cg_with_guess_ws(&a_t, &rhs, Some(&v), &opts, &mut ws)?.x;
            times_s.push(step as f64 * config.dt_s);
            max_drop_series.push(self.max_drop_of(&v));
        }

        Ok(crate::transient::StepResponse {
            times_s,
            max_drop_series,
            initial_drop: self.max_drop_of(&v0),
        })
    }

    /// Worst load-node IR-drop fraction for a node-voltage vector.
    fn max_drop_of(&self, v: &[f64]) -> f64 {
        let vdd_nom = self.params.vdd;
        let mut max_drop = f64::MIN;
        for layer in 0..self.n_layers {
            for nodes in &self.core_nodes {
                for &gn in nodes {
                    let local = v[self.node(layer, 1, gn)] - v[self.node(layer, 0, gn)];
                    max_drop = max_drop.max((vdd_nom - local) / vdd_nom);
                }
            }
        }
        max_drop
    }

    /// Surviving TSVs of the `(interface, core)` bundle.
    fn alive_tsvs(&self, faults: &FaultSet, interface: usize, core: usize) -> f64 {
        self.topology
            .tsvs_per_core()
            .saturating_sub(faults.failed_tsv_count(interface, core)) as f64
    }

    /// Assembles the full SPD network with explicit per-converter
    /// conductances (parallel to [`VstackPdn::converter_sites`]), skipping
    /// the conductors open-circuited by `faults`.
    fn assemble_with_conductances(
        &self,
        loads: &StackLoads,
        sites: &[(usize, usize, usize, f64)],
        conv_g: &[f64],
        faults: &FaultSet,
    ) -> AssembledVs {
        assert_eq!(loads.n_layers(), self.n_layers, "layer count mismatch");
        assert_eq!(
            loads.cores_per_layer(),
            self.floorplan.core_count(),
            "core count mismatch"
        );
        assert_eq!(sites.len(), conv_g.len(), "conductance count mismatch");
        let g_count = self.grid.count();
        let n_unknowns = 2 * self.n_layers * g_count;
        let mut nb = NetworkBuilder::new(n_unknowns);
        let seg_r = self.params.grid_segment_resistance_ohm();
        let n = self.n_layers;
        // Unknowns are 2·n stacked copies of the same nx×ny grid (ground
        // then supply net per layer); TSVs couple each layer's supply
        // plane (odd index) to the next layer's ground plane at exactly
        // the plane stride, which is the vertical coupling the stencil
        // operator models. Pads and converter stamps fall to its side-CSR.
        nb.set_stencil_descriptor(StencilDescriptor {
            nx: self.grid.nx,
            ny: self.grid.ny,
            planes: 2 * n,
            interfaces: (0..2 * n - 1).map(|p| p % 2 == 1).collect(),
        });
        let v_supply = n as f64 * self.params.vdd;

        // On-chip grids, with any per-layer resistance drift (thermal
        // resistivity / EM) applied. Values-only scaling: the pattern is
        // layer-independent, so SolveScratch re-stamps stay valid.
        for layer in 0..n {
            let layer_r = seg_r * self.params.layer_resistance_scale(layer);
            for net in 0..2 {
                nb.grid_laplacian(&self.grid, self.node(layer, net, 0), layer_r);
            }
        }

        // Ground pads: bottom layer's ground net → board 0 V.
        // Supply pads: top layer's supply net ← board N·Vdd through a
        // through-via stack crossing all N layers plus the pad itself.
        let g_gnd_pad = 1.0 / (self.params.c4_resistance_ohm + self.params.package_r_per_pad_ohm);
        let r_via_stack = self.params.c4_resistance_ohm
            + self.params.package_r_per_pad_ohm
            + n as f64 * self.params.tsv_resistance_ohm;
        let g_via_stack = 1.0 / r_via_stack;
        let mut vdd_pads = Vec::new();
        let mut gnd_pads = Vec::new();
        let (mut vdd_ord, mut gnd_ord) = (0usize, 0usize);
        for pad in self.c4.pads() {
            let (i, j) = self.grid.nearest(pad.x_mm, pad.y_mm);
            let gn = self.grid.index(i, j);
            match pad.net {
                PadNet::Vdd => {
                    if !faults.vdd_pad_failed(vdd_ord) {
                        let node = self.node(n - 1, 1, gn);
                        nb.conductance_to_rail(node, g_via_stack, v_supply);
                        vdd_pads.push((vdd_ord, node));
                    }
                    vdd_ord += 1;
                }
                PadNet::Gnd => {
                    if !faults.gnd_pad_failed(gnd_ord) {
                        let node = self.node(0, 0, gn);
                        nb.conductance_to_rail(node, g_gnd_pad, 0.0);
                        gnd_pads.push((gnd_ord, node));
                    }
                    gnd_ord += 1;
                }
                PadNet::Io => {}
            }
        }

        // Series TSVs: layer l's supply net and layer l+1's ground net
        // share rail l+1; the bundle's surviving power TSVs connect them.
        let g_tsv = 1.0 / self.params.tsv_resistance_ohm;
        for layer in 0..n - 1 {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let alive = self.alive_tsvs(faults, layer, core);
                if alive == 0.0 {
                    continue;
                }
                let per_node = alive / nodes.len() as f64;
                for &gn in nodes {
                    let lo = self.node(layer, 1, gn);
                    let hi = self.node(layer + 1, 0, gn);
                    nb.conductance(lo, hi, per_node * g_tsv);
                }
            }
        }

        // Loads: each layer's cores draw between its supply and ground
        // nets.
        for layer in 0..n {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let i_core = loads.core_current(layer, core);
                for (k, &gn) in nodes.iter().enumerate() {
                    let i_node = i_core * self.core_weights[core][k];
                    nb.current(self.node(layer, 1, gn), -i_node);
                    nb.current(self.node(layer, 0, gn), i_node);
                }
            }
        }

        // SC converter cells (paper §3.2), with their per-cell effective
        // conductances.
        for (&(out, top, bottom, alpha), &g) in sites.iter().zip(conv_g) {
            nb.converter_with_ratio(out, top, bottom, g, alpha);
        }

        AssembledVs {
            nb,
            vdd_pads,
            gnd_pads,
            g_via_stack,
            g_gnd_pad,
            v_supply,
        }
    }

    /// Assembles and solves the network with explicit per-converter
    /// conductances `conv_g` and switching frequencies `conv_f` (parallel
    /// to [`VstackPdn::converter_sites`]), with `faults` open-circuited
    /// and an optional warm-start `guess`.
    #[allow(clippy::too_many_arguments)]
    fn solve_with_conductances(
        &self,
        loads: &StackLoads,
        sites: &[(usize, usize, usize, f64)],
        conv_g: &[f64],
        conv_f: &[f64],
        faults: &FaultSet,
        guess: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        assert_eq!(sites.len(), conv_f.len(), "frequency count mismatch");
        let asm = self.assemble_with_conductances(loads, sites, conv_g, faults);
        let (v, report) = asm.nb.solve_scratch(guess, scratch)?;
        Ok(self.extract(
            loads,
            v,
            &asm.vdd_pads,
            &asm.gnd_pads,
            asm.g_via_stack,
            asm.g_gnd_pad,
            asm.v_supply,
            sites,
            conv_g,
            conv_f,
            faults,
            report,
        ))
    }

    /// Extracts the solution metrics from a solved voltage vector. The pad
    /// lists must be the pads *alive under `faults`* — the exact path
    /// passes the assembly's lists, the sketch path filters its baseline
    /// lists down ([`crate::sketch::FaultSketch::alive_pads`]).
    #[allow(clippy::too_many_arguments)]
    fn extract(
        &self,
        loads: &StackLoads,
        v: Vec<f64>,
        vdd_pads: &[(usize, usize)],
        gnd_pads: &[(usize, usize)],
        g_via_stack: f64,
        g_gnd_pad: f64,
        v_supply: f64,
        sites: &[(usize, usize, usize, f64)],
        conv_g: &[f64],
        conv_f: &[f64],
        faults: &FaultSet,
        report: vstack_sparse::SolveReport,
    ) -> FaultedSolution {
        let n = self.n_layers;
        let g_tsv = 1.0 / self.params.tsv_resistance_ohm;

        // --- Metrics ---
        let vdd_nom = self.params.vdd;
        let mut max_drop = f64::MIN;
        let mut worst_layer = 0;
        let mut per_layer_max_drop = vec![f64::MIN; self.n_layers];
        let mut drop_sum = 0.0;
        let mut drop_count = 0usize;
        let mut p_loads = 0.0;
        for layer in 0..n {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let i_core = loads.core_current(layer, core);
                for (k, &gn) in nodes.iter().enumerate() {
                    let i_node = i_core * self.core_weights[core][k];
                    let local = v[self.node(layer, 1, gn)] - v[self.node(layer, 0, gn)];
                    let drop = (vdd_nom - local) / vdd_nom;
                    if drop > max_drop {
                        max_drop = drop;
                        worst_layer = layer;
                    }
                    if drop > per_layer_max_drop[layer] {
                        per_layer_max_drop[layer] = drop;
                    }
                    drop_sum += drop;
                    drop_count += 1;
                    p_loads += i_node * local;
                }
            }
        }

        let mut vdd_c4 = ConductorCurrents::new();
        let mut tsv = ConductorCurrents::new();
        let mut vdd_pad_currents = Vec::with_capacity(vdd_pads.len());
        let mut p_input = 0.0;
        for &(ord, node) in vdd_pads {
            let i = g_via_stack * (v_supply - v[node]);
            vdd_c4.push(i, 1.0);
            vdd_pad_currents.push((ord, i));
            // The through-via stack adds N TSV segments per pad, all
            // carrying the pad current (paper §5.1: "we connect each Vdd C4
            // pad with only one TSV").
            tsv.push(i, n as f64);
            p_input += i * v_supply;
        }
        let mut gnd_c4 = ConductorCurrents::new();
        let mut gnd_pad_currents = Vec::with_capacity(gnd_pads.len());
        for &(ord, node) in gnd_pads {
            let i = g_gnd_pad * v[node];
            gnd_c4.push(i, 1.0);
            gnd_pad_currents.push((ord, i));
        }
        // Interface-TSV EM currents: per (interface, core) totals
        // distributed by the crowding model (grid-refinement independent).
        // Fully failed bundles carry nothing and are omitted.
        let mut tsv_groups = Vec::new();
        for layer in 0..n - 1 {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let alive = self.alive_tsvs(faults, layer, core);
                if alive == 0.0 {
                    continue;
                }
                let per_node = alive / nodes.len() as f64;
                let mut i_core = 0.0;
                for &gn in nodes {
                    let lo = self.node(layer, 1, gn);
                    let hi = self.node(layer + 1, 0, gn);
                    i_core += (v[lo] - v[hi]).abs() * per_node * g_tsv;
                }
                tsv.push_crowded(
                    i_core,
                    alive,
                    self.params.tsv_hot_conductors_per_core,
                    self.params.tsv_crowding_spread,
                );
                tsv_groups.push(TsvGroupCurrent {
                    interface: layer,
                    core,
                    current_per_tsv_a: i_core / alive,
                    alive,
                });
            }
        }

        // Converter currents, overload count and parasitic power. Each
        // ladder stage swings one Vdd regardless of the sensed reference;
        // parasitic power follows each cell's actual switching frequency.
        let mut converter_currents = Vec::with_capacity(sites.len());
        let mut overloaded = 0usize;
        let mut p_par = 0.0;
        for ((&(out, top, bottom, alpha), &g), &f) in sites.iter().zip(conv_g).zip(conv_f) {
            let v_ideal = alpha * v[top] + (1.0 - alpha) * v[bottom];
            let i_out = (v_ideal - v[out]) * g;
            if self.converter.is_overloaded(i_out) {
                overloaded += 1;
            }
            p_par += self.converter.parasitic_power(f, vdd_nom);
            converter_currents.push(i_out);
        }

        FaultedSolution {
            solution: PdnSolution {
                max_ir_drop_frac: max_drop,
                mean_ir_drop_frac: drop_sum / drop_count as f64,
                worst_layer,
                per_layer_max_drop,
                vdd_c4,
                gnd_c4,
                tsv,
                converter_currents,
                overloaded_converters: overloaded,
                p_loads_w: p_loads,
                p_input_w: p_input,
                p_parasitic_w: p_par,
            },
            report,
            voltages: v,
            vdd_pad_currents,
            gnd_pad_currents,
            tsv_groups,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vstack_power::workload::ImbalancePattern;

    fn quick_params() -> PdnParams {
        let mut p = PdnParams::paper_defaults();
        p.grid_refinement = 1;
        p
    }

    fn vs_pdn(p: &PdnParams, layers: usize, conv_per_core: usize) -> VstackPdn {
        VstackPdn::new(
            p,
            layers,
            TsvTopology::Few,
            0.25,
            ScConverter::paper_28nm(),
            conv_per_core,
        )
    }

    #[test]
    fn balanced_stack_has_small_ir_drop() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 4);
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.0));
        let sol = pdn.solve(&loads).unwrap();
        assert!(
            sol.max_ir_drop_frac < 0.02,
            "balanced V-S should be quiet, got {}",
            sol.max_ir_drop_frac
        );
        assert!(!sol.has_overload());
    }

    #[test]
    fn imbalance_raises_ir_drop() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 8);
        let quiet = pdn
            .solve(&StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.0)))
            .unwrap();
        let noisy = pdn
            .solve(&StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.8)))
            .unwrap();
        assert!(noisy.max_ir_drop_frac > quiet.max_ir_drop_frac);
    }

    #[test]
    fn more_converters_reduce_noise() {
        let p = quick_params();
        let pattern = ImbalancePattern::new(0.6);
        let loads = StackLoads::interleaved(&p, 4, &pattern);
        let few = vs_pdn(&p, 4, 2).solve(&loads).unwrap();
        let many = vs_pdn(&p, 4, 8).solve(&loads).unwrap();
        assert!(many.max_ir_drop_frac < few.max_ir_drop_frac);
    }

    #[test]
    fn converter_current_tracks_mismatch() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 4);
        // 60% imbalance: per-core dynamic mismatch = 0.6 · 0.38 A = 0.228 A
        // shared by 4 converters ⇒ ≈57 mA each.
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.6));
        let sol = pdn.solve(&loads).unwrap();
        let mean_abs: f64 = sol.converter_currents.iter().map(|i| i.abs()).sum::<f64>()
            / sol.converter_currents.len() as f64;
        assert!(
            (mean_abs - 0.057).abs() < 0.02,
            "expected ≈57 mA per converter, got {mean_abs}"
        );
    }

    #[test]
    fn overload_detected_at_extreme_imbalance() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 2);
        // 100% imbalance with 2 converters/core ⇒ 190 mA per converter.
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(1.0));
        let sol = pdn.solve(&loads).unwrap();
        assert!(sol.has_overload());
    }

    #[test]
    fn pad_current_independent_of_layer_count() {
        // The V-S scalability claim: per-pad current stays ≈I_layer/N_pads
        // regardless of stacking depth.
        let p = quick_params();
        let balanced = ImbalancePattern::new(0.0);
        let i2 = vs_pdn(&p, 2, 4)
            .solve(&StackLoads::interleaved(&p, 2, &balanced))
            .unwrap()
            .vdd_c4
            .mean_current();
        let i8 = vs_pdn(&p, 8, 4)
            .solve(&StackLoads::interleaved(&p, 8, &balanced))
            .unwrap()
            .vdd_c4
            .mean_current();
        assert!(
            (i8 - i2).abs() / i2 < 0.05,
            "pad current must not scale with layers: {i2} vs {i8}"
        );
    }

    #[test]
    fn energy_accounting_consistent() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 4);
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.3));
        let sol = pdn.solve(&loads).unwrap();
        assert!(sol.p_input_w > sol.p_loads_w, "losses must be positive");
        let eff = sol.efficiency();
        assert!(eff > 0.8 && eff < 1.0, "efficiency {eff}");
    }

    #[test]
    fn intermediate_rails_sit_at_integer_vdd() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 4);
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.0));
        let sol = pdn.solve(&loads).unwrap();
        // With balanced loads every layer sees ≈1 V; mean drop small.
        assert!(sol.mean_ir_drop_frac.abs() < 0.01);
    }

    #[test]
    fn closed_loop_converges_and_reports_iterations() {
        let p = quick_params();
        let pdn = VstackPdn::new(
            &p,
            4,
            TsvTopology::Few,
            0.25,
            ScConverter::paper_28nm_closed_loop(),
            4,
        );
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.5));
        let (sol, iterations) = pdn.solve_closed_loop(&loads).unwrap();
        assert!((1..50).contains(&iterations), "took {iterations}");
        assert!(sol.max_ir_drop_frac > 0.0);
    }

    #[test]
    fn closed_loop_cuts_parasitic_power_at_low_imbalance() {
        // The whole point of frequency modulation: lightly loaded
        // converters slow their clocks and stop burning switching power.
        let p = quick_params();
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.1));
        let open = VstackPdn::new(&p, 4, TsvTopology::Few, 0.25, ScConverter::paper_28nm(), 8)
            .solve(&loads)
            .unwrap();
        let closed = VstackPdn::new(
            &p,
            4,
            TsvTopology::Few,
            0.25,
            ScConverter::paper_28nm_closed_loop(),
            8,
        )
        .solve(&loads)
        .unwrap();
        assert!(
            closed.p_parasitic_w < 0.25 * open.p_parasitic_w,
            "closed {} vs open {}",
            closed.p_parasitic_w,
            open.p_parasitic_w
        );
        assert!(closed.efficiency() > open.efficiency());
    }

    #[test]
    fn closed_loop_dispatches_through_solve() {
        let p = quick_params();
        let pdn = VstackPdn::new(
            &p,
            4,
            TsvTopology::Few,
            0.25,
            ScConverter::paper_28nm_closed_loop(),
            4,
        );
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.5));
        let via_solve = pdn.solve(&loads).unwrap();
        let (direct, _) = pdn.solve_closed_loop(&loads).unwrap();
        assert!((via_solve.max_ir_drop_frac - direct.max_ir_drop_frac).abs() < 1e-12);
    }

    #[test]
    fn transient_step_settles_to_dc() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 8);
        let before = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.0));
        let after = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.65));
        let cfg = crate::transient::PdnTransientConfig::default();
        let resp = pdn.solve_transient_step(&before, &after, &cfg).unwrap();
        // Settles to the post-step DC value.
        let dc = pdn.solve(&after).unwrap().max_ir_drop_frac;
        assert!(
            (resp.final_drop() - dc).abs() < 0.1 * dc,
            "transient end {} vs DC {dc}",
            resp.final_drop()
        );
        // The step moves the rail, so the excursion exceeds the start.
        assert!(resp.peak_drop() > resp.initial_drop);
    }

    #[test]
    fn bigger_decap_smaller_overshoot() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 8);
        let before = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.0));
        let after = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.8));
        let small = crate::transient::PdnTransientConfig {
            decap_per_core_f: 5e-9,
            ..Default::default()
        };
        let large = crate::transient::PdnTransientConfig {
            decap_per_core_f: 100e-9,
            ..Default::default()
        };
        let r_small = pdn.solve_transient_step(&before, &after, &small).unwrap();
        let r_large = pdn.solve_transient_step(&before, &after, &large).unwrap();
        // More decap slows the rail excursion: at any early sample the
        // large-decap response has moved less from the initial state.
        let early = 10; // 5 ns in
        let d_small = r_small.max_drop_series[early] - r_small.initial_drop;
        let d_large = r_large.max_drop_series[early] - r_large.initial_drop;
        assert!(
            d_large < d_small,
            "decap should slow the excursion: {d_large} vs {d_small}"
        );
    }

    #[test]
    fn transient_of_null_step_is_flat() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 2, 4);
        let loads = StackLoads::interleaved(&p, 2, &ImbalancePattern::new(0.3));
        let cfg = crate::transient::PdnTransientConfig {
            duration_s: 20e-9,
            ..Default::default()
        };
        let resp = pdn.solve_transient_step(&loads, &loads, &cfg).unwrap();
        for d in &resp.max_drop_series {
            assert!(
                (d - resp.initial_drop).abs() < 1e-4,
                "null step must not move the rails"
            );
        }
    }

    #[test]
    #[should_panic(expected = "at least two layers")]
    fn single_layer_stack_rejected() {
        let p = quick_params();
        vs_pdn(&p, 1, 4);
    }

    #[test]
    fn killed_via_stack_shifts_current_to_survivors() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 4);
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.2));
        let healthy = pdn
            .solve_faulted(&loads, &crate::fault::FaultSet::new(), None)
            .unwrap();
        let &(victim, _) = healthy
            .vdd_pad_currents
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let mut faults = crate::fault::FaultSet::new();
        faults.fail_vdd_pad(victim);
        let wounded = pdn
            .solve_faulted(&loads, &faults, Some(&healthy.voltages))
            .unwrap();
        assert_eq!(
            wounded.vdd_pad_currents.len(),
            healthy.vdd_pad_currents.len() - 1
        );
        let sum = |c: &[(usize, f64)]| c.iter().map(|&(_, i)| i).sum::<f64>();
        let (i_h, i_w) = (
            sum(&healthy.vdd_pad_currents),
            sum(&wounded.vdd_pad_currents),
        );
        assert!((i_h - i_w).abs() / i_h < 1e-2, "{i_h} vs {i_w}");
    }

    #[test]
    fn interface_tsv_faults_raise_survivor_stress() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 4, 4);
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.4));
        let healthy = pdn
            .solve_faulted(&loads, &crate::fault::FaultSet::new(), None)
            .unwrap();
        let mut faults = crate::fault::FaultSet::new();
        let n_kill = TsvTopology::Few.tsvs_per_core() * 3 / 4;
        faults.fail_tsvs(1, 0, n_kill);
        let wounded = pdn.solve_faulted(&loads, &faults, None).unwrap();
        let group = |f: &crate::fault::FaultedSolution| {
            *f.tsv_groups
                .iter()
                .find(|g| g.interface == 1 && g.core == 0)
                .unwrap()
        };
        let (gh, gw) = (group(&healthy), group(&wounded));
        assert_eq!(gw.alive, gh.alive - n_kill as f64);
        assert!(gw.current_per_tsv_a > gh.current_per_tsv_a);
    }

    #[test]
    fn empty_fault_set_matches_plain_solve() {
        let p = quick_params();
        let pdn = vs_pdn(&p, 2, 4);
        let loads = StackLoads::interleaved(&p, 2, &ImbalancePattern::new(0.3));
        let plain = pdn.solve(&loads).unwrap();
        let faulted = pdn
            .solve_faulted(&loads, &crate::fault::FaultSet::new(), None)
            .unwrap();
        assert!((plain.max_ir_drop_frac - faulted.solution.max_ir_drop_frac).abs() < 1e-12);
        assert!(!faulted.report.was_rescued(), "{}", faulted.report.trail());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_for_both_control_policies() {
        let p = quick_params();
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.5));
        for converter in [
            ScConverter::paper_28nm(),
            ScConverter::paper_28nm_closed_loop(),
        ] {
            let pdn = VstackPdn::new(&p, 4, TsvTopology::Few, 0.25, converter, 4);
            let mut scratch = SolveScratch::new();
            let mut faults = crate::fault::FaultSet::new();
            for step in 0..2 {
                if step > 0 {
                    faults.fail_vdd_pad(0);
                    faults.fail_tsvs(1, 0, 2);
                }
                let fresh = pdn.solve_faulted(&loads, &faults, None).unwrap();
                let reused = pdn
                    .solve_faulted_scratch(&loads, &faults, None, &mut scratch)
                    .unwrap();
                assert_eq!(fresh.voltages, reused.voltages, "step {step}");
                assert_eq!(fresh.report.trail(), reused.report.trail());
            }
        }
    }

    #[test]
    fn closed_loop_threads_faults() {
        let p = quick_params();
        let pdn = VstackPdn::new(
            &p,
            4,
            TsvTopology::Few,
            0.25,
            ScConverter::paper_28nm_closed_loop(),
            4,
        );
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(0.5));
        let mut faults = crate::fault::FaultSet::new();
        faults.fail_vdd_pad(0);
        faults.fail_vdd_pad(1);
        let (sol, iterations) = pdn
            .solve_closed_loop_faulted(&loads, &faults, None)
            .unwrap();
        assert!((1..50).contains(&iterations));
        assert!(!sol.vdd_pad_currents.iter().any(|&(o, _)| o < 2));
    }
}
