//! Load descriptions for a 3D stack: how much current each core of each
//! layer draws.

use vstack_power::mcpat::ActivityVector;
use vstack_power::workload::{ImbalancePattern, PowerSample};

use crate::params::PdnParams;

/// Per-layer, per-core load currents for one operating scenario.
///
/// Loads are ideal current sources (paper §3.2): current is power at the
/// nominal supply voltage, independent of the local IR drop.
#[derive(Debug, Clone, PartialEq)]
pub struct StackLoads {
    /// `[layer][core]` load currents in amperes. Layer 0 is the bottom.
    currents: Vec<Vec<f64>>,
}

impl StackLoads {
    /// Builds loads from explicit per-layer, per-core currents.
    ///
    /// # Panics
    ///
    /// Panics if `currents` is empty, ragged, or contains non-finite or
    /// negative values.
    pub fn from_currents(currents: Vec<Vec<f64>>) -> Self {
        assert!(!currents.is_empty(), "need at least one layer");
        let cores = currents[0].len();
        assert!(cores > 0, "need at least one core");
        for layer in &currents {
            assert_eq!(layer.len(), cores, "ragged per-layer core counts");
            for &c in layer {
                assert!(c.is_finite() && c >= 0.0, "invalid load current {c}");
            }
        }
        StackLoads { currents }
    }

    /// Every core on every layer fully active (the regular PDN's worst
    /// case, used by the EM studies and the Fig 6 reference lines).
    pub fn uniform_peak(params: &PdnParams, n_layers: usize) -> Self {
        let i = params.core.peak_power().current_a(params.vdd);
        StackLoads::from_currents(vec![vec![i; params.cores_per_layer()]; n_layers])
    }

    /// The interleaved high/low imbalance pattern of Figs 6 and 8.
    pub fn interleaved(params: &PdnParams, n_layers: usize, pattern: &ImbalancePattern) -> Self {
        let currents = (0..n_layers)
            .map(|l| {
                let p = pattern.layer_core_power(&params.core, l);
                vec![p.current_a(params.vdd); params.cores_per_layer()]
            })
            .collect();
        StackLoads::from_currents(currents)
    }

    /// Loads where every core of layer `l` runs workload sample
    /// `samples[l]` (used for application-driven studies, e.g. scheduling
    /// different Parsec samples onto different layers).
    ///
    /// # Panics
    ///
    /// Panics if `samples` is empty.
    pub fn from_samples(params: &PdnParams, samples: &[PowerSample]) -> Self {
        assert!(!samples.is_empty(), "need at least one layer sample");
        let currents = samples
            .iter()
            .map(|s| vec![s.core_power.current_a(params.vdd); params.cores_per_layer()])
            .collect();
        StackLoads::from_currents(currents)
    }

    /// Loads from explicit per-layer uniform activities.
    ///
    /// # Panics
    ///
    /// Panics if `activities` is empty or any activity is outside `[0,1]`.
    pub fn from_activities(params: &PdnParams, activities: &[f64]) -> Self {
        assert!(!activities.is_empty(), "need at least one layer");
        let currents = activities
            .iter()
            .map(|&a| {
                let p = params.core.power(&ActivityVector::uniform(a));
                vec![p.current_a(params.vdd); params.cores_per_layer()]
            })
            .collect();
        StackLoads::from_currents(currents)
    }

    /// Number of layers.
    pub fn n_layers(&self) -> usize {
        self.currents.len()
    }

    /// Number of cores per layer.
    pub fn cores_per_layer(&self) -> usize {
        self.currents[0].len()
    }

    /// Current of one core, in amperes.
    ///
    /// # Panics
    ///
    /// Panics if indices are out of range.
    pub fn core_current(&self, layer: usize, core: usize) -> f64 {
        self.currents[layer][core]
    }

    /// Total current of one layer.
    pub fn layer_current(&self, layer: usize) -> f64 {
        self.currents[layer].iter().sum()
    }

    /// Total current of the whole stack.
    pub fn total_current(&self) -> f64 {
        (0..self.n_layers()).map(|l| self.layer_current(l)).sum()
    }

    /// The largest per-layer current (the series current a V-S stack must
    /// sustain).
    pub fn max_layer_current(&self) -> f64 {
        (0..self.n_layers())
            .map(|l| self.layer_current(l))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_peak_matches_paper_layer_power() {
        let p = PdnParams::paper_defaults();
        let loads = StackLoads::uniform_peak(&p, 4);
        // 7.6 A per layer at 1 V.
        assert!((loads.layer_current(0) - 7.6).abs() < 1e-9);
        assert!((loads.total_current() - 4.0 * 7.6).abs() < 1e-9);
    }

    #[test]
    fn interleaved_alternates() {
        let p = PdnParams::paper_defaults();
        let loads = StackLoads::interleaved(&p, 4, &ImbalancePattern::new(1.0));
        assert!(loads.layer_current(0) > loads.layer_current(1));
        assert!((loads.layer_current(0) - loads.layer_current(2)).abs() < 1e-12);
        // Fully imbalanced low layer draws only leakage (20% of 7.6 W).
        assert!((loads.layer_current(1) - 7.6 * 0.2).abs() < 1e-9);
    }

    #[test]
    fn zero_imbalance_is_uniform() {
        let p = PdnParams::paper_defaults();
        let a = StackLoads::interleaved(&p, 2, &ImbalancePattern::new(0.0));
        let b = StackLoads::uniform_peak(&p, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn activities_drive_currents() {
        let p = PdnParams::paper_defaults();
        let loads = StackLoads::from_activities(&p, &[1.0, 0.0]);
        assert!(loads.layer_current(0) > loads.layer_current(1));
        assert_eq!(loads.max_layer_current(), loads.layer_current(0));
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_layers_rejected() {
        StackLoads::from_currents(vec![vec![1.0, 2.0], vec![1.0]]);
    }

    #[test]
    #[should_panic(expected = "invalid load current")]
    fn negative_current_rejected() {
        StackLoads::from_currents(vec![vec![-1.0]]);
    }
}
