//! Structured errors for PDN assembly and solving.

use vstack_sparse::SolveError;

/// Error returned by the fault-aware PDN solve paths.
///
/// The interesting variant is [`PdnError::Disconnected`]: once enough C4
/// pads or TSVs have been open-circuited, part of the grid loses every
/// path to a board rail. The conductance matrix is then singular and an
/// unguarded iterative solve would fail with an opaque
/// [`SolveError::Breakdown`] (or, worse, "converge" to garbage). The
/// fault-aware paths detect the floating subgrid structurally — by
/// breadth-first search from the rail-tied nodes — **before** solving, and
/// report it as a first-class outcome, which is what the wearout
/// experiment treats as end-of-life.
#[derive(Debug, Clone, PartialEq)]
pub enum PdnError {
    /// Part of the network has no conductive path to any board rail.
    Disconnected {
        /// How many unknown nodes are floating.
        floating_nodes: usize,
        /// One floating node's flat unknown index (for diagnostics).
        example_node: usize,
    },
    /// The underlying sparse solve failed even after the escalation
    /// ladder of [`vstack_sparse::solve_robust`].
    Solve(SolveError),
}

impl core::fmt::Display for PdnError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PdnError::Disconnected {
                floating_nodes,
                example_node,
            } => write!(
                f,
                "pdn is disconnected: {floating_nodes} node(s) have no path \
                 to any board rail (e.g. unknown {example_node})"
            ),
            PdnError::Solve(e) => write!(f, "pdn solve failed: {e}"),
        }
    }
}

impl std::error::Error for PdnError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PdnError::Solve(e) => Some(e),
            PdnError::Disconnected { .. } => None,
        }
    }
}

impl From<SolveError> for PdnError {
    fn from(e: SolveError) -> Self {
        PdnError::Solve(e)
    }
}

impl PdnError {
    /// Lossy conversion for the legacy [`SolveError`]-returning solve
    /// entry points: a structurally disconnected network is reported the
    /// way it historically surfaced — as a solve that cannot converge.
    pub fn into_solve_error(self) -> SolveError {
        match self {
            PdnError::Solve(e) => e,
            PdnError::Disconnected { .. } => SolveError::NotConverged {
                iterations: 0,
                residual: f64::INFINITY,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_floating_count() {
        let e = PdnError::Disconnected {
            floating_nodes: 42,
            example_node: 7,
        };
        let s = e.to_string();
        assert!(s.contains("42") && s.contains("disconnected"), "{s}");
    }

    #[test]
    fn from_solve_error_round_trips() {
        let inner = SolveError::Breakdown { iterations: 3 };
        let e = PdnError::from(inner.clone());
        assert_eq!(e.clone().into_solve_error(), inner);
        assert!(e.to_string().contains("solve failed"));
    }

    #[test]
    fn disconnected_maps_to_not_converged() {
        let e = PdnError::Disconnected {
            floating_nodes: 1,
            example_node: 0,
        };
        match e.into_solve_error() {
            SolveError::NotConverged { residual, .. } => assert!(residual.is_infinite()),
            other => panic!("unexpected {other:?}"),
        }
    }
}
