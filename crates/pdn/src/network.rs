//! Electrical-network assembly: grid geometry, SPD stamping and the
//! resilient solve path shared by the regular and voltage-stacked
//! topologies.

use vstack_sparse::{
    solve_robust_operator_ws, AmgHierarchy, AmgHierarchyF32, CancelToken, CsrMatrix, RobustOptions,
    SolveError, SolveReport, SolveWorkspace, StencilDescriptor, StencilOperator, TripletMatrix,
};

use crate::error::PdnError;
use crate::params::PdnParams;

/// Geometry of one on-chip power grid (one metal net on one layer).
///
/// Nodes sit on a uniform `nx × ny` lattice spanning the die.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GridSpec {
    /// Nodes along x.
    pub nx: usize,
    /// Nodes along y.
    pub ny: usize,
    /// Node spacing along x in mm.
    pub dx_mm: f64,
    /// Node spacing along y in mm.
    pub dy_mm: f64,
}

impl GridSpec {
    /// Builds the modeling grid for the chip described by `params`.
    pub fn from_params(params: &PdnParams) -> Self {
        let fp = params.floorplan();
        let pitch = params.model_pitch_mm();
        let nx = ((fp.chip_width_mm() / pitch).round() as usize).max(2) + 1;
        let ny = ((fp.chip_height_mm() / pitch).round() as usize).max(2) + 1;
        GridSpec {
            nx,
            ny,
            dx_mm: fp.chip_width_mm() / (nx - 1) as f64,
            dy_mm: fp.chip_height_mm() / (ny - 1) as f64,
        }
    }

    /// Number of nodes in the grid.
    pub fn count(&self) -> usize {
        self.nx * self.ny
    }

    /// Flat index of node `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn index(&self, i: usize, j: usize) -> usize {
        assert!(i < self.nx && j < self.ny, "grid index out of range");
        j * self.nx + i
    }

    /// Physical position of node `(i, j)` in mm.
    pub fn position(&self, i: usize, j: usize) -> (f64, f64) {
        (i as f64 * self.dx_mm, j as f64 * self.dy_mm)
    }

    /// Nearest node to a physical position (clamped to the die).
    pub fn nearest(&self, x_mm: f64, y_mm: f64) -> (usize, usize) {
        let i = (x_mm / self.dx_mm).round().clamp(0.0, (self.nx - 1) as f64) as usize;
        let j = (y_mm / self.dy_mm).round().clamp(0.0, (self.ny - 1) as f64) as usize;
        (i, j)
    }
}

/// Reusable cross-solve state for repeated network solves.
///
/// Wearout loops and parameter sweeps solve hundreds of systems that share
/// one sparsity pattern (fault injection only *removes* stamped conductors,
/// leaving explicit zeros). `SolveScratch` caches the last solve's symbolic
/// CSR structure and the iterative solver's working vectors so re-solves
/// skip both the symbolic triplet→CSR rebuild and the per-call vector
/// allocations. Feed it to [`NetworkBuilder::solve_scratch`]; a pattern
/// change (different unknowns or new structural nonzeros) is detected and
/// handled by falling back to a full rebuild, so reuse is always safe.
///
/// Results are bit-identical to the scratch-free path: value re-stamping
/// replays the same triplet insertion order over the same compacted
/// structure, and the workspace vectors are zeroed before use. One
/// caveat for systems at or above [`NetworkBuilder::AMG_MIN_UNKNOWNS`]:
/// the cached AMG hierarchy is *frozen* per sparsity pattern, so after a
/// value-changing re-stamp a reused scratch preconditions with the
/// original values' hierarchy while a fresh solve would rebuild from the
/// current ones. Both paths converge to the same tolerance (the report's
/// `setup_us`/iteration counts differ, not correctness); re-solves of
/// *unchanged* values remain exactly bit-identical.
#[derive(Debug, Default)]
pub struct SolveScratch {
    /// Cached CSR matrix from the previous solve; its structure is reused
    /// when the new stamping fits the stored sparsity pattern.
    pattern: Option<CsrMatrix>,
    /// Reusable Krylov working vectors for the escalation ladder.
    workspace: SolveWorkspace,
    /// Cached AMG hierarchy for systems at or above
    /// [`NetworkBuilder::AMG_MIN_UNKNOWNS`]; built on the first large
    /// solve and reused (frozen) until the sparsity pattern changes, so
    /// fault/sweep/warm-start re-solves pay multigrid setup once. A
    /// frozen hierarchy is still a valid SPD preconditioner after
    /// value-only re-stamps — CG converges against the *current* matrix;
    /// only the rung's iteration count drifts with the values.
    amg: Option<AmgHierarchy>,
    /// f32 mirror of the cached hierarchy, powering the mixed-precision
    /// rung. Lives and dies with [`SolveScratch::amg`]: cleared on every
    /// pattern change, converted lazily on the first mixed solve.
    amg_f32: Option<AmgHierarchyF32>,
    /// Matrix-free stencil operator extracted from the assembled CSR when
    /// the builder carries a [`StencilDescriptor`]. Rebuilt on pattern
    /// changes; on value-only re-stamps only its values are refreshed
    /// (same classification, bit-identical applies).
    stencil: Option<StencilOperator>,
    /// Cooperative cancellation token handed to the escalation ladder of
    /// every solve run through this scratch. Defaults to
    /// [`CancelToken::never`]; serving tiers install a per-request token
    /// (deadline + shutdown flag) with [`SolveScratch::set_cancel`].
    cancel: CancelToken,
    /// Lazily-built Sherman–Morrison–Woodbury fault sketch
    /// ([`crate::sketch::FaultSketch`]) answering small-k [`crate::FaultSet`]
    /// queries without a fresh ladder solve. Owned here so wearout loops and
    /// the serving tier inherit it with the rest of the cross-solve state;
    /// it carries its own value fingerprint (validity is *not* tied to
    /// [`SolveScratch::pattern`], which holds the last — possibly faulted —
    /// stamping) and is dropped on structural pattern changes.
    sketch: Option<crate::sketch::FaultSketch>,
}

impl SolveScratch {
    /// Creates an empty scratch; the first solve through it populates the
    /// pattern cache and sizes the workspace.
    pub fn new() -> Self {
        SolveScratch::default()
    }

    /// Installs the cancellation token polled between escalation-ladder
    /// rungs of subsequent solves (see [`vstack_sparse::CancelToken`]).
    pub fn set_cancel(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Moves the fault sketch out of the scratch. The sketched solve paths
    /// *take* the sketch before running (so a fallback exact solve — which
    /// may rebuild the pattern and clear this slot — cannot wipe it) and
    /// put it back when done.
    pub(crate) fn take_sketch(&mut self) -> Option<crate::sketch::FaultSketch> {
        self.sketch.take()
    }

    /// Returns the fault sketch to the scratch (see
    /// [`SolveScratch::take_sketch`]).
    pub(crate) fn put_sketch(&mut self, sketch: crate::sketch::FaultSketch) {
        self.sketch = Some(sketch);
    }

    /// The reusable Krylov workspace, for solves the sketch runs itself
    /// (baseline and column solves against its own cached matrix).
    pub(crate) fn workspace_mut(&mut self) -> &mut SolveWorkspace {
        &mut self.workspace
    }

    /// The installed cancellation token (cloned into sketch-run solves).
    pub(crate) fn cancel_token(&self) -> &CancelToken {
        &self.cancel
    }
}

/// Incremental builder for the SPD nodal system `G v = i`.
///
/// Supports the four stamp kinds every PDN variant needs: node-to-node
/// conductances, Dirichlet ties to fixed external rails, current
/// injections, and the rank-1 PSD switched-capacitor converter stamp.
#[derive(Debug, Clone)]
pub struct NetworkBuilder {
    matrix: TripletMatrix,
    rhs: Vec<f64>,
    /// Nodes tied to an external rail via [`NetworkBuilder::conductance_to_rail`]
    /// — the Dirichlet anchors every other node must reach for the system
    /// to be non-singular.
    rail_nodes: Vec<bool>,
    /// Regular-grid shape of the stamped system, when the topology has
    /// one. Lets large solves extract a matrix-free [`StencilOperator`]
    /// for the mixed-precision hot path; `None` keeps everything on CSR.
    stencil_desc: Option<StencilDescriptor>,
}

impl NetworkBuilder {
    /// Creates a builder for `n` unknown node voltages.
    pub fn new(n: usize) -> Self {
        NetworkBuilder {
            matrix: TripletMatrix::with_capacity(n, n, 8 * n),
            rhs: vec![0.0; n],
            rail_nodes: vec![false; n],
            stencil_desc: None,
        }
    }

    /// Declares the regular-grid shape of this network so large solves can
    /// extract a matrix-free [`StencilOperator`] from the assembled CSR.
    /// `desc.unknowns()` must equal the builder's unknown count; rows that
    /// do not match the stencil pattern (pads, converters) are handled by
    /// the operator's side-CSR, so declaring the shape is always safe.
    ///
    /// # Panics
    ///
    /// Panics if `desc.unknowns()` differs from [`NetworkBuilder::len`].
    pub fn set_stencil_descriptor(&mut self, desc: StencilDescriptor) {
        assert_eq!(
            desc.unknowns(),
            self.rhs.len(),
            "stencil descriptor does not cover the unknowns"
        );
        self.stencil_desc = Some(desc);
    }

    /// Number of unknowns.
    pub fn len(&self) -> usize {
        self.rhs.len()
    }

    /// Whether the network has no unknowns.
    pub fn is_empty(&self) -> bool {
        self.rhs.is_empty()
    }

    /// Conductance `g` between unknown nodes `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not finite and positive or an index is out of
    /// range.
    pub fn conductance(&mut self, a: usize, b: usize, g: f64) {
        assert!(g.is_finite() && g > 0.0, "conductance must be positive");
        self.matrix.stamp_conductance(Some(a), Some(b), g);
    }

    /// Conductance `g` from node `a` to an external rail fixed at
    /// `v_rail` volts (Dirichlet elimination: the rail is not an unknown).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not finite and positive.
    pub fn conductance_to_rail(&mut self, a: usize, g: f64, v_rail: f64) {
        assert!(g.is_finite() && g > 0.0, "conductance must be positive");
        self.matrix.stamp_conductance(Some(a), None, g);
        self.rhs[a] += g * v_rail;
        self.rail_nodes[a] = true;
    }

    /// Injects `amps` into node `a` (negative extracts).
    pub fn current(&mut self, a: usize, amps: f64) {
        assert!(amps.is_finite(), "current must be finite");
        self.rhs[a] += amps;
    }

    /// The SC-converter stamp: an ideal `(V_top + V_bottom)/2` source
    /// behind series conductance `g = 1/R_SERIES` driving node `out`.
    ///
    /// Norton analysis gives the symmetric rank-1 PSD contribution
    /// `g·u·uᵀ` with `u = (+1, −½, −½)` over `(out, top, bottom)`, which
    /// keeps the overall system SPD (see crate docs).
    ///
    /// # Panics
    ///
    /// Panics if `g` is not finite and positive, or the three nodes are
    /// not distinct.
    pub fn converter(&mut self, out: usize, top: usize, bottom: usize, g: f64) {
        self.converter_with_ratio(out, top, bottom, g, 0.5);
    }

    /// Generalized converter stamp: an ideal source
    /// `V_ideal = α·V_top + (1−α)·V_bottom` behind conductance `g`
    /// driving `out`, drawing the α/(1−α) split of its output current from
    /// the sensed rails (power-conserving). Used with `α = r/N` to model
    /// the multi-output **ladder** SC whose rail-r output references the
    /// stack boundaries.
    ///
    /// The stamp is `g·u·uᵀ` with `u = (+1, −α, −(1−α))` — rank-1 PSD for
    /// any `α`, so the system stays SPD.
    ///
    /// # Panics
    ///
    /// Panics if `g` is not finite and positive, `α ∉ (0, 1)`, or the
    /// three nodes are not distinct.
    pub fn converter_with_ratio(
        &mut self,
        out: usize,
        top: usize,
        bottom: usize,
        g: f64,
        alpha: f64,
    ) {
        assert!(g.is_finite() && g > 0.0, "conductance must be positive");
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "conversion ratio must be inside (0,1), got {alpha}"
        );
        assert!(
            out != top && out != bottom && top != bottom,
            "converter terminals must be distinct nodes"
        );
        let nodes = [out, top, bottom];
        let u = [1.0, -alpha, -(1.0 - alpha)];
        for (ni, ui) in nodes.iter().zip(u) {
            for (nj, uj) in nodes.iter().zip(u) {
                self.matrix.push(*ni, *nj, g * ui * uj);
            }
        }
    }

    /// Adds the 2-D grid Laplacian of `grid` with per-segment resistance
    /// `segment_r`, offsetting node indices by `offset`.
    ///
    /// # Panics
    ///
    /// Panics if `segment_r` is not finite and positive.
    pub fn grid_laplacian(&mut self, grid: &GridSpec, offset: usize, segment_r: f64) {
        assert!(
            segment_r.is_finite() && segment_r > 0.0,
            "segment resistance must be positive"
        );
        let g = 1.0 / segment_r;
        for j in 0..grid.ny {
            for i in 0..grid.nx {
                let n = offset + grid.index(i, j);
                if i + 1 < grid.nx {
                    self.conductance(n, offset + grid.index(i + 1, j), g);
                }
                if j + 1 < grid.ny {
                    self.conductance(n, offset + grid.index(i, j + 1), g);
                }
            }
        }
    }

    /// Solves the assembled system through the escalation ladder,
    /// discarding the [`SolveReport`].
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the solver. A structurally
    /// disconnected network (possible after fault injection) surfaces as
    /// [`SolveError::NotConverged`] here; use
    /// [`NetworkBuilder::solve_reported`] to receive the structured
    /// [`PdnError::Disconnected`] instead.
    pub fn solve(&self, guess: Option<&[f64]>) -> Result<Vec<f64>, SolveError> {
        self.solve_reported(guess)
            .map(|(v, _)| v)
            .map_err(PdnError::into_solve_error)
    }

    /// Solves the assembled system and reports how.
    ///
    /// Two robustness layers sit in front of the numerics:
    ///
    /// 1. A structural connectivity check — breadth-first search from the
    ///    rail-tied nodes over the matrix sparsity pattern — rejects
    ///    floating subgrids with [`PdnError::Disconnected`] *before* an
    ///    iterative solver can break down on the singular system.
    /// 2. The solve itself runs through [`solve_robust`]'s deterministic
    ///    escalation ladder; the returned [`SolveReport`] records which
    ///    method finally succeeded and every fallback taken on the way.
    ///
    /// The PDN ladder configuration depends on system size, and skips
    /// IC(0) in both regimes (`start_with_ic: false`):
    ///
    /// * below [`NetworkBuilder::AMG_MIN_UNKNOWNS`] the first rung is
    ///   CG+Jacobi — PDN grid Laplacians are diagonally dominant enough
    ///   that Jacobi converges reliably, and skipping preconditioner
    ///   setup keeps the healthy path as fast as the historical plain-CG
    ///   solve;
    /// * at or above it the ladder leads with CG+AMG
    ///   (`start_with_amg: true`), whose near-size-independent iteration
    ///   counts dominate on large many-layer grids, falling back to
    ///   CG+Jacobi → BiCGSTAB → Tikhonov as before when multigrid
    ///   coarsening degenerates.
    ///
    /// This matches the full ladder documented in `vstack_sparse::robust`
    /// (rungs 0–4); the PDN path simply disables rung 1 (IC(0)) and gates
    /// rung 0 (AMG) on size.
    ///
    /// # Errors
    ///
    /// [`PdnError::Disconnected`] for floating subgrids, otherwise any
    /// [`SolveError`] the exhausted ladder reports.
    pub fn solve_reported(
        &self,
        guess: Option<&[f64]>,
    ) -> Result<(Vec<f64>, SolveReport), PdnError> {
        self.solve_scratch(guess, &mut SolveScratch::new())
    }

    /// [`NetworkBuilder::solve_reported`] with reusable cross-solve state.
    ///
    /// When `scratch` holds a pattern from a previous solve whose sparsity
    /// covers the current stamping (always true across fault injections on
    /// one topology, which only remove conductors), the triplets are
    /// re-stamped onto the cached structure instead of running the full
    /// symbolic sort/compact. A dimension change or
    /// [`SolveError::PatternMismatch`] falls back to a fresh build, so any
    /// scratch can be used with any network. The Krylov working vectors are
    /// likewise recycled between calls.
    ///
    /// # Errors
    ///
    /// As for [`NetworkBuilder::solve_reported`].
    pub fn solve_scratch(
        &self,
        guess: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<(Vec<f64>, SolveReport), PdnError> {
        let _span = vstack_obs::span!("pdn_solve");
        let n = self.rhs.len();
        let mut pattern_reused = false;
        let stamp_timer = std::time::Instant::now();
        let a = {
            let _stamp_span = vstack_obs::span!("pdn_stamp");
            match scratch.pattern.take() {
                Some(mut cached) if cached.rows() == n && cached.cols() == n => {
                    match cached.set_values_from_triplets(self.matrix.entries()) {
                        Ok(()) => {
                            pattern_reused = true;
                            cached
                        }
                        // Structure changed (or values left unspecified):
                        // rebuild symbolically from the triplets.
                        Err(_) => self.matrix.to_csr(),
                    }
                }
                _ => self.matrix.to_csr(),
            }
        };
        let m = vstack_obs::metrics::global();
        m.pdn_stamp_us.add(stamp_timer.elapsed().as_micros() as u64);
        if pattern_reused {
            m.pdn_pattern_reuses.inc();
        } else {
            m.pdn_pattern_builds.inc();
            // The cached hierarchy and stencil describe a different
            // operator structure; drop them so the next large solve
            // rebuilds.
            scratch.amg = None;
            scratch.amg_f32 = None;
            scratch.stencil = None;
            // A structural change also invalidates the fault sketch (its
            // columns are tied to the old node numbering). Value-only
            // re-stamps keep it: the sketch checks its own fingerprint.
            scratch.sketch = None;
        }
        // Keep the matrix-free operator in sync with the fresh stamping:
        // refresh values in place on a pattern hit, re-extract otherwise.
        // Only systems large enough for the mixed rung pay the extraction.
        if self.stencil_desc.is_some() && n >= Self::AMG_MIN_UNKNOWNS {
            let refreshed = match scratch.stencil.as_mut() {
                Some(s) if pattern_reused => s.refresh_values_from(&a).is_ok(),
                _ => false,
            };
            if !refreshed {
                scratch.stencil = self
                    .stencil_desc
                    .clone()
                    .and_then(|d| StencilOperator::from_csr(&a, d).ok());
            }
        } else {
            scratch.stencil = None;
        }
        let result = self.solve_csr(
            &a,
            scratch.stencil.as_ref(),
            guess,
            &mut scratch.workspace,
            &mut scratch.amg,
            &mut scratch.amg_f32,
            &scratch.cancel,
        );
        scratch.pattern = Some(a);
        result
    }

    /// Node count at or above which [`NetworkBuilder::solve_reported`]
    /// leads the escalation ladder with the AMG rung. Below it, single-
    /// level Jacobi wins: multigrid setup costs a few SpMV-equivalents
    /// that small systems never amortize. At paper fidelity
    /// (`grid_refinement = 3`, 26×26 nodes per rail per layer) the
    /// threshold engages from 4 stacked layers up — exactly the systems
    /// whose Jacobi iteration counts blow up with size.
    pub const AMG_MIN_UNKNOWNS: usize = 4096;

    /// The shared solve tail: connectivity check, then the escalation
    /// ladder over an already-assembled CSR matrix. Large systems lead
    /// with the mixed-precision rung (f64 outer CG — through `stencil`
    /// when available — preconditioned by the f32 V-cycle), falling back
    /// to the pure-f64 CSR rungs on any numerical trouble.
    #[allow(clippy::too_many_arguments)]
    fn solve_csr(
        &self,
        a: &CsrMatrix,
        stencil: Option<&StencilOperator>,
        guess: Option<&[f64]>,
        workspace: &mut SolveWorkspace,
        amg_cache: &mut Option<AmgHierarchy>,
        amg_f32_cache: &mut Option<AmgHierarchyF32>,
        cancel: &CancelToken,
    ) -> Result<(Vec<f64>, SolveReport), PdnError> {
        if let Some((floating_nodes, example_node)) = self.floating_nodes(a) {
            return Err(PdnError::Disconnected {
                floating_nodes,
                example_node,
            });
        }
        let use_amg = a.rows() >= Self::AMG_MIN_UNKNOWNS;
        let opts = RobustOptions {
            tolerance: 1e-9,
            max_iterations: 50_000,
            start_with_ic: false,
            start_with_amg: use_amg,
            start_with_mixed: use_amg,
            cancel: cancel.clone(),
            ..RobustOptions::default()
        };
        let m = vstack_obs::metrics::global();
        m.pdn_solves.inc();
        if use_amg {
            if amg_cache.is_some() {
                m.amg_cache_hits.inc();
            } else {
                m.amg_cache_misses.inc();
            }
        }
        let solved = solve_robust_operator_ws(
            a,
            stencil,
            &self.rhs,
            guess,
            &opts,
            workspace,
            amg_cache,
            amg_f32_cache,
        )?;
        Ok((solved.x, solved.report))
    }

    /// Finds nodes with no conductive path to any rail-tied node.
    ///
    /// Returns `Some((count, example))` if the network is disconnected,
    /// `None` if every node reaches a rail. Runs a BFS over the structural
    /// nonzeros of `a`, which is symmetric for every stamp kind this
    /// builder produces (conductances and rank-1 converter outer products).
    pub(crate) fn floating_nodes(&self, a: &CsrMatrix) -> Option<(usize, usize)> {
        let n = self.rhs.len();
        let mut reached = vec![false; n];
        let mut queue: Vec<usize> = Vec::new();
        for (node, &tied) in self.rail_nodes.iter().enumerate() {
            if tied {
                reached[node] = true;
                queue.push(node);
            }
        }
        while let Some(node) = queue.pop() {
            let (cols, vals) = a.row(node);
            for (&col, &val) in cols.iter().zip(vals) {
                if val != 0.0 && !reached[col] {
                    reached[col] = true;
                    queue.push(col);
                }
            }
        }
        let mut floating = 0usize;
        let mut example = 0usize;
        for (node, &ok) in reached.iter().enumerate() {
            if !ok {
                if floating == 0 {
                    example = node;
                }
                floating += 1;
            }
        }
        (floating > 0).then_some((floating, example))
    }

    /// Finalizes the conductance matrix (CSR). Used by the transient
    /// stepper, which factors the stamping cost out of the time loop.
    pub fn to_matrix(&self) -> vstack_sparse::CsrMatrix {
        self.matrix.to_csr()
    }

    /// The assembled right-hand side (Dirichlet + current injections).
    pub fn rhs(&self) -> &[f64] {
        &self.rhs
    }
}

/// Assigns every grid node to the core tile containing it.
///
/// Returns, for each core, the flat (single-grid) node indices inside its
/// bounding box. Nodes on shared edges go to the first matching core;
/// every node belongs to exactly one core because the tiles partition the
/// die.
pub fn core_node_map(
    grid: &GridSpec,
    floorplan: &vstack_power::floorplan::Floorplan,
) -> Vec<Vec<usize>> {
    let mut map = vec![Vec::new(); floorplan.core_count()];
    for j in 0..grid.ny {
        for i in 0..grid.nx {
            let (x, y) = grid.position(i, j);
            if let Some(core) = floorplan.core_at(x, y) {
                map[core].push(grid.index(i, j));
            }
        }
    }
    map
}

/// Per-core, per-node load weights (parallel to [`core_node_map`]'s node
/// lists, each core's weights summing to 1).
///
/// With [`crate::params::LoadDistribution::PerBlock`], a node's weight
/// follows the power density of the functional block covering it; with
/// `Uniform`, all nodes in a tile share equally.
pub fn core_load_weights(
    grid: &GridSpec,
    floorplan: &vstack_power::floorplan::Floorplan,
    core: &vstack_power::mcpat::CoreModel,
    node_map: &[Vec<usize>],
    distribution: crate::params::LoadDistribution,
) -> Vec<Vec<f64>> {
    use crate::params::LoadDistribution;
    use vstack_power::mcpat::UNITS;

    match distribution {
        LoadDistribution::Uniform => node_map
            .iter()
            .map(|nodes| vec![1.0 / nodes.len() as f64; nodes.len()])
            .collect(),
        LoadDistribution::PerBlock => {
            // Power density (W/mm²) per unit index.
            let density: Vec<f64> = UNITS
                .iter()
                .map(|&u| {
                    let b = core.budget(u);
                    (b.peak_dynamic_w + b.leakage_w) / (b.area_fraction * core.area_mm2())
                })
                .collect();
            node_map
                .iter()
                .enumerate()
                .map(|(core_idx, nodes)| {
                    let mut w: Vec<f64> = nodes
                        .iter()
                        .map(|&n| {
                            let i = n % grid.nx;
                            let j = n / grid.nx;
                            let (x, y) = grid.position(i, j);
                            floorplan
                                .blocks()
                                .iter()
                                .find(|b| b.core == core_idx && b.rect.contains(x, y))
                                .map(|b| density[b.unit])
                                // Shared-edge nodes assigned to this core but
                                // covered by a neighbour's block: average
                                // density.
                                .unwrap_or_else(|| {
                                    density.iter().sum::<f64>() / density.len() as f64
                                })
                        })
                        .collect();
                    let total: f64 = w.iter().sum();
                    for wi in &mut w {
                        *wi /= total;
                    }
                    w
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_weights_sum_to_one_and_vary_per_block() {
        use crate::params::LoadDistribution;
        let p = PdnParams::paper_defaults();
        let g = GridSpec::from_params(&p);
        let fp = p.floorplan();
        let map = core_node_map(&g, &fp);
        for dist in [LoadDistribution::Uniform, LoadDistribution::PerBlock] {
            let w = core_load_weights(&g, &fp, &p.core, &map, dist);
            for (core, weights) in w.iter().enumerate() {
                let sum: f64 = weights.iter().sum();
                assert!((sum - 1.0).abs() < 1e-9, "core {core} weights sum {sum}");
                assert!(weights.iter().all(|&x| x > 0.0));
            }
        }
        // Per-block weights are non-uniform (hot LSU vs cool L2 slice).
        let per_block = core_load_weights(&g, &fp, &p.core, &map, LoadDistribution::PerBlock);
        let w0 = &per_block[0];
        let spread = w0.iter().cloned().fold(f64::MIN, f64::max)
            / w0.iter().cloned().fold(f64::MAX, f64::min);
        assert!(spread > 1.2, "expected density contrast, got {spread}");
    }

    #[test]
    fn core_map_partitions_grid() {
        let p = PdnParams::paper_defaults();
        let g = GridSpec::from_params(&p);
        let map = core_node_map(&g, &p.floorplan());
        let assigned: usize = map.iter().map(Vec::len).sum();
        assert_eq!(assigned, g.count(), "every node must belong to a core");
        for (core, nodes) in map.iter().enumerate() {
            assert!(!nodes.is_empty(), "core {core} got no grid nodes");
        }
    }

    #[test]
    fn grid_spec_covers_die() {
        let p = PdnParams::paper_defaults();
        let g = GridSpec::from_params(&p);
        assert!(g.nx > 10 && g.ny > 10, "grid too coarse: {}x{}", g.nx, g.ny);
        let fp = p.floorplan();
        let (x, y) = g.position(g.nx - 1, g.ny - 1);
        assert!((x - fp.chip_width_mm()).abs() < 1e-9);
        assert!((y - fp.chip_height_mm()).abs() < 1e-9);
    }

    #[test]
    fn nearest_round_trips_node_positions() {
        let p = PdnParams::paper_defaults();
        let g = GridSpec::from_params(&p);
        for (i, j) in [(0, 0), (3, 5), (g.nx - 1, g.ny - 1)] {
            let (x, y) = g.position(i, j);
            assert_eq!(g.nearest(x, y), (i, j));
        }
    }

    #[test]
    fn nearest_clamps_outside_die() {
        let p = PdnParams::paper_defaults();
        let g = GridSpec::from_params(&p);
        assert_eq!(g.nearest(-5.0, -5.0), (0, 0));
        assert_eq!(g.nearest(1e9, 1e9), (g.nx - 1, g.ny - 1));
    }

    #[test]
    fn healthy_solve_reports_first_rung() {
        let mut nb = NetworkBuilder::new(2);
        nb.conductance_to_rail(0, 1.0, 1.0);
        nb.conductance(0, 1, 1.0);
        nb.conductance_to_rail(1, 1.0, 0.0);
        let (v, report) = nb.solve_reported(None).unwrap();
        assert!((v[0] - 2.0 / 3.0).abs() < 1e-8);
        assert!(!report.was_rescued(), "trail: {}", report.trail());
    }

    #[test]
    fn scratch_reuse_is_bit_identical_across_restamps() {
        // The same structure solved repeatedly through one scratch, with
        // the stamped values changing every round — the cached pattern
        // must yield exactly the bits of a fresh symbolic build.
        let build = |g01: f64, tie1: bool| {
            let mut nb = NetworkBuilder::new(3);
            nb.conductance_to_rail(0, 2.0, 1.0);
            nb.conductance(0, 1, g01);
            nb.conductance(1, 2, 0.5);
            if tie1 {
                nb.conductance_to_rail(2, 3.0, 0.0);
            } else {
                // Different stamping order / rail value, same pattern.
                nb.conductance_to_rail(2, 1.5, 0.25);
            }
            nb.current(1, -0.1);
            nb
        };
        let mut scratch = SolveScratch::new();
        for (g01, tie1) in [(1.0, true), (0.25, false), (4.0, true)] {
            let nb = build(g01, tie1);
            let (fresh, fresh_rep) = nb.solve_reported(None).unwrap();
            let (reused, reused_rep) = nb.solve_scratch(None, &mut scratch).unwrap();
            assert_eq!(fresh, reused, "g01={g01}");
            assert_eq!(fresh_rep.trail(), reused_rep.trail());
        }
    }

    #[test]
    fn scratch_survives_pattern_and_dimension_changes() {
        // A scratch carrying a 3-node pattern must transparently rebuild
        // for a 2-node network and for a 3-node network with different
        // structural nonzeros.
        let mut scratch = SolveScratch::new();
        let mut nb3 = NetworkBuilder::new(3);
        nb3.conductance_to_rail(0, 1.0, 1.0);
        nb3.conductance(0, 1, 1.0);
        nb3.conductance(1, 2, 1.0);
        nb3.conductance_to_rail(2, 1.0, 0.0);
        let (v3, _) = nb3.solve_scratch(None, &mut scratch).unwrap();
        assert_eq!(v3.len(), 3);

        let mut nb2 = NetworkBuilder::new(2);
        nb2.conductance_to_rail(0, 1.0, 1.0);
        nb2.conductance(0, 1, 1.0);
        nb2.conductance_to_rail(1, 1.0, 0.0);
        let (v2, _) = nb2.solve_scratch(None, &mut scratch).unwrap();
        let v2_fresh = nb2.solve(None).unwrap();
        assert_eq!(v2, v2_fresh);

        // Same dimension, new structural edge (0–2): PatternMismatch path.
        let mut nb3b = NetworkBuilder::new(3);
        nb3b.conductance_to_rail(0, 1.0, 1.0);
        nb3b.conductance(0, 2, 1.0);
        nb3b.conductance_to_rail(2, 1.0, 0.0);
        nb3b.conductance_to_rail(1, 1.0, 0.5);
        let (_, _) = nb3.solve_scratch(None, &mut scratch).unwrap();
        let (vb, _) = nb3b.solve_scratch(None, &mut scratch).unwrap();
        let vb_fresh = nb3b.solve(None).unwrap();
        assert_eq!(vb, vb_fresh);
    }

    #[test]
    fn floating_subgrid_is_detected_before_solving() {
        // Nodes 0–1 tied to a rail; nodes 2–3 only connected to each other.
        let mut nb = NetworkBuilder::new(4);
        nb.conductance_to_rail(0, 1.0, 1.0);
        nb.conductance(0, 1, 1.0);
        nb.conductance(2, 3, 1.0);
        let err = nb.solve_reported(None).unwrap_err();
        match err {
            crate::error::PdnError::Disconnected {
                floating_nodes,
                example_node,
            } => {
                assert_eq!(floating_nodes, 2);
                assert_eq!(example_node, 2);
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
        // The legacy entry point degrades it to a SolveError, not a panic.
        let legacy = nb.solve(None).unwrap_err();
        assert!(matches!(
            legacy,
            vstack_sparse::SolveError::NotConverged { .. }
        ));
    }

    #[test]
    fn fully_floating_network_is_disconnected() {
        let mut nb = NetworkBuilder::new(2);
        nb.conductance(0, 1, 1.0);
        let err = nb.solve_reported(None).unwrap_err();
        assert!(matches!(
            err,
            crate::error::PdnError::Disconnected {
                floating_nodes: 2,
                ..
            }
        ));
    }

    #[test]
    fn converter_stamp_counts_as_connectivity() {
        // Node 0 has no ordinary conductance anywhere: it reaches the
        // rail-tied nodes 1 and 2 only through the rank-1 converter stamp,
        // which must register structurally in the BFS.
        let mut nb = NetworkBuilder::new(3);
        nb.conductance_to_rail(1, 1e3, 2.0);
        nb.conductance_to_rail(2, 1e3, 0.0);
        nb.converter(0, 1, 2, 1.0);
        let (v, _) = nb.solve_reported(None).unwrap();
        assert!((v[0] - 1.0).abs() < 1e-6, "converter midpoint: {}", v[0]);
    }

    #[test]
    fn dirichlet_divider_solves() {
        // Two nodes: rail(1V) --1Ω-- a --1Ω-- b --1Ω-- rail(0V)
        let mut nb = NetworkBuilder::new(2);
        nb.conductance_to_rail(0, 1.0, 1.0);
        nb.conductance(0, 1, 1.0);
        nb.conductance_to_rail(1, 1.0, 0.0);
        let v = nb.solve(None).unwrap();
        assert!((v[0] - 2.0 / 3.0).abs() < 1e-8);
        assert!((v[1] - 1.0 / 3.0).abs() < 1e-8);
    }

    #[test]
    fn converter_stamp_splits_rails() {
        // Rails at 2 V and 0 V through small resistances to nodes t and b;
        // converter drives node o, which has a load to ground.
        let mut nb = NetworkBuilder::new(3); // 0 = out, 1 = top, 2 = bottom
        nb.conductance_to_rail(1, 1e3, 2.0);
        nb.conductance_to_rail(2, 1e3, 0.0);
        nb.converter(0, 1, 2, 1.0 / 0.6);
        // Load drawing 50 mA out of the output node.
        nb.current(0, -0.05);
        let v = nb.solve(None).unwrap();
        // v_out ≈ (2 + 0)/2 − 0.05·0.6 = 0.97 (minus tiny rail droop).
        assert!((v[0] - 0.97).abs() < 0.005, "v_out {}", v[0]);
    }

    #[test]
    fn converter_balances_at_zero_load() {
        let mut nb = NetworkBuilder::new(3);
        nb.conductance_to_rail(1, 1e3, 3.0);
        nb.conductance_to_rail(2, 1e3, 1.0);
        nb.converter(0, 1, 2, 1.0 / 0.6);
        let v = nb.solve(None).unwrap();
        assert!((v[0] - 2.0).abs() < 1e-6, "v_out {}", v[0]);
    }

    #[test]
    fn grid_laplacian_uniform_current_is_symmetric() {
        let p = PdnParams::paper_defaults();
        let g = GridSpec::from_params(&p);
        let mut nb = NetworkBuilder::new(g.count());
        nb.grid_laplacian(&g, 0, 0.05);
        // Tie the four corners to 1 V and pull current from the center.
        for (i, j) in [(0, 0), (g.nx - 1, 0), (0, g.ny - 1), (g.nx - 1, g.ny - 1)] {
            nb.conductance_to_rail(g.index(i, j), 100.0, 1.0);
        }
        let center = g.index(g.nx / 2, g.ny / 2);
        nb.current(center, -0.1);
        let v = nb.solve(None).unwrap();
        assert!(v[center] < 1.0);
        // The source sits on the main diagonal of a square grid, so the two
        // off-diagonal corners are mirror images.
        let a = v[g.index(g.nx - 1, 0)];
        let b = v[g.index(0, g.ny - 1)];
        assert!((a - b).abs() < 1e-6);
    }
}
