//! Transient (load-step) analysis of the PDN — an extension beyond the
//! paper's DC/IR study.
//!
//! The paper evaluates average-case IR drop; the natural next question for
//! a voltage-stacked design is the **di/dt event**: what happens at the
//! instant the workload imbalance appears (e.g. half the layers finish a
//! barrier and idle)? The PDN's response is set by the on-chip decoupling
//! capacitance against the converter/package source impedance.
//!
//! Both PDN topologies implement a backward-Euler step response
//! ([`crate::VstackPdn::solve_transient_step`],
//! [`crate::RegularPdn::solve_transient_step`]): the network starts from
//! the DC solution of the *before* loads, the loads switch to *after* at
//! `t = 0`, and per-layer decap (between each layer's local supply and
//! return nets) carries the charge while the rails re-settle. The system
//! matrix `G + C/Δt` is SPD, assembled once, and every timestep is a
//! warm-started CG solve.

/// Configuration for a PDN load-step transient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PdnTransientConfig {
    /// Timestep in seconds (0.5 ns default resolves the decap RC).
    pub dt_s: f64,
    /// Simulated span in seconds.
    pub duration_s: f64,
    /// Explicit + intrinsic decoupling capacitance per core per layer, in
    /// farads (40 nF ≈ 15 nF/mm² over a 2.76 mm² core, a typical planar
    /// MOS-decap budget).
    pub decap_per_core_f: f64,
}

impl Default for PdnTransientConfig {
    fn default() -> Self {
        PdnTransientConfig {
            dt_s: 0.5e-9,
            duration_s: 200e-9,
            decap_per_core_f: 40e-9,
        }
    }
}

impl PdnTransientConfig {
    /// Number of timesteps implied by `dt_s` and `duration_s`.
    ///
    /// # Panics
    ///
    /// Panics unless both are finite and positive and
    /// `duration_s >= dt_s`.
    pub fn steps(&self) -> usize {
        assert!(
            self.dt_s.is_finite() && self.dt_s > 0.0,
            "dt must be positive"
        );
        assert!(
            self.duration_s.is_finite() && self.duration_s >= self.dt_s,
            "duration must cover at least one step"
        );
        (self.duration_s / self.dt_s).round() as usize
    }
}

/// The worst-node IR-drop trajectory after a load step.
#[derive(Debug, Clone, PartialEq)]
pub struct StepResponse {
    /// Sample times (seconds, first sample at `dt`).
    pub times_s: Vec<f64>,
    /// Worst on-chip IR-drop fraction at each sample.
    pub max_drop_series: Vec<f64>,
    /// Worst drop in the initial (pre-step) DC state.
    pub initial_drop: f64,
}

impl StepResponse {
    /// The largest transient excursion.
    pub fn peak_drop(&self) -> f64 {
        self.max_drop_series
            .iter()
            .copied()
            .fold(f64::MIN, f64::max)
    }

    /// The drop at the end of the window (≈ the post-step DC value when
    /// the window is long enough).
    pub fn final_drop(&self) -> f64 {
        *self.max_drop_series.last().expect("non-empty response")
    }

    /// Overshoot of the transient peak beyond the final settled drop.
    pub fn overshoot(&self) -> f64 {
        self.peak_drop() - self.final_drop()
    }

    /// First time after which the response stays within `band` (absolute
    /// drop fraction) of the final value. `None` if it never settles
    /// inside the window.
    pub fn settling_time(&self, band: f64) -> Option<f64> {
        let target = self.final_drop();
        let mut settled_at = None;
        for (t, d) in self.times_s.iter().zip(&self.max_drop_series) {
            if (d - target).abs() <= band {
                settled_at.get_or_insert(*t);
            } else {
                settled_at = None;
            }
        }
        settled_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn response() -> StepResponse {
        StepResponse {
            times_s: vec![1e-9, 2e-9, 3e-9, 4e-9],
            max_drop_series: vec![0.05, 0.04, 0.031, 0.030],
            initial_drop: 0.01,
        }
    }

    #[test]
    fn peak_and_final() {
        let r = response();
        assert_eq!(r.peak_drop(), 0.05);
        assert_eq!(r.final_drop(), 0.030);
        assert!((r.overshoot() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn settling_detection() {
        let r = response();
        assert_eq!(r.settling_time(0.002), Some(3e-9));
        assert_eq!(r.settling_time(0.0001), Some(4e-9));
    }

    #[test]
    fn default_config_steps() {
        assert_eq!(PdnTransientConfig::default().steps(), 400);
    }

    #[test]
    #[should_panic(expected = "duration must cover")]
    fn short_duration_rejected() {
        let cfg = PdnTransientConfig {
            dt_s: 1e-9,
            duration_s: 0.5e-9,
            decap_per_core_f: 1e-9,
        };
        let _ = cfg.steps();
    }
}
