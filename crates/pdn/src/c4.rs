//! C4 pad arrays and power-pad allocation.
//!
//! The chip exposes a full-area C4 array at 200 µm pitch (≈1100 pads for
//! the 44 mm² die). A configurable fraction is allocated to power delivery
//! — the paper sweeps 25% / 50% / 75% / 100% in its Fig 5b — with the
//! power pads split evenly between supply and return in a checkerboard, the
//! standard practice for minimizing loop inductance.

use crate::params::PdnParams;

/// Electrical role of a pad.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PadNet {
    /// Supply pad.
    Vdd,
    /// Ground-return pad.
    Gnd,
    /// Signal/IO pad (not modelled electrically).
    Io,
}

/// One placed C4 pad.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct C4Pad {
    /// X position in mm.
    pub x_mm: f64,
    /// Y position in mm.
    pub y_mm: f64,
    /// Net assignment.
    pub net: PadNet,
}

/// The full C4 array with its power allocation.
#[derive(Debug, Clone, PartialEq)]
pub struct C4Array {
    pads: Vec<C4Pad>,
    power_fraction: f64,
}

impl C4Array {
    /// Places the array on the chip of `params` and allocates
    /// `power_fraction` of the pads to power delivery.
    ///
    /// Power pads are chosen evenly across the array (every k-th pad) and
    /// alternate Vdd/Gnd so both nets stay spatially uniform.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < power_fraction <= 1`.
    pub fn new(params: &PdnParams, power_fraction: f64) -> Self {
        assert!(
            power_fraction > 0.0 && power_fraction <= 1.0,
            "power fraction must be in (0,1], got {power_fraction}"
        );
        let fp = params.floorplan();
        let pitch = params.c4_pitch_um / 1000.0;
        let nx = (fp.chip_width_mm() / pitch).floor() as usize;
        let ny = (fp.chip_height_mm() / pitch).floor() as usize;
        // Center the array on the die.
        let x0 = (fp.chip_width_mm() - (nx - 1) as f64 * pitch) / 2.0;
        let y0 = (fp.chip_height_mm() - (ny - 1) as f64 * pitch) / 2.0;

        let total = nx * ny;
        let n_power = ((total as f64) * power_fraction).round() as usize;
        // Spread power pads uniformly through the (row-major) array.
        let stride = total as f64 / n_power.max(1) as f64;

        let mut pads = Vec::with_capacity(total);
        let mut next_power = 0.0f64;
        let mut power_placed = 0usize;
        for idx in 0..total {
            let ix = idx % nx;
            let iy = idx / nx;
            let net = if power_placed < n_power && idx as f64 >= next_power {
                next_power += stride;
                power_placed += 1;
                // Checkerboard the power pads between the two nets.
                if power_placed % 2 == 1 {
                    PadNet::Vdd
                } else {
                    PadNet::Gnd
                }
            } else {
                PadNet::Io
            };
            pads.push(C4Pad {
                x_mm: x0 + ix as f64 * pitch,
                y_mm: y0 + iy as f64 * pitch,
                net,
            });
        }
        C4Array {
            pads,
            power_fraction,
        }
    }

    /// All pads.
    pub fn pads(&self) -> &[C4Pad] {
        &self.pads
    }

    /// Pads on a given net.
    pub fn pads_on(&self, net: PadNet) -> impl Iterator<Item = &C4Pad> {
        self.pads.iter().filter(move |p| p.net == net)
    }

    /// Number of supply pads.
    pub fn vdd_count(&self) -> usize {
        self.pads_on(PadNet::Vdd).count()
    }

    /// Number of return pads.
    pub fn gnd_count(&self) -> usize {
        self.pads_on(PadNet::Gnd).count()
    }

    /// The configured power fraction.
    pub fn power_fraction(&self) -> f64 {
        self.power_fraction
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quarter_allocation_counts() {
        let p = PdnParams::paper_defaults();
        let arr = C4Array::new(&p, 0.25);
        let total = arr.pads().len();
        let power = arr.vdd_count() + arr.gnd_count();
        let frac = power as f64 / total as f64;
        assert!((frac - 0.25).abs() < 0.02, "got {frac}");
    }

    #[test]
    fn vdd_and_gnd_balanced() {
        let p = PdnParams::paper_defaults();
        for f in [0.25, 0.5, 0.75, 1.0] {
            let arr = C4Array::new(&p, f);
            let (v, g) = (arr.vdd_count() as i64, arr.gnd_count() as i64);
            assert!((v - g).abs() <= 1, "fraction {f}: {v} vs {g}");
            assert!(v > 0, "fraction {f} must place Vdd pads");
        }
    }

    #[test]
    fn full_allocation_leaves_no_io() {
        let p = PdnParams::paper_defaults();
        let arr = C4Array::new(&p, 1.0);
        assert_eq!(arr.pads_on(PadNet::Io).count(), 0);
    }

    #[test]
    fn pads_inside_die() {
        let p = PdnParams::paper_defaults();
        let fp = p.floorplan();
        let arr = C4Array::new(&p, 0.5);
        for pad in arr.pads() {
            assert!(pad.x_mm >= 0.0 && pad.x_mm <= fp.chip_width_mm());
            assert!(pad.y_mm >= 0.0 && pad.y_mm <= fp.chip_height_mm());
        }
    }

    #[test]
    fn power_pads_spatially_spread() {
        // The first and last rows of the array should both contain power
        // pads — i.e. allocation is not clumped at one edge.
        let p = PdnParams::paper_defaults();
        let arr = C4Array::new(&p, 0.25);
        let ys: Vec<f64> = arr.pads_on(PadNet::Vdd).map(|pad| pad.y_mm).collect();
        let span = ys.iter().cloned().fold(f64::MIN, f64::max)
            - ys.iter().cloned().fold(f64::MAX, f64::min);
        let fp = p.floorplan();
        assert!(span > 0.8 * fp.chip_height_mm(), "span {span}");
    }

    #[test]
    #[should_panic(expected = "power fraction")]
    fn zero_fraction_rejected() {
        C4Array::new(&PdnParams::paper_defaults(), 0.0);
    }
}
