//! PDN modeling parameters (the paper's Table 1).

use vstack_power::floorplan::Floorplan;
use vstack_power::mcpat::CoreModel;

/// Copper resistivity in Ω·µm (1.75 × 10⁻⁸ Ω·m).
pub const RHO_COPPER_OHM_UM: f64 = 0.0175;

/// How a core's load current is spread over the grid nodes inside its
/// tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LoadDistribution {
    /// Every grid node in the tile draws the same share.
    Uniform,
    /// Nodes draw in proportion to the local power density of the
    /// functional block above them (the McPAT per-unit budgets mapped
    /// through the ArchFP floorplan) — the "fine-grained modeling
    /// granularity" VoltSpot provides (paper §1/§3.2). Hot blocks like
    /// the load-store unit concentrate current and raise the realistic
    /// worst-node IR drop.
    #[default]
    PerBlock,
}

/// All electrical and geometric parameters of the PDN model.
///
/// Defaults come from the paper's Table 1 plus the platform constants of
/// §4.1. The on-chip grid entry `pitch, width, thickness = 810, 400, 0.72`
/// uses the aggregate-strap interpretation documented in `DESIGN.md`: each
/// grid edge bundles the straps of one 810 µm routing channel into a single
/// 400 µm × 0.72 µm copper conductor (≈ 49 mΩ per segment).
#[derive(Debug, Clone, PartialEq)]
pub struct PdnParams {
    /// C4 pad pitch in µm (Table 1: 200).
    pub c4_pitch_um: f64,
    /// Single C4 pad resistance in Ω (Table 1: 10 mΩ).
    pub c4_resistance_ohm: f64,
    /// Package/board series resistance attributed to each pad, in Ω.
    /// Not in Table 1; calibrated so the regular PDN's worst-case IR drop
    /// lands in the 2–3% Vdd band the paper's Fig 6 reference lines show.
    pub package_r_per_pad_ohm: f64,
    /// Minimum TSV pitch in µm (Table 1: 10).
    pub tsv_min_pitch_um: f64,
    /// TSV diameter in µm (Table 1: 5).
    pub tsv_diameter_um: f64,
    /// Single TSV resistance in Ω (Table 1: 44.539 mΩ).
    pub tsv_resistance_ohm: f64,
    /// TSV keep-out-zone side length in µm (Table 1: 9.88).
    pub tsv_koz_side_um: f64,
    /// On-chip PDN routing-channel pitch in µm (Table 1: 810).
    pub grid_pitch_um: f64,
    /// Aggregate strap width per channel in µm (Table 1: 400).
    pub grid_width_um: f64,
    /// Metal thickness in µm (Table 1 entry 720 read as nm; see DESIGN.md).
    pub grid_thickness_um: f64,
    /// Modeling-grid refinement: the electrical grid is solved at pitch
    /// `grid_pitch_um / refinement` with per-segment resistance scaled
    /// accordingly (sheet behaviour preserved). 3 gives ≈6 nodes across a
    /// core — the "fine-grained modeling granularity" of §1.
    pub grid_refinement: usize,
    /// Local TSV current-crowding model: the number of TSVs per core that
    /// effectively carry the core's vertical (interface) current.
    ///
    /// At TSV length scales the local power straps are far more resistive
    /// than a TSV (ρ·pitch/(w·t) ≈ 0.5 Ω per 20 µm hop vs 44.5 mΩ per
    /// TSV), so current descends through the TSVs nearest each vertical
    /// current path — roughly one small cluster per power pad — instead of
    /// spreading across the whole array. This is what makes the paper's
    /// regular-PDN TSV lifetime nearly independent of the TSV topology
    /// (§5.1: "adding more TSVs … only marginally increases MTTF").
    /// Affects only the EM current extraction; the electrical solve keeps
    /// the macro array conductance. Deliberately independent of the
    /// modeling-grid refinement.
    pub tsv_hot_conductors_per_core: f64,
    /// Fraction of a core's vertical current that does spread across the
    /// non-crowded remainder of its TSVs.
    pub tsv_crowding_spread: f64,
    /// Per-layer nominal supply voltage in volts (1.0 V platform).
    pub vdd: f64,
    /// How core current maps onto the electrical grid nodes.
    pub load_distribution: LoadDistribution,
    /// The modelled core (power + area).
    pub core: CoreModel,
    /// Core grid columns on a layer (4×4 = 16 cores).
    pub core_cols: usize,
    /// Core grid rows on a layer.
    pub core_rows: usize,
    /// Per-layer multiplier on the on-chip grid segment resistance
    /// (temperature-dependent copper resistivity, EM drift). Empty means
    /// every layer at 1.0; layers beyond the vector's length also scale
    /// by 1.0. Only the on-chip grid is scaled — C4/TSV/package
    /// conductances keep their nominal values so the EM current
    /// extraction stays consistent with the stamped conductances.
    pub layer_r_scale: Vec<f64>,
}

impl PdnParams {
    /// Table 1 defaults on the 16-core Cortex-A9 platform of §4.1.
    pub fn paper_defaults() -> Self {
        PdnParams {
            c4_pitch_um: 200.0,
            c4_resistance_ohm: 0.010,
            package_r_per_pad_ohm: 0.050,
            tsv_min_pitch_um: 10.0,
            tsv_diameter_um: 5.0,
            tsv_resistance_ohm: 0.044539,
            tsv_koz_side_um: 9.88,
            grid_pitch_um: 810.0,
            grid_width_um: 400.0,
            grid_thickness_um: 0.72,
            grid_refinement: 3,
            tsv_hot_conductors_per_core: 10.0,
            tsv_crowding_spread: 0.2,
            vdd: 1.0,
            load_distribution: LoadDistribution::PerBlock,
            core: CoreModel::arm_cortex_a9(),
            core_cols: 4,
            core_rows: 4,
            layer_r_scale: Vec::new(),
        }
    }

    /// The single-layer floorplan (ArchFP substitute).
    pub fn floorplan(&self) -> Floorplan {
        Floorplan::grid(&self.core, self.core_cols, self.core_rows)
    }

    /// Number of cores per layer.
    pub fn cores_per_layer(&self) -> usize {
        self.core_cols * self.core_rows
    }

    /// Resistance of one electrical grid segment at the *modeling* pitch,
    /// in Ω. `R = ρ · pitch / (width · thickness)` scaled by the
    /// refinement (shorter segments of the same strap).
    pub fn grid_segment_resistance_ohm(&self) -> f64 {
        let model_pitch = self.grid_pitch_um / self.grid_refinement as f64;
        RHO_COPPER_OHM_UM * model_pitch / (self.grid_width_um * self.grid_thickness_um)
    }

    /// Resistance multiplier for one layer's on-chip grid (1.0 when no
    /// drift has been set for that layer).
    ///
    /// # Panics
    ///
    /// Panics if a configured scale is non-finite or non-positive — a
    /// zero or negative segment resistance would make the Laplacian
    /// indefinite.
    pub fn layer_resistance_scale(&self, layer: usize) -> f64 {
        let s = self.layer_r_scale.get(layer).copied().unwrap_or(1.0);
        assert!(
            s.is_finite() && s > 0.0,
            "layer {layer} resistance scale must be finite positive, got {s}"
        );
        s
    }

    /// Modeling-grid pitch in mm.
    pub fn model_pitch_mm(&self) -> f64 {
        self.grid_pitch_um / self.grid_refinement as f64 / 1000.0
    }

    /// Total C4 pad count over the chip (both power and I/O).
    pub fn total_c4_pads(&self) -> usize {
        let fp = self.floorplan();
        let pitch_mm = self.c4_pitch_um / 1000.0;
        let nx = (fp.chip_width_mm() / pitch_mm).floor() as usize;
        let ny = (fp.chip_height_mm() / pitch_mm).floor() as usize;
        nx * ny
    }
}

impl Default for PdnParams {
    fn default() -> Self {
        PdnParams::paper_defaults()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_resistance_near_49_mohm_at_table_pitch() {
        let mut p = PdnParams::paper_defaults();
        p.grid_refinement = 1;
        let r = p.grid_segment_resistance_ohm();
        assert!((r - 0.0492).abs() < 0.001, "got {r}");
    }

    #[test]
    fn refinement_scales_segment_resistance() {
        let p = PdnParams::paper_defaults();
        let mut coarse = p.clone();
        coarse.grid_refinement = 1;
        let ratio = coarse.grid_segment_resistance_ohm() / p.grid_segment_resistance_ohm();
        assert!((ratio - 3.0).abs() < 1e-9);
    }

    #[test]
    fn chip_has_about_1100_pads() {
        let p = PdnParams::paper_defaults();
        let n = p.total_c4_pads();
        assert!((1000..1200).contains(&n), "got {n}");
    }

    #[test]
    fn sixteen_cores() {
        assert_eq!(PdnParams::paper_defaults().cores_per_layer(), 16);
    }
}
