//! The conventional ("regular") 3D PDN topology — paper Fig 4a.
//!
//! All layers' supply nets are connected in parallel by Vdd TSV stacks,
//! all ground nets by Gnd TSV stacks, and the board feeds the bottom layer
//! through the C4 array. Every layer's full current crosses the pads and
//! the lower TSV interfaces, which is exactly why this topology's EM
//! lifetime collapses as layers are added (paper §5.1).

use vstack_power::floorplan::Floorplan;
use vstack_sparse::{SolveError, SolveReport};

use crate::c4::{C4Array, PadNet};
use crate::error::PdnError;
use crate::fault::{FaultSet, FaultedSolution, TsvGroupCurrent};
use crate::network::{core_load_weights, core_node_map, GridSpec, NetworkBuilder, SolveScratch};
use crate::params::PdnParams;
use crate::solution::{ConductorCurrents, PdnSolution};
use crate::stack::StackLoads;
use crate::tsv::TsvTopology;

/// Output of the assembly phase: the stamped network plus extraction
/// handles. Pads carry their ordinal among power pads of the same net so
/// fault injection and extraction agree on identity across solves.
struct AssembledReg {
    nb: NetworkBuilder,
    vdd_pads: Vec<(usize, usize)>,
    gnd_pads: Vec<(usize, usize)>,
    g_pad: f64,
}

/// A regular (non-stacked) 3D PDN ready to solve against load scenarios.
#[derive(Debug, Clone)]
pub struct RegularPdn {
    params: PdnParams,
    n_layers: usize,
    topology: TsvTopology,
    c4: C4Array,
    grid: GridSpec,
    floorplan: Floorplan,
    core_nodes: Vec<Vec<usize>>,
    core_weights: Vec<Vec<f64>>,
}

impl RegularPdn {
    /// Builds the network structure for `n_layers` silicon layers with the
    /// given TSV topology and C4 power-pad fraction.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers == 0` (C4-array panics propagate for invalid
    /// `power_c4_fraction`).
    pub fn new(
        params: &PdnParams,
        n_layers: usize,
        topology: TsvTopology,
        power_c4_fraction: f64,
    ) -> Self {
        assert!(n_layers >= 1, "need at least one layer");
        let c4 = C4Array::new(params, power_c4_fraction);
        let grid = GridSpec::from_params(params);
        let floorplan = params.floorplan();
        let core_nodes = core_node_map(&grid, &floorplan);
        let core_weights = core_load_weights(
            &grid,
            &floorplan,
            &params.core,
            &core_nodes,
            params.load_distribution,
        );
        RegularPdn {
            params: params.clone(),
            n_layers,
            topology,
            c4,
            grid,
            floorplan,
            core_nodes,
            core_weights,
        }
    }

    /// Number of stacked layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// The TSV topology in use.
    pub fn topology(&self) -> TsvTopology {
        self.topology
    }

    /// The C4 array (placement + allocation).
    pub fn c4(&self) -> &C4Array {
        &self.c4
    }

    /// The electrical modeling grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Flat unknown index of grid node `n` on `layer`'s Vdd (`net = 0`) or
    /// Gnd (`net = 1`) net.
    fn node(&self, layer: usize, net: usize, n: usize) -> usize {
        (layer * 2 + net) * self.grid.count() + n
    }

    /// Solves the network for the given loads.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the solve fails (should not happen for
    /// well-formed networks).
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve(&self, loads: &StackLoads) -> Result<PdnSolution, SolveError> {
        self.solve_faulted(loads, &FaultSet::new(), None)
            .map(|f| f.solution)
            .map_err(PdnError::into_solve_error)
    }

    /// Solves the network with the conductors in `faults` open-circuited,
    /// optionally warm-starting from a previous solution's
    /// [`FaultedSolution::voltages`].
    ///
    /// The dead pads and TSVs are removed at stamping time — the surviving
    /// network is re-assembled, checked for floating subgrids, and solved
    /// through the [`vstack_sparse::solve_robust`] escalation ladder. The
    /// result carries per-pad and per-TSV-bundle identity so a wearout
    /// loop can pick its next victims deterministically.
    ///
    /// # Errors
    ///
    /// [`PdnError::Disconnected`] once the injected faults isolate part of
    /// the grid from every board rail; [`PdnError::Solve`] if the
    /// escalation ladder is exhausted.
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_faulted(
        &self,
        loads: &StackLoads,
        faults: &FaultSet,
        guess: Option<&[f64]>,
    ) -> Result<FaultedSolution, PdnError> {
        self.solve_faulted_scratch(loads, faults, guess, &mut SolveScratch::new())
    }

    /// [`RegularPdn::solve_faulted`] with reusable cross-solve state.
    ///
    /// Wearout loops and load sweeps re-solve the same topology hundreds
    /// of times; passing one [`SolveScratch`] lets every solve after the
    /// first re-stamp values onto the cached sparsity pattern and recycle
    /// the solver's working vectors. Results are bit-identical to
    /// [`RegularPdn::solve_faulted`].
    ///
    /// # Errors
    ///
    /// As for [`RegularPdn::solve_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_faulted_scratch(
        &self,
        loads: &StackLoads,
        faults: &FaultSet,
        guess: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        let asm = self.assemble(loads, faults);
        let (v, report) = asm.nb.solve_scratch(guess, scratch)?;
        Ok(self.extract(
            loads,
            v,
            &asm.vdd_pads,
            &asm.gnd_pads,
            asm.g_pad,
            faults,
            report,
        ))
    }

    /// [`RegularPdn::solve_faulted_scratch`] accelerated by the rank-k
    /// fault sketch ([`crate::sketch::FaultSketch`]).
    ///
    /// The first call (or the first after a parameter change — the sketch
    /// is value-fingerprinted) pays one tightly-converged baseline solve;
    /// subsequent queries whose faults extend the baseline by at most
    /// [`crate::sketch::SKETCH_BUDGET`] rank-one removals are answered
    /// through the Sherman–Morrison–Woodbury identity in microseconds.
    /// Near-singular updates (structural disconnection), over-tolerance
    /// residuals, and over-budget fault sets fall back to the exact
    /// [`RegularPdn::solve_faulted_scratch`] path, so results are always
    /// within the sketch tolerance (`1e-9` relative residual) of exact.
    ///
    /// # Errors
    ///
    /// As for [`RegularPdn::solve_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_faulted_sketched(
        &self,
        loads: &StackLoads,
        faults: &FaultSet,
        scratch: &mut SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        let fp = self.sketch_fingerprint(loads);
        let mut sketch = scratch.take_sketch().filter(|s| s.fingerprint() == fp);
        let g_pad = 1.0 / (self.params.c4_resistance_ohm + self.params.package_r_per_pad_ohm);
        let answered = crate::sketch::answer_with_sketch(
            faults,
            &mut sketch,
            scratch,
            |base, scr| self.build_sketch(loads, base.clone(), scr),
            |sk, v, report| {
                let (vdd_pads, gnd_pads) = sk.alive_pads(faults);
                self.extract(loads, v, &vdd_pads, &gnd_pads, g_pad, faults, report)
            },
        );
        let result = match answered {
            Ok(Some(sol)) => Ok(sol),
            Ok(None) => {
                vstack_obs::metrics::global().fault_sketch_fallbacks.inc();
                let guess = sketch.as_ref().map(|s| s.baseline_voltages());
                self.solve_faulted_scratch(loads, faults, guess.as_deref(), scratch)
            }
            Err(e) => Err(e),
        };
        if let Some(s) = sketch {
            scratch.put_sketch(s);
        }
        result
    }

    /// FNV-1a fingerprint of every value that shapes the stamped baseline
    /// system: topology dimensions, conductances, supply voltage, and the
    /// per-core load currents. Two calls with matching fingerprints stamp
    /// bit-identical `(A₀, b₀)` at any given fault set.
    fn sketch_fingerprint(&self, loads: &StackLoads) -> u64 {
        use crate::params::LoadDistribution;
        let mut h = crate::sketch::FingerprintHasher::new();
        h.usize(1); // topology kind: regular
        h.usize(self.n_layers);
        h.usize(self.grid.nx);
        h.usize(self.grid.ny);
        h.usize(self.topology.vdd_tsvs_per_core());
        h.usize(self.c4.vdd_count());
        h.usize(self.c4.gnd_count());
        h.f64(self.params.vdd);
        h.f64(self.params.c4_resistance_ohm);
        h.f64(self.params.package_r_per_pad_ohm);
        h.f64(self.params.tsv_resistance_ohm);
        h.f64(self.params.grid_segment_resistance_ohm());
        for layer in 0..self.n_layers {
            h.f64(self.params.layer_resistance_scale(layer));
        }
        h.usize(match self.params.load_distribution {
            LoadDistribution::Uniform => 0,
            LoadDistribution::PerBlock => 1,
        });
        for layer in 0..loads.n_layers() {
            for core in 0..loads.cores_per_layer() {
                h.f64(loads.core_current(layer, core));
            }
        }
        h.finish()
    }

    /// Builds a fault sketch with `base` as its baseline fault set:
    /// assembles and solves the baseline tightly, then registers every
    /// surviving pad rail and TSV bundle as a candidate fault column.
    fn build_sketch(
        &self,
        loads: &StackLoads,
        base: FaultSet,
        scratch: &mut SolveScratch,
    ) -> Result<crate::sketch::FaultSketch, PdnError> {
        let asm = self.assemble(loads, &base);
        let mut sk = crate::sketch::FaultSketch::build(
            self.sketch_fingerprint(loads),
            base.clone(),
            &asm.nb,
            asm.vdd_pads.clone(),
            asm.gnd_pads.clone(),
            (self.c4.vdd_count(), self.c4.gnd_count()),
            (self.n_layers.saturating_sub(1), self.core_nodes.len()),
            scratch,
        )?;
        for &(ord, node) in &asm.vdd_pads {
            sk.register_vdd_pad(ord, node, asm.g_pad, -asm.g_pad * self.params.vdd);
        }
        for &(ord, node) in &asm.gnd_pads {
            sk.register_gnd_pad(ord, node, asm.g_pad);
        }
        let g_tsv = 1.0 / self.params.tsv_resistance_ohm;
        for layer in 0..self.n_layers.saturating_sub(1) {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                if self.alive_vdd_tsvs(&base, layer, core) == 0.0 {
                    continue; // dead at base: extra faults are no-ops
                }
                let mut edges = Vec::with_capacity(2 * nodes.len());
                for net in 0..2 {
                    for &n in nodes {
                        edges.push((self.node(layer, net, n), self.node(layer + 1, net, n)));
                    }
                }
                sk.register_tsv_bundle(
                    layer,
                    core,
                    &edges,
                    g_tsv / nodes.len() as f64,
                    self.topology.vdd_tsvs_per_core(),
                );
            }
        }
        Ok(sk)
    }

    /// Warm-started fault-free solve: the entry point serving layers
    /// (sweep schedulers, the `vstack-engine` query cache) use for
    /// repeated healthy-topology solves.
    ///
    /// Equivalent to [`RegularPdn::solve_faulted_scratch`] with an empty
    /// [`FaultSet`]: `guess` seeds the Krylov iteration (a converged guess
    /// returns unchanged, bit-identical, in zero iterations) and `scratch`
    /// recycles the symbolic CSR pattern and working vectors across calls.
    ///
    /// # Errors
    ///
    /// As for [`RegularPdn::solve_faulted`].
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve_warm(
        &self,
        loads: &StackLoads,
        guess: Option<&[f64]>,
        scratch: &mut SolveScratch,
    ) -> Result<FaultedSolution, PdnError> {
        self.solve_faulted_scratch(loads, &FaultSet::new(), guess, scratch)
    }

    /// Surviving supply-net TSVs of the `(interface, core)` bundle.
    fn alive_vdd_tsvs(&self, faults: &FaultSet, interface: usize, core: usize) -> f64 {
        self.topology
            .vdd_tsvs_per_core()
            .saturating_sub(faults.failed_tsv_count(interface, core)) as f64
    }

    /// Assembles the full SPD network for one load scenario, skipping the
    /// conductors open-circuited by `faults`.
    fn assemble(&self, loads: &StackLoads, faults: &FaultSet) -> AssembledReg {
        assert_eq!(loads.n_layers(), self.n_layers, "layer count mismatch");
        assert_eq!(
            loads.cores_per_layer(),
            self.floorplan.core_count(),
            "core count mismatch"
        );
        let g_count = self.grid.count();
        let n_unknowns = 2 * self.n_layers * g_count;
        let mut nb = NetworkBuilder::new(n_unknowns);
        let seg_r = self.params.grid_segment_resistance_ohm();

        // On-chip grids for every net on every layer, with any per-layer
        // resistance drift (thermal resistivity / EM) applied. Scaling
        // values only — the sparsity pattern is layer-independent, so
        // SolveScratch re-stamps stay valid across drift updates.
        for layer in 0..self.n_layers {
            let layer_r = seg_r * self.params.layer_resistance_scale(layer);
            for net in 0..2 {
                nb.grid_laplacian(&self.grid, self.node(layer, net, 0), layer_r);
            }
        }

        // C4 pads feed the bottom layer through pad + package resistance.
        // Failed pads are simply not stamped: an open circuit contributes
        // nothing to the nodal system.
        let g_pad = 1.0 / (self.params.c4_resistance_ohm + self.params.package_r_per_pad_ohm);
        let mut vdd_pads = Vec::new();
        let mut gnd_pads = Vec::new();
        let (mut vdd_ord, mut gnd_ord) = (0usize, 0usize);
        for pad in self.c4.pads() {
            let (i, j) = self.grid.nearest(pad.x_mm, pad.y_mm);
            let n = self.grid.index(i, j);
            match pad.net {
                PadNet::Vdd => {
                    if !faults.vdd_pad_failed(vdd_ord) {
                        let node = self.node(0, 0, n);
                        nb.conductance_to_rail(node, g_pad, self.params.vdd);
                        vdd_pads.push((vdd_ord, node));
                    }
                    vdd_ord += 1;
                }
                PadNet::Gnd => {
                    if !faults.gnd_pad_failed(gnd_ord) {
                        let node = self.node(0, 1, n);
                        nb.conductance_to_rail(node, g_pad, 0.0);
                        gnd_pads.push((gnd_ord, node));
                    }
                    gnd_ord += 1;
                }
                PadNet::Io => {}
            }
        }

        // TSVs between adjacent layers: per-core counts lumped onto the
        // core's grid nodes, half on each net. Fault counts shrink the
        // surviving bundle (symmetrically on both nets); a fully failed
        // bundle stamps nothing.
        let g_tsv = 1.0 / self.params.tsv_resistance_ohm;
        for layer in 0..self.n_layers.saturating_sub(1) {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let alive = self.alive_vdd_tsvs(faults, layer, core);
                if alive == 0.0 {
                    continue;
                }
                let per_node = alive / nodes.len() as f64;
                for &n in nodes {
                    for net in 0..2 {
                        let lo = self.node(layer, net, n);
                        let hi = self.node(layer + 1, net, n);
                        nb.conductance(lo, hi, per_node * g_tsv);
                    }
                }
            }
        }

        // Loads: ideal current sources between each layer's local Vdd and
        // Gnd nodes, spread uniformly over the core's grid nodes.
        for layer in 0..self.n_layers {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let i_core = loads.core_current(layer, core);
                for (k, &n) in nodes.iter().enumerate() {
                    let i_node = i_core * self.core_weights[core][k];
                    nb.current(self.node(layer, 0, n), -i_node);
                    nb.current(self.node(layer, 1, n), i_node);
                }
            }
        }

        AssembledReg {
            nb,
            vdd_pads,
            gnd_pads,
            g_pad,
        }
    }

    /// Extracts the solution metrics from a solved voltage vector. The
    /// pad lists must be the pads *alive under `faults`* — the exact path
    /// passes the assembly's lists, the sketch path filters its baseline
    /// lists down ([`crate::sketch::FaultSketch::alive_pads`]).
    #[allow(clippy::too_many_arguments)]
    fn extract(
        &self,
        loads: &StackLoads,
        v: Vec<f64>,
        vdd_pads: &[(usize, usize)],
        gnd_pads: &[(usize, usize)],
        g_pad: f64,
        faults: &FaultSet,
        report: SolveReport,
    ) -> FaultedSolution {
        let g_tsv = 1.0 / self.params.tsv_resistance_ohm;

        // --- Metrics ---
        let vdd_nom = self.params.vdd;
        let mut max_drop = f64::MIN;
        let mut worst_layer = 0;
        let mut per_layer_max_drop = vec![f64::MIN; self.n_layers];
        let mut drop_sum = 0.0;
        let mut drop_count = 0usize;
        let mut p_loads = 0.0;
        for layer in 0..self.n_layers {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let i_core = loads.core_current(layer, core);
                for (k, &n) in nodes.iter().enumerate() {
                    let i_node = i_core * self.core_weights[core][k];
                    let local = v[self.node(layer, 0, n)] - v[self.node(layer, 1, n)];
                    let drop = (vdd_nom - local) / vdd_nom;
                    if drop > max_drop {
                        max_drop = drop;
                        worst_layer = layer;
                    }
                    if drop > per_layer_max_drop[layer] {
                        per_layer_max_drop[layer] = drop;
                    }
                    drop_sum += drop;
                    drop_count += 1;
                    p_loads += i_node * local;
                }
            }
        }

        let mut vdd_c4 = ConductorCurrents::new();
        let mut vdd_pad_currents = Vec::with_capacity(vdd_pads.len());
        let mut p_input = 0.0;
        for &(ord, node) in vdd_pads {
            let i = g_pad * (vdd_nom - v[node]);
            vdd_c4.push(i, 1.0);
            vdd_pad_currents.push((ord, i));
            p_input += i * vdd_nom;
        }
        let mut gnd_c4 = ConductorCurrents::new();
        let mut gnd_pad_currents = Vec::with_capacity(gnd_pads.len());
        for &(ord, node) in gnd_pads {
            let i = g_pad * v[node];
            gnd_c4.push(i, 1.0);
            gnd_pad_currents.push((ord, i));
        }

        // TSV EM currents: per (interface, core, net) totals distributed
        // by the crowding model (grid-refinement independent). Fully
        // failed bundles carry nothing and are omitted.
        let mut tsv = ConductorCurrents::new();
        let mut tsv_groups = Vec::new();
        for layer in 0..self.n_layers.saturating_sub(1) {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let alive = self.alive_vdd_tsvs(faults, layer, core);
                if alive == 0.0 {
                    continue;
                }
                let per_node = alive / nodes.len() as f64;
                let mut worst_per_tsv = 0.0f64;
                for net in 0..2 {
                    let mut i_core = 0.0;
                    for &gn in nodes {
                        let lo = self.node(layer, net, gn);
                        let hi = self.node(layer + 1, net, gn);
                        i_core += (v[lo] - v[hi]).abs() * per_node * g_tsv;
                    }
                    tsv.push_crowded(
                        i_core,
                        alive,
                        self.params.tsv_hot_conductors_per_core,
                        self.params.tsv_crowding_spread,
                    );
                    worst_per_tsv = worst_per_tsv.max(i_core / alive);
                }
                tsv_groups.push(TsvGroupCurrent {
                    interface: layer,
                    core,
                    current_per_tsv_a: worst_per_tsv,
                    alive,
                });
            }
        }

        FaultedSolution {
            solution: PdnSolution {
                max_ir_drop_frac: max_drop,
                mean_ir_drop_frac: drop_sum / drop_count as f64,
                worst_layer,
                per_layer_max_drop,
                vdd_c4,
                gnd_c4,
                tsv,
                converter_currents: Vec::new(),
                overloaded_converters: 0,
                p_loads_w: p_loads,
                p_input_w: p_input,
                p_parasitic_w: 0.0,
            },
            report,
            voltages: v,
            vdd_pad_currents,
            gnd_pad_currents,
            tsv_groups,
        }
    }

    /// Backward-Euler step response of the regular PDN: DC under `before`,
    /// loads switch to `after` at `t = 0`, per-layer decap carries the
    /// transient. See [`crate::transient`].
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the DC or per-step CG solves.
    ///
    /// # Panics
    ///
    /// Panics if either load set does not match this PDN's layer/core
    /// counts, or the config is invalid.
    pub fn solve_transient_step(
        &self,
        before: &StackLoads,
        after: &StackLoads,
        config: &crate::transient::PdnTransientConfig,
    ) -> Result<crate::transient::StepResponse, SolveError> {
        use vstack_sparse::solver::{cg_with_guess_ws, CgOptions, SolveWorkspace};

        let steps = config.steps();
        assert!(
            config.decap_per_core_f.is_finite() && config.decap_per_core_f > 0.0,
            "decap must be positive"
        );
        let no_faults = FaultSet::new();
        let v0 = self.assemble(before, &no_faults).nb.solve(None)?;

        let mut asm = self.assemble(after, &no_faults);
        let mut decap_pairs: Vec<(usize, usize, f64)> = Vec::new();
        for layer in 0..self.n_layers {
            for nodes in &self.core_nodes {
                let c_node = config.decap_per_core_f / nodes.len() as f64;
                for &gn in nodes {
                    let a = self.node(layer, 0, gn);
                    let b = self.node(layer, 1, gn);
                    asm.nb.conductance(a, b, c_node / config.dt_s);
                    decap_pairs.push((a, b, c_node));
                }
            }
        }
        let a_t = asm.nb.to_matrix();
        let rhs_base = asm.nb.rhs().to_vec();

        let opts = CgOptions {
            tolerance: 1e-9,
            max_iterations: 50_000,
            ..CgOptions::default()
        };
        let mut v = v0.clone();
        let mut times_s = Vec::with_capacity(steps);
        let mut max_drop_series = Vec::with_capacity(steps);
        let mut rhs = vec![0.0; rhs_base.len()];
        // One workspace outside the time loop: every backward-Euler step
        // reuses the same Krylov vectors instead of reallocating them.
        let mut ws = SolveWorkspace::new();
        for step in 1..=steps {
            rhs.copy_from_slice(&rhs_base);
            for &(a, b, c) in &decap_pairs {
                let i_companion = (c / config.dt_s) * (v[a] - v[b]);
                rhs[a] += i_companion;
                rhs[b] -= i_companion;
            }
            v = cg_with_guess_ws(&a_t, &rhs, Some(&v), &opts, &mut ws)?.x;
            times_s.push(step as f64 * config.dt_s);
            max_drop_series.push(self.max_drop_of(&v));
        }

        Ok(crate::transient::StepResponse {
            times_s,
            max_drop_series,
            initial_drop: self.max_drop_of(&v0),
        })
    }

    /// Worst load-node IR-drop fraction for a node-voltage vector.
    fn max_drop_of(&self, v: &[f64]) -> f64 {
        let vdd_nom = self.params.vdd;
        let mut max_drop = f64::MIN;
        for layer in 0..self.n_layers {
            for nodes in &self.core_nodes {
                for &gn in nodes {
                    let local = v[self.node(layer, 0, gn)] - v[self.node(layer, 1, gn)];
                    max_drop = max_drop.max((vdd_nom - local) / vdd_nom);
                }
            }
        }
        max_drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> PdnParams {
        // Coarser grid keeps unit tests fast.
        let mut p = PdnParams::paper_defaults();
        p.grid_refinement = 1;
        p
    }

    #[test]
    fn single_layer_ir_drop_is_reasonable() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 1, TsvTopology::Sparse, 0.5);
        let sol = pdn.solve(&StackLoads::uniform_peak(&p, 1)).unwrap();
        assert!(
            sol.max_ir_drop_frac > 0.001 && sol.max_ir_drop_frac < 0.05,
            "got {}",
            sol.max_ir_drop_frac
        );
        assert!(sol.mean_ir_drop_frac <= sol.max_ir_drop_frac);
    }

    #[test]
    fn ir_drop_grows_with_layers() {
        let p = quick_params();
        let mut prev = 0.0;
        for n in [1, 2, 4] {
            let pdn = RegularPdn::new(&p, n, TsvTopology::Sparse, 0.5);
            let sol = pdn.solve(&StackLoads::uniform_peak(&p, n)).unwrap();
            assert!(
                sol.max_ir_drop_frac > prev,
                "{n} layers: {} ≤ {prev}",
                sol.max_ir_drop_frac
            );
            prev = sol.max_ir_drop_frac;
        }
    }

    #[test]
    fn worst_layer_is_the_top() {
        // The top layer is furthest from the pads.
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 4, TsvTopology::Few, 0.5);
        let sol = pdn.solve(&StackLoads::uniform_peak(&p, 4)).unwrap();
        assert_eq!(sol.worst_layer, 3);
    }

    #[test]
    fn fewer_tsvs_mean_more_drop() {
        let p = quick_params();
        let dense = RegularPdn::new(&p, 4, TsvTopology::Dense, 0.5)
            .solve(&StackLoads::uniform_peak(&p, 4))
            .unwrap();
        let few = RegularPdn::new(&p, 4, TsvTopology::Few, 0.5)
            .solve(&StackLoads::uniform_peak(&p, 4))
            .unwrap();
        assert!(few.max_ir_drop_frac > dense.max_ir_drop_frac);
    }

    #[test]
    fn pad_currents_sum_to_total_load() {
        let p = quick_params();
        let loads = StackLoads::uniform_peak(&p, 2);
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let sol = pdn.solve(&loads).unwrap();
        let pad_sum: f64 = sol
            .vdd_c4
            .groups()
            .iter()
            .map(|g| g.current_a * g.count)
            .sum();
        let total = loads.total_current();
        assert!(
            (pad_sum - total).abs() / total < 1e-3,
            "pads {pad_sum} vs loads {total}"
        );
    }

    #[test]
    fn tsv_current_rises_with_layer_count() {
        let p = quick_params();
        let two = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5)
            .solve(&StackLoads::uniform_peak(&p, 2))
            .unwrap();
        let eight = RegularPdn::new(&p, 8, TsvTopology::Few, 0.5)
            .solve(&StackLoads::uniform_peak(&p, 8))
            .unwrap();
        assert!(eight.tsv.max_current() > 3.0 * two.tsv.max_current());
    }

    #[test]
    fn more_power_pads_reduce_drop() {
        let p = quick_params();
        let lo = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.25)
            .solve(&StackLoads::uniform_peak(&p, 2))
            .unwrap();
        let hi = RegularPdn::new(&p, 2, TsvTopology::Sparse, 1.0)
            .solve(&StackLoads::uniform_peak(&p, 2))
            .unwrap();
        assert!(hi.max_ir_drop_frac < lo.max_ir_drop_frac);
    }

    #[test]
    fn transient_step_tracks_activity_jump() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let before = StackLoads::from_activities(&p, &[0.3, 0.3]);
        let after = StackLoads::from_activities(&p, &[1.0, 1.0]);
        let cfg = crate::transient::PdnTransientConfig::default();
        let resp = pdn.solve_transient_step(&before, &after, &cfg).unwrap();
        let dc_after = pdn.solve(&after).unwrap().max_ir_drop_frac;
        assert!(resp.initial_drop < dc_after);
        assert!((resp.final_drop() - dc_after).abs() < 0.1 * dc_after);
        assert!(resp.settling_time(0.001).is_some());
    }

    #[test]
    fn per_block_distribution_concentrates_drop() {
        use crate::params::LoadDistribution;
        let mut uniform = quick_params();
        uniform.load_distribution = LoadDistribution::Uniform;
        let mut per_block = quick_params();
        per_block.load_distribution = LoadDistribution::PerBlock;
        let loads_u = StackLoads::uniform_peak(&uniform, 2);
        let sol_u = RegularPdn::new(&uniform, 2, TsvTopology::Sparse, 0.5)
            .solve(&loads_u)
            .unwrap();
        let sol_b = RegularPdn::new(&per_block, 2, TsvTopology::Sparse, 0.5)
            .solve(&loads_u)
            .unwrap();
        // Same total current either way…
        let total = |s: &crate::solution::PdnSolution| -> f64 {
            s.vdd_c4
                .groups()
                .iter()
                .map(|g| g.current_a * g.count)
                .sum()
        };
        assert!((total(&sol_u) - total(&sol_b)).abs() / total(&sol_u) < 1e-3);
        // …and the distributions are genuinely different while describing
        // the same physical design (worst node moves, not explodes).
        assert_ne!(sol_b.max_ir_drop_frac, sol_u.max_ir_drop_frac);
        let ratio = sol_b.max_ir_drop_frac / sol_u.max_ir_drop_frac;
        assert!((0.6..1.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn killed_pad_shifts_current_to_survivors() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let loads = StackLoads::uniform_peak(&p, 2);
        let healthy = pdn.solve_faulted(&loads, &FaultSet::new(), None).unwrap();
        // Kill the supply pad carrying the most current.
        let &(victim, _) = healthy
            .vdd_pad_currents
            .iter()
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        let mut faults = FaultSet::new();
        faults.fail_vdd_pad(victim);
        let wounded = pdn
            .solve_faulted(&loads, &faults, Some(&healthy.voltages))
            .unwrap();
        assert_eq!(
            wounded.vdd_pad_currents.len(),
            healthy.vdd_pad_currents.len() - 1
        );
        assert!(!wounded.vdd_pad_currents.iter().any(|&(o, _)| o == victim));
        // The load current is conserved: survivors pick up the slack.
        let sum = |c: &[(usize, f64)]| c.iter().map(|&(_, i)| i).sum::<f64>();
        let (i_h, i_w) = (
            sum(&healthy.vdd_pad_currents),
            sum(&wounded.vdd_pad_currents),
        );
        assert!((i_h - i_w).abs() / i_h < 1e-3, "{i_h} vs {i_w}");
        assert!(wounded.solution.max_ir_drop_frac >= healthy.solution.max_ir_drop_frac);
    }

    #[test]
    fn killing_every_vdd_pad_is_disconnected_not_a_panic() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 1, TsvTopology::Sparse, 0.5);
        let loads = StackLoads::uniform_peak(&p, 1);
        let mut faults = FaultSet::new();
        for ord in 0..pdn.c4().vdd_count() {
            faults.fail_vdd_pad(ord);
        }
        let err = pdn.solve_faulted(&loads, &faults, None).unwrap_err();
        match err {
            crate::error::PdnError::Disconnected { floating_nodes, .. } => {
                // The whole supply net floats; the ground net stays tied.
                assert_eq!(floating_nodes, pdn.grid().count());
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn severed_interface_disconnects_upper_layers() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
        let loads = StackLoads::uniform_peak(&p, 2);
        let mut faults = FaultSet::new();
        for core in 0..p.floorplan().core_count() {
            faults.fail_tsvs(0, core, TsvTopology::Few.vdd_tsvs_per_core());
        }
        let err = pdn.solve_faulted(&loads, &faults, None).unwrap_err();
        match err {
            crate::error::PdnError::Disconnected { floating_nodes, .. } => {
                // Layer 1's supply and ground nets both float.
                assert_eq!(floating_nodes, 2 * pdn.grid().count());
            }
            other => panic!("expected Disconnected, got {other:?}"),
        }
    }

    #[test]
    fn tsv_fault_shrinks_the_bundle_and_raises_stress() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
        let loads = StackLoads::uniform_peak(&p, 2);
        let healthy = pdn.solve_faulted(&loads, &FaultSet::new(), None).unwrap();
        let mut faults = FaultSet::new();
        // Kill 80% of interface 0 / core 0's TSVs.
        let n_kill = TsvTopology::Few.vdd_tsvs_per_core() * 4 / 5;
        faults.fail_tsvs(0, 0, n_kill);
        let wounded = pdn.solve_faulted(&loads, &faults, None).unwrap();
        let group = |f: &FaultedSolution| {
            *f.tsv_groups
                .iter()
                .find(|g| g.interface == 0 && g.core == 0)
                .unwrap()
        };
        let (gh, gw) = (group(&healthy), group(&wounded));
        assert_eq!(gw.alive, gh.alive - n_kill as f64);
        assert!(
            gw.current_per_tsv_a > gh.current_per_tsv_a,
            "survivors must run hotter: {} vs {}",
            gw.current_per_tsv_a,
            gh.current_per_tsv_a
        );
    }

    #[test]
    fn scratch_fault_sweep_is_bit_identical_to_fresh_solves() {
        // A wearout-style sweep through one SolveScratch must reproduce
        // the per-step fresh solves exactly: same voltages, same ladder.
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
        let loads = StackLoads::uniform_peak(&p, 2);
        let mut scratch = SolveScratch::new();
        let mut faults = FaultSet::new();
        let mut warm: Option<Vec<f64>> = None;
        for step in 0..3 {
            if step > 0 {
                faults.fail_vdd_pad(step - 1);
                faults.fail_tsvs(0, 0, step);
            }
            let fresh = pdn.solve_faulted(&loads, &faults, warm.as_deref()).unwrap();
            let reused = pdn
                .solve_faulted_scratch(&loads, &faults, warm.as_deref(), &mut scratch)
                .unwrap();
            assert_eq!(fresh.voltages, reused.voltages, "step {step}");
            assert_eq!(fresh.report.trail(), reused.report.trail());
            warm = Some(fresh.voltages);
        }
    }

    #[test]
    fn empty_fault_set_matches_plain_solve() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let loads = StackLoads::uniform_peak(&p, 2);
        let plain = pdn.solve(&loads).unwrap();
        let faulted = pdn.solve_faulted(&loads, &FaultSet::new(), None).unwrap();
        assert!((plain.max_ir_drop_frac - faulted.solution.max_ir_drop_frac).abs() < 1e-12);
        assert!(!faulted.report.was_rescued());
        assert_eq!(faulted.voltages.len(), 2 * 2 * pdn.grid().count());
    }

    #[test]
    fn input_power_exceeds_load_power() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let sol = pdn.solve(&StackLoads::uniform_peak(&p, 2)).unwrap();
        assert!(sol.p_input_w > sol.p_loads_w);
        assert!(
            sol.efficiency() > 0.9,
            "wire losses only: {}",
            sol.efficiency()
        );
    }
}
