//! The conventional ("regular") 3D PDN topology — paper Fig 4a.
//!
//! All layers' supply nets are connected in parallel by Vdd TSV stacks,
//! all ground nets by Gnd TSV stacks, and the board feeds the bottom layer
//! through the C4 array. Every layer's full current crosses the pads and
//! the lower TSV interfaces, which is exactly why this topology's EM
//! lifetime collapses as layers are added (paper §5.1).

use vstack_power::floorplan::Floorplan;
use vstack_sparse::SolveError;

use crate::c4::{C4Array, PadNet};
use crate::network::{core_load_weights, core_node_map, GridSpec, NetworkBuilder};
use crate::params::PdnParams;
use crate::solution::{ConductorCurrents, PdnSolution};
use crate::stack::StackLoads;
use crate::tsv::TsvTopology;

/// Output of the assembly phase: the stamped network plus extraction
/// handles.
struct AssembledReg {
    nb: NetworkBuilder,
    vdd_pad_nodes: Vec<usize>,
    gnd_pad_nodes: Vec<usize>,
    g_pad: f64,
}

/// A regular (non-stacked) 3D PDN ready to solve against load scenarios.
#[derive(Debug, Clone)]
pub struct RegularPdn {
    params: PdnParams,
    n_layers: usize,
    topology: TsvTopology,
    c4: C4Array,
    grid: GridSpec,
    floorplan: Floorplan,
    core_nodes: Vec<Vec<usize>>,
    core_weights: Vec<Vec<f64>>,
}

impl RegularPdn {
    /// Builds the network structure for `n_layers` silicon layers with the
    /// given TSV topology and C4 power-pad fraction.
    ///
    /// # Panics
    ///
    /// Panics if `n_layers == 0` (C4-array panics propagate for invalid
    /// `power_c4_fraction`).
    pub fn new(
        params: &PdnParams,
        n_layers: usize,
        topology: TsvTopology,
        power_c4_fraction: f64,
    ) -> Self {
        assert!(n_layers >= 1, "need at least one layer");
        let c4 = C4Array::new(params, power_c4_fraction);
        let grid = GridSpec::from_params(params);
        let floorplan = params.floorplan();
        let core_nodes = core_node_map(&grid, &floorplan);
        let core_weights = core_load_weights(
            &grid,
            &floorplan,
            &params.core,
            &core_nodes,
            params.load_distribution,
        );
        RegularPdn {
            params: params.clone(),
            n_layers,
            topology,
            c4,
            grid,
            floorplan,
            core_nodes,
            core_weights,
        }
    }

    /// Number of stacked layers.
    pub fn n_layers(&self) -> usize {
        self.n_layers
    }

    /// The TSV topology in use.
    pub fn topology(&self) -> TsvTopology {
        self.topology
    }

    /// The C4 array (placement + allocation).
    pub fn c4(&self) -> &C4Array {
        &self.c4
    }

    /// The electrical modeling grid.
    pub fn grid(&self) -> &GridSpec {
        &self.grid
    }

    /// Flat unknown index of grid node `n` on `layer`'s Vdd (`net = 0`) or
    /// Gnd (`net = 1`) net.
    fn node(&self, layer: usize, net: usize, n: usize) -> usize {
        (layer * 2 + net) * self.grid.count() + n
    }

    /// Solves the network for the given loads.
    ///
    /// # Errors
    ///
    /// Returns [`SolveError`] if the CG solve fails (should not happen for
    /// well-formed networks).
    ///
    /// # Panics
    ///
    /// Panics if `loads` does not match this PDN's layer/core counts.
    pub fn solve(&self, loads: &StackLoads) -> Result<PdnSolution, SolveError> {
        let asm = self.assemble(loads);
        let v = asm.nb.solve(None)?;
        self.extract(loads, &v, &asm)
    }

    /// Assembles the full SPD network for one load scenario.
    fn assemble(&self, loads: &StackLoads) -> AssembledReg {
        assert_eq!(loads.n_layers(), self.n_layers, "layer count mismatch");
        assert_eq!(
            loads.cores_per_layer(),
            self.floorplan.core_count(),
            "core count mismatch"
        );
        let g_count = self.grid.count();
        let n_unknowns = 2 * self.n_layers * g_count;
        let mut nb = NetworkBuilder::new(n_unknowns);
        let seg_r = self.params.grid_segment_resistance_ohm();

        // On-chip grids for every net on every layer.
        for layer in 0..self.n_layers {
            for net in 0..2 {
                nb.grid_laplacian(&self.grid, self.node(layer, net, 0), seg_r);
            }
        }

        // C4 pads feed the bottom layer through pad + package resistance.
        let g_pad = 1.0 / (self.params.c4_resistance_ohm + self.params.package_r_per_pad_ohm);
        let mut vdd_pad_nodes = Vec::new();
        let mut gnd_pad_nodes = Vec::new();
        for pad in self.c4.pads() {
            let (i, j) = self.grid.nearest(pad.x_mm, pad.y_mm);
            let n = self.grid.index(i, j);
            match pad.net {
                PadNet::Vdd => {
                    let node = self.node(0, 0, n);
                    nb.conductance_to_rail(node, g_pad, self.params.vdd);
                    vdd_pad_nodes.push(node);
                }
                PadNet::Gnd => {
                    let node = self.node(0, 1, n);
                    nb.conductance_to_rail(node, g_pad, 0.0);
                    gnd_pad_nodes.push(node);
                }
                PadNet::Io => {}
            }
        }

        // TSVs between adjacent layers: per-core counts lumped onto the
        // core's grid nodes, half on each net.
        let g_tsv = 1.0 / self.params.tsv_resistance_ohm;
        for layer in 0..self.n_layers.saturating_sub(1) {
            for nodes in &self.core_nodes {
                let per_node = self.topology.vdd_tsvs_per_core() as f64 / nodes.len() as f64;
                for &n in nodes {
                    for net in 0..2 {
                        let lo = self.node(layer, net, n);
                        let hi = self.node(layer + 1, net, n);
                        nb.conductance(lo, hi, per_node * g_tsv);
                    }
                }
            }
        }

        // Loads: ideal current sources between each layer's local Vdd and
        // Gnd nodes, spread uniformly over the core's grid nodes.
        for layer in 0..self.n_layers {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let i_core = loads.core_current(layer, core);
                for (k, &n) in nodes.iter().enumerate() {
                    let i_node = i_core * self.core_weights[core][k];
                    nb.current(self.node(layer, 0, n), -i_node);
                    nb.current(self.node(layer, 1, n), i_node);
                }
            }
        }

        AssembledReg {
            nb,
            vdd_pad_nodes,
            gnd_pad_nodes,
            g_pad,
        }
    }

    /// Extracts the solution metrics from a solved voltage vector.
    fn extract(
        &self,
        loads: &StackLoads,
        v: &[f64],
        asm: &AssembledReg,
    ) -> Result<PdnSolution, SolveError> {
        let g_pad = asm.g_pad;
        let g_tsv = 1.0 / self.params.tsv_resistance_ohm;
        let (vdd_pad_nodes, gnd_pad_nodes) = (&asm.vdd_pad_nodes, &asm.gnd_pad_nodes);

        // --- Metrics ---
        let vdd_nom = self.params.vdd;
        let mut max_drop = f64::MIN;
        let mut worst_layer = 0;
        let mut per_layer_max_drop = vec![f64::MIN; self.n_layers];
        let mut drop_sum = 0.0;
        let mut drop_count = 0usize;
        let mut p_loads = 0.0;
        for layer in 0..self.n_layers {
            for (core, nodes) in self.core_nodes.iter().enumerate() {
                let i_core = loads.core_current(layer, core);
                for (k, &n) in nodes.iter().enumerate() {
                    let i_node = i_core * self.core_weights[core][k];
                    let local = v[self.node(layer, 0, n)] - v[self.node(layer, 1, n)];
                    let drop = (vdd_nom - local) / vdd_nom;
                    if drop > max_drop {
                        max_drop = drop;
                        worst_layer = layer;
                    }
                    if drop > per_layer_max_drop[layer] {
                        per_layer_max_drop[layer] = drop;
                    }
                    drop_sum += drop;
                    drop_count += 1;
                    p_loads += i_node * local;
                }
            }
        }

        let mut vdd_c4 = ConductorCurrents::new();
        let mut p_input = 0.0;
        for &node in vdd_pad_nodes {
            let i = g_pad * (vdd_nom - v[node]);
            vdd_c4.push(i, 1.0);
            p_input += i * vdd_nom;
        }
        let mut gnd_c4 = ConductorCurrents::new();
        for &node in gnd_pad_nodes {
            gnd_c4.push(g_pad * v[node], 1.0);
        }

        // TSV EM currents: per (interface, core, net) totals distributed
        // by the crowding model (grid-refinement independent).
        let mut tsv = ConductorCurrents::new();
        for layer in 0..self.n_layers.saturating_sub(1) {
            for nodes in &self.core_nodes {
                let per_node = self.topology.vdd_tsvs_per_core() as f64 / nodes.len() as f64;
                for net in 0..2 {
                    let mut i_core = 0.0;
                    for &gn in nodes {
                        let lo = self.node(layer, net, gn);
                        let hi = self.node(layer + 1, net, gn);
                        i_core += (v[lo] - v[hi]).abs() * per_node * g_tsv;
                    }
                    tsv.push_crowded(
                        i_core,
                        self.topology.vdd_tsvs_per_core() as f64,
                        self.params.tsv_hot_conductors_per_core,
                        self.params.tsv_crowding_spread,
                    );
                }
            }
        }

        Ok(PdnSolution {
            max_ir_drop_frac: max_drop,
            mean_ir_drop_frac: drop_sum / drop_count as f64,
            worst_layer,
            per_layer_max_drop,
            vdd_c4,
            gnd_c4,
            tsv,
            converter_currents: Vec::new(),
            overloaded_converters: 0,
            p_loads_w: p_loads,
            p_input_w: p_input,
            p_parasitic_w: 0.0,
        })
    }

    /// Backward-Euler step response of the regular PDN: DC under `before`,
    /// loads switch to `after` at `t = 0`, per-layer decap carries the
    /// transient. See [`crate::transient`].
    ///
    /// # Errors
    ///
    /// Propagates [`SolveError`] from the DC or per-step CG solves.
    ///
    /// # Panics
    ///
    /// Panics if either load set does not match this PDN's layer/core
    /// counts, or the config is invalid.
    pub fn solve_transient_step(
        &self,
        before: &StackLoads,
        after: &StackLoads,
        config: &crate::transient::PdnTransientConfig,
    ) -> Result<crate::transient::StepResponse, SolveError> {
        use vstack_sparse::solver::{cg_with_guess, CgOptions};

        let steps = config.steps();
        assert!(
            config.decap_per_core_f.is_finite() && config.decap_per_core_f > 0.0,
            "decap must be positive"
        );
        let v0 = self.assemble(before).nb.solve(None)?;

        let mut asm = self.assemble(after);
        let mut decap_pairs: Vec<(usize, usize, f64)> = Vec::new();
        for layer in 0..self.n_layers {
            for nodes in &self.core_nodes {
                let c_node = config.decap_per_core_f / nodes.len() as f64;
                for &gn in nodes {
                    let a = self.node(layer, 0, gn);
                    let b = self.node(layer, 1, gn);
                    asm.nb.conductance(a, b, c_node / config.dt_s);
                    decap_pairs.push((a, b, c_node));
                }
            }
        }
        let a_t = asm.nb.to_matrix();
        let rhs_base = asm.nb.rhs().to_vec();

        let opts = CgOptions {
            tolerance: 1e-9,
            max_iterations: 50_000,
            ..CgOptions::default()
        };
        let mut v = v0.clone();
        let mut times_s = Vec::with_capacity(steps);
        let mut max_drop_series = Vec::with_capacity(steps);
        let mut rhs = vec![0.0; rhs_base.len()];
        for step in 1..=steps {
            rhs.copy_from_slice(&rhs_base);
            for &(a, b, c) in &decap_pairs {
                let i_companion = (c / config.dt_s) * (v[a] - v[b]);
                rhs[a] += i_companion;
                rhs[b] -= i_companion;
            }
            v = cg_with_guess(&a_t, &rhs, Some(&v), &opts)?.x;
            times_s.push(step as f64 * config.dt_s);
            max_drop_series.push(self.max_drop_of(&v));
        }

        Ok(crate::transient::StepResponse {
            times_s,
            max_drop_series,
            initial_drop: self.max_drop_of(&v0),
        })
    }

    /// Worst load-node IR-drop fraction for a node-voltage vector.
    fn max_drop_of(&self, v: &[f64]) -> f64 {
        let vdd_nom = self.params.vdd;
        let mut max_drop = f64::MIN;
        for layer in 0..self.n_layers {
            for nodes in &self.core_nodes {
                for &gn in nodes {
                    let local = v[self.node(layer, 0, gn)] - v[self.node(layer, 1, gn)];
                    max_drop = max_drop.max((vdd_nom - local) / vdd_nom);
                }
            }
        }
        max_drop
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_params() -> PdnParams {
        // Coarser grid keeps unit tests fast.
        let mut p = PdnParams::paper_defaults();
        p.grid_refinement = 1;
        p
    }

    #[test]
    fn single_layer_ir_drop_is_reasonable() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 1, TsvTopology::Sparse, 0.5);
        let sol = pdn.solve(&StackLoads::uniform_peak(&p, 1)).unwrap();
        assert!(
            sol.max_ir_drop_frac > 0.001 && sol.max_ir_drop_frac < 0.05,
            "got {}",
            sol.max_ir_drop_frac
        );
        assert!(sol.mean_ir_drop_frac <= sol.max_ir_drop_frac);
    }

    #[test]
    fn ir_drop_grows_with_layers() {
        let p = quick_params();
        let mut prev = 0.0;
        for n in [1, 2, 4] {
            let pdn = RegularPdn::new(&p, n, TsvTopology::Sparse, 0.5);
            let sol = pdn.solve(&StackLoads::uniform_peak(&p, n)).unwrap();
            assert!(
                sol.max_ir_drop_frac > prev,
                "{n} layers: {} ≤ {prev}",
                sol.max_ir_drop_frac
            );
            prev = sol.max_ir_drop_frac;
        }
    }

    #[test]
    fn worst_layer_is_the_top() {
        // The top layer is furthest from the pads.
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 4, TsvTopology::Few, 0.5);
        let sol = pdn.solve(&StackLoads::uniform_peak(&p, 4)).unwrap();
        assert_eq!(sol.worst_layer, 3);
    }

    #[test]
    fn fewer_tsvs_mean_more_drop() {
        let p = quick_params();
        let dense = RegularPdn::new(&p, 4, TsvTopology::Dense, 0.5)
            .solve(&StackLoads::uniform_peak(&p, 4))
            .unwrap();
        let few = RegularPdn::new(&p, 4, TsvTopology::Few, 0.5)
            .solve(&StackLoads::uniform_peak(&p, 4))
            .unwrap();
        assert!(few.max_ir_drop_frac > dense.max_ir_drop_frac);
    }

    #[test]
    fn pad_currents_sum_to_total_load() {
        let p = quick_params();
        let loads = StackLoads::uniform_peak(&p, 2);
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let sol = pdn.solve(&loads).unwrap();
        let pad_sum: f64 = sol
            .vdd_c4
            .groups()
            .iter()
            .map(|g| g.current_a * g.count)
            .sum();
        let total = loads.total_current();
        assert!(
            (pad_sum - total).abs() / total < 1e-3,
            "pads {pad_sum} vs loads {total}"
        );
    }

    #[test]
    fn tsv_current_rises_with_layer_count() {
        let p = quick_params();
        let two = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5)
            .solve(&StackLoads::uniform_peak(&p, 2))
            .unwrap();
        let eight = RegularPdn::new(&p, 8, TsvTopology::Few, 0.5)
            .solve(&StackLoads::uniform_peak(&p, 8))
            .unwrap();
        assert!(eight.tsv.max_current() > 3.0 * two.tsv.max_current());
    }

    #[test]
    fn more_power_pads_reduce_drop() {
        let p = quick_params();
        let lo = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.25)
            .solve(&StackLoads::uniform_peak(&p, 2))
            .unwrap();
        let hi = RegularPdn::new(&p, 2, TsvTopology::Sparse, 1.0)
            .solve(&StackLoads::uniform_peak(&p, 2))
            .unwrap();
        assert!(hi.max_ir_drop_frac < lo.max_ir_drop_frac);
    }

    #[test]
    fn transient_step_tracks_activity_jump() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let before = StackLoads::from_activities(&p, &[0.3, 0.3]);
        let after = StackLoads::from_activities(&p, &[1.0, 1.0]);
        let cfg = crate::transient::PdnTransientConfig::default();
        let resp = pdn.solve_transient_step(&before, &after, &cfg).unwrap();
        let dc_after = pdn.solve(&after).unwrap().max_ir_drop_frac;
        assert!(resp.initial_drop < dc_after);
        assert!((resp.final_drop() - dc_after).abs() < 0.1 * dc_after);
        assert!(resp.settling_time(0.001).is_some());
    }

    #[test]
    fn per_block_distribution_concentrates_drop() {
        use crate::params::LoadDistribution;
        let mut uniform = quick_params();
        uniform.load_distribution = LoadDistribution::Uniform;
        let mut per_block = quick_params();
        per_block.load_distribution = LoadDistribution::PerBlock;
        let loads_u = StackLoads::uniform_peak(&uniform, 2);
        let sol_u = RegularPdn::new(&uniform, 2, TsvTopology::Sparse, 0.5)
            .solve(&loads_u)
            .unwrap();
        let sol_b = RegularPdn::new(&per_block, 2, TsvTopology::Sparse, 0.5)
            .solve(&loads_u)
            .unwrap();
        // Same total current either way…
        let total = |s: &crate::solution::PdnSolution| -> f64 {
            s.vdd_c4
                .groups()
                .iter()
                .map(|g| g.current_a * g.count)
                .sum()
        };
        assert!((total(&sol_u) - total(&sol_b)).abs() / total(&sol_u) < 1e-3);
        // …and the distributions are genuinely different while describing
        // the same physical design (worst node moves, not explodes).
        assert_ne!(sol_b.max_ir_drop_frac, sol_u.max_ir_drop_frac);
        let ratio = sol_b.max_ir_drop_frac / sol_u.max_ir_drop_frac;
        assert!((0.6..1.7).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn input_power_exceeds_load_power() {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let sol = pdn.solve(&StackLoads::uniform_peak(&p, 2)).unwrap();
        assert!(sol.p_input_w > sol.p_loads_w);
        assert!(
            sol.efficiency() > 0.9,
            "wire losses only: {}",
            sol.efficiency()
        );
    }
}
