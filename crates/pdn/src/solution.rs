//! Solved-network outputs: IR drop, conductor current profiles, power
//! bookkeeping.

/// A group of identical conductors carrying the same current — the unit the
/// EM model consumes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurrentGroup {
    /// Current per conductor, in amperes (magnitude).
    pub current_a: f64,
    /// How many conductors carry this current. Fractional counts arise
    /// when TSVs are lumped onto grid nodes; the EM model handles them
    /// exactly (they appear as exponents of survival probabilities).
    pub count: f64,
}

/// Per-conductor current profile of a pad or TSV array.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ConductorCurrents {
    groups: Vec<CurrentGroup>,
}

impl ConductorCurrents {
    /// Creates an empty profile.
    pub fn new() -> Self {
        ConductorCurrents::default()
    }

    /// Adds a group of `count` conductors each carrying `current_a`
    /// (the sign is dropped — EM stress follows current magnitude).
    ///
    /// # Panics
    ///
    /// Panics if `count` is not finite and positive or `current_a` is not
    /// finite.
    pub fn push(&mut self, current_a: f64, count: f64) {
        assert!(current_a.is_finite(), "current must be finite");
        assert!(count.is_finite() && count > 0.0, "count must be positive");
        self.groups.push(CurrentGroup {
            current_a: current_a.abs(),
            count,
        });
    }

    /// The conductor groups.
    pub fn groups(&self) -> &[CurrentGroup] {
        &self.groups
    }

    /// Whether the profile is empty.
    pub fn is_empty(&self) -> bool {
        self.groups.is_empty()
    }

    /// Total number of conductors.
    pub fn total_count(&self) -> f64 {
        self.groups.iter().map(|g| g.count).sum()
    }

    /// Largest per-conductor current.
    pub fn max_current(&self) -> f64 {
        self.groups.iter().map(|g| g.current_a).fold(0.0, f64::max)
    }

    /// Count-weighted mean current.
    pub fn mean_current(&self) -> f64 {
        let n = self.total_count();
        if n == 0.0 {
            return 0.0;
        }
        self.groups
            .iter()
            .map(|g| g.current_a * g.count)
            .sum::<f64>()
            / n
    }

    /// Merges another profile into this one.
    pub fn extend_from(&mut self, other: &ConductorCurrents) {
        self.groups.extend_from_slice(&other.groups);
    }

    /// Adds a TSV bundle of `count` conductors sharing `total_current`
    /// under the local crowding model: `neff` conductors carry
    /// `(1 − spread)` of the current, the remainder shares the rest.
    ///
    /// # Panics
    ///
    /// Panics on non-positive `count`/`neff` or `spread ∉ [0, 1]`.
    pub fn push_crowded(&mut self, total_current: f64, count: f64, neff: f64, spread: f64) {
        assert!(neff > 0.0, "crowding neff must be positive");
        assert!((0.0..=1.0).contains(&spread), "spread must be in [0,1]");
        let i = total_current.abs();
        if count <= neff {
            self.push(i / count, count);
            return;
        }
        self.push((1.0 - spread) * i / neff, neff);
        let rest = count - neff;
        self.push(spread * i / rest, rest);
    }
}

/// Complete result of one PDN solve.
#[derive(Debug, Clone, PartialEq)]
pub struct PdnSolution {
    /// Worst on-chip IR drop as a fraction of the per-layer Vdd (the
    /// y-axis of the paper's Fig 6).
    pub max_ir_drop_frac: f64,
    /// Load-node-averaged IR drop fraction.
    pub mean_ir_drop_frac: f64,
    /// Layer (0 = bottom) where the worst drop occurs.
    pub worst_layer: usize,
    /// Worst IR-drop fraction of each layer (index 0 = bottom).
    pub per_layer_max_drop: Vec<f64>,
    /// Per-conductor currents of the supply C4 pads.
    pub vdd_c4: ConductorCurrents,
    /// Per-conductor currents of the return C4 pads.
    pub gnd_c4: ConductorCurrents,
    /// Per-conductor currents of every power-TSV segment (including V-S
    /// through-via segments).
    pub tsv: ConductorCurrents,
    /// Output current of every SC converter (V-S only; empty for regular
    /// PDNs). Positive = sourcing into its rail.
    pub converter_currents: Vec<f64>,
    /// How many converters exceed their rated current (Fig 6 skips design
    /// points where this is nonzero).
    pub overloaded_converters: usize,
    /// Power delivered into the loads, in watts.
    pub p_loads_w: f64,
    /// Power drawn from the board supply, in watts.
    pub p_input_w: f64,
    /// Aggregate converter parasitic (switching + controller) power, in
    /// watts; zero for regular PDNs.
    pub p_parasitic_w: f64,
}

impl PdnSolution {
    /// System power efficiency: load power over total power drawn,
    /// including converter parasitics (the y-axis of the paper's Fig 8).
    pub fn efficiency(&self) -> f64 {
        let total = self.p_input_w + self.p_parasitic_w;
        if total <= 0.0 {
            return 0.0;
        }
        self.p_loads_w / total
    }

    /// Whether any converter is overloaded.
    pub fn has_overload(&self) -> bool {
        self.overloaded_converters > 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_group_statistics() {
        let mut c = ConductorCurrents::new();
        c.push(-0.2, 2.0); // sign dropped
        c.push(0.1, 8.0);
        assert_eq!(c.max_current(), 0.2);
        assert_eq!(c.total_count(), 10.0);
        assert!((c.mean_current() - 0.12).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_mean_is_zero() {
        assert_eq!(ConductorCurrents::new().mean_current(), 0.0);
        assert_eq!(ConductorCurrents::new().max_current(), 0.0);
    }

    #[test]
    fn extend_merges_groups() {
        let mut a = ConductorCurrents::new();
        a.push(1.0, 1.0);
        let mut b = ConductorCurrents::new();
        b.push(2.0, 3.0);
        a.extend_from(&b);
        assert_eq!(a.total_count(), 4.0);
        assert_eq!(a.max_current(), 2.0);
    }

    #[test]
    fn efficiency_includes_parasitics() {
        let sol = PdnSolution {
            max_ir_drop_frac: 0.01,
            mean_ir_drop_frac: 0.005,
            worst_layer: 0,
            per_layer_max_drop: vec![0.01],
            vdd_c4: ConductorCurrents::new(),
            gnd_c4: ConductorCurrents::new(),
            tsv: ConductorCurrents::new(),
            converter_currents: vec![],
            overloaded_converters: 0,
            p_loads_w: 90.0,
            p_input_w: 95.0,
            p_parasitic_w: 5.0,
        };
        assert!((sol.efficiency() - 0.9).abs() < 1e-12);
        assert!(!sol.has_overload());
    }

    #[test]
    #[should_panic(expected = "count must be positive")]
    fn zero_count_rejected() {
        ConductorCurrents::new().push(1.0, 0.0);
    }
}
