//! Rank-k fault sketches: microsecond what-if solves via Sherman–Morrison–
//! Woodbury (SMW) downdates of a cached baseline.
//!
//! A fault map asks the same question thousands of times: "what does the
//! grid look like with *these* conductors open?" Each variant differs from
//! a common baseline by a handful of rank-one conductance removals — a pad
//! rail (`g·e_aeᵀ_a`) or a TSV bundle edge (`g·(e_lo−e_hi)(e_lo−e_hi)ᵀ`).
//! [`FaultSketch`] caches one solved baseline `A₀x₀ = b₀` plus the solve
//! vectors `A₀⁻¹u_j` for the candidate fault columns, and answers any
//! [`FaultSet`] within its rank budget through the SMW identity in a
//! [`vstack_sparse::SmwSketch`]: a dense k×k Cholesky and a few axpy
//! passes instead of a fresh Krylov solve — milliseconds down to tens of
//! microseconds at paper scale.
//!
//! The sketch is **value-fingerprinted**: drivers hash every parameter
//! that shapes the baseline matrix and right-hand side
//! ([`FingerprintHasher`]) and drop a cached sketch whose fingerprint no
//! longer matches. Structural re-stamps clear it through
//! [`crate::network::SolveScratch`]; a fault query against a fresh
//! scratch lazily rebuilds it. Answers carry an SMW-internal residual
//! guard — near-singular capacitance matrices (structural disconnection)
//! or over-tolerance residuals reject the update and the caller falls
//! back to the exact ladder solve, so accuracy is never traded away.

use std::collections::BTreeMap;

use vstack_sparse::{
    solve_robust_cached_ws, AmgHierarchy, CsrMatrix, RobustOptions, SmwAnswer, SmwRejection,
    SmwSketch, SmwUpdate, SolveMethod, SolveReport,
};

use crate::error::PdnError;
use crate::fault::{FaultSet, FaultedSolution};
use crate::network::{NetworkBuilder, SolveScratch};

/// Power-pad list as `(ordinal, matrix node)` pairs.
pub(crate) type PadList = Vec<(usize, usize)>;

/// Maximum SMW rank per query. Beyond this the dense k×k factor and the
/// 2k axpy passes stop beating the iterative solve, so the planner
/// rebases the sketch onto the query's fault set instead.
pub const SKETCH_BUDGET: usize = 128;

/// Maximum edge columns a single TSV bundle may contribute. Bundles wider
/// than this (very fine refinement grids) are registered without columns
/// and force a rebase when faulted.
pub const TSV_EDGE_CAP: usize = 128;

/// Tolerance of the baseline and column solves. Tighter than the exact
/// path's `1e-9` because the SMW residual guard only measures the *update*
/// error — the ingredients must not dominate the error budget.
const BUILD_TOLERANCE: f64 = 1e-11;

/// Relative-residual acceptance threshold for SMW answers, matching the
/// exact ladder's solve tolerance.
const SMW_TOLERANCE: f64 = 1e-9;

/// Soft cap on resident solve-vector memory (bytes); bounds the number of
/// simultaneously-ready columns via an LRU eviction in
/// [`FaultSketch::ensure_columns`].
const W_CACHE_BYTES: usize = 512 << 20;

/// FNV-1a-64 over the values that shape a sketch's baseline system.
///
/// Drivers feed every parameter whose change alters the stamped matrix or
/// right-hand side (conductances, supply voltages, per-core load currents,
/// topology dimensions); floats are hashed by their IEEE-754 bit pattern,
/// so a fingerprint match means *bit-identical* stamping inputs.
#[derive(Debug, Clone)]
pub struct FingerprintHasher(u64);

impl FingerprintHasher {
    /// FNV-1a offset basis.
    pub fn new() -> Self {
        FingerprintHasher(0xcbf2_9ce4_8422_2325)
    }

    /// Folds a `u64` in, byte by byte.
    pub fn u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
    }

    /// Folds a `usize` in.
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Folds a float in by bit pattern (`-0.0 ≠ 0.0`, NaNs by payload).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// The accumulated fingerprint.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for FingerprintHasher {
    fn default() -> Self {
        FingerprintHasher::new()
    }
}

/// One registered pad-rail fault column.
#[derive(Debug, Clone, Copy)]
struct PadColumn {
    /// Column id inside the [`SmwSketch`].
    col: usize,
    /// Rail conductance removed when this pad opens.
    scale: f64,
    /// Right-hand-side correction (`−g·v_rail` becomes `+g·v_rail`, i.e.
    /// the stamped source current disappears). Zero for ground pads.
    rhs_delta: f64,
}

/// One registered TSV bundle: each surviving-at-base conductor edge gets
/// its own column, faulting `d` conductors scales every edge column by
/// `d · per_fail_scale / edges`.
#[derive(Debug, Clone)]
struct TsvBundleColumns {
    /// Column ids inside the [`SmwSketch`], one per stamped grid edge
    /// (both nets for the regular topology). Empty when the bundle is
    /// wider than [`TSV_EDGE_CAP`].
    cols: Vec<usize>,
    /// Conductance removed from each stamped edge per failed TSV
    /// (`g_tsv / nodes_per_core`).
    per_fail_scale: f64,
    /// Physical TSVs in the bundle; fault counts clamp here.
    total: usize,
}

/// How to answer a fault query against the current sketch.
#[derive(Debug)]
pub(crate) enum SketchPlan {
    /// The query *is* the sketch baseline — reuse the stored solve.
    Baseline,
    /// Apply these SMW downdates to the baseline.
    Updates(Vec<SmwUpdate>),
    /// The sketch cannot reach the query; rebuild it with this fault set
    /// as the new baseline, then re-plan.
    Rebase(FaultSet),
    /// Give up and use the exact ladder solve.
    Fallback,
}

/// A cached, fingerprinted baseline solve plus fault columns, answering
/// fault what-ifs by rank-k SMW downdates.
///
/// Stored inside [`SolveScratch`] between fault queries; invalidated by
/// structural re-stamps (the scratch clears it) and by value changes (the
/// driver compares fingerprints). Topology-agnostic: the regular and
/// voltage-stacked drivers register their own pad and TSV columns and
/// keep extraction knowledge (conductances, node maps) to themselves.
pub struct FaultSketch {
    /// Value fingerprint of the parameters that shaped `a0`/`b0`.
    fingerprint: u64,
    /// The fault set the baseline was assembled *with* — queries answer
    /// supersets of this by removing more conductors.
    base_faults: FaultSet,
    /// The SMW engine: baseline solution, fault columns, solve vectors.
    smw: SmwSketch,
    /// Report of the baseline solve, replayed for exact-baseline hits.
    baseline_report: SolveReport,
    /// `(ordinal, node)` of every supply pad alive at the base fault set.
    baseline_vdd_pads: PadList,
    /// `(ordinal, node)` of every return pad alive at the base fault set.
    baseline_gnd_pads: PadList,
    /// Total supply power-pad ordinals in the topology (valid range).
    vdd_pad_count: usize,
    /// Total return power-pad ordinals in the topology (valid range).
    gnd_pad_count: usize,
    /// Number of TSV interfaces (`n_layers − 1`).
    interfaces: usize,
    /// Cores per layer in the floorplan.
    core_count: usize,
    /// Supply-pad fault columns by ordinal.
    vdd_cols: BTreeMap<usize, PadColumn>,
    /// Return-pad fault columns by ordinal.
    gnd_cols: BTreeMap<usize, PadColumn>,
    /// TSV bundle columns by `(interface, core)`. Only bundles alive at
    /// the base fault set appear; dead bundles contribute nothing.
    tsv_cols: BTreeMap<(usize, usize), TsvBundleColumns>,
    /// The baseline matrix, for lazily solving fault columns.
    a0: CsrMatrix,
    /// AMG hierarchy cache shared across column solves of this sketch.
    amg: Option<AmgHierarchy>,
    /// LRU clock for column eviction.
    clock: u64,
    /// Last-touched stamp per SMW column id.
    col_stamp: Vec<u64>,
    /// Ready-column cap derived from [`W_CACHE_BYTES`].
    max_ready: usize,
}

impl std::fmt::Debug for FaultSketch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultSketch")
            .field("fingerprint", &format_args!("{:016x}", self.fingerprint))
            .field("n", &self.smw.n())
            .field("base_faults", &self.base_faults)
            .field("columns", &self.smw.num_columns())
            .field("ready", &self.smw.ready_count())
            .field("max_ready", &self.max_ready)
            .finish_non_exhaustive()
    }
}

impl FaultSketch {
    /// Solves the baseline system and wraps it in an empty sketch; the
    /// driver registers fault columns afterwards.
    ///
    /// `pad_counts` is `(vdd, gnd)` power-pad totals, `dims` is
    /// `(interfaces, core_count)`. `nb` must be assembled with
    /// `base_faults` applied.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn build(
        fingerprint: u64,
        base_faults: FaultSet,
        nb: &NetworkBuilder,
        vdd_pads: PadList,
        gnd_pads: PadList,
        pad_counts: (usize, usize),
        dims: (usize, usize),
        scratch: &mut SolveScratch,
    ) -> Result<FaultSketch, PdnError> {
        let a0 = nb.to_matrix();
        if let Some((floating_nodes, example_node)) = nb.floating_nodes(&a0) {
            return Err(PdnError::Disconnected {
                floating_nodes,
                example_node,
            });
        }
        let n = nb.len();
        let opts = Self::solve_options(n, scratch);
        let mut amg = None;
        let solved = solve_robust_cached_ws(
            &a0,
            nb.rhs(),
            None,
            &opts,
            scratch.workspace_mut(),
            &mut amg,
        )
        .map_err(PdnError::Solve)?;
        let max_ready = (W_CACHE_BYTES / (8 * n.max(1))).clamp(16, 512);
        Ok(FaultSketch {
            fingerprint,
            base_faults,
            smw: SmwSketch::new(solved.x, nb.rhs().to_vec(), SMW_TOLERANCE),
            baseline_report: solved.report,
            baseline_vdd_pads: vdd_pads,
            baseline_gnd_pads: gnd_pads,
            vdd_pad_count: pad_counts.0,
            gnd_pad_count: pad_counts.1,
            interfaces: dims.0,
            core_count: dims.1,
            vdd_cols: BTreeMap::new(),
            gnd_cols: BTreeMap::new(),
            tsv_cols: BTreeMap::new(),
            a0,
            amg,
            clock: 0,
            col_stamp: Vec::new(),
            max_ready,
        })
    }

    fn solve_options(n: usize, scratch: &SolveScratch) -> RobustOptions {
        RobustOptions {
            tolerance: BUILD_TOLERANCE,
            max_iterations: 50_000,
            start_with_ic: false,
            start_with_amg: n >= NetworkBuilder::AMG_MIN_UNKNOWNS,
            start_with_mixed: false,
            cancel: scratch.cancel_token().clone(),
            ..RobustOptions::default()
        }
    }

    /// Value fingerprint this sketch was built under.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// Number of unknowns in the baseline system.
    pub fn n(&self) -> usize {
        self.smw.n()
    }

    /// The fault set the baseline was assembled with.
    pub fn base_faults(&self) -> &FaultSet {
        &self.base_faults
    }

    /// A copy of the baseline node voltages.
    pub fn baseline_voltages(&self) -> Vec<f64> {
        self.smw.baseline().to_vec()
    }

    /// A copy of the baseline solve report.
    pub fn baseline_report(&self) -> SolveReport {
        self.baseline_report.clone()
    }

    /// `(ordinal, node)` pad lists filtered down to the pads alive under
    /// `faults`. Valid whenever the sketch answers `faults` — the planner
    /// only answers supersets of the base fault set, so the base pad lists
    /// contain every pad alive under the query.
    pub(crate) fn alive_pads(&self, faults: &FaultSet) -> (PadList, PadList) {
        let vdd = self
            .baseline_vdd_pads
            .iter()
            .copied()
            .filter(|&(ord, _)| !faults.vdd_pad_failed(ord))
            .collect();
        let gnd = self
            .baseline_gnd_pads
            .iter()
            .copied()
            .filter(|&(ord, _)| !faults.gnd_pad_failed(ord))
            .collect();
        (vdd, gnd)
    }

    /// Registers the fault column of supply pad `ordinal` stamped at
    /// `node`: opening it removes `scale` from the diagonal and cancels
    /// the stamped source current `scale · v_rail` (pass the signed
    /// correction as `rhs_delta`).
    pub(crate) fn register_vdd_pad(
        &mut self,
        ordinal: usize,
        node: usize,
        scale: f64,
        rhs_delta: f64,
    ) {
        let col = self.smw.add_column(vec![(node, 1.0)]);
        self.col_stamp.push(0);
        self.vdd_cols.insert(
            ordinal,
            PadColumn {
                col,
                scale,
                rhs_delta,
            },
        );
    }

    /// Registers the fault column of return pad `ordinal` stamped at
    /// `node` (no right-hand-side correction — the return rail is 0 V).
    pub(crate) fn register_gnd_pad(&mut self, ordinal: usize, node: usize, scale: f64) {
        let col = self.smw.add_column(vec![(node, 1.0)]);
        self.col_stamp.push(0);
        self.gnd_cols.insert(
            ordinal,
            PadColumn {
                col,
                scale,
                rhs_delta: 0.0,
            },
        );
    }

    /// Registers a TSV bundle alive at the base fault set. `edges` are the
    /// stamped `(lo, hi)` node pairs (column `e_lo − e_hi` each); faulting
    /// `d` more TSVs removes `d · per_fail_scale` conductance from every
    /// edge. Bundles wider than [`TSV_EDGE_CAP`] get no columns and force
    /// a rebase when faulted.
    pub(crate) fn register_tsv_bundle(
        &mut self,
        interface: usize,
        core: usize,
        edges: &[(usize, usize)],
        per_fail_scale: f64,
        total: usize,
    ) {
        let cols = if !edges.is_empty() && edges.len() <= TSV_EDGE_CAP {
            edges
                .iter()
                .map(|&(lo, hi)| {
                    let col = self.smw.add_column(vec![(lo, 1.0), (hi, -1.0)]);
                    self.col_stamp.push(0);
                    col
                })
                .collect()
        } else {
            Vec::new()
        };
        self.tsv_cols.insert(
            (interface, core),
            TsvBundleColumns {
                cols,
                per_fail_scale,
                total,
            },
        );
    }

    /// Plans how to answer `faults` from the current baseline.
    pub(crate) fn plan(&self, faults: &FaultSet) -> SketchPlan {
        if *faults == self.base_faults {
            return SketchPlan::Baseline;
        }
        if !self.base_faults.is_subset_of(faults) {
            // The query *heals* a conductor relative to the baseline —
            // SMW downdates cannot add conductance back, so restart from
            // the empty baseline if the query fits the budget there.
            return if self.sketchable_from_empty(faults) {
                SketchPlan::Rebase(FaultSet::new())
            } else {
                SketchPlan::Fallback
            };
        }
        let mut updates = Vec::new();
        for ord in faults.vdd_pad_ordinals() {
            if self.base_faults.vdd_pad_failed(ord) || ord >= self.vdd_pad_count {
                continue; // already removed at base, or a stamping no-op
            }
            match self.vdd_cols.get(&ord) {
                Some(pc) => updates.push(SmwUpdate {
                    column: pc.col,
                    scale: pc.scale,
                    rhs_delta: pc.rhs_delta,
                }),
                None => return SketchPlan::Rebase(faults.clone()),
            }
        }
        for ord in faults.gnd_pad_ordinals() {
            if self.base_faults.gnd_pad_failed(ord) || ord >= self.gnd_pad_count {
                continue;
            }
            match self.gnd_cols.get(&ord) {
                Some(pc) => updates.push(SmwUpdate {
                    column: pc.col,
                    scale: pc.scale,
                    rhs_delta: pc.rhs_delta,
                }),
                None => return SketchPlan::Rebase(faults.clone()),
            }
        }
        for ((interface, core), count) in faults.tsv_bundles() {
            let Some(bundle) = self.tsv_cols.get(&(interface, core)) else {
                // Invalid key, or the bundle was already dead at base —
                // either way the extra faults change nothing.
                continue;
            };
            let base_count = self.base_faults.failed_tsv_count(interface, core);
            let d_eff = count.min(bundle.total) - base_count.min(bundle.total);
            if d_eff == 0 {
                continue;
            }
            if bundle.cols.is_empty() {
                return SketchPlan::Rebase(faults.clone()); // over TSV_EDGE_CAP
            }
            let scale = d_eff as f64 * bundle.per_fail_scale;
            for &col in &bundle.cols {
                updates.push(SmwUpdate {
                    column: col,
                    scale,
                    rhs_delta: 0.0,
                });
            }
        }
        if updates.is_empty() {
            // Every delta was a no-op (invalid ordinals, dead bundles):
            // the faulted system is bit-identical to the baseline.
            SketchPlan::Baseline
        } else if updates.len() > SKETCH_BUDGET {
            SketchPlan::Rebase(faults.clone())
        } else {
            SketchPlan::Updates(updates)
        }
    }

    /// Whether `faults` would fit the update budget of a sketch rebuilt
    /// at the *empty* baseline. Conservative: valid TSV keys this sketch
    /// never registered (dead at its own base) return `false`, because
    /// their width at the empty baseline is unknown here.
    fn sketchable_from_empty(&self, faults: &FaultSet) -> bool {
        let mut k = 0usize;
        k += faults
            .vdd_pad_ordinals()
            .filter(|&o| o < self.vdd_pad_count)
            .count();
        k += faults
            .gnd_pad_ordinals()
            .filter(|&o| o < self.gnd_pad_count)
            .count();
        for ((interface, core), _count) in faults.tsv_bundles() {
            if interface >= self.interfaces || core >= self.core_count {
                continue; // stamping no-op
            }
            match self.tsv_cols.get(&(interface, core)) {
                Some(bundle) if !bundle.cols.is_empty() => k += bundle.cols.len(),
                _ => return false,
            }
        }
        k <= SKETCH_BUDGET
    }

    /// Lazily solves the solve-vectors of every column named by `updates`,
    /// evicting least-recently-used ready columns beyond the memory cap
    /// first. Errors propagate from the column solves (cancellation,
    /// breakdown) and send the caller to the exact path.
    pub(crate) fn ensure_columns(
        &mut self,
        updates: &[SmwUpdate],
        scratch: &mut SolveScratch,
    ) -> Result<(), PdnError> {
        self.clock += 1;
        let clock = self.clock;
        let missing: Vec<usize> = updates
            .iter()
            .map(|u| u.column)
            .filter(|&c| !self.smw.column_ready(c))
            .collect();
        if !missing.is_empty() {
            self.evict_for(updates, missing.len());
        }
        let opts = Self::solve_options(self.smw.n(), scratch);
        let FaultSketch {
            ref mut smw,
            ref a0,
            ref mut amg,
            ..
        } = *self;
        let ws = scratch.workspace_mut();
        for col in missing {
            smw.ensure_column(col, |rhs| {
                solve_robust_cached_ws(a0, rhs, None, &opts, ws, amg).map(|s| s.x)
            })
            .map_err(PdnError::Solve)?;
        }
        for u in updates {
            self.col_stamp[u.column] = clock;
        }
        Ok(())
    }

    /// Evicts LRU ready columns (never ones named by the current query)
    /// until `incoming` more fit under `max_ready`.
    fn evict_for(&mut self, updates: &[SmwUpdate], incoming: usize) {
        let budget = self.max_ready.saturating_sub(incoming).max(1);
        if self.smw.ready_count() <= budget {
            return;
        }
        let needed: std::collections::BTreeSet<usize> = updates.iter().map(|u| u.column).collect();
        let mut ready: Vec<(u64, usize)> = (0..self.smw.num_columns())
            .filter(|&c| self.smw.column_ready(c) && !needed.contains(&c))
            .map(|c| (self.col_stamp[c], c))
            .collect();
        ready.sort_unstable();
        let excess = self.smw.ready_count().saturating_sub(budget);
        for &(_, col) in ready.iter().take(excess) {
            self.smw.clear_column(col);
        }
    }

    /// Answers the planned updates through the SMW identity. Columns must
    /// be ready ([`FaultSketch::ensure_columns`]).
    pub(crate) fn query(&self, updates: &[SmwUpdate]) -> Result<SmwAnswer, SmwRejection> {
        self.smw.query(updates)
    }
}

/// The [`SolveReport`] attached to SMW-answered fault solves: `iterations`
/// counts SMW updates, `relative_residual` is the guard's measured value.
pub(crate) fn smw_report(updates: usize, rel_residual: f64, solve_us: u64) -> SolveReport {
    SolveReport {
        method: SolveMethod::SmwSketch,
        fallbacks: Vec::new(),
        iterations: updates,
        relative_residual: rel_residual,
        diagonal_shift: 0.0,
        operator: "smw",
        precision: "f64",
        setup_us: 0,
        solve_us,
    }
}

/// Shared driver loop for sketched fault solves: ensure a sketch exists
/// (building at the query's fault set on a cold start), plan, answer or
/// rebase — at most three rounds — and return `Ok(None)` when the caller
/// should fall back to the exact ladder.
///
/// `build` assembles and solves a baseline at the given fault set;
/// `extract` converts an answered voltage vector into a
/// [`FaultedSolution`] (the sketch argument supplies alive-pad lists).
/// Metrics: `fault_sketch_builds` per baseline built, `fault_sketch_hits`
/// per sketch-answered query (including exact-baseline replays),
/// `fault_query_us` over the warm SMW query alone; the *caller* counts
/// `fault_sketch_fallbacks` when it runs the exact path after `Ok(None)`.
pub(crate) fn answer_with_sketch(
    faults: &FaultSet,
    sketch: &mut Option<FaultSketch>,
    scratch: &mut SolveScratch,
    mut build: impl FnMut(&FaultSet, &mut SolveScratch) -> Result<FaultSketch, PdnError>,
    mut extract: impl FnMut(&FaultSketch, Vec<f64>, SolveReport) -> FaultedSolution,
) -> Result<Option<FaultedSolution>, PdnError> {
    let m = vstack_obs::metrics::global();
    let mut target = faults.clone();
    for _round in 0..3 {
        if sketch.is_none() {
            match build(&target, scratch) {
                Ok(built) => {
                    m.fault_sketch_builds.inc();
                    *sketch = Some(built);
                }
                Err(e) => {
                    // A failed baseline (e.g. the query disconnects the
                    // grid and was the build target) is the exact answer
                    // for this query, but not a sketch hit.
                    m.fault_sketch_fallbacks.inc();
                    return Err(e);
                }
            }
        }
        let sk = sketch.as_mut().expect("sketch just ensured");
        match sk.plan(faults) {
            SketchPlan::Baseline => {
                m.fault_sketch_hits.inc();
                let v = sk.baseline_voltages();
                let report = sk.baseline_report();
                return Ok(Some(extract(sk, v, report)));
            }
            SketchPlan::Updates(updates) => {
                if sk.ensure_columns(&updates, scratch).is_err() {
                    break;
                }
                let timer = std::time::Instant::now();
                match sk.query(&updates) {
                    Ok(ans) => {
                        let us = timer.elapsed().as_micros() as u64;
                        m.fault_query_us.observe(us);
                        m.fault_sketch_hits.inc();
                        let report = smw_report(updates.len(), ans.rel_residual, us);
                        return Ok(Some(extract(sk, ans.x, report)));
                    }
                    Err(_) => break, // near-singular / over-tolerance
                }
            }
            SketchPlan::Rebase(t) => {
                target = t;
                *sketch = None;
            }
            SketchPlan::Fallback => break,
        }
    }
    Ok(None)
}
