//! Open-circuit fault injection for C4 pads and TSVs.
//!
//! Electromigration kills conductors one at a time: a pad or TSV whose
//! cumulative current stress exceeds its Black's-equation budget becomes
//! an open circuit, and the surviving network re-distributes the current.
//! [`FaultSet`] is the bookkeeping for that process — it names which
//! supply/return pads and how many TSVs per (interface, core) bundle have
//! failed — and the fault-aware solve paths
//! ([`crate::regular::RegularPdn::solve_faulted`],
//! [`crate::vstacked::VstackPdn::solve_faulted`]) re-stamp the grid with
//! the dead conductors removed.
//!
//! Pads are identified by their **ordinal among power pads of the same
//! net** in [`crate::c4::C4Array::pads`] order, which is stable across
//! solves; TSV bundles by `(interface, core)` where interface `l` joins
//! layers `l` and `l + 1`. In the regular topology a TSV fault count
//! applies symmetrically to both the supply and return bundles of its
//! (interface, core) — EM stress is symmetric there because the two nets
//! carry mirror currents.

use std::collections::{BTreeMap, BTreeSet};

use vstack_sparse::SolveReport;

use crate::solution::PdnSolution;

/// A set of open-circuited conductors to remove from the stamped network.
///
/// Empty by default; [`FaultSet::is_empty`] networks solve identically to
/// the unfaulted paths.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FaultSet {
    failed_vdd_pads: BTreeSet<usize>,
    failed_gnd_pads: BTreeSet<usize>,
    /// `(interface, core) →` number of failed TSVs in that bundle.
    failed_tsvs: BTreeMap<(usize, usize), usize>,
}

impl FaultSet {
    /// An empty fault set (no conductor removed).
    pub fn new() -> Self {
        FaultSet::default()
    }

    /// Whether no fault has been injected.
    pub fn is_empty(&self) -> bool {
        self.failed_vdd_pads.is_empty()
            && self.failed_gnd_pads.is_empty()
            && self.failed_tsvs.is_empty()
    }

    /// Open-circuits supply pad `ordinal` (its index among Vdd power pads
    /// in [`crate::c4::C4Array::pads`] order). Idempotent.
    pub fn fail_vdd_pad(&mut self, ordinal: usize) {
        self.failed_vdd_pads.insert(ordinal);
    }

    /// Open-circuits return pad `ordinal` (its index among Gnd power pads
    /// in [`crate::c4::C4Array::pads`] order). Idempotent.
    pub fn fail_gnd_pad(&mut self, ordinal: usize) {
        self.failed_gnd_pads.insert(ordinal);
    }

    /// Open-circuits `count` more TSVs of the `(interface, core)` bundle.
    /// Counts accumulate across calls; the solve paths clamp the bundle at
    /// zero survivors.
    pub fn fail_tsvs(&mut self, interface: usize, core: usize, count: usize) {
        if count == 0 {
            return;
        }
        *self.failed_tsvs.entry((interface, core)).or_insert(0) += count;
    }

    /// Whether supply pad `ordinal` has failed.
    pub fn vdd_pad_failed(&self, ordinal: usize) -> bool {
        self.failed_vdd_pads.contains(&ordinal)
    }

    /// Whether return pad `ordinal` has failed.
    pub fn gnd_pad_failed(&self, ordinal: usize) -> bool {
        self.failed_gnd_pads.contains(&ordinal)
    }

    /// Failed-TSV count of the `(interface, core)` bundle.
    pub fn failed_tsv_count(&self, interface: usize, core: usize) -> usize {
        self.failed_tsvs
            .get(&(interface, core))
            .copied()
            .unwrap_or(0)
    }

    /// Number of failed supply pads.
    pub fn failed_vdd_pad_count(&self) -> usize {
        self.failed_vdd_pads.len()
    }

    /// Number of failed return pads.
    pub fn failed_gnd_pad_count(&self) -> usize {
        self.failed_gnd_pads.len()
    }

    /// Total failed TSVs across every bundle.
    pub fn failed_tsv_total(&self) -> usize {
        self.failed_tsvs.values().sum()
    }

    /// Failed supply-pad ordinals in ascending order. The ordering is a
    /// guarantee: callers hash and diff fault sets by iterating these
    /// accessors, so two sets built in different orders compare — and
    /// fingerprint — identically.
    pub fn vdd_pad_ordinals(&self) -> impl Iterator<Item = usize> + '_ {
        self.failed_vdd_pads.iter().copied()
    }

    /// Failed return-pad ordinals in ascending order (see
    /// [`FaultSet::vdd_pad_ordinals`] for the ordering guarantee).
    pub fn gnd_pad_ordinals(&self) -> impl Iterator<Item = usize> + '_ {
        self.failed_gnd_pads.iter().copied()
    }

    /// Failed-TSV bundles as `((interface, core), count)` in ascending
    /// key order, zero-count entries never included.
    pub fn tsv_bundles(&self) -> impl Iterator<Item = ((usize, usize), usize)> + '_ {
        self.failed_tsvs.iter().map(|(&k, &v)| (k, v))
    }

    /// Whether every fault in `self` is also present in `other` (pads a
    /// subset, each TSV bundle count `≤` the other's). The sketch rebase
    /// planner uses this to decide whether a query is reachable from a
    /// cached baseline by *removing more* conductors.
    pub fn is_subset_of(&self, other: &FaultSet) -> bool {
        self.failed_vdd_pads.is_subset(&other.failed_vdd_pads)
            && self.failed_gnd_pads.is_subset(&other.failed_gnd_pads)
            && self
                .failed_tsvs
                .iter()
                .all(|(k, &count)| other.failed_tsv_count(k.0, k.1) >= count)
    }
}

/// Per-conductor current of one surviving TSV bundle, with its identity —
/// the granularity the wearout loop kills at.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TsvGroupCurrent {
    /// Interface index (`l` joins layers `l` and `l + 1`).
    pub interface: usize,
    /// Core index within the floorplan.
    pub core: usize,
    /// Mean current per surviving TSV, in amperes. For the regular
    /// topology this is the worse of the two nets' bundles.
    pub current_per_tsv_a: f64,
    /// Surviving TSVs in the bundle (per net for the regular topology).
    pub alive: f64,
}

/// Result of a fault-aware solve: the usual metrics plus everything the
/// wearout loop needs to pick its next victims and warm-start the next
/// solve.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultedSolution {
    /// The standard solution metrics (over surviving conductors only).
    pub solution: PdnSolution,
    /// How the sparse solve was obtained — records every escalation-ladder
    /// fallback taken on the way.
    pub report: SolveReport,
    /// The full node-voltage vector, usable as the warm-start guess for
    /// the next solve after further faults.
    pub voltages: Vec<f64>,
    /// `(pad ordinal, current A)` of each surviving supply pad.
    pub vdd_pad_currents: Vec<(usize, f64)>,
    /// `(pad ordinal, current A)` of each surviving return pad.
    pub gnd_pad_currents: Vec<(usize, f64)>,
    /// Per-bundle TSV currents with `(interface, core)` identity.
    pub tsv_groups: Vec<TsvGroupCurrent>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_by_default() {
        let f = FaultSet::new();
        assert!(f.is_empty());
        assert!(!f.vdd_pad_failed(0));
        assert_eq!(f.failed_tsv_count(0, 0), 0);
    }

    #[test]
    fn pad_faults_are_idempotent() {
        let mut f = FaultSet::new();
        f.fail_vdd_pad(3);
        f.fail_vdd_pad(3);
        f.fail_gnd_pad(1);
        assert_eq!(f.failed_vdd_pad_count(), 1);
        assert_eq!(f.failed_gnd_pad_count(), 1);
        assert!(f.vdd_pad_failed(3) && !f.vdd_pad_failed(2));
        assert!(f.gnd_pad_failed(1));
        assert!(!f.is_empty());
    }

    #[test]
    fn tsv_faults_accumulate() {
        let mut f = FaultSet::new();
        f.fail_tsvs(0, 2, 5);
        f.fail_tsvs(0, 2, 3);
        f.fail_tsvs(1, 0, 7);
        f.fail_tsvs(1, 1, 0); // no-op
        assert_eq!(f.failed_tsv_count(0, 2), 8);
        assert_eq!(f.failed_tsv_count(1, 0), 7);
        assert_eq!(f.failed_tsv_count(1, 1), 0);
        assert_eq!(f.failed_tsv_total(), 15);
    }
}
