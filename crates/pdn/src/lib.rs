//! VoltSpot-style pre-RTL power-delivery-network (PDN) model for 3D-ICs,
//! with both **regular** and **voltage-stacked** (V-S) topologies.
//!
//! This crate is the paper's §3.2: it extends a 2D on-chip PDN model
//! (VoltSpot, paper ref \[18\]) to many-layer 3D-ICs. Each silicon layer
//! carries two on-chip metal grids (supply and return); C4 pads connect the
//! stack to the board; TSVs connect adjacent layers. Loads are ideal
//! current sources derived from the `vstack-power` models.
//!
//! * [`regular`] builds the conventional topology (paper Fig 4a): all
//!   layers' Vdd nets parallel-connected by TSV stacks, all ground nets
//!   likewise, every layer's current flowing through the same pads.
//! * [`vstacked`] builds the charge-recycled topology (paper Fig 4b):
//!   layers in series, `N·Vdd` delivered to the top layer through
//!   dedicated through-via stacks, ground returned from the bottom layer,
//!   and push-pull SC converters regulating every intermediate rail.
//!
//! Both reduce to **symmetric positive-definite** sparse systems — the SC
//! converter compact model (ideal `(V_top + V_bottom)/2` source behind
//! `R_SERIES`) Norton-transforms into a rank-1 PSD stamp
//! `(1/R)·u·uᵀ, u = (1, −½, −½)` over its (out, top, bottom) nodes — so a
//! single preconditioned conjugate-gradient solve yields every node
//! voltage, pad current, TSV current and converter current.
//!
//! # Example
//!
//! ```
//! use vstack_pdn::{params::PdnParams, regular::RegularPdn, stack::StackLoads, tsv::TsvTopology};
//! use vstack_power::workload::ImbalancePattern;
//!
//! # fn main() -> Result<(), vstack_sparse::SolveError> {
//! let params = PdnParams::paper_defaults();
//! let pdn = RegularPdn::new(&params, 2, TsvTopology::Sparse, 0.5);
//! let loads = StackLoads::interleaved(&params, 2, &ImbalancePattern::new(0.0));
//! let solution = pdn.solve(&loads)?;
//! assert!(solution.max_ir_drop_frac > 0.0 && solution.max_ir_drop_frac < 0.10);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod c4;
pub mod error;
pub mod fault;
pub mod network;
pub mod params;
pub mod regular;
pub mod sketch;
pub mod solution;
pub mod stack;
pub mod transient;
pub mod tsv;
pub mod vstacked;

pub use error::PdnError;
pub use fault::{FaultSet, FaultedSolution, TsvGroupCurrent};
pub use network::SolveScratch;
pub use params::PdnParams;
pub use regular::RegularPdn;
pub use sketch::FaultSketch;
pub use solution::{ConductorCurrents, PdnSolution};
pub use stack::StackLoads;
pub use transient::{PdnTransientConfig, StepResponse};
pub use tsv::TsvTopology;
pub use vstacked::{ConverterReference, VstackPdn};
