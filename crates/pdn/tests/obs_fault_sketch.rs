//! Exact-count checks of the fault-sketch metrics against the sketched
//! fault path.
//!
//! The registry is process-wide, so this file holds a **single** test:
//! `cargo test` runs each integration-test binary as its own process, and
//! with one test in the binary no sibling thread can bump the counters
//! between our before/after reads. Do not add more `#[test]`s here —
//! start another single-test file instead.

use vstack_obs::metrics::global;
use vstack_pdn::{
    FaultSet, PdnParams, RegularPdn, SolveScratch, StackLoads, TsvTopology, VstackPdn,
};
use vstack_sc::compact::ScConverter;

#[test]
fn fault_sketch_counters_move_in_lock_step_with_the_query_path() {
    let m = global();
    let mut p = PdnParams::paper_defaults();
    p.grid_refinement = 1;
    let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
    let loads = StackLoads::uniform_peak(&p, 2);
    let mut scratch = SolveScratch::new();

    // Cold scratch + empty fault set: exactly one baseline build, one
    // sketch hit (the baseline replay), no fallback, no timed SMW query.
    let before = (
        m.fault_sketch_builds.get(),
        m.fault_sketch_hits.get(),
        m.fault_sketch_fallbacks.get(),
        m.fault_query_us.count(),
    );
    pdn.solve_faulted_sketched(&loads, &FaultSet::new(), &mut scratch)
        .expect("healthy baseline");
    assert_eq!(
        m.fault_sketch_builds.get(),
        before.0 + 1,
        "one baseline build"
    );
    assert_eq!(
        m.fault_sketch_hits.get(),
        before.1 + 1,
        "baseline replay is a hit"
    );
    assert_eq!(m.fault_sketch_fallbacks.get(), before.2, "no fallback");
    assert_eq!(
        m.fault_query_us.count(),
        before.3,
        "baseline replay is not timed"
    );

    // Warm sketch + small fault set: a genuine SMW answer — one hit, one
    // fault_query_us observation, no new build.
    let before = (
        m.fault_sketch_builds.get(),
        m.fault_sketch_hits.get(),
        m.fault_sketch_fallbacks.get(),
        m.fault_query_us.count(),
    );
    let mut faults = FaultSet::new();
    faults.fail_vdd_pad(0);
    faults.fail_gnd_pad(2);
    let answer = pdn
        .solve_faulted_sketched(&loads, &faults, &mut scratch)
        .expect("sketched query");
    assert_eq!(answer.report.operator, "smw", "expected an SMW answer");
    assert_eq!(
        m.fault_sketch_builds.get(),
        before.0,
        "warm query builds nothing"
    );
    assert_eq!(
        m.fault_sketch_hits.get(),
        before.1 + 1,
        "SMW answer is a hit"
    );
    assert_eq!(m.fault_sketch_fallbacks.get(), before.2, "no fallback");
    assert_eq!(m.fault_query_us.count(), before.3 + 1, "SMW query is timed");

    // Healing a fault (query not a superset of the baseline) rebases:
    // one more build, then the answer is a hit again.
    let before = (m.fault_sketch_builds.get(), m.fault_sketch_hits.get());
    let mut base = FaultSet::new();
    base.fail_vdd_pad(0);
    base.fail_vdd_pad(1);
    let mut fresh = SolveScratch::new();
    pdn.solve_faulted_sketched(&loads, &base, &mut fresh)
        .expect("faulted baseline");
    let mut healed = FaultSet::new();
    healed.fail_vdd_pad(0);
    pdn.solve_faulted_sketched(&loads, &healed, &mut fresh)
        .expect("healed query");
    assert_eq!(
        m.fault_sketch_builds.get(),
        before.0 + 2,
        "build at the faulted baseline, then a rebase build for the heal"
    );
    assert_eq!(m.fault_sketch_hits.get(), before.1 + 2);

    // A closed-loop stack cannot be sketched (the Picard loop re-stamps
    // the matrix): the dispatch itself is a fallback.
    let before = (m.fault_sketch_fallbacks.get(), m.fault_sketch_hits.get());
    let closed = VstackPdn::new(
        &p,
        3,
        TsvTopology::Few,
        0.25,
        ScConverter::paper_28nm_closed_loop(),
        4,
    );
    let loads3 = StackLoads::uniform_peak(&p, 3);
    let mut cl_faults = FaultSet::new();
    cl_faults.fail_vdd_pad(0);
    let mut cl_scratch = SolveScratch::new();
    closed
        .solve_faulted_sketched(&loads3, &cl_faults, &mut cl_scratch)
        .expect("closed-loop fallback");
    assert_eq!(
        m.fault_sketch_fallbacks.get(),
        before.0 + 1,
        "closed-loop dispatch counts as a fallback"
    );
    assert_eq!(m.fault_sketch_hits.get(), before.1, "fallback is not a hit");

    // The snapshot serialization sees the same values the accessors do.
    let snapshot = vstack_obs::metrics::snapshot_json();
    for (name, value) in [
        ("fault_sketch_builds", m.fault_sketch_builds.get()),
        ("fault_sketch_hits", m.fault_sketch_hits.get()),
        ("fault_sketch_fallbacks", m.fault_sketch_fallbacks.get()),
    ] {
        assert!(
            snapshot.contains(&format!("\"{name}\":{value}")),
            "snapshot missing {name}={value}"
        );
    }
    assert!(
        snapshot.contains("\"fault_query_us\""),
        "snapshot missing histogram"
    );
}
