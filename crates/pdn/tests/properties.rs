//! Property-based tests for the PDN models: conservation laws and
//! linearity that must hold for any load scenario.

use proptest::prelude::*;
use vstack_pdn::{FaultSet, PdnError, PdnParams, RegularPdn, StackLoads, TsvTopology, VstackPdn};
use vstack_sc::compact::ScConverter;

fn quick_params() -> PdnParams {
    let mut p = PdnParams::paper_defaults();
    p.grid_refinement = 1;
    p
}

/// Random per-layer activities in [0, 1].
fn activities(layers: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(0.0..1.0f64, layers)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Regular PDN: the supply pads deliver exactly the total load current
    /// (KCL at the board).
    #[test]
    fn regular_pad_current_conservation(acts in activities(3)) {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 3, TsvTopology::Sparse, 0.5);
        let loads = StackLoads::from_activities(&p, &acts);
        let sol = pdn.solve(&loads).expect("solvable");
        let pad_sum: f64 = sol.vdd_c4.groups().iter().map(|g| g.current_a * g.count).sum();
        let gnd_sum: f64 = sol.gnd_c4.groups().iter().map(|g| g.current_a * g.count).sum();
        let total = loads.total_current();
        prop_assert!((pad_sum - total).abs() / total.max(1e-9) < 1e-3);
        prop_assert!((gnd_sum - total).abs() / total.max(1e-9) < 1e-3);
    }

    /// Regular PDN is a linear network: scaling all loads scales the IR
    /// drop (in volts) by the same factor.
    #[test]
    fn regular_ir_drop_is_linear(acts in activities(2), k in 0.25..1.0f64) {
        // Scale activities so both points stay within [0, 1]. Use idle
        // leakage-free comparison via explicit currents.
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Sparse, 0.5);
        let base: Vec<Vec<f64>> = (0..2)
            .map(|l| vec![0.1 + 0.3 * acts[l % acts.len()]; 16])
            .collect();
        let scaled: Vec<Vec<f64>> = base
            .iter()
            .map(|layer| layer.iter().map(|i| i * k).collect())
            .collect();
        let s1 = pdn.solve(&StackLoads::from_currents(base)).expect("solve");
        let s2 = pdn.solve(&StackLoads::from_currents(scaled)).expect("solve");
        prop_assert!(
            (s2.max_ir_drop_frac - k * s1.max_ir_drop_frac).abs() < 1e-6,
            "linearity: {} vs {}",
            s2.max_ir_drop_frac,
            k * s1.max_ir_drop_frac
        );
    }

    /// V-S PDN: the board supplies at least the maximum layer current
    /// (the series current) and not more than total/1 (sanity envelope),
    /// and energy is conserved (input ≥ load power).
    #[test]
    fn vs_energy_and_current_envelope(acts in activities(4)) {
        let p = quick_params();
        let pdn = VstackPdn::new(
            &p, 4, TsvTopology::Few, 0.25, ScConverter::paper_28nm(), 4,
        );
        let loads = StackLoads::from_activities(&p, &acts);
        let sol = pdn.solve(&loads).expect("solvable");
        let input: f64 = sol.vdd_c4.groups().iter().map(|g| g.current_a * g.count).sum();
        let max_layer = loads.max_layer_current();
        let mean_layer = loads.total_current() / 4.0;
        prop_assert!(input >= 0.95 * mean_layer, "input {input} vs mean layer {mean_layer}");
        prop_assert!(input <= 1.30 * max_layer, "input {input} vs max layer {max_layer}");
        prop_assert!(sol.p_input_w >= sol.p_loads_w - 1e-9);
    }

    /// V-S noise grows monotonically with the imbalance ratio, and
    /// flipping which layer parity is "high" stays within the same
    /// regime (the stack is not exactly parity-symmetric — ground pads
    /// enter at the bottom, through-vias at the top).
    #[test]
    fn vs_noise_monotone_and_parity_bounded(x in 0.1..0.7f64, dx in 0.05..0.3f64) {
        let p = quick_params();
        let pdn = VstackPdn::new(
            &p, 4, TsvTopology::Few, 0.25, ScConverter::paper_28nm(), 8,
        );
        let lo = StackLoads::from_activities(&p, &[1.0, 1.0 - x, 1.0, 1.0 - x]);
        let hi = StackLoads::from_activities(
            &p,
            &[1.0, 1.0 - x - dx, 1.0, 1.0 - x - dx],
        );
        let s_lo = pdn.solve(&lo).expect("solve lo");
        let s_hi = pdn.solve(&hi).expect("solve hi");
        prop_assert!(
            s_hi.max_ir_drop_frac > s_lo.max_ir_drop_frac,
            "more imbalance must mean more noise: {} vs {}",
            s_hi.max_ir_drop_frac,
            s_lo.max_ir_drop_frac
        );
        let flipped = StackLoads::from_activities(&p, &[1.0 - x, 1.0, 1.0 - x, 1.0]);
        let s_flip = pdn.solve(&flipped).expect("solve flipped");
        let ratio = s_flip.max_ir_drop_frac / s_lo.max_ir_drop_frac;
        prop_assert!((0.5..2.0).contains(&ratio), "parity ratio {ratio}");
    }

    /// Open-circuiting any single pad of either net, on either topology,
    /// never panics: the solve returns a finite solution (the survivors
    /// pick up the current) or a clean [`PdnError::Disconnected`] — never
    /// a solver breakdown leaking through.
    #[test]
    fn single_pad_fault_never_panics(
        acts in activities(2),
        victim in 0..1024usize,
        vdd_side in 0..2usize,
        stacked in 0..2usize,
    ) {
        let (vdd_side, stacked) = (vdd_side == 1, stacked == 1);
        let p = quick_params();
        let loads = StackLoads::from_activities(&p, &acts);
        let mut faults = FaultSet::new();
        let result = if stacked {
            let pdn = VstackPdn::new(&p, 2, TsvTopology::Few, 0.25, ScConverter::paper_28nm(), 4);
            if vdd_side {
                faults.fail_vdd_pad(victim % pdn.c4().vdd_count());
            } else {
                faults.fail_gnd_pad(victim % pdn.c4().gnd_count());
            }
            pdn.solve_faulted(&loads, &faults, None)
        } else {
            let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.25);
            if vdd_side {
                faults.fail_vdd_pad(victim % pdn.c4().vdd_count());
            } else {
                faults.fail_gnd_pad(victim % pdn.c4().gnd_count());
            }
            pdn.solve_faulted(&loads, &faults, None)
        };
        match result {
            Ok(sol) => {
                prop_assert!(sol.solution.max_ir_drop_frac.is_finite());
                prop_assert!(sol.voltages.iter().all(|v| v.is_finite()));
            }
            Err(PdnError::Disconnected { floating_nodes, .. }) => {
                prop_assert!(floating_nodes > 0);
            }
            Err(PdnError::Solve(e)) => {
                prop_assert!(false, "solver error leaked: {e}");
            }
        }
    }

    /// Balanced stacks stay quiet no matter the absolute load level.
    #[test]
    fn vs_balanced_is_always_quiet(a in 0.1..1.0f64) {
        let p = quick_params();
        let pdn = VstackPdn::new(
            &p, 4, TsvTopology::Few, 0.25, ScConverter::paper_28nm(), 4,
        );
        let loads = StackLoads::from_activities(&p, &[a, a, a, a]);
        let sol = pdn.solve(&loads).expect("solve");
        prop_assert!(sol.max_ir_drop_frac < 0.02, "got {}", sol.max_ir_drop_frac);
        prop_assert!(!sol.has_overload());
    }
}
