//! Sketch-vs-exact agreement for the rank-k fault sketch.
//!
//! `solve_faulted_sketched` must be indistinguishable from the exact
//! ladder path (`solve_faulted`) up to the SMW residual tolerance, on both
//! topologies, across random fault sets — including the paths where the
//! sketch *refuses* (structural disconnection, over-budget queries) and
//! falls back. The thread-count sweep pins the bit-identity contract: the
//! SMW query is serial dense algebra, and the baseline/column solves reuse
//! the pool's fixed-chunk reductions, so answers cannot depend on
//! parallelism.

use std::sync::Arc;

use proptest::prelude::*;
use vstack_pdn::{
    FaultSet, PdnError, PdnParams, RegularPdn, SolveScratch, StackLoads, TsvTopology, VstackPdn,
};
use vstack_sc::compact::ScConverter;
use vstack_sparse::pool::{with_pool, ThreadPool};

fn quick_params() -> PdnParams {
    let mut p = PdnParams::paper_defaults();
    p.grid_refinement = 1;
    p
}

fn vs_pdn(p: &PdnParams, layers: usize) -> VstackPdn {
    VstackPdn::new(
        p,
        layers,
        TsvTopology::Few,
        0.25,
        ScConverter::paper_28nm(),
        4,
    )
}

/// Worst per-node voltage disagreement, relative to the vector's scale.
fn rel_inf_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len());
    let scale = b.iter().fold(0.0f64, |m, x| m.max(x.abs())).max(1e-30);
    a.iter()
        .zip(b)
        .fold(0.0f64, |m, (x, y)| m.max((x - y).abs()))
        / scale
}

/// A small random fault set drawn from valid pad ordinals and TSV keys.
fn random_faults(
    pdn_vdd: usize,
    pdn_gnd: usize,
    interfaces: usize,
    cores: usize,
    tsvs_per_core: usize,
    picks: &[(u32, usize, usize)],
) -> FaultSet {
    let mut f = FaultSet::new();
    for &(kind, a, b) in picks {
        match kind % 3 {
            0 => f.fail_vdd_pad(a % pdn_vdd),
            1 => f.fail_gnd_pad(a % pdn_gnd),
            _ => f.fail_tsvs(
                a % interfaces.max(1),
                b % cores,
                1 + b % (tsvs_per_core / 2).max(1),
            ),
        }
    }
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Regular topology: sketched answers agree with the exact ladder for
    /// random ≤5-element fault sets, and the second distinct query is
    /// genuinely SMW-answered (not a silent fallback).
    #[test]
    fn regular_sketch_matches_exact(
        acts in prop::collection::vec(0.2..1.0f64, 2),
        picks in prop::collection::vec((0u32..3, 0usize..64, 0usize..64), 1..5),
    ) {
        let p = quick_params();
        let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
        let loads = StackLoads::from_activities(&p, &acts);
        let faults = random_faults(
            pdn.c4().vdd_count(),
            pdn.c4().gnd_count(),
            1,
            16,
            TsvTopology::Few.vdd_tsvs_per_core(),
            &picks,
        );
        let mut scratch = SolveScratch::new();
        // Warm the sketch with the empty baseline, then query the faults.
        let healthy = pdn
            .solve_faulted_sketched(&loads, &FaultSet::new(), &mut scratch)
            .expect("healthy");
        let sketched = pdn
            .solve_faulted_sketched(&loads, &faults, &mut scratch)
            .expect("sketched");
        let exact = pdn.solve_faulted(&loads, &faults, None).expect("exact");
        prop_assert_eq!(sketched.report.operator, "smw", "expected SMW answer");
        let rel = rel_inf_diff(&sketched.voltages, &exact.voltages);
        prop_assert!(rel < 1e-8, "voltage disagreement {rel}");
        prop_assert!(
            (sketched.solution.max_ir_drop_frac - exact.solution.max_ir_drop_frac).abs() < 1e-8
        );
        prop_assert_eq!(
            sketched.vdd_pad_currents.len(),
            exact.vdd_pad_currents.len()
        );
        prop_assert!(sketched.solution.max_ir_drop_frac >= healthy.solution.max_ir_drop_frac - 1e-12);
    }

    /// Voltage-stacked (open-loop) topology: same agreement contract.
    #[test]
    fn vstacked_sketch_matches_exact(
        acts in prop::collection::vec(0.2..1.0f64, 3),
        picks in prop::collection::vec((0u32..3, 0usize..64, 0usize..64), 1..5),
    ) {
        let p = quick_params();
        let pdn = vs_pdn(&p, 3);
        let loads = StackLoads::from_activities(&p, &acts);
        let faults = random_faults(
            pdn.c4().vdd_count(),
            pdn.c4().gnd_count(),
            2,
            16,
            TsvTopology::Few.tsvs_per_core(),
            &picks,
        );
        let mut scratch = SolveScratch::new();
        pdn.solve_faulted_sketched(&loads, &FaultSet::new(), &mut scratch)
            .expect("healthy");
        let sketched = pdn
            .solve_faulted_sketched(&loads, &faults, &mut scratch)
            .expect("sketched");
        let exact = pdn.solve_faulted(&loads, &faults, None).expect("exact");
        prop_assert_eq!(sketched.report.operator, "smw", "expected SMW answer");
        let rel = rel_inf_diff(&sketched.voltages, &exact.voltages);
        prop_assert!(rel < 1e-8, "voltage disagreement {rel}");
        prop_assert!(
            (sketched.solution.max_ir_drop_frac - exact.solution.max_ir_drop_frac).abs() < 1e-8
        );
    }
}

#[test]
fn first_query_builds_at_the_query_and_replays_the_baseline() {
    // A cold scratch builds the baseline *at the query's fault set*, so
    // the first answer is an exact replay, and the warm second query with
    // one extra fault goes through SMW.
    let p = quick_params();
    let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
    let loads = StackLoads::uniform_peak(&p, 2);
    let mut faults = FaultSet::new();
    faults.fail_vdd_pad(0);
    let mut scratch = SolveScratch::new();
    let first = pdn
        .solve_faulted_sketched(&loads, &faults, &mut scratch)
        .unwrap();
    assert_ne!(
        first.report.operator, "smw",
        "first call replays the baseline solve"
    );
    let exact = pdn.solve_faulted(&loads, &faults, None).unwrap();
    assert!(rel_inf_diff(&first.voltages, &exact.voltages) < 1e-8);

    faults.fail_gnd_pad(3);
    let second = pdn
        .solve_faulted_sketched(&loads, &faults, &mut scratch)
        .unwrap();
    assert_eq!(second.report.operator, "smw");
    let exact2 = pdn.solve_faulted(&loads, &faults, None).unwrap();
    assert!(rel_inf_diff(&second.voltages, &exact2.voltages) < 1e-8);
}

#[test]
fn healing_a_fault_rebases_instead_of_lying() {
    // Queries that REMOVE faults relative to the sketch baseline cannot be
    // answered by downdates; the planner rebases onto the empty baseline
    // and still returns the exact answer.
    let p = quick_params();
    let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
    let loads = StackLoads::uniform_peak(&p, 2);
    let mut scratch = SolveScratch::new();
    let mut faults = FaultSet::new();
    faults.fail_vdd_pad(0);
    faults.fail_vdd_pad(1);
    pdn.solve_faulted_sketched(&loads, &faults, &mut scratch)
        .unwrap();
    // "Heal" pad 1: not a superset of the baseline any more.
    let mut healed = FaultSet::new();
    healed.fail_vdd_pad(0);
    let sketched = pdn
        .solve_faulted_sketched(&loads, &healed, &mut scratch)
        .unwrap();
    let exact = pdn.solve_faulted(&loads, &healed, None).unwrap();
    assert!(rel_inf_diff(&sketched.voltages, &exact.voltages) < 1e-8);
}

#[test]
fn disconnection_is_reported_not_approximated() {
    // Killing every supply pad must surface PdnError::Disconnected from
    // the sketched entry point exactly like the exact path — via the SMW
    // near-singular guard (within budget) or the rebase build (beyond).
    let p = quick_params();
    let pdn = RegularPdn::new(&p, 1, TsvTopology::Sparse, 0.5);
    let loads = StackLoads::uniform_peak(&p, 1);
    let mut scratch = SolveScratch::new();
    pdn.solve_faulted_sketched(&loads, &FaultSet::new(), &mut scratch)
        .unwrap();
    let mut faults = FaultSet::new();
    for ord in 0..pdn.c4().vdd_count() {
        faults.fail_vdd_pad(ord);
    }
    let err = pdn
        .solve_faulted_sketched(&loads, &faults, &mut scratch)
        .unwrap_err();
    assert!(
        matches!(err, PdnError::Disconnected { .. }),
        "expected Disconnected, got {err:?}"
    );
}

#[test]
fn severed_interface_disconnects_through_the_sketch_too() {
    let p = quick_params();
    let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
    let loads = StackLoads::uniform_peak(&p, 2);
    let mut scratch = SolveScratch::new();
    pdn.solve_faulted_sketched(&loads, &FaultSet::new(), &mut scratch)
        .unwrap();
    let mut faults = FaultSet::new();
    for core in 0..p.floorplan().core_count() {
        faults.fail_tsvs(0, core, TsvTopology::Few.vdd_tsvs_per_core());
    }
    let err = pdn
        .solve_faulted_sketched(&loads, &faults, &mut scratch)
        .unwrap_err();
    assert!(
        matches!(err, PdnError::Disconnected { .. }),
        "expected Disconnected, got {err:?}"
    );
}

#[test]
fn closed_loop_stacks_fall_back_to_picard() {
    let p = quick_params();
    let pdn = VstackPdn::new(
        &p,
        3,
        TsvTopology::Few,
        0.25,
        ScConverter::paper_28nm_closed_loop(),
        4,
    );
    let loads = StackLoads::uniform_peak(&p, 3);
    let mut faults = FaultSet::new();
    faults.fail_vdd_pad(0);
    let mut scratch = SolveScratch::new();
    let sketched = pdn
        .solve_faulted_sketched(&loads, &faults, &mut scratch)
        .unwrap();
    let exact = pdn.solve_faulted(&loads, &faults, None).unwrap();
    assert_ne!(sketched.report.operator, "smw");
    assert_eq!(sketched.voltages, exact.voltages);
}

#[test]
fn load_change_invalidates_the_fingerprint() {
    // A different load vector must not be answered from the old sketch.
    let p = quick_params();
    let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
    let mut scratch = SolveScratch::new();
    let loads_a = StackLoads::uniform_peak(&p, 2);
    let loads_b = StackLoads::from_activities(&p, &[0.4, 0.9]);
    let mut faults = FaultSet::new();
    faults.fail_vdd_pad(2);
    pdn.solve_faulted_sketched(&loads_a, &FaultSet::new(), &mut scratch)
        .unwrap();
    let sketched = pdn
        .solve_faulted_sketched(&loads_b, &faults, &mut scratch)
        .unwrap();
    let exact = pdn.solve_faulted(&loads_b, &faults, None).unwrap();
    assert!(rel_inf_diff(&sketched.voltages, &exact.voltages) < 1e-8);
}

#[test]
fn sketched_answers_are_bit_identical_across_thread_counts() {
    // Build + query entirely inside pools of 1, 2 and 4 contexts: the
    // answers (baseline replay AND SMW-updated) must match bit for bit.
    let p = quick_params();
    let pdn = RegularPdn::new(&p, 2, TsvTopology::Few, 0.5);
    let loads = StackLoads::uniform_peak(&p, 2);
    let mut faults = FaultSet::new();
    faults.fail_vdd_pad(1);
    faults.fail_tsvs(0, 3, 4);
    let runs: Vec<(Vec<f64>, Vec<f64>)> = [1usize, 2, 4]
        .iter()
        .map(|&c| Arc::new(ThreadPool::new(c)))
        .map(|pool| {
            with_pool(&pool, || {
                let mut scratch = SolveScratch::new();
                let base = pdn
                    .solve_faulted_sketched(&loads, &FaultSet::new(), &mut scratch)
                    .unwrap();
                let faulted = pdn
                    .solve_faulted_sketched(&loads, &faults, &mut scratch)
                    .unwrap();
                assert_eq!(faulted.report.operator, "smw");
                (base.voltages, faulted.voltages)
            })
        })
        .collect();
    for (b, f) in &runs[1..] {
        assert_eq!(b, &runs[0].0, "baseline not bit-identical across pools");
        assert_eq!(f, &runs[0].1, "SMW answer not bit-identical across pools");
    }
}
