//! Property tests for the admission-control primitives: the bounded
//! queue's capacity invariant and the shed response's `retry_after_ms`
//! guarantee.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use vstack_engine::json::Json;
use vstack_engine::server::protocol;
use vstack_engine::server::queue::{BoundedQueue, Popped, PushError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any interleaving of pushes and pops, the queue never holds
    /// more than `capacity` items, FIFO order holds, and a refused push
    /// returns the item while the queue is exactly full.
    #[test]
    fn queue_never_exceeds_capacity(
        capacity in 1usize..8,
        ops in proptest::collection::vec(0usize..2, 0..96),
    ) {
        let q = BoundedQueue::new(capacity);
        let mut model: VecDeque<usize> = VecDeque::new();
        for (i, op) in ops.into_iter().enumerate() {
            if op == 1 {
                match q.try_push(i) {
                    Ok(depth) => {
                        model.push_back(i);
                        prop_assert_eq!(depth, model.len());
                        prop_assert!(depth <= capacity);
                    }
                    Err(PushError::Full(item)) => {
                        prop_assert_eq!(item, i);
                        prop_assert_eq!(model.len(), capacity);
                    }
                    Err(PushError::Closed(_)) => prop_assert!(false, "queue was never closed"),
                }
            } else {
                match q.pop(Duration::ZERO) {
                    Popped::Item(item) => prop_assert_eq!(Some(item), model.pop_front()),
                    Popped::TimedOut => prop_assert!(model.is_empty()),
                    Popped::Drained => prop_assert!(false, "queue was never closed"),
                }
            }
            prop_assert!(q.len() <= capacity, "queue exceeded its bound");
        }
        prop_assert_eq!(q.len(), model.len());
    }

    /// Every shed (`overloaded`) response carries `retry_after_ms`, for
    /// any id shape and any hint value the estimator can produce.
    #[test]
    fn shed_responses_always_carry_retry_after_ms(
        retry_after_ms in 1u64..120_000,
        has_id in 0usize..2,
        id_value in 0u32..1000,
    ) {
        let id = (has_id == 1).then(|| Json::Num(f64::from(id_value)));
        let response = protocol::overloaded_response(id.clone(), retry_after_ms);
        prop_assert_eq!(response.get("ok"), Some(&Json::Bool(false)));
        if let Some(id) = id {
            prop_assert_eq!(response.get("id"), Some(&id));
        }
        let error = response.get("error").expect("error object");
        prop_assert_eq!(
            error.get("code").and_then(Json::as_str),
            Some(protocol::code::OVERLOADED)
        );
        prop_assert_eq!(
            error.get("retry_after_ms").and_then(Json::as_f64),
            Some(retry_after_ms as f64)
        );
        // The response survives a wire round-trip with the hint intact.
        let wire = Json::parse(&response.emit()).expect("emit parses");
        prop_assert_eq!(
            wire.get("error").and_then(|e| e.get("retry_after_ms")).and_then(Json::as_f64),
            Some(retry_after_ms as f64)
        );
    }
}

/// Concurrent hammering from multiple producers and consumers never
/// drives the queue over capacity and never loses an admitted item.
#[test]
fn queue_bound_holds_under_concurrency() {
    const PRODUCERS: usize = 4;
    const PER_PRODUCER: usize = 500;
    let q = Arc::new(BoundedQueue::new(3));
    let mut handles = Vec::new();
    for p in 0..PRODUCERS {
        let q = Arc::clone(&q);
        handles.push(std::thread::spawn(move || {
            let mut admitted = 0usize;
            for i in 0..PER_PRODUCER {
                match q.try_push(p * PER_PRODUCER + i) {
                    Ok(depth) => {
                        assert!(depth <= q.capacity());
                        admitted += 1;
                    }
                    Err(PushError::Full(_)) => std::thread::yield_now(),
                    Err(PushError::Closed(_)) => panic!("never closed while producing"),
                }
            }
            admitted
        }));
    }
    let consumer = {
        let q = Arc::clone(&q);
        std::thread::spawn(move || {
            let mut drained = 0usize;
            loop {
                match q.pop(Duration::from_millis(20)) {
                    Popped::Item(_) => drained += 1,
                    Popped::TimedOut => assert!(q.len() <= q.capacity()),
                    Popped::Drained => return drained,
                }
            }
        })
    };
    let admitted: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
    q.close();
    let drained = consumer.join().unwrap();
    assert_eq!(admitted, drained, "every admitted item is consumed");
}
