//! Integration tests for the query engine: codec round-trips, fingerprint
//! stability, cache-tier behaviour, dedup accounting and the warm-start
//! bit-identity guarantee.

use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;
use vstack_engine::engine::solve_scenario;
use vstack_engine::json::Json;
use vstack_engine::{Engine, EngineConfig, Outcome, ScenarioRequest};

/// A fresh per-test scratch directory under the system temp dir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vstack-engine-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Strategy pieces: a scenario request from integer draws (the vendored
/// proptest has no enum strategies, so enums are picked by index).
fn request_from(
    kind: usize,
    layers: usize,
    tsv: usize,
    power_c4: f64,
    converters: usize,
    imbalance: f64,
    flags: usize,
) -> ScenarioRequest {
    use vstack::pdn::TsvTopology;
    let mut req = if kind == 0 {
        ScenarioRequest::regular(layers)
    } else {
        ScenarioRequest::voltage_stacked(layers, imbalance)
    };
    req = req
        .tsv([TsvTopology::Dense, TsvTopology::Sparse, TsvTopology::Few][tsv % 3])
        .power_c4(power_c4)
        .converters(converters)
        .closed_loop(flags & 1 != 0);
    if flags & 2 != 0 {
        req = req.quick();
    }
    req
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// JSON codec round-trip: emit → parse → from_json reproduces the
    /// canonical request and its fingerprint exactly.
    #[test]
    fn request_json_round_trip(
        kind in 0usize..2,
        layers in 1usize..17,
        tsv in 0usize..3,
        power_c4 in 0.05..1.0f64,
        converters in 1usize..17,
        imbalance in 0.0..1.0f64,
        flags in 0usize..4,
    ) {
        let req = request_from(kind, layers, tsv, power_c4, converters, imbalance, flags);
        prop_assert!(req.validate().is_ok());
        let wire = req.to_json().emit();
        let back = ScenarioRequest::from_json(&Json::parse(&wire).unwrap()).unwrap();
        prop_assert_eq!(&back, &req.canonical());
        prop_assert_eq!(back.fingerprint(), req.fingerprint());
    }

    /// Fingerprints are stable under JSON field permutation: rotating the
    /// emitted object's fields changes nothing.
    #[test]
    fn fingerprint_stable_under_field_order(
        kind in 0usize..2,
        layers in 1usize..17,
        tsv in 0usize..3,
        power_c4 in 0.05..1.0f64,
        converters in 1usize..17,
        imbalance in 0.0..1.0f64,
        rotation in 0usize..8,
    ) {
        let req = request_from(kind, layers, tsv, power_c4, converters, imbalance, 0);
        let Json::Obj(mut pairs) = req.to_json() else { unreachable!() };
        let n = pairs.len().max(1);
        pairs.rotate_left(rotation % n);
        let permuted = ScenarioRequest::from_json(&Json::Obj(pairs)).unwrap();
        prop_assert_eq!(permuted.fingerprint(), req.fingerprint());
    }

    /// Two requests share a fingerprint iff they share a canonical form.
    #[test]
    fn fingerprint_matches_canonical_equality(
        a in (0usize..2, 1usize..5, 0usize..3, 0usize..4),
        b in (0usize..2, 1usize..5, 0usize..3, 0usize..4),
    ) {
        let mk = |(kind, layers, tsv, flags): (usize, usize, usize, usize)| {
            request_from(kind, layers, tsv, 0.25, 4, 0.5, flags)
        };
        let (ra, rb) = (mk(a), mk(b));
        prop_assert_eq!(
            ra.fingerprint() == rb.fingerprint(),
            ra.canonical() == rb.canonical()
        );
    }
}

/// A cheap scenario the solver finishes in milliseconds.
fn quick_vs(imbalance: f64) -> ScenarioRequest {
    ScenarioRequest::voltage_stacked(2, imbalance).quick()
}

#[test]
fn duplicate_batch_solves_exactly_once() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let batch = vec![quick_vs(0.4); 5];
    let results = engine.query_batch(&batch);
    assert_eq!(results.len(), 5);
    let outcomes: Vec<Outcome> = results
        .iter()
        .map(|r| r.as_ref().unwrap().outcome)
        .collect();
    assert_eq!(outcomes[0], Outcome::Cold);
    assert!(outcomes[1..].iter().all(|o| *o == Outcome::Deduped));
    let stats = engine.stats();
    assert_eq!(stats.solves(), 1, "N duplicates must perform one solve");
    assert_eq!(stats.cold_solves, 1);
    assert_eq!(stats.deduped, 4);
    assert_eq!(stats.requests, 5);
    // Every duplicate got the identical summary.
    let first = &results[0].as_ref().unwrap().summary;
    for r in &results[1..] {
        assert_eq!(&r.as_ref().unwrap().summary, first);
    }
}

#[test]
fn warm_started_resolve_is_bit_identical_to_cold() {
    let req = quick_vs(0.5);
    let (cold_summary, cold_voltages) = solve_scenario(&req, None).unwrap();
    let (warm_summary, warm_voltages) = solve_scenario(&req, Some(&cold_voltages)).unwrap();
    assert_eq!(
        warm_voltages, cold_voltages,
        "a converged guess must be returned unchanged"
    );
    assert_eq!(warm_summary.solver_iterations, 0);
    assert_eq!(
        warm_summary.max_ir_drop_frac.to_bits(),
        cold_summary.max_ir_drop_frac.to_bits()
    );
    assert_eq!(
        warm_summary.efficiency.to_bits(),
        cold_summary.efficiency.to_bits()
    );
}

#[test]
fn neighbour_queries_warm_start_and_agree_with_cold() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    engine.query(&quick_vs(0.40)).unwrap();
    let warm = engine.query(&quick_vs(0.45)).unwrap();
    assert_eq!(warm.outcome, Outcome::Warm);
    assert_eq!(engine.stats().warm_solves, 1);
    // The warm-started answer matches a from-scratch solve to solver
    // tolerance.
    let (cold, _) = solve_scenario(&quick_vs(0.45), None).unwrap();
    let rel =
        (warm.summary.max_ir_drop_frac - cold.max_ir_drop_frac).abs() / cold.max_ir_drop_frac.abs();
    assert!(rel < 1e-6, "warm vs cold relative difference {rel}");
}

#[test]
fn warm_start_requires_matching_structure() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    engine.query(&quick_vs(0.4)).unwrap();
    // Different layer count: no compatible donor, must go cold.
    let other = engine
        .query(&ScenarioRequest::voltage_stacked(4, 0.4).quick())
        .unwrap();
    assert_eq!(other.outcome, Outcome::Cold);
}

#[test]
fn lru_bound_forces_resolve_after_eviction() {
    let mut engine = Engine::new(EngineConfig {
        lru_capacity: 1,
        cache_dir: None,
        warm_start: false,
    })
    .unwrap();
    let (a, b) = (quick_vs(0.3), quick_vs(0.6));
    engine.query(&a).unwrap();
    engine.query(&b).unwrap(); // evicts a
    let again = engine.query(&a).unwrap();
    assert_eq!(again.outcome, Outcome::Cold, "evicted entry must re-solve");
    assert_eq!(engine.stats().cold_solves, 3);
    assert_eq!(engine.stats().memory_hits, 0);
}

#[test]
fn invalid_requests_are_rejected_without_solving() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let bad = ScenarioRequest::voltage_stacked(0, 0.4);
    assert!(engine.query(&bad).is_err());
    assert_eq!(engine.stats().solves(), 0);
    assert_eq!(engine.stats().invalid, 1);
}

#[test]
fn disk_tier_round_trip_and_schema_rejection() {
    let dir = scratch_dir("disk");
    let req = quick_vs(0.5);
    let fp = req.fingerprint();

    // First engine: cold solve, flushed to disk on demand.
    let config = EngineConfig {
        lru_capacity: 8,
        cache_dir: Some(dir.clone()),
        warm_start: true,
    };
    let mut first = Engine::new(config.clone()).unwrap();
    let cold = first.query(&req).unwrap();
    assert_eq!(cold.outcome, Outcome::Cold);
    assert_eq!(first.flush().unwrap(), 1);

    // Second engine, same dir: a disk hit, no solve.
    let mut second = Engine::new(config.clone()).unwrap();
    let hit = second.query(&req).unwrap();
    assert_eq!(hit.outcome, Outcome::HitDisk);
    assert_eq!(hit.summary, cold.summary);
    assert_eq!(second.stats().solves(), 0);

    // Tamper the schema stamp: the entry must be rejected and re-solved.
    let path = dir.join(format!("{}.json", ScenarioRequest::format_fingerprint(fp)));
    let text = fs::read_to_string(&path).unwrap();
    let stamp = format!("\"schema\":{}", vstack_engine::SCHEMA_VERSION);
    assert!(text.contains(&stamp));
    fs::write(&path, text.replace(&stamp, "\"schema\":999")).unwrap();
    let mut third = Engine::new(config).unwrap();
    let resolved = third.query(&req).unwrap();
    assert_eq!(resolved.outcome, Outcome::Cold);
    assert_eq!(third.stats().schema_rejects, 1);

    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_disk_entries_are_rejected() {
    let dir = scratch_dir("corrupt");
    let req = quick_vs(0.25);
    let config = EngineConfig {
        lru_capacity: 8,
        cache_dir: Some(dir.clone()),
        warm_start: true,
    };
    let mut first = Engine::new(config.clone()).unwrap();
    first.query(&req).unwrap();
    first.flush().unwrap();
    let path = dir.join(format!(
        "{}.json",
        ScenarioRequest::format_fingerprint(req.fingerprint())
    ));
    fs::write(&path, "{ not json").unwrap();
    let mut second = Engine::new(config).unwrap();
    let resolved = second.query(&req).unwrap();
    assert_eq!(resolved.outcome, Outcome::Cold);
    assert_eq!(second.stats().corrupt_rejects, 1);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn thermal_axis_serves_caches_and_differs_from_uncoupled() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let plain = ScenarioRequest::regular(2).quick();
    let coupled = plain.clone().thermal_coupling(true);

    let base = engine.query(&plain).unwrap();
    assert_eq!(base.outcome, Outcome::Cold);
    assert_eq!(base.summary.coupling_iterations, 0);

    // A coupled request is a distinct scenario, solved via the fixed
    // point: it reports its iterations and a physical peak temperature,
    // and its EM lifetime moves off the fixed-80 °C baseline.
    let cold = engine.query(&coupled).unwrap();
    assert!(matches!(cold.outcome, Outcome::Cold | Outcome::Warm));
    assert_ne!(cold.fingerprint, base.fingerprint);
    assert!(cold.summary.coupling_iterations >= 2);
    assert!(cold.summary.coupling_converged);
    assert!(cold.summary.peak_temperature_c > 30.0);
    assert_ne!(cold.summary.em_c4_hours, base.summary.em_c4_hours);

    // ... and it is cacheable like any other scenario.
    let hit = engine.query(&coupled).unwrap();
    assert_eq!(hit.outcome, Outcome::HitMemory);
    assert_eq!(hit.summary, cold.summary);

    // Ambient temperature is part of the key: hotter ambient, new solve,
    // hotter stack.
    let hotter = engine.query(&coupled.clone().ambient_c(75.0)).unwrap();
    assert_ne!(hotter.outcome, Outcome::HitMemory);
    assert!(hotter.summary.peak_temperature_c > hit.summary.peak_temperature_c);
}

#[test]
fn thermal_summary_survives_the_disk_tier() {
    let dir = scratch_dir("thermal");
    let req = ScenarioRequest::regular(2).quick().thermal_coupling(true);
    let config = EngineConfig {
        lru_capacity: 8,
        cache_dir: Some(dir.clone()),
        warm_start: true,
    };
    let mut first = Engine::new(config.clone()).unwrap();
    let cold = first.query(&req).unwrap();
    first.flush().unwrap();

    let mut second = Engine::new(config).unwrap();
    let hit = second.query(&req).unwrap();
    assert_eq!(hit.outcome, Outcome::HitDisk);
    assert_eq!(hit.summary, cold.summary);
    assert!(hit.summary.coupling_iterations >= 2);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn fault_axis_serves_through_the_sketch_and_caches_by_fault_set() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let intact = ScenarioRequest::regular(2).quick();
    let faulted = intact.clone().fail_vdd_pad(0).fail_vdd_pad(3);

    let base = engine.query(&intact).unwrap();
    let cold = engine.query(&faulted).unwrap();
    assert_ne!(cold.fingerprint, base.fingerprint);
    // A one-shot faulted query becomes the sketch's baseline build — an
    // exact solve at cost parity (SMW updates pay off on the persistent
    // scratches of the study sweeps). The sketch owns its own warm start,
    // so the engine never labels a faulted solve Warm.
    assert_eq!(cold.outcome, Outcome::Cold);
    // Opening supply pads can only worsen the worst-case drop.
    assert!(cold.summary.max_ir_drop_frac >= base.summary.max_ir_drop_frac);

    // Any spelling of the same fault set shares the cache slot.
    let respelled = intact
        .clone()
        .fail_vdd_pad(3)
        .fail_vdd_pad(0)
        .fail_vdd_pad(3);
    let hit = engine.query(&respelled).unwrap();
    assert_eq!(hit.outcome, Outcome::HitMemory);
    assert_eq!(hit.summary, cold.summary);

    // A different fault set is a different scenario.
    let other = engine.query(&intact.clone().fail_gnd_pad(0)).unwrap();
    assert_ne!(other.fingerprint, cold.fingerprint);
    assert_ne!(other.outcome, Outcome::HitMemory);
}

#[test]
fn faulted_summary_survives_the_disk_tier() {
    let dir = scratch_dir("faulted");
    let req = ScenarioRequest::regular(2).quick().fail_tsvs(0, 1, 2);
    let config = EngineConfig {
        lru_capacity: 8,
        cache_dir: Some(dir.clone()),
        warm_start: true,
    };
    let mut first = Engine::new(config.clone()).unwrap();
    let cold = first.query(&req).unwrap();
    first.flush().unwrap();

    let mut second = Engine::new(config).unwrap();
    let hit = second.query(&req).unwrap();
    assert_eq!(hit.outcome, Outcome::HitDisk);
    assert_eq!(hit.summary, cold.summary);
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn regular_and_vs_requests_both_serve() {
    let mut engine = Engine::new(EngineConfig::default()).unwrap();
    let reg = engine.query(&ScenarioRequest::regular(2).quick()).unwrap();
    let vs = engine.query(&quick_vs(0.5)).unwrap();
    assert!(reg.summary.max_ir_drop_frac > 0.0);
    assert!(vs.summary.max_ir_drop_frac > 0.0);
    assert!(reg.summary.em_c4_hours > 0.0);
    assert!(vs.summary.efficiency > 0.5 && vs.summary.efficiency < 1.0);
    assert_ne!(reg.fingerprint, vs.fingerprint);
}
