//! Chaos harness (requires `--features chaos`): injects cache-store
//! failures, torn writes, worker panics and slow solves into the live
//! serving stack and asserts the failure-containment guarantees hold.
//!
//! The injection points are process-global atomics, so every test takes
//! the `CHAOS` lock and disarms on entry and exit — armed faults must
//! never leak across tests.

#![cfg(feature = "chaos")]

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard};
use std::time::{Duration, Instant};

use vstack_engine::json::Json;
use vstack_engine::server::{chaos, Bind, Daemon, DaemonConfig, ShardConfig};
use vstack_engine::{Engine, EngineConfig, Outcome, ScenarioRequest};

static CHAOS: Mutex<()> = Mutex::new(());

/// Serializes chaos tests and guarantees a disarmed exit even on panic.
struct Armed(#[allow(dead_code)] MutexGuard<'static, ()>);

impl Armed {
    fn begin() -> Armed {
        let guard = CHAOS
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        chaos::reset();
        Armed(guard)
    }
}

impl Drop for Armed {
    fn drop(&mut self) {
        chaos::reset();
    }
}

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vstack-chaos-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn request(imbalance: f64) -> ScenarioRequest {
    ScenarioRequest::voltage_stacked(2, imbalance).quick()
}

fn start_daemon(deadline_ms: u64) -> Daemon {
    start_daemon_with_flight(deadline_ms, None)
}

fn start_daemon_with_flight(deadline_ms: u64, flight_dir: Option<PathBuf>) -> Daemon {
    Daemon::start(DaemonConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        shard: ShardConfig {
            shards: 1,
            queue_capacity: 8,
            lru_capacity: 32,
            cache_dir: None,
            warm_start: true,
            flight_dir,
            ..ShardConfig::default()
        },
        default_deadline_ms: deadline_ms,
        max_deadline_ms: 300_000,
        ..DaemonConfig::default()
    })
    .expect("daemon start")
}

fn one(conn: &mut BufReader<TcpStream>, line: &str) -> Json {
    conn.get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    conn.read_line(&mut response).expect("read response");
    assert!(!response.is_empty(), "connection closed early");
    Json::parse(&response).expect("response is JSON")
}

fn connect(daemon: &Daemon) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(daemon.tcp_addr().expect("tcp")).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    BufReader::new(stream)
}

fn error_code(response: &Json) -> Option<&str> {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

/// A poisoned (panicking) request gets `{"error":{"code":"internal"}}`,
/// the panic counter moves, and the same shard keeps serving afterwards —
/// the daemon does not die.
#[test]
fn worker_panic_is_contained_and_shard_survives() {
    let _armed = Armed::begin();
    let daemon = start_daemon(30_000);
    let mut conn = connect(&daemon);
    let panics_before = vstack_obs::metrics::global().serve_worker_panics.get();

    chaos::panic_next_solves(1);
    let poisoned = one(
        &mut conn,
        r#"{"op":"solve","id":1,"scenario":{"solve":"vs","layers":2,"imbalance":0.111,"fidelity":"quick"}}"#,
    );
    assert_eq!(error_code(&poisoned), Some("internal"), "{poisoned:?}");
    assert!(vstack_obs::metrics::global().serve_worker_panics.get() > panics_before);

    // Same daemon, same (only) shard: still solving.
    let healthy = one(
        &mut conn,
        r#"{"op":"solve","id":2,"scenario":{"solve":"vs","layers":2,"imbalance":0.222,"fidelity":"quick"}}"#,
    );
    assert_eq!(healthy.get("ok"), Some(&Json::Bool(true)), "{healthy:?}");
    daemon.shutdown(true);
}

/// An injected cache-store failure costs persistence, never the request:
/// the solve still answers ok, and the next flush retries cleanly.
#[test]
fn cache_store_failure_does_not_fail_the_request() {
    let _armed = Armed::begin();
    let dir = scratch_dir("store-fail");
    let mut engine = Engine::new(EngineConfig {
        cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    })
    .expect("open engine");

    chaos::fail_next_cache_stores(1);
    let result = engine.query(&request(0.3)).expect("solve succeeds");
    assert_eq!(result.outcome, Outcome::Cold);
    assert!(
        engine.flush().is_err(),
        "first flush hits the injected fault"
    );
    // Disarmed now: the dirty entry is still queued and flushes cleanly.
    assert_eq!(engine.flush().expect("retry flush"), 1);
}

/// A torn store (the moral `kill -9` mid-write) reports success, but the
/// reopened cache detects the damage, quarantines the file, and re-solves
/// cold — the kill-mid-store acceptance path, driven by injection.
#[test]
fn torn_store_is_quarantined_on_reload() {
    let _armed = Armed::begin();
    let dir = scratch_dir("torn-store");
    let mut engine = Engine::new(EngineConfig {
        cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    })
    .expect("open engine");
    engine.query(&request(0.3)).expect("cold solve");
    chaos::tear_next_cache_stores(1);
    engine.flush().expect("torn store still reports success");
    drop(engine);

    let mut engine = Engine::new(EngineConfig {
        cache_dir: Some(dir.clone()),
        ..EngineConfig::default()
    })
    .expect("reopen engine");
    let result = engine.query(&request(0.3)).expect("re-solve");
    assert_eq!(result.outcome, Outcome::Cold, "torn entry must not serve");
    assert_eq!(engine.stats().corrupt_rejects, 1);
    let quarantined = fs::read_dir(&dir)
        .expect("cache dir")
        .map(|e| e.expect("entry").path())
        .filter(|p: &PathBuf| p.to_string_lossy().ends_with(".corrupt"))
        .count();
    assert_eq!(quarantined, 1, "torn entry must be quarantined");
}

/// Slowed solves push an achievable-looking deadline past its budget:
/// the client gets `deadline_exceeded` within deadline + grace, never a
/// hang.
#[test]
fn slow_solves_turn_into_bounded_deadline_errors() {
    let _armed = Armed::begin();
    let daemon = start_daemon(30_000);
    let mut conn = connect(&daemon);

    chaos::delay_solves_us(300_000);
    let started = Instant::now();
    let response = one(
        &mut conn,
        r#"{"op":"solve","deadline_ms":50,"scenario":{"solve":"vs","layers":2,"imbalance":0.444,"fidelity":"quick"}}"#,
    );
    let elapsed = started.elapsed();
    assert_eq!(
        error_code(&response),
        Some("deadline_exceeded"),
        "{response:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline answer must be bounded, took {elapsed:?}"
    );
    chaos::reset();
    daemon.shutdown(true);
}

/// The flight-recorder dump files under `dir`, each parsed into
/// `(header, records)`.
fn read_flight_dumps(dir: &PathBuf) -> Vec<(Json, Vec<Json>)> {
    let mut dumps = Vec::new();
    for entry in fs::read_dir(dir).expect("flight dir") {
        let path = entry.expect("entry").path();
        let name = path.file_name().unwrap_or_default().to_string_lossy();
        if !(name.starts_with("flight-") && name.ends_with(".ndjson")) {
            continue;
        }
        let text = fs::read_to_string(&path).expect("read dump");
        let mut lines = text.lines();
        let header = Json::parse(lines.next().expect("header")).expect("header parses");
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some("vstack-flight/1"),
            "{name}"
        );
        let records = lines
            .map(|l| Json::parse(l).expect("record parses"))
            .collect();
        dumps.push((header, records));
    }
    dumps
}

fn reply_trace_id(reply: &Json) -> String {
    reply
        .get("telemetry")
        .and_then(|t| t.get("trace_id"))
        .and_then(Json::as_str)
        .expect("reply carries telemetry.trace_id")
        .to_string()
}

/// A worker panic triggers an automatic flight-recorder dump whose
/// header names the reason and whose records include the poisoned
/// request's trace id — the black box survives the crash it describes.
#[test]
fn worker_panic_writes_flight_dump_with_offending_trace() {
    let _armed = Armed::begin();
    let dir = scratch_dir("flight-panic");
    fs::create_dir_all(&dir).expect("mkdir");
    let daemon = start_daemon_with_flight(30_000, Some(dir.clone()));
    let mut conn = connect(&daemon);

    chaos::panic_next_solves(1);
    let poisoned = one(
        &mut conn,
        r#"{"op":"solve","scenario":{"solve":"vs","layers":2,"imbalance":0.777,"fidelity":"quick"}}"#,
    );
    assert_eq!(error_code(&poisoned), Some("internal"), "{poisoned:?}");
    let trace_id = reply_trace_id(&poisoned);

    let dumps = read_flight_dumps(&dir);
    assert!(!dumps.is_empty(), "panic must write a flight dump");
    let (header, records) = dumps
        .iter()
        .find(|(h, _)| h.get("reason").and_then(Json::as_str) == Some("worker_panic"))
        .expect("a worker_panic dump exists");
    assert_eq!(
        header.get("trace_id").and_then(Json::as_str),
        Some(trace_id.as_str()),
        "dump header names the offending trace"
    );
    let offending = records
        .iter()
        .find(|r| r.get("trace_id").and_then(Json::as_str) == Some(trace_id.as_str()))
        .expect("dump records include the poisoned request");
    assert_eq!(
        offending.get("outcome").and_then(Json::as_str),
        Some("panic")
    );

    daemon.shutdown(true);
    let _ = fs::remove_dir_all(&dir);
}

/// A deadline miss (slow solve under a short deadline) also triggers an
/// automatic dump carrying the missed request's trace id.
#[test]
fn deadline_miss_writes_flight_dump_with_offending_trace() {
    let _armed = Armed::begin();
    let dir = scratch_dir("flight-deadline");
    fs::create_dir_all(&dir).expect("mkdir");
    let daemon = start_daemon_with_flight(30_000, Some(dir.clone()));
    let mut conn = connect(&daemon);

    chaos::delay_solves_us(300_000);
    let missed = one(
        &mut conn,
        r#"{"op":"solve","deadline_ms":50,"scenario":{"solve":"vs","layers":2,"imbalance":0.888,"fidelity":"quick"}}"#,
    );
    assert_eq!(error_code(&missed), Some("deadline_exceeded"), "{missed:?}");
    let trace_id = reply_trace_id(&missed);
    chaos::reset();

    let dumps = read_flight_dumps(&dir);
    let miss_dump = dumps
        .iter()
        .find(|(h, _)| h.get("reason").and_then(Json::as_str) == Some("deadline_miss"))
        .expect("a deadline_miss dump exists");
    assert!(
        miss_dump
            .1
            .iter()
            .any(
                |r| r.get("trace_id").and_then(Json::as_str) == Some(trace_id.as_str())
                    && r.get("outcome").and_then(Json::as_str) == Some("deadline_miss")
            ),
        "dump records include the missed request's trace id {trace_id}"
    );

    daemon.shutdown(true);
    let _ = fs::remove_dir_all(&dir);
}

/// Store failures inside the serving loop (flush-after-solve) are logged
/// and absorbed: the daemon answers ok and keeps serving.
#[test]
fn daemon_survives_cache_store_faults() {
    let _armed = Armed::begin();
    let dir = scratch_dir("daemon-store-fail");
    let daemon = Daemon::start(DaemonConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        shard: ShardConfig {
            shards: 1,
            queue_capacity: 8,
            lru_capacity: 32,
            cache_dir: Some(dir.clone()),
            warm_start: true,
            ..ShardConfig::default()
        },
        default_deadline_ms: 30_000,
        max_deadline_ms: 300_000,
        ..DaemonConfig::default()
    })
    .expect("daemon start");
    let mut conn = connect(&daemon);

    chaos::fail_next_cache_stores(1);
    let first = one(
        &mut conn,
        r#"{"op":"solve","scenario":{"solve":"vs","layers":2,"imbalance":0.555,"fidelity":"quick"}}"#,
    );
    assert_eq!(first.get("ok"), Some(&Json::Bool(true)), "{first:?}");
    let second = one(
        &mut conn,
        r#"{"op":"solve","scenario":{"solve":"vs","layers":2,"imbalance":0.666,"fidelity":"quick"}}"#,
    );
    assert_eq!(second.get("ok"), Some(&Json::Bool(true)), "{second:?}");
    daemon.shutdown(true);

    // The second entry (and the retried first, since the worker flushes
    // after every solve and on drain) must have reached the disk segment.
    let stored = fs::read_dir(dir.join("shard-00"))
        .expect("segment")
        .map(|e| e.expect("entry").path())
        .filter(|p: &PathBuf| p.extension().is_some_and(|x| x == "json"))
        .count();
    assert!(stored >= 1, "drain must flush surviving entries");
}
