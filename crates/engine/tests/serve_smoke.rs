//! End-to-end smoke test of the `vstack-serve` binary: pipes a small
//! NDJSON batch (with a duplicate and a malformed line) through the real
//! process and checks the protocol guarantees the CI smoke job relies on.

use std::io::Write;
use std::process::{Command, Stdio};

use vstack_engine::json::Json;

#[test]
fn serve_session_dedups_reports_errors_and_exits_cleanly() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_vstack-serve"))
        .args(["--lru", "16"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn vstack-serve");

    let scenario = r#"{"solve":"vs","layers":2,"imbalance":0.4,"fidelity":"quick"}"#;
    let input = [
        // A cold solve, then an identical request that must be a hit.
        format!(r#"{{"op":"solve","id":1,"scenario":{scenario}}}"#),
        format!(r#"{{"op":"solve","id":2,"scenario":{scenario}}}"#),
        // A malformed line: structured error, session keeps serving.
        "this is not json".to_string(),
        // An in-batch duplicate: one solve, second response deduped.
        format!(
            r#"{{"op":"batch","requests":[{{"id":3,"scenario":{s2}}},{{"id":4,"scenario":{s2}}}]}}"#,
            s2 = r#"{"solve":"vs","layers":2,"imbalance":0.7,"fidelity":"quick"}"#
        ),
        r#"{"op":"stats","id":5}"#.to_string(),
        r#"{"op":"metrics","id":6}"#.to_string(),
        r#"{"op":"shutdown","id":7}"#.to_string(),
    ]
    .join("\n")
        + "\n";
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write requests");

    let output = child.wait_with_output().expect("serve must exit");
    assert!(
        output.status.success(),
        "serve exited {:?}; stderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );

    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    let lines: Vec<Json> = stdout
        .lines()
        .map(|l| Json::parse(l).expect("every response line is JSON"))
        .collect();
    assert_eq!(lines.len(), 8, "stdout was: {stdout}");

    let field = |v: &Json, k: &str| v.get(k).cloned().unwrap_or(Json::Null);
    // 1: cold solve with a summary and fingerprint.
    assert_eq!(field(&lines[0], "ok"), Json::Bool(true));
    assert_eq!(field(&lines[0], "outcome"), Json::Str("cold".to_string()));
    assert!(lines[0].get("summary").is_some());
    let fp1 = field(&lines[0], "fingerprint");
    // 2: identical request is a cache hit with the same fingerprint.
    assert_eq!(field(&lines[1], "outcome"), Json::Str("hit".to_string()));
    assert_eq!(field(&lines[1], "source"), Json::Str("memory".to_string()));
    assert_eq!(field(&lines[1], "fingerprint"), fp1);
    // 3: malformed line became a structured parse error.
    assert_eq!(field(&lines[2], "ok"), Json::Bool(false));
    assert_eq!(
        lines[2].get("error").and_then(|e| e.get("code")).cloned(),
        Some(Json::Str("parse_error".to_string()))
    );
    // 4+5: the batch deduplicated its identical pair. The first member is
    // a real solve — warm-started from the cached neighbour of request 1.
    assert_eq!(field(&lines[3], "id"), Json::Num(3.0));
    assert_eq!(field(&lines[3], "outcome"), Json::Str("warm".to_string()));
    assert_eq!(field(&lines[4], "id"), Json::Num(4.0));
    assert_eq!(field(&lines[4], "outcome"), Json::Str("hit".to_string()));
    assert_eq!(field(&lines[4], "source"), Json::Str("dedup".to_string()));
    // 6: stats reflect 2 solves (1 cold, 1 warm), 1 memory hit, 1 dedup,
    // 0 invalid scenarios (the malformed line never reached the engine),
    // and carry the protocol schema version at the top level.
    let stats = lines[5].get("stats").expect("stats payload");
    let count = |k: &str| stats.get(k).and_then(Json::as_usize).unwrap();
    assert_eq!(
        count("schema_version"),
        vstack_engine::SCHEMA_VERSION as usize
    );
    assert_eq!(count("requests"), 4);
    assert_eq!(count("cold_solves"), 1);
    assert_eq!(count("warm_solves"), 1);
    assert_eq!(count("memory_hits"), 1);
    assert_eq!(count("deduped"), 1);
    assert!(stats.get("hit_rate").and_then(Json::as_f64).unwrap() > 0.49);
    // 7: the obs metrics snapshot, versioned and consistent with stats.
    assert_eq!(field(&lines[6], "ok"), Json::Bool(true));
    let metrics = lines[6].get("metrics").expect("metrics payload");
    assert_eq!(
        metrics.get("schema").and_then(Json::as_str),
        Some("vstack-obs-metrics/1")
    );
    let counters = metrics.get("counters").expect("counters object");
    let counter = |k: &str| counters.get(k).and_then(Json::as_usize).unwrap();
    assert_eq!(counter("engine_requests"), 4);
    assert_eq!(counter("engine_memory_hits"), 1);
    assert_eq!(counter("engine_deduped"), 1);
    assert!(counter("cg_solves") >= 2, "both real solves ran CG");
    assert!(counter("solver_iterations") > 0);
    let hists = metrics.get("histograms").expect("histograms object");
    let solve_us = hists.get("solve_us_hist").expect("solve_us_hist");
    assert!(solve_us.get("count").and_then(Json::as_usize).unwrap() >= 2);
    // 8: acknowledged shutdown.
    assert_eq!(field(&lines[7], "shutdown"), Json::Bool(true));
}

#[test]
fn serve_round_trips_a_thermal_scenario() {
    let mut child = Command::new(env!("CARGO_BIN_EXE_vstack-serve"))
        .args(["--lru", "16"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn vstack-serve");

    let plain = r#"{"solve":"regular","layers":2,"fidelity":"quick"}"#;
    let thermal = r#"{"solve":"regular","layers":2,"fidelity":"quick","thermal_coupling":true,"ambient_c":55}"#;
    let input = [
        format!(r#"{{"op":"solve","id":1,"scenario":{plain}}}"#),
        format!(r#"{{"op":"solve","id":2,"scenario":{thermal}}}"#),
        format!(r#"{{"op":"solve","id":3,"scenario":{thermal}}}"#),
        r#"{"op":"shutdown","id":4}"#.to_string(),
    ]
    .join("\n")
        + "\n";
    child
        .stdin
        .take()
        .expect("piped stdin")
        .write_all(input.as_bytes())
        .expect("write requests");

    let output = child.wait_with_output().expect("serve must exit");
    assert!(
        output.status.success(),
        "serve exited {:?}; stderr: {}",
        output.status,
        String::from_utf8_lossy(&output.stderr)
    );
    let stdout = String::from_utf8(output.stdout).expect("utf-8 stdout");
    let lines: Vec<Json> = stdout
        .lines()
        .map(|l| Json::parse(l).expect("every response line is JSON"))
        .collect();
    assert_eq!(lines.len(), 4, "stdout was: {stdout}");

    let field = |v: &Json, k: &str| v.get(k).cloned().unwrap_or(Json::Null);
    // The uncoupled summary carries no coupling block on the wire.
    let plain_summary = lines[0].get("summary").expect("summary");
    assert!(plain_summary.get("coupling_iterations").is_none());
    // The thermal scenario keys separately, solves cold, and its summary
    // reports the fixed point it reached.
    assert_ne!(
        field(&lines[1], "fingerprint"),
        field(&lines[0], "fingerprint")
    );
    assert_eq!(field(&lines[1], "outcome"), Json::Str("cold".to_string()));
    let summary = lines[1].get("summary").expect("summary");
    let iters = summary
        .get("coupling_iterations")
        .and_then(Json::as_usize)
        .expect("coupling_iterations on the wire");
    assert!(iters >= 2, "iterations {iters}");
    assert_eq!(summary.get("coupling_converged"), Some(&Json::Bool(true)));
    assert!(
        summary
            .get("peak_temperature_c")
            .and_then(Json::as_f64)
            .unwrap()
            > 30.0
    );
    // Repeat of the same thermal scenario is a cache hit.
    assert_eq!(field(&lines[2], "outcome"), Json::Str("hit".to_string()));
    assert_eq!(
        field(&lines[2], "fingerprint"),
        field(&lines[1], "fingerprint")
    );
}

#[test]
fn serve_flushes_disk_cache_across_sessions() {
    let dir = std::env::temp_dir().join(format!("vstack-serve-{}-flush", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let scenario = r#"{"solve":"regular","layers":2,"fidelity":"quick"}"#;
    let run = |expect_outcome: &str| {
        let mut child = Command::new(env!("CARGO_BIN_EXE_vstack-serve"))
            .args(["--cache-dir", dir.to_str().unwrap()])
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn vstack-serve");
        let line = format!("{{\"op\":\"solve\",\"id\":1,\"scenario\":{scenario}}}\n");
        child
            .stdin
            .take()
            .unwrap()
            .write_all(line.as_bytes())
            .unwrap();
        // Dropping stdin (EOF) must flush the disk cache and exit 0.
        let output = child.wait_with_output().unwrap();
        assert!(output.status.success());
        let response = Json::parse(
            String::from_utf8(output.stdout)
                .unwrap()
                .lines()
                .next()
                .unwrap(),
        )
        .unwrap();
        assert_eq!(
            response
                .get("outcome")
                .and_then(Json::as_str)
                .map(String::from),
            Some(expect_outcome.to_string())
        );
    };
    run("cold");
    run("hit"); // second process: served from the flushed disk tier
    let _ = std::fs::remove_dir_all(&dir);
}
