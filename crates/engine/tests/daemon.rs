//! End-to-end tests of the serving daemon over real TCP connections:
//! solve/hit, overload shedding with `retry_after_ms`, deadline
//! enforcement, structured error handling, graceful drain with cache
//! flush — and SIGTERM drain of the stdin front-end.

use std::fs;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

use vstack_engine::json::Json;
use vstack_engine::server::{Bind, Daemon, DaemonConfig, ShardConfig};

/// A fresh per-test scratch directory under the system temp dir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vstack-daemon-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn start(shards: usize, queue_capacity: usize, cache_dir: Option<&Path>) -> Daemon {
    Daemon::start(DaemonConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        shard: ShardConfig {
            shards,
            queue_capacity,
            lru_capacity: 64,
            cache_dir: cache_dir.map(Path::to_path_buf),
            ..ShardConfig::default()
        },
        ..DaemonConfig::default()
    })
    .expect("daemon start")
}

fn connect(daemon: &Daemon) -> BufReader<TcpStream> {
    let addr = daemon.tcp_addr().expect("tcp bind");
    let stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    BufReader::new(stream)
}

/// Sends one request line and reads `responses` response lines.
fn roundtrip(conn: &mut BufReader<TcpStream>, line: &str, responses: usize) -> Vec<Json> {
    conn.get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");
    (0..responses)
        .map(|_| {
            let mut response = String::new();
            conn.read_line(&mut response).expect("read response");
            assert!(!response.is_empty(), "connection closed early");
            Json::parse(&response).expect("response is JSON")
        })
        .collect()
}

fn one(conn: &mut BufReader<TcpStream>, line: &str) -> Json {
    roundtrip(conn, line, 1).pop().expect("one response")
}

fn scenario(imbalance_milli: usize) -> String {
    format!(r#"{{"solve":"vs","layers":2,"imbalance":0.{imbalance_milli:03},"fidelity":"quick"}}"#)
}

fn error_code(response: &Json) -> Option<&str> {
    response
        .get("error")
        .and_then(|e| e.get("code"))
        .and_then(Json::as_str)
}

#[test]
fn tcp_solve_then_hit_and_structured_errors() {
    let daemon = start(2, 8, None);
    let mut conn = connect(&daemon);

    let r1 = one(
        &mut conn,
        &format!(r#"{{"op":"solve","id":1,"scenario":{}}}"#, scenario(400)),
    );
    assert_eq!(r1.get("ok"), Some(&Json::Bool(true)), "response: {r1:?}");
    assert_eq!(r1.get("outcome").and_then(Json::as_str), Some("cold"));
    let fp = r1.get("fingerprint").cloned().expect("fingerprint");

    let r2 = one(
        &mut conn,
        &format!(r#"{{"op":"solve","id":2,"scenario":{}}}"#, scenario(400)),
    );
    assert_eq!(r2.get("outcome").and_then(Json::as_str), Some("hit"));
    assert_eq!(r2.get("fingerprint"), Some(&fp));

    // Malformed and unknown inputs: structured errors, connection lives.
    let bad = one(&mut conn, "not json at all");
    assert_eq!(error_code(&bad), Some("parse_error"));
    let unknown = one(&mut conn, r#"{"op":"transmogrify"}"#);
    assert_eq!(error_code(&unknown), Some("unknown_op"));
    let invalid = one(
        &mut conn,
        r#"{"op":"solve","scenario":{"solve":"vs","layers":0}}"#,
    );
    assert_eq!(error_code(&invalid), Some("invalid_request"));

    let stats = one(&mut conn, r#"{"op":"stats","id":9}"#);
    assert_eq!(stats.get("ok"), Some(&Json::Bool(true)));
    let body = stats.get("stats").expect("stats body");
    assert_eq!(
        body.get("schema_version").and_then(Json::as_f64),
        Some(f64::from(vstack_engine::SCHEMA_VERSION))
    );

    daemon.shutdown(true);
}

/// 2x-and-beyond overload: a one-worker, one-slot daemon flooded with
/// distinct scenarios must shed — and every rejection carries the
/// `retry_after_ms` hint while at least the first admitted request
/// completes. Nothing hangs: every submitted request gets an answer.
#[test]
fn overload_sheds_with_retry_after_ms() {
    let daemon = start(1, 1, None);
    let mut conn = connect(&daemon);

    const FLOOD: usize = 48;
    let items: Vec<String> = (0..FLOOD)
        .map(|i| format!(r#"{{"id":{i},"scenario":{}}}"#, scenario(100 + i)))
        .collect();
    let batch = format!(r#"{{"op":"batch","requests":[{}]}}"#, items.join(","));
    let responses = roundtrip(&mut conn, &batch, FLOOD);

    let mut ok = 0usize;
    let mut shed = 0usize;
    for response in &responses {
        if response.get("ok") == Some(&Json::Bool(true)) {
            ok += 1;
            continue;
        }
        let code = error_code(response).expect("error code");
        assert_eq!(code, "overloaded", "unexpected failure: {response:?}");
        let retry = response
            .get("error")
            .and_then(|e| e.get("retry_after_ms"))
            .and_then(Json::as_f64);
        let retry = retry.expect("every shed response carries retry_after_ms");
        assert!(
            retry >= 1.0,
            "retry_after_ms must be at least 1, got {retry}"
        );
        shed += 1;
    }
    assert_eq!(ok + shed, FLOOD, "every request answered, none hung");
    assert!(ok >= 1, "the first admitted request must complete");
    assert!(
        shed >= 1,
        "a {FLOOD}-deep flood of a 1-slot queue must shed (ok={ok})"
    );

    daemon.shutdown(true);
}

/// A deadline far below the solve time yields a bounded, structured
/// `deadline_exceeded` — not a hang and not a success.
#[test]
fn impossible_deadline_answers_deadline_exceeded() {
    let daemon = start(1, 4, None);
    let mut conn = connect(&daemon);
    // Full-fidelity 16-layer solve: far more than 1 ms of work.
    let response = one(
        &mut conn,
        r#"{"op":"solve","deadline_ms":1,"scenario":{"solve":"vs","layers":16,"imbalance":0.5}}"#,
    );
    assert_eq!(error_code(&response), Some("deadline_exceeded"));
    daemon.shutdown(true);
}

#[test]
fn bad_deadline_is_invalid_request() {
    let daemon = start(1, 4, None);
    let mut conn = connect(&daemon);
    let response = one(
        &mut conn,
        &format!(
            r#"{{"op":"solve","deadline_ms":-5,"scenario":{}}}"#,
            scenario(250)
        ),
    );
    assert_eq!(error_code(&response), Some("invalid_request"));
    daemon.shutdown(true);
}

/// The shutdown verb: client gets an acknowledgment, the owner observes
/// the request, drain flushes every shard's cache segment, and a new
/// daemon over the same directory serves the result from disk.
#[test]
fn shutdown_verb_drains_and_flushes_cache() {
    let dir = scratch_dir("drain");
    let daemon = start(2, 8, Some(&dir));
    let mut conn = connect(&daemon);
    let solved = one(
        &mut conn,
        &format!(r#"{{"op":"solve","scenario":{}}}"#, scenario(700)),
    );
    assert_eq!(solved.get("ok"), Some(&Json::Bool(true)));

    let ack = one(&mut conn, r#"{"op":"shutdown"}"#);
    assert_eq!(ack.get("shutdown"), Some(&Json::Bool(true)));
    assert!(
        daemon.wait_shutdown_requested(Duration::from_secs(30)),
        "shutdown verb must latch for the owner"
    );
    let snapshot = daemon.shutdown(true);
    assert!(
        snapshot.contains("vstack-obs-metrics"),
        "shutdown returns the final metrics snapshot"
    );
    let entries: Vec<_> = fs::read_dir(&dir)
        .expect("cache dir exists")
        .flat_map(|shard| fs::read_dir(shard.expect("shard dir").path()).expect("segment"))
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(entries.len(), 1, "drain must flush the solved entry");

    let daemon = start(2, 8, Some(&dir));
    let mut conn = connect(&daemon);
    let hit = one(
        &mut conn,
        &format!(r#"{{"op":"solve","scenario":{}}}"#, scenario(700)),
    );
    assert_eq!(hit.get("outcome").and_then(Json::as_str), Some("hit"));
    assert_eq!(hit.get("source").and_then(Json::as_str), Some("disk"));
    daemon.shutdown(true);
}

/// Identical scenarios racing on two connections: whether the second
/// joins the in-flight solve (the dedup path) or hits the fresh cache
/// entry, both get coherent success answers for the same fingerprint.
#[test]
fn concurrent_identical_requests_share_one_solve() {
    let daemon = start(1, 2, None);
    let line = format!(r#"{{"op":"solve","scenario":{}}}"#, scenario(900));
    let mut conns: Vec<_> = (0..2).map(|_| connect(&daemon)).collect();
    for conn in &mut conns {
        conn.get_mut()
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
    }
    let mut fingerprints = Vec::new();
    for conn in &mut conns {
        let mut response = String::new();
        conn.read_line(&mut response).expect("read");
        let response = Json::parse(&response).expect("json");
        assert_eq!(response.get("ok"), Some(&Json::Bool(true)));
        fingerprints.push(response.get("fingerprint").cloned());
    }
    assert_eq!(fingerprints[0], fingerprints[1]);
    daemon.shutdown(true);
}

/// SIGTERM on the stdin front-end drains gracefully: the disk cache is
/// flushed and the process exits 0 (satellite: signals, not just EOF).
#[test]
#[cfg(unix)]
fn stdin_mode_sigterm_drains_and_flushes() {
    use std::process::{Command, Stdio};

    let dir = scratch_dir("sigterm");
    let mut child = Command::new(env!("CARGO_BIN_EXE_vstack-serve"))
        .args(["--cache-dir", dir.to_str().expect("utf-8 tmp path")])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn vstack-serve");

    // One solved request proves the loop is up; keep stdin open so EOF
    // cannot be the thing that stops the server.
    let mut stdin = child.stdin.take().expect("piped stdin");
    stdin
        .write_all(
            format!(
                r#"{{"op":"solve","id":1,"scenario":{}}}{}"#,
                scenario(333),
                "\n"
            )
            .as_bytes(),
        )
        .expect("write request");
    stdin.flush().expect("flush stdin");
    let mut stdout = BufReader::new(child.stdout.take().expect("piped stdout"));
    let mut response = String::new();
    stdout.read_line(&mut response).expect("read response");
    assert_eq!(
        Json::parse(&response).expect("json").get("ok"),
        Some(&Json::Bool(true))
    );

    let term = Command::new("kill")
        .args(["-TERM", &child.id().to_string()])
        .status()
        .expect("send SIGTERM");
    assert!(term.success());

    let status = child.wait().expect("serve exits");
    assert!(status.success(), "SIGTERM must drain to exit 0");
    drop(stdin);
    let entries: Vec<_> = fs::read_dir(&dir)
        .expect("cache dir exists")
        .map(|e| e.expect("entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(entries.len(), 1, "drain must flush the solved entry");
}
