//! End-to-end tests of the request-telemetry surface: per-reply
//! `telemetry` blocks, the `telemetry`/`flightdump` verbs, pinned
//! legacy `stats` fields, byte-identical replies across runs once
//! wall-clock fields are canonicalized, and a guard keeping the engine
//! binaries on the leveled `vstack-obs` logger instead of bare
//! `eprintln!`.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use vstack_bench::obs::{zero_wallclock, ZEROED_TRACE_ID};
use vstack_engine::json::Json;
use vstack_engine::server::{Bind, Daemon, DaemonConfig, ShardConfig};

fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vstack-telemetry-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

fn start(flight_dir: Option<PathBuf>) -> Daemon {
    Daemon::start(DaemonConfig {
        bind: Bind::Tcp("127.0.0.1:0".to_string()),
        shard: ShardConfig {
            shards: 2,
            queue_capacity: 8,
            lru_capacity: 64,
            cache_dir: None,
            flight_dir,
            ..ShardConfig::default()
        },
        ..DaemonConfig::default()
    })
    .expect("daemon start")
}

fn connect(daemon: &Daemon) -> BufReader<TcpStream> {
    let stream = TcpStream::connect(daemon.tcp_addr().expect("tcp bind")).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(120)))
        .expect("read timeout");
    BufReader::new(stream)
}

fn one(conn: &mut BufReader<TcpStream>, line: &str) -> Json {
    conn.get_mut()
        .write_all(format!("{line}\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    conn.read_line(&mut response).expect("read response");
    assert!(!response.is_empty(), "connection closed early");
    Json::parse(&response).expect("response is JSON")
}

fn scenario(imbalance_milli: usize) -> String {
    format!(r#"{{"solve":"vs","layers":2,"imbalance":0.{imbalance_milli:03},"fidelity":"quick"}}"#)
}

/// The reply's `telemetry` block, with basic shape checks applied.
fn telemetry_of(reply: &Json) -> &Json {
    let t = reply.get("telemetry").expect("reply carries telemetry");
    let id = t.get("trace_id").and_then(Json::as_str).expect("trace_id");
    assert_eq!(id.len(), 16, "trace id is 16 hex chars: {id}");
    assert!(id.chars().all(|c| c.is_ascii_hexdigit()));
    assert_ne!(id, ZEROED_TRACE_ID, "trace id must be minted, not zero");
    t
}

fn phase_us(t: &Json, name: &str) -> u64 {
    t.get(name).and_then(Json::as_f64).expect(name) as u64
}

#[test]
fn every_reply_carries_a_consistent_telemetry_block() {
    let daemon = start(None);
    let mut conn = connect(&daemon);

    let sent = Instant::now();
    let cold = one(
        &mut conn,
        &format!(r#"{{"op":"solve","id":1,"scenario":{}}}"#, scenario(420)),
    );
    let wall_us = sent.elapsed().as_micros() as u64;
    assert_eq!(cold.get("ok"), Some(&Json::Bool(true)));
    let t = telemetry_of(&cold);
    assert_eq!(t.get("cache_tier").and_then(Json::as_str), Some("solve"));
    assert!(
        t.get("solver_path")
            .and_then(Json::as_str)
            .is_some_and(|p| !p.is_empty()),
        "solved requests name their solver path"
    );
    let solve_us = phase_us(t, "solve_us");
    let queue_wait_us = phase_us(t, "queue_wait_us");
    assert!(solve_us > 0, "a cold solve takes measurable time");
    assert!(
        queue_wait_us + solve_us <= wall_us,
        "phases ({queue_wait_us} + {solve_us}) must fit in the wall time ({wall_us})"
    );

    // A repeat of the same scenario is served from the memory tier, and
    // its trace id is freshly minted (ids belong to requests, not keys).
    let hit = one(
        &mut conn,
        &format!(r#"{{"op":"solve","id":2,"scenario":{}}}"#, scenario(420)),
    );
    assert_eq!(hit.get("outcome").and_then(Json::as_str), Some("hit"));
    let t2 = telemetry_of(&hit);
    assert_eq!(t2.get("cache_tier").and_then(Json::as_str), Some("mem"));
    assert_ne!(
        t.get("trace_id").and_then(Json::as_str),
        t2.get("trace_id").and_then(Json::as_str)
    );

    // Structured errors carry telemetry too (unserved: tier "none").
    let invalid = one(
        &mut conn,
        r#"{"op":"solve","deadline_ms":1,"scenario":{"solve":"vs","layers":16,"imbalance":0.5}}"#,
    );
    assert_eq!(
        invalid
            .get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("deadline_exceeded")
    );
    telemetry_of(&invalid);

    daemon.shutdown(true);
}

#[test]
fn telemetry_verb_serves_windowed_rollups() {
    let daemon = start(None);
    let mut conn = connect(&daemon);
    for i in 0..3 {
        let reply = one(
            &mut conn,
            &format!(r#"{{"op":"solve","scenario":{}}}"#, scenario(100 + i)),
        );
        assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    }

    let reply = one(&mut conn, r#"{"op":"telemetry","id":7}"#);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    assert_eq!(reply.get("id").and_then(Json::as_f64), Some(7.0));
    let rollup = reply.get("telemetry").expect("rollup body");
    assert_eq!(
        rollup.get("schema").and_then(Json::as_str),
        Some("vstack-telemetry/1")
    );
    let shards = rollup.get("shards").and_then(Json::as_arr).expect("shards");
    assert_eq!(shards.len(), 2);
    let served: f64 = shards
        .iter()
        .map(|s| {
            let total = s.get("total").expect("total phase");
            for phase in ["total", "queue", "solve"] {
                let doc = s.get(phase).expect("phase rollup");
                for field in [
                    "count",
                    "sum_us",
                    "over_slo",
                    "p50_us",
                    "p99_us",
                    "p999_us",
                    "burn_rate",
                    "edges",
                    "buckets",
                ] {
                    assert!(doc.get(field).is_some(), "phase {phase} missing {field}");
                }
            }
            total.get("count").and_then(Json::as_f64).unwrap()
        })
        .sum();
    assert_eq!(served, 3.0, "windowed rollup covers the served requests");

    daemon.shutdown(true);
}

#[test]
fn flightdump_verb_writes_a_parseable_dump() {
    let dir = scratch_dir("flightdump");
    let daemon = start(Some(dir.clone()));
    let mut conn = connect(&daemon);
    let reply = one(
        &mut conn,
        &format!(r#"{{"op":"solve","scenario":{}}}"#, scenario(555)),
    );
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    let trace_id = telemetry_of(&reply)
        .get("trace_id")
        .and_then(Json::as_str)
        .unwrap()
        .to_string();

    let dump = one(&mut conn, r#"{"op":"flightdump"}"#);
    assert_eq!(dump.get("ok"), Some(&Json::Bool(true)), "reply: {dump:?}");
    let path = dump
        .get("flightdump")
        .and_then(|d| d.get("path"))
        .and_then(Json::as_str)
        .expect("dump path")
        .to_string();
    let text = std::fs::read_to_string(&path).expect("read dump");
    let mut lines = text.lines();
    let header = Json::parse(lines.next().expect("header line")).expect("header parses");
    assert_eq!(
        header.get("schema").and_then(Json::as_str),
        Some("vstack-flight/1")
    );
    assert_eq!(
        header.get("reason").and_then(Json::as_str),
        Some("on_demand")
    );
    let records: Vec<Json> = lines
        .map(|l| Json::parse(l).expect("record parses"))
        .collect();
    assert!(
        records
            .iter()
            .any(|r| r.get("trace_id").and_then(Json::as_str) == Some(trace_id.as_str())),
        "dump must contain the served request's trace id {trace_id}"
    );

    daemon.shutdown(true);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Without a flight directory the verb answers a structured error, not
/// a panic or a silent success.
#[test]
fn flightdump_without_a_directory_is_unavailable() {
    let daemon = start(None);
    let mut conn = connect(&daemon);
    let dump = one(&mut conn, r#"{"op":"flightdump"}"#);
    assert_eq!(
        dump.get("error")
            .and_then(|e| e.get("code"))
            .and_then(Json::as_str),
        Some("unavailable")
    );
    daemon.shutdown(true);
}

/// Satellite (b): the legacy `stats` fields are pinned — additions ride
/// at the end, never in the middle, so dashboards keyed on the prefix
/// keep working.
#[test]
fn stats_fields_stay_pinned_with_additions_at_the_end() {
    let daemon = start(None);
    let mut conn = connect(&daemon);
    let reply = one(&mut conn, r#"{"op":"stats"}"#);
    assert_eq!(reply.get("ok"), Some(&Json::Bool(true)));
    let Some(Json::Obj(fields)) = reply.get("stats") else {
        panic!("stats body is an object");
    };
    let names: Vec<&str> = fields.iter().map(|(name, _)| name.as_str()).collect();
    assert_eq!(
        names,
        [
            // The 11 legacy fields, in their original order.
            "schema_version",
            "shards",
            "queued",
            "connections",
            "accepted",
            "shed",
            "dedup_joins",
            "deadline_exceeded",
            "worker_panics",
            "drained_jobs",
            "cache_quarantined",
            // This PR's additions, appended.
            "uptime_ms",
            "telemetry_schema_version",
        ],
        "stats fields are pinned; append new fields at the end only"
    );
    assert_eq!(
        reply
            .get("stats")
            .and_then(|s| s.get("telemetry_schema_version"))
            .and_then(Json::as_f64),
        Some(1.0)
    );
    let uptime = reply
        .get("stats")
        .and_then(|s| s.get("uptime_ms"))
        .and_then(Json::as_f64)
        .expect("uptime_ms");
    assert!(uptime >= 0.0);
    daemon.shutdown(true);
}

/// Two identical single-threaded stdin-mode runs produce byte-identical
/// reply streams once wall-clock fields and trace ids are canonicalized
/// by the shared `zero_wallclock` helper (satellite a).
#[test]
fn stdin_replies_are_byte_identical_across_runs_when_canonicalized() {
    use std::process::{Command, Stdio};

    let run = || -> Vec<String> {
        let mut child = Command::new(env!("CARGO_BIN_EXE_vstack-serve"))
            .env("VSTACK_THREADS", "1")
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn vstack-serve");
        let mut stdin = child.stdin.take().expect("piped stdin");
        for (id, imb) in [(1, 310), (2, 640), (3, 310)] {
            writeln!(
                stdin,
                r#"{{"op":"solve","id":{id},"scenario":{}}}"#,
                scenario(imb)
            )
            .expect("write request");
        }
        drop(stdin); // EOF drains the loop.
        let output = child.wait_with_output().expect("serve exits");
        assert!(output.status.success());
        String::from_utf8(output.stdout)
            .expect("utf-8 replies")
            .lines()
            .map(|line| {
                let mut reply = Json::parse(line).expect("reply parses");
                assert!(
                    reply.get("telemetry").is_some(),
                    "stdin replies carry telemetry"
                );
                zero_wallclock(&mut reply);
                reply.emit()
            })
            .collect()
    };

    let (a, b) = (run(), run());
    assert_eq!(a.len(), 3);
    assert_eq!(a, b, "canonicalized reply streams must be byte-identical");
    // The canonicalizer really did strip the minted ids.
    assert!(a[0].contains(ZEROED_TRACE_ID));
}

/// Satellite (c): the engine binaries log through the leveled
/// `vstack-obs` logger; bare `eprintln!` must not creep back in.
#[test]
fn engine_binaries_use_the_leveled_logger_not_eprintln() {
    let bin_dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("src/bin");
    let mut checked = 0;
    for entry in std::fs::read_dir(&bin_dir).expect("src/bin exists") {
        let path = entry.expect("entry").path();
        if path.extension().is_none_or(|e| e != "rs") {
            continue;
        }
        checked += 1;
        let source = std::fs::read_to_string(&path).expect("read source");
        for (lineno, line) in source.lines().enumerate() {
            assert!(
                !line.contains("eprintln!"),
                "{}:{}: use vstack_obs::log (warn!/info!/debug!) instead of eprintln!",
                path.display(),
                lineno + 1
            );
        }
    }
    assert!(
        checked >= 1,
        "no binaries found under {}",
        bin_dir.display()
    );
}
