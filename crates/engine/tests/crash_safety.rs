//! Crash-safety integration tests for the disk cache: torn writes, bit
//! flips, junk files and interrupted stores must all degrade to clean
//! (counted, quarantined) misses — never a panic, never a trusted lie.

use std::fs;
use std::path::{Path, PathBuf};

use vstack_engine::{Engine, EngineConfig, Outcome, ScenarioRequest};

/// A fresh per-test scratch directory under the system temp dir.
fn scratch_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vstack-crash-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn request() -> ScenarioRequest {
    ScenarioRequest::voltage_stacked(2, 0.4).quick()
}

fn engine(dir: &Path) -> Engine {
    Engine::new(EngineConfig {
        cache_dir: Some(dir.to_path_buf()),
        ..EngineConfig::default()
    })
    .expect("open engine")
}

/// Solves once and flushes, so `dir` holds exactly one entry file.
fn seed_cache(dir: &Path) -> PathBuf {
    let mut e = engine(dir);
    let result = e.query(&request()).expect("cold solve");
    assert_eq!(result.outcome, Outcome::Cold);
    e.flush().expect("flush");
    entry_file(dir)
}

/// The single `*.json` entry file in `dir`.
fn entry_file(dir: &Path) -> PathBuf {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)
        .expect("cache dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    assert_eq!(entries.len(), 1, "expected one entry file in {dir:?}");
    entries.pop().expect("one entry")
}

fn corrupt_files(dir: &Path) -> Vec<PathBuf> {
    fs::read_dir(dir)
        .expect("cache dir")
        .map(|e| e.expect("dir entry").path())
        .filter(|p| p.to_string_lossy().ends_with(".corrupt"))
        .collect()
}

#[test]
fn clean_reopen_serves_from_disk() {
    let dir = scratch_dir("clean");
    seed_cache(&dir);
    let mut e = engine(&dir);
    let result = e.query(&request()).expect("disk hit");
    assert_eq!(result.outcome, Outcome::HitDisk);
    assert_eq!(e.stats().corrupt_rejects, 0);
}

/// The acceptance scenario: a store whose tail never reached the disk
/// (the observable state after `kill -9` plus a lost tail) must reopen as
/// a quarantined miss, re-solve cold, and leave the cache fully usable.
#[test]
fn torn_entry_quarantined_then_resolved_cold_then_usable() {
    let dir = scratch_dir("torn");
    let entry = seed_cache(&dir);
    let text = fs::read_to_string(&entry).expect("read entry");
    fs::write(&entry, &text[..text.len() / 2]).expect("tear entry");

    let mut e = engine(&dir);
    let result = e.query(&request()).expect("re-solve");
    assert_eq!(result.outcome, Outcome::Cold, "torn entry must not serve");
    assert_eq!(e.stats().corrupt_rejects, 1);
    assert!(!entry.exists(), "torn entry must be moved aside");
    let quarantined = corrupt_files(&dir);
    assert_eq!(quarantined.len(), 1, "torn entry must be quarantined");
    e.flush().expect("flush re-solve");
    drop(e);

    // Third generation: the re-solved entry serves, quarantine untouched.
    let mut e = engine(&dir);
    let result = e.query(&request()).expect("disk hit");
    assert_eq!(result.outcome, Outcome::HitDisk);
    assert_eq!(e.stats().corrupt_rejects, 0);
    assert_eq!(corrupt_files(&dir).len(), 1);
}

#[test]
fn payload_bitflip_fails_the_checksum() {
    let dir = scratch_dir("bitflip");
    let entry = seed_cache(&dir);
    // Corrupt one byte inside the payload without breaking JSON syntax:
    // the checksum, not the parser, must catch it.
    let text = fs::read_to_string(&entry).expect("read entry");
    let needle = "\"layers\":";
    let at = text.find(needle).expect("payload has layers") + needle.len();
    let mut bytes = text.into_bytes();
    bytes[at] = if bytes[at] == b'9' { b'8' } else { b'9' };
    fs::write(&entry, bytes).expect("flip byte");

    let mut e = engine(&dir);
    let result = e.query(&request()).expect("re-solve");
    assert_eq!(result.outcome, Outcome::Cold);
    assert_eq!(e.stats().corrupt_rejects, 1);
    assert_eq!(corrupt_files(&dir).len(), 1);
}

#[test]
fn junk_entry_is_a_quarantined_miss() {
    let dir = scratch_dir("junk");
    let entry = seed_cache(&dir);
    fs::write(&entry, "{\"not\": \"a cache entry\"}\n").expect("write junk");

    let mut e = engine(&dir);
    let result = e.query(&request()).expect("re-solve");
    assert_eq!(result.outcome, Outcome::Cold);
    assert_eq!(e.stats().corrupt_rejects, 1);
    assert_eq!(corrupt_files(&dir).len(), 1);
}

/// Entries from a different schema generation are intact, just unusable:
/// a miss that is counted separately and *not* quarantined.
#[test]
fn old_schema_entry_is_a_clean_miss_not_corruption() {
    let dir = scratch_dir("schema");
    let entry = seed_cache(&dir);
    let text = fs::read_to_string(&entry).expect("read entry");
    let stamped = format!("{{\"schema\":{},", vstack_engine::SCHEMA_VERSION);
    assert!(text.starts_with(&stamped), "entry text: {text}");
    fs::write(&entry, text.replacen(&stamped, "{\"schema\":1,", 1)).expect("restamp");

    let mut e = engine(&dir);
    let result = e.query(&request()).expect("re-solve");
    assert_eq!(result.outcome, Outcome::Cold);
    assert_eq!(e.stats().schema_rejects, 1);
    assert_eq!(e.stats().corrupt_rejects, 0);
    assert!(entry.exists(), "version skew must not quarantine");
    assert!(corrupt_files(&dir).is_empty());
}

/// A crash between the temp-file write and the rename leaves only a
/// `*.json.tmp`; the store must ignore it and keep working.
#[test]
fn leftover_tmp_file_is_ignored() {
    let dir = scratch_dir("tmpfile");
    let entry = seed_cache(&dir);
    let tmp = entry.with_extension("json.tmp");
    let text = fs::read_to_string(&entry).expect("read entry");
    fs::write(&tmp, &text[..text.len() / 3]).expect("write partial tmp");
    fs::remove_file(&entry).expect("drop final entry");

    let mut e = engine(&dir);
    let result = e.query(&request()).expect("re-solve");
    assert_eq!(result.outcome, Outcome::Cold, "tmp files are not entries");
    assert_eq!(e.stats().corrupt_rejects, 0);
    e.flush().expect("flush overwrites cleanly");
    drop(e);
    let mut e = engine(&dir);
    assert_eq!(e.query(&request()).expect("hit").outcome, Outcome::HitDisk);
}
