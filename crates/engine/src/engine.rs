//! The query engine: cache lookup, in-batch deduplication, warm-start
//! donor selection and the deterministic batch scheduler.
//!
//! # Determinism
//!
//! A batch's outcome depends only on the requests and the cache state at
//! entry:
//!
//! * Requests are canonicalized and grouped by fingerprint in
//!   first-occurrence order; duplicate requests join their group instead
//!   of solving again.
//! * Warm-start donors are snapshotted from the memory cache *before* any
//!   solve is dispatched, so a donor choice can never depend on the
//!   completion order of sibling solves.
//! * The solves run over [`vstack_sparse::pool`] workers via `par_map`,
//!   which preserves submission order in its results; each job owns a
//!   fresh [`SolveScratch`], so no floating-point state is shared across
//!   jobs.
//!
//! Re-solving a scenario warm-started from its own cached voltages is
//! bit-identical to the cold solve: the guess already satisfies the
//! convergence tolerance, so the solver returns it unchanged after the
//! zero-iteration residual check.

use std::io;
use std::path::PathBuf;
use std::time::Instant;

use vstack::coupled::{solve_coupled, CoupledConfig, CoupledLoad};
use vstack_pdn::{PdnError, SolveScratch};
use vstack_sparse::{pool, CancelToken, SolveError};

use crate::cache::{CacheEntry, DiskCache, DiskLoad, LruCache};
use crate::json::Json;
use crate::request::{ScenarioRequest, SolveKind};
use crate::summary::SolveSummary;

/// Engine construction options.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Bound on the in-memory LRU tier (entries).
    pub lru_capacity: usize,
    /// Directory for the on-disk tier; `None` disables it.
    pub cache_dir: Option<PathBuf>,
    /// Whether cold solves may seed from the nearest cached neighbour.
    pub warm_start: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            lru_capacity: 256,
            cache_dir: None,
            warm_start: true,
        }
    }
}

/// How one request was satisfied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Outcome {
    /// Served from the in-memory tier.
    HitMemory,
    /// Served from the on-disk tier.
    HitDisk,
    /// Duplicate of another request in the same batch; shared its solve.
    Deduped,
    /// Solved, seeded from a cached neighbour's voltages.
    Warm,
    /// Solved from scratch.
    Cold,
}

impl Outcome {
    /// Protocol label: duplicates and both cache tiers all count as hits.
    pub fn label(self) -> &'static str {
        match self {
            Outcome::HitMemory | Outcome::HitDisk | Outcome::Deduped => "hit",
            Outcome::Warm => "warm",
            Outcome::Cold => "cold",
        }
    }

    /// Where a hit came from; `None` for actual solves.
    pub fn source(self) -> Option<&'static str> {
        match self {
            Outcome::HitMemory => Some("memory"),
            Outcome::HitDisk => Some("disk"),
            Outcome::Deduped => Some("dedup"),
            Outcome::Warm | Outcome::Cold => None,
        }
    }
}

/// Monotonic service counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Requests accepted (valid scenarios, including duplicates).
    pub requests: u64,
    /// Requests rejected at validation/parse time.
    pub invalid: u64,
    /// Served from the memory tier.
    pub memory_hits: u64,
    /// Served from the disk tier.
    pub disk_hits: u64,
    /// Batch duplicates that piggybacked on a sibling's solve.
    pub deduped: u64,
    /// Solves seeded from a cached neighbour.
    pub warm_solves: u64,
    /// Solves from scratch.
    pub cold_solves: u64,
    /// Disk entries rejected for a schema-version mismatch.
    pub schema_rejects: u64,
    /// Disk entries rejected as corrupt.
    pub corrupt_rejects: u64,
    /// Total iterations across all solves performed.
    pub solver_iterations: u64,
    /// Microseconds spent building preconditioners (AMG hierarchies,
    /// IC(0) factors) across all solves; 0 when setup was cached.
    pub solver_setup_us: u64,
    /// Wall-clock spent inside solves, microseconds (per-job, so parallel
    /// batches sum to more than elapsed time).
    pub solve_time_us: u64,
    /// Solves whose accepted rung iterated through the matrix-free
    /// stencil operator (`solver_path` starts with `"stencil"`).
    pub stencil_solves: u64,
    /// Solves whose accepted rung used the mixed-precision f32 V-cycle
    /// (`solver_path` ends with `"mixed"`).
    pub mixed_solves: u64,
}

impl EngineStats {
    /// Solves actually performed.
    pub fn solves(&self) -> u64 {
        self.warm_solves + self.cold_solves
    }

    /// Requests answered without a new solve.
    pub fn hits(&self) -> u64 {
        self.memory_hits + self.disk_hits + self.deduped
    }

    /// Fraction of accepted requests answered without a new solve.
    pub fn hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.hits() as f64 / self.requests as f64
        }
    }

    /// Serializes the counters for the `stats` protocol op. The engine
    /// protocol [`crate::SCHEMA_VERSION`] is stamped at the top level so
    /// clients can detect incompatible servers from `stats` alone, not
    /// just from cached result files.
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            (
                "schema_version",
                Json::Num(f64::from(crate::SCHEMA_VERSION)),
            ),
            ("requests", Json::Num(self.requests as f64)),
            ("invalid", Json::Num(self.invalid as f64)),
            ("memory_hits", Json::Num(self.memory_hits as f64)),
            ("disk_hits", Json::Num(self.disk_hits as f64)),
            ("deduped", Json::Num(self.deduped as f64)),
            ("warm_solves", Json::Num(self.warm_solves as f64)),
            ("cold_solves", Json::Num(self.cold_solves as f64)),
            ("schema_rejects", Json::Num(self.schema_rejects as f64)),
            ("corrupt_rejects", Json::Num(self.corrupt_rejects as f64)),
            (
                "solver_iterations",
                Json::Num(self.solver_iterations as f64),
            ),
            ("solver_setup_us", Json::Num(self.solver_setup_us as f64)),
            ("solve_time_us", Json::Num(self.solve_time_us as f64)),
            ("stencil_solves", Json::Num(self.stencil_solves as f64)),
            ("mixed_solves", Json::Num(self.mixed_solves as f64)),
            ("hit_rate", Json::Num(self.hit_rate())),
        ])
    }
}

/// A satisfied query.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Content-address of the canonical request.
    pub fingerprint: u64,
    /// How it was satisfied.
    pub outcome: Outcome,
    /// The result payload.
    pub summary: SolveSummary,
    /// Wall-clock of the solve that produced this result, microseconds;
    /// 0 for cache hits.
    pub latency_us: u64,
}

/// A failed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The request failed validation; nothing was solved.
    Invalid(String),
    /// The solver could not produce a solution for this scenario.
    Solve(String),
    /// The solve was abandoned because its cancellation token fired — the
    /// request deadline passed or the server began draining. Distinct
    /// from [`EngineError::Solve`] so serving tiers can answer with a
    /// `deadline_exceeded` error instead of a solver failure.
    Cancelled,
}

impl core::fmt::Display for EngineError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            EngineError::Invalid(m) => write!(f, "invalid request: {m}"),
            EngineError::Solve(m) => write!(f, "solve failed: {m}"),
            EngineError::Cancelled => write!(f, "solve cancelled (deadline or shutdown)"),
        }
    }
}

/// The scenario-query engine. Single-threaded interface; parallelism
/// lives inside [`Engine::query_batch`].
#[derive(Debug)]
pub struct Engine {
    config: EngineConfig,
    lru: LruCache,
    disk: Option<DiskCache>,
    /// Fingerprints solved since the last flush, oldest first.
    dirty: Vec<u64>,
    stats: EngineStats,
    /// Cancellation token cloned into every solve dispatched by
    /// [`Engine::query_batch`]; defaults to the never-firing token.
    cancel: CancelToken,
}

impl Engine {
    /// Builds an engine, opening the disk tier if configured.
    ///
    /// # Errors
    ///
    /// Propagates cache-directory creation failures.
    pub fn new(config: EngineConfig) -> io::Result<Self> {
        let disk = match &config.cache_dir {
            Some(dir) => Some(DiskCache::open(dir)?),
            None => None,
        };
        Ok(Engine {
            lru: LruCache::new(config.lru_capacity),
            disk,
            dirty: Vec::new(),
            stats: EngineStats::default(),
            config,
            cancel: CancelToken::never(),
        })
    }

    /// The counters so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Installs the cancellation token threaded into every subsequent
    /// solve (deadline enforcement happens between escalation-ladder
    /// rungs). Serving tiers set a per-request token before each query;
    /// pass [`CancelToken::never`] to clear.
    pub fn set_cancel_token(&mut self, cancel: CancelToken) {
        self.cancel = cancel;
    }

    /// Serves one request (a batch of one).
    ///
    /// # Errors
    ///
    /// See [`EngineError`].
    pub fn query(&mut self, request: &ScenarioRequest) -> Result<QueryResult, EngineError> {
        self.query_batch(std::slice::from_ref(request))
            .pop()
            .expect("batch of one yields one result")
    }

    /// Serves a batch: validates, deduplicates by fingerprint, answers
    /// from the cache tiers, and solves the remainder in parallel with
    /// warm starts. Results are positionally aligned with `requests`.
    pub fn query_batch(
        &mut self,
        requests: &[ScenarioRequest],
    ) -> Vec<Result<QueryResult, EngineError>> {
        let _span = vstack_obs::span!("engine_batch");
        let batch_timer = Instant::now();
        let stats_before = self.stats;
        // Phase 1: validate + canonicalize, group duplicates.
        let mut results: Vec<Option<Result<QueryResult, EngineError>>> =
            (0..requests.len()).map(|_| None).collect();
        // Unique fingerprints in first-occurrence order, each with its
        // canonical request and the indices that requested it.
        let mut groups: Vec<(u64, ScenarioRequest, Vec<usize>)> = Vec::new();
        for (i, raw) in requests.iter().enumerate() {
            if let Err(e) = raw.validate() {
                self.stats.invalid += 1;
                results[i] = Some(Err(EngineError::Invalid(e)));
                continue;
            }
            self.stats.requests += 1;
            let canonical = raw.canonical();
            let fp = canonical.fingerprint();
            match groups.iter_mut().find(|(g, _, _)| *g == fp) {
                Some((_, _, members)) => members.push(i),
                None => groups.push((fp, canonical, vec![i])),
            }
        }

        // Phase 2: answer groups from the cache tiers.
        let mut jobs: Vec<(u64, ScenarioRequest, Option<Vec<f64>>)> = Vec::new();
        let mut group_outcome: Vec<Option<(Outcome, SolveSummary, u64)>> =
            (0..groups.len()).map(|_| None).collect();
        for (g, (fp, request, _)) in groups.iter().enumerate() {
            if let Some(entry) = self.lru.get(*fp) {
                group_outcome[g] = Some((Outcome::HitMemory, entry.summary.clone(), 0));
                continue;
            }
            if let Some(disk) = &self.disk {
                match disk.load(*fp) {
                    DiskLoad::Hit(entry) => {
                        group_outcome[g] = Some((Outcome::HitDisk, entry.summary.clone(), 0));
                        self.lru.insert(*fp, *entry);
                        continue;
                    }
                    DiskLoad::SchemaMismatch => self.stats.schema_rejects += 1,
                    DiskLoad::Corrupt(_) => self.stats.corrupt_rejects += 1,
                    DiskLoad::Missing => {}
                }
            }
            let guess = if self.config.warm_start {
                self.nearest_donor(request)
            } else {
                None
            };
            jobs.push((*fp, request.clone(), guess));
        }

        // Phase 3: solve the misses in parallel, submission order preserved.
        // (fingerprint, warm-started?, solve result, elapsed microseconds)
        type SolvedJob = (
            u64,
            bool,
            Result<(SolveSummary, Vec<f64>), EngineError>,
            u64,
        );
        let queue_depth = jobs.len() as u64;
        let cancel = self.cancel.clone();
        // Thread-locals don't cross the pool: capture the caller's trace
        // id here and re-publish it inside each worker closure so spans
        // recorded in the solver ladder stay tagged with the request.
        let trace_id = vstack_obs::trace::current_trace();
        let solved: Vec<SolvedJob> = pool::par_map(jobs, |(fp, request, guess)| {
            let _trace = vstack_obs::trace::trace_scope(trace_id);
            let started = Instant::now();
            let warm = guess.is_some();
            let outcome = solve_scenario_cancellable(&request, guess.as_deref(), &cancel);
            let micros = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            (fp, warm, outcome, micros)
        });

        // Phase 4: install results, account stats, fill per-index slots.
        for (fp, warm, outcome, micros) in solved {
            let g = groups
                .iter()
                .position(|(gfp, _, _)| *gfp == fp)
                .expect("solved job came from a group");
            match outcome {
                Ok((summary, voltages)) => {
                    self.stats.solver_iterations += summary.solver_iterations as u64;
                    self.stats.solver_setup_us += summary.solver_setup_us;
                    self.stats.solve_time_us += micros;
                    if summary.solver_path.starts_with("stencil") {
                        self.stats.stencil_solves += 1;
                    }
                    if summary.solver_path.ends_with("mixed") {
                        self.stats.mixed_solves += 1;
                    }
                    let kind = if warm { Outcome::Warm } else { Outcome::Cold };
                    self.lru.insert(
                        fp,
                        CacheEntry {
                            request: groups[g].1.clone(),
                            summary: summary.clone(),
                            voltages: Some(voltages),
                        },
                    );
                    if self.disk.is_some() && !self.dirty.contains(&fp) {
                        self.dirty.push(fp);
                    }
                    group_outcome[g] = Some((kind, summary, micros));
                }
                Err(e) => {
                    for &i in &groups[g].2 {
                        results[i] = Some(Err(e.clone()));
                    }
                }
            }
        }
        for (g, (fp, _, members)) in groups.iter().enumerate() {
            let Some((outcome, summary, micros)) = &group_outcome[g] else {
                continue; // solve failed; error already distributed
            };
            for (k, &i) in members.iter().enumerate() {
                let o = match (k, outcome) {
                    (0, o) => *o,
                    (_, Outcome::Warm | Outcome::Cold) => Outcome::Deduped,
                    (_, o) => *o,
                };
                match o {
                    Outcome::HitMemory => self.stats.memory_hits += 1,
                    Outcome::HitDisk if k == 0 => self.stats.disk_hits += 1,
                    Outcome::HitDisk => self.stats.memory_hits += 1,
                    Outcome::Deduped => self.stats.deduped += 1,
                    Outcome::Warm => self.stats.warm_solves += 1,
                    Outcome::Cold => self.stats.cold_solves += 1,
                }
                results[i] = Some(Ok(QueryResult {
                    fingerprint: *fp,
                    outcome: o,
                    summary: summary.clone(),
                    latency_us: if k == 0 { *micros } else { 0 },
                }));
            }
        }
        let out: Vec<Result<QueryResult, EngineError>> = results
            .into_iter()
            .map(|r| r.expect("every request slot is filled"))
            .collect();

        // Mirror this batch's stat deltas into the global obs registry, so
        // the `metrics` verb and `--metrics-out` see the same counters as
        // the engine's own `stats` op.
        let after = &self.stats;
        let m = vstack_obs::metrics::global();
        m.engine_requests
            .add(after.requests - stats_before.requests);
        m.engine_invalid.add(after.invalid - stats_before.invalid);
        m.engine_memory_hits
            .add(after.memory_hits - stats_before.memory_hits);
        m.engine_disk_hits
            .add(after.disk_hits - stats_before.disk_hits);
        m.engine_deduped.add(after.deduped - stats_before.deduped);
        m.engine_warm_solves
            .add(after.warm_solves - stats_before.warm_solves);
        m.engine_cold_solves
            .add(after.cold_solves - stats_before.cold_solves);
        m.engine_schema_rejects
            .add(after.schema_rejects - stats_before.schema_rejects);
        m.engine_corrupt_rejects
            .add(after.corrupt_rejects - stats_before.corrupt_rejects);
        m.engine_batch_size.observe(requests.len() as u64);
        m.engine_queue_depth.observe(queue_depth);
        m.engine_batch_us
            .observe(batch_timer.elapsed().as_micros() as u64);
        out
    }

    /// Writes every solve since the last flush to the disk tier. Returns
    /// how many entries were written. A no-op without a cache dir.
    ///
    /// # Errors
    ///
    /// Propagates the first filesystem failure; unwritten fingerprints
    /// stay queued for the next flush.
    pub fn flush(&mut self) -> io::Result<usize> {
        let Some(disk) = &self.disk else {
            self.dirty.clear();
            return Ok(0);
        };
        let mut written = 0;
        while let Some(&fp) = self.dirty.first() {
            if let Some(entry) = self.lru.peek(fp) {
                disk.store(fp, &entry.request, &entry.summary)?;
                written += 1;
            }
            self.dirty.remove(0);
        }
        Ok(written)
    }

    /// Picks the warm-start donor for `request`: the cached entry with
    /// voltages whose scenario shares every structure-determining knob
    /// (kind, layers, TSV topology, fidelity, converter config) and is
    /// nearest in the continuous knobs (imbalance, power-C4), fingerprint
    /// as the deterministic tie-break. Structure must match exactly so the
    /// donor's voltage vector has the node count of the new system.
    fn nearest_donor(&self, request: &ScenarioRequest) -> Option<Vec<f64>> {
        // Faulted requests go through the SMW fault sketch, which manages
        // its own baseline warm start — an external guess is unused there
        // and would only mislabel the outcome as Warm.
        if request.has_faults() {
            return None;
        }
        let mut best: Option<(f64, u64, &Vec<f64>)> = None;
        for (fp, entry) in self.lru.iter() {
            let Some(voltages) = &entry.voltages else {
                continue;
            };
            let donor = &entry.request;
            let compatible = donor.kind == request.kind
                && donor.layers == request.layers
                && donor.tsv == request.tsv
                && donor.fidelity == request.fidelity
                && donor.converters == request.converters
                && donor.closed_loop == request.closed_loop
                // Thermal coupling warps the grid resistances the donor's
                // voltages were solved under, so a coupled scenario only
                // borrows from scenarios on the same thermal axis.
                && donor.thermal_coupling == request.thermal_coupling
                && donor.hotspot_layer == request.hotspot_layer
                // A faulted donor's voltages carry the open-circuit dip;
                // only intact solutions seed intact solves.
                && !donor.has_faults();
            if !compatible {
                continue;
            }
            let distance = (donor.imbalance - request.imbalance).abs()
                + (donor.power_c4 - request.power_c4).abs()
                + (donor.ambient_c - request.ambient_c).abs() / 100.0
                + (donor.sink_k_per_w - request.sink_k_per_w).abs()
                + (donor.hotspot_w - request.hotspot_w).abs() / 100.0;
            let better = match &best {
                None => true,
                Some((d, f, _)) => distance < *d || (distance == *d && fp < *f),
            };
            if better {
                best = Some((distance, fp, voltages));
            }
        }
        best.map(|(_, _, v)| v.clone())
    }
}

/// Performs one solve outside the cache: build the scenario, run the
/// warm-started robust solve, summarize. Exposed so tests (and the
/// bit-identity guarantee) can compare cold and warm paths directly.
///
/// # Errors
///
/// [`EngineError::Solve`] when the escalation ladder is exhausted or the
/// grid is inconsistent — never a panic for a validated request.
pub fn solve_scenario(
    request: &ScenarioRequest,
    guess: Option<&[f64]>,
) -> Result<(SolveSummary, Vec<f64>), EngineError> {
    solve_scenario_cancellable(request, guess, &CancelToken::never())
}

/// [`solve_scenario`] with a cooperative cancellation token threaded down
/// to the escalation ladder, which polls it between rungs. A fired token
/// surfaces as [`EngineError::Cancelled`].
///
/// # Errors
///
/// As for [`solve_scenario`], plus [`EngineError::Cancelled`].
pub fn solve_scenario_cancellable(
    request: &ScenarioRequest,
    guess: Option<&[f64]>,
    cancel: &CancelToken,
) -> Result<(SolveSummary, Vec<f64>), EngineError> {
    let scenario = request.to_scenario();
    let mut scratch = SolveScratch::new();
    scratch.set_cancel(cancel.clone());
    let map_err = |e: PdnError| match e {
        PdnError::Solve(SolveError::Cancelled) => EngineError::Cancelled,
        other => EngineError::Solve(other.to_string()),
    };
    if request.thermal_coupling {
        let mut config = CoupledConfig::paper_air_cooled()
            .ambient_c(request.ambient_c)
            .sink_resistance(request.sink_k_per_w);
        if let Some(layer) = request.hotspot_layer {
            config = config.hotspot(layer, request.hotspot_w);
        }
        let load = match request.kind {
            SolveKind::Regular => CoupledLoad::RegularPeak,
            SolveKind::VoltageStacked => CoupledLoad::VoltageStacked(request.imbalance),
        };
        let out = solve_coupled(&scenario, load, &config, guess, &mut scratch).map_err(map_err)?;
        let voltages = out.solved.voltages.clone();
        return Ok((SolveSummary::from_coupled(&out), voltages));
    }
    if request.has_faults() {
        // What-if solves route through the rank-k SMW fault sketch; the
        // sketch owns the baseline warm start, so no external guess is
        // threaded. Near-singular or over-budget fault sets fall back to
        // the exact ladder inside the sketched path.
        let faults = request.fault_set();
        let solved = match request.kind {
            SolveKind::Regular => scenario.solve_regular_peak_sketched(&faults, &mut scratch),
            SolveKind::VoltageStacked => {
                scenario.solve_voltage_stacked_sketched(request.imbalance, &faults, &mut scratch)
            }
        }
        .map_err(map_err)?;
        return Ok((SolveSummary::from_faulted(&solved), solved.voltages));
    }
    let solved = match request.kind {
        SolveKind::Regular => scenario.solve_regular_peak_warm(guess, &mut scratch),
        SolveKind::VoltageStacked => {
            scenario.solve_voltage_stacked_warm(request.imbalance, guess, &mut scratch)
        }
    }
    .map_err(map_err)?;
    Ok((SolveSummary::from_faulted(&solved), solved.voltages))
}
