//! The two cache tiers: a bounded in-memory LRU and an optional on-disk
//! store.
//!
//! Both tiers are keyed by the request fingerprint
//! ([`crate::request::ScenarioRequest::fingerprint`]). The tiers differ in
//! what they hold:
//!
//! * The **memory tier** keeps the full [`CacheEntry`], including the node
//!   voltage vector of solves performed this process, which seeds warm
//!   starts for neighbouring scenarios.
//! * The **disk tier** stores one JSON file per fingerprint with only the
//!   request and summary — voltages are large and cheap to regenerate, so
//!   they never touch disk. Every file is stamped with
//!   [`crate::SCHEMA_VERSION`]; an entry written by a different schema is
//!   *rejected*, never misread, and the stored request's recomputed
//!   fingerprint must match the key or the entry is treated as corrupt.
//!
//! # Crash safety
//!
//! The disk tier assumes it can be killed at any instruction and reopened:
//!
//! * **Writes are atomic and durable**: an entry is written to a `*.tmp`
//!   sibling, `fsync`ed, and renamed into place, so a crash mid-store
//!   leaves either the old entry or a stray temp file — never a
//!   half-written entry under the live name.
//! * **Every entry is checksummed**: the payload (fingerprint + request +
//!   summary) carries a FNV-1a checksum over its canonical emission. A
//!   torn write that somehow survives the rename discipline (filesystem
//!   reordering, truncation, bit rot) fails the checksum on load.
//! * **Corrupt entries are quarantined, never fatal**: any undecodable or
//!   checksum-failing file is renamed to `<name>.corrupt` (best effort),
//!   logged once per process, counted in the `serve_cache_quarantined`
//!   metric, and reported as [`DiskLoad::Corrupt`] — a cache miss. One
//!   bad file can never wedge its fingerprint: the next store simply
//!   writes a fresh entry under the live name.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

use vstack_obs::warn_once;

use crate::json::Json;
use crate::request::{fnv1a_64, ScenarioRequest};
use crate::summary::SolveSummary;
use crate::SCHEMA_VERSION;

/// One cached result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The canonical request this entry answers.
    pub request: ScenarioRequest,
    /// The solve result.
    pub summary: SolveSummary,
    /// Node voltages, present only for solves performed in this process
    /// (disk-loaded entries carry `None`). Used as warm-start donors.
    pub voltages: Option<Vec<f64>>,
}

/// Bounded in-memory LRU keyed by fingerprint.
///
/// Implemented as a most-recent-first vector: capacities are small
/// (hundreds), so O(n) promotion beats hash-map bookkeeping and keeps
/// iteration order — and therefore warm-start donor scans — deterministic.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    /// Front = most recently used.
    entries: Vec<(u64, CacheEntry)>,
}

impl LruCache {
    /// Creates a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up and promotes `fingerprint` to most-recently-used.
    pub fn get(&mut self, fingerprint: u64) -> Option<&CacheEntry> {
        let idx = self.entries.iter().position(|(fp, _)| *fp == fingerprint)?;
        let entry = self.entries.remove(idx);
        self.entries.insert(0, entry);
        Some(&self.entries[0].1)
    }

    /// Looks up without touching recency.
    pub fn peek(&self, fingerprint: u64) -> Option<&CacheEntry> {
        self.entries
            .iter()
            .find(|(fp, _)| *fp == fingerprint)
            .map(|(_, e)| e)
    }

    /// Inserts (or replaces) an entry as most-recently-used, evicting the
    /// least-recently-used entry when over capacity.
    pub fn insert(&mut self, fingerprint: u64, entry: CacheEntry) {
        self.entries.retain(|(fp, _)| *fp != fingerprint);
        self.entries.insert(0, (fingerprint, entry));
        self.entries.truncate(self.capacity);
    }

    /// Iterates entries from most- to least-recently-used.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &CacheEntry)> {
        self.entries.iter().map(|(fp, e)| (*fp, e))
    }
}

/// Outcome of a disk lookup.
#[derive(Debug)]
pub enum DiskLoad {
    /// No file for this fingerprint.
    Missing,
    /// A file exists but was written under a different schema version; the
    /// caller must treat this as a miss (and may count it).
    SchemaMismatch,
    /// A file exists but cannot be trusted (unparsable, or its stored
    /// request does not hash to its key). Treated as a miss.
    Corrupt(String),
    /// A valid entry (voltages are never stored, so the entry carries
    /// `None`).
    Hit(Box<CacheEntry>),
}

/// One-file-per-fingerprint store under a cache directory.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(DiskCache {
            dir: dir.to_path_buf(),
        })
    }

    fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!(
            "{}.json",
            ScenarioRequest::format_fingerprint(fingerprint)
        ))
    }

    /// Loads the entry for `fingerprint`, enforcing the schema stamp, the
    /// payload checksum and key integrity. Never panics on a bad file; an
    /// undecodable or checksum-failing file is quarantined to `*.corrupt`
    /// and reported as a (logged, counted) miss.
    pub fn load(&self, fingerprint: u64) -> DiskLoad {
        let path = self.path_for(fingerprint);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return DiskLoad::Missing,
            Err(e) => return DiskLoad::Corrupt(format!("read failed: {e}")),
        };
        match Self::decode(&text, fingerprint) {
            Ok(Decoded::Entry(entry)) => DiskLoad::Hit(entry),
            Ok(Decoded::SchemaMismatch) => DiskLoad::SchemaMismatch,
            Err(why) => {
                self.quarantine(&path, &why);
                DiskLoad::Corrupt(why)
            }
        }
    }

    /// Decodes one entry file. `Err` means the file cannot be trusted and
    /// must be quarantined; a clean schema mismatch is *not* an error —
    /// entries from older/newer builds are intact, just unusable here.
    fn decode(text: &str, fingerprint: u64) -> Result<Decoded, String> {
        let doc = Json::parse(text).map_err(|e| format!("parse failed: {e}"))?;
        match doc.get("schema").and_then(Json::as_usize) {
            Some(v) if v == SCHEMA_VERSION as usize => {}
            Some(_) => return Ok(Decoded::SchemaMismatch),
            // No readable schema stamp at all: not an old version, junk.
            None => return Err("no schema stamp".to_string()),
        }
        // A current-schema entry without a verifiable checksum is treated
        // as corrupt, not legacy: every writer of this schema checksums.
        let stored_sum = doc
            .get("checksum")
            .and_then(Json::as_str)
            .and_then(ScenarioRequest::parse_fingerprint)
            .ok_or("checksum missing or unreadable")?;
        let payload = doc.get("payload").ok_or("no payload")?;
        // The payload re-emits canonically (`parse(emit(x)) == x` per the
        // json module), so the checksum domain is stable across round
        // trips; any mutation of the stored bytes surfaces here.
        if fnv1a_64(payload.emit().as_bytes()) != stored_sum {
            return Err("payload checksum mismatch (torn or corrupted write)".to_string());
        }
        let request = payload
            .get("request")
            .ok_or("no request")
            .and_then(|r| ScenarioRequest::from_json(r).map_err(|_| "bad request"))?;
        if request.fingerprint() != fingerprint {
            return Err("stored request does not match its key".to_string());
        }
        let summary = payload
            .get("summary")
            .ok_or_else(|| "no summary".to_string())
            .and_then(SolveSummary::from_json)?;
        Ok(Decoded::Entry(Box::new(CacheEntry {
            request,
            summary,
            voltages: None,
        })))
    }

    /// Moves a corrupt entry aside so subsequent loads are clean misses
    /// (and the evidence survives for inspection). Best effort: if the
    /// rename itself fails the entry stays and keeps reporting corrupt,
    /// which is still only a miss.
    fn quarantine(&self, path: &Path, why: &str) {
        vstack_obs::metrics::global().serve_cache_quarantined.inc();
        warn_once!(
            "serve",
            "quarantining corrupt cache entry {} ({why}); further corrupt entries are \
             quarantined silently",
            path.display()
        );
        let mut corrupt = path.as_os_str().to_os_string();
        corrupt.push(".corrupt");
        let _ = fs::rename(path, PathBuf::from(corrupt));
    }

    /// Writes an entry atomically and durably: checksummed payload, temp
    /// file + `fsync` + rename. A crash at any point leaves either the
    /// previous entry or no entry — never a torn one.
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(
        &self,
        fingerprint: u64,
        request: &ScenarioRequest,
        summary: &SolveSummary,
    ) -> io::Result<()> {
        let payload = Json::obj(vec![
            (
                "fingerprint",
                Json::Str(ScenarioRequest::format_fingerprint(fingerprint)),
            ),
            ("request", request.to_json()),
            ("summary", summary.to_json()),
        ]);
        let body = payload.emit();
        let doc = Json::obj(vec![
            ("schema", Json::Num(f64::from(SCHEMA_VERSION))),
            (
                "checksum",
                Json::Str(ScenarioRequest::format_fingerprint(fnv1a_64(
                    body.as_bytes(),
                ))),
            ),
            ("payload", payload),
        ]);
        let mut text = doc.emit() + "\n";
        crate::server::chaos::cache_store_hook(&mut text)?;
        let path = self.path_for(fingerprint);
        let tmp = path.with_extension("json.tmp");
        {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(text.as_bytes())?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &path)
    }
}

/// Outcome of [`DiskCache::decode`]: a live entry or a clean version skew.
enum Decoded {
    Entry(Box<CacheEntry>),
    SchemaMismatch,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(req: ScenarioRequest) -> CacheEntry {
        CacheEntry {
            summary: SolveSummary {
                max_ir_drop_frac: 0.04,
                mean_ir_drop_frac: 0.02,
                worst_layer: 0,
                efficiency: 0.9,
                em_c4_hours: 1e5,
                em_tsv_hours: 1e6,
                overloaded_converters: 0,
                solver_iterations: 10,
                solver_setup_us: 0,
                solver_trail: "cg+ic0".to_string(),
                solver_path: "csr+f64".to_string(),
                coupling_iterations: 0,
                coupling_converged: true,
                peak_temperature_c: 0.0,
            },
            request: req,
            voltages: None,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        let reqs: Vec<_> = (1..=3).map(ScenarioRequest::regular).collect();
        let fps: Vec<_> = reqs.iter().map(ScenarioRequest::fingerprint).collect();
        lru.insert(fps[0], entry(reqs[0].clone()));
        lru.insert(fps[1], entry(reqs[1].clone()));
        assert!(lru.get(fps[0]).is_some()); // promote 0; 1 is now LRU
        lru.insert(fps[2], entry(reqs[2].clone()));
        assert_eq!(lru.len(), 2);
        assert!(lru.peek(fps[0]).is_some());
        assert!(lru.peek(fps[1]).is_none(), "LRU entry must be evicted");
        assert!(lru.peek(fps[2]).is_some());
    }

    #[test]
    fn lru_reinsert_does_not_grow() {
        let mut lru = LruCache::new(4);
        let req = ScenarioRequest::regular(2);
        let fp = req.fingerprint();
        for _ in 0..10 {
            lru.insert(fp, entry(req.clone()));
        }
        assert_eq!(lru.len(), 1);
    }
}
