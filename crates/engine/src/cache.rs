//! The two cache tiers: a bounded in-memory LRU and an optional on-disk
//! store.
//!
//! Both tiers are keyed by the request fingerprint
//! ([`crate::request::ScenarioRequest::fingerprint`]). The tiers differ in
//! what they hold:
//!
//! * The **memory tier** keeps the full [`CacheEntry`], including the node
//!   voltage vector of solves performed this process, which seeds warm
//!   starts for neighbouring scenarios.
//! * The **disk tier** stores one JSON file per fingerprint with only the
//!   request and summary — voltages are large and cheap to regenerate, so
//!   they never touch disk. Every file is stamped with
//!   [`crate::SCHEMA_VERSION`]; an entry written by a different schema is
//!   *rejected*, never misread, and the stored request's recomputed
//!   fingerprint must match the key or the entry is treated as corrupt.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::json::Json;
use crate::request::ScenarioRequest;
use crate::summary::SolveSummary;
use crate::SCHEMA_VERSION;

/// One cached result.
#[derive(Debug, Clone)]
pub struct CacheEntry {
    /// The canonical request this entry answers.
    pub request: ScenarioRequest,
    /// The solve result.
    pub summary: SolveSummary,
    /// Node voltages, present only for solves performed in this process
    /// (disk-loaded entries carry `None`). Used as warm-start donors.
    pub voltages: Option<Vec<f64>>,
}

/// Bounded in-memory LRU keyed by fingerprint.
///
/// Implemented as a most-recent-first vector: capacities are small
/// (hundreds), so O(n) promotion beats hash-map bookkeeping and keeps
/// iteration order — and therefore warm-start donor scans — deterministic.
#[derive(Debug)]
pub struct LruCache {
    capacity: usize,
    /// Front = most recently used.
    entries: Vec<(u64, CacheEntry)>,
}

impl LruCache {
    /// Creates a cache bounded to `capacity` entries (minimum 1).
    pub fn new(capacity: usize) -> Self {
        LruCache {
            capacity: capacity.max(1),
            entries: Vec::new(),
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The configured bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks up and promotes `fingerprint` to most-recently-used.
    pub fn get(&mut self, fingerprint: u64) -> Option<&CacheEntry> {
        let idx = self.entries.iter().position(|(fp, _)| *fp == fingerprint)?;
        let entry = self.entries.remove(idx);
        self.entries.insert(0, entry);
        Some(&self.entries[0].1)
    }

    /// Looks up without touching recency.
    pub fn peek(&self, fingerprint: u64) -> Option<&CacheEntry> {
        self.entries
            .iter()
            .find(|(fp, _)| *fp == fingerprint)
            .map(|(_, e)| e)
    }

    /// Inserts (or replaces) an entry as most-recently-used, evicting the
    /// least-recently-used entry when over capacity.
    pub fn insert(&mut self, fingerprint: u64, entry: CacheEntry) {
        self.entries.retain(|(fp, _)| *fp != fingerprint);
        self.entries.insert(0, (fingerprint, entry));
        self.entries.truncate(self.capacity);
    }

    /// Iterates entries from most- to least-recently-used.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &CacheEntry)> {
        self.entries.iter().map(|(fp, e)| (*fp, e))
    }
}

/// Outcome of a disk lookup.
#[derive(Debug)]
pub enum DiskLoad {
    /// No file for this fingerprint.
    Missing,
    /// A file exists but was written under a different schema version; the
    /// caller must treat this as a miss (and may count it).
    SchemaMismatch,
    /// A file exists but cannot be trusted (unparsable, or its stored
    /// request does not hash to its key). Treated as a miss.
    Corrupt(String),
    /// A valid entry (voltages are never stored, so the entry carries
    /// `None`).
    Hit(Box<CacheEntry>),
}

/// One-file-per-fingerprint store under a cache directory.
#[derive(Debug)]
pub struct DiskCache {
    dir: PathBuf,
}

impl DiskCache {
    /// Opens (creating if needed) the store at `dir`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(dir: &Path) -> io::Result<Self> {
        fs::create_dir_all(dir)?;
        Ok(DiskCache {
            dir: dir.to_path_buf(),
        })
    }

    fn path_for(&self, fingerprint: u64) -> PathBuf {
        self.dir.join(format!(
            "{}.json",
            ScenarioRequest::format_fingerprint(fingerprint)
        ))
    }

    /// Loads the entry for `fingerprint`, enforcing the schema stamp and
    /// key integrity. Never panics on a bad file.
    pub fn load(&self, fingerprint: u64) -> DiskLoad {
        let path = self.path_for(fingerprint);
        let text = match fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return DiskLoad::Missing,
            Err(e) => return DiskLoad::Corrupt(format!("read failed: {e}")),
        };
        let doc = match Json::parse(&text) {
            Ok(d) => d,
            Err(e) => return DiskLoad::Corrupt(format!("parse failed: {e}")),
        };
        match doc.get("schema").and_then(Json::as_usize) {
            Some(v) if v == SCHEMA_VERSION as usize => {}
            _ => return DiskLoad::SchemaMismatch,
        }
        let request = match doc
            .get("request")
            .ok_or("no request")
            .and_then(|r| ScenarioRequest::from_json(r).map_err(|_| "bad request"))
        {
            Ok(r) => r,
            Err(e) => return DiskLoad::Corrupt(e.to_string()),
        };
        if request.fingerprint() != fingerprint {
            return DiskLoad::Corrupt("stored request does not match its key".to_string());
        }
        let summary = match doc
            .get("summary")
            .ok_or_else(|| "no summary".to_string())
            .and_then(SolveSummary::from_json)
        {
            Ok(s) => s,
            Err(e) => return DiskLoad::Corrupt(e),
        };
        DiskLoad::Hit(Box::new(CacheEntry {
            request,
            summary,
            voltages: None,
        }))
    }

    /// Writes an entry atomically (temp file + rename).
    ///
    /// # Errors
    ///
    /// Propagates filesystem failures.
    pub fn store(
        &self,
        fingerprint: u64,
        request: &ScenarioRequest,
        summary: &SolveSummary,
    ) -> io::Result<()> {
        let doc = Json::obj(vec![
            ("schema", Json::Num(f64::from(SCHEMA_VERSION))),
            (
                "fingerprint",
                Json::Str(ScenarioRequest::format_fingerprint(fingerprint)),
            ),
            ("request", request.to_json()),
            ("summary", summary.to_json()),
        ]);
        let path = self.path_for(fingerprint);
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, doc.emit() + "\n")?;
        fs::rename(&tmp, &path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(req: ScenarioRequest) -> CacheEntry {
        CacheEntry {
            summary: SolveSummary {
                max_ir_drop_frac: 0.04,
                mean_ir_drop_frac: 0.02,
                worst_layer: 0,
                efficiency: 0.9,
                em_c4_hours: 1e5,
                em_tsv_hours: 1e6,
                overloaded_converters: 0,
                solver_iterations: 10,
                solver_setup_us: 0,
                solver_trail: "cg+ic0".to_string(),
            },
            request: req,
            voltages: None,
        }
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let mut lru = LruCache::new(2);
        let reqs: Vec<_> = (1..=3).map(ScenarioRequest::regular).collect();
        let fps: Vec<_> = reqs.iter().map(ScenarioRequest::fingerprint).collect();
        lru.insert(fps[0], entry(reqs[0].clone()));
        lru.insert(fps[1], entry(reqs[1].clone()));
        assert!(lru.get(fps[0]).is_some()); // promote 0; 1 is now LRU
        lru.insert(fps[2], entry(reqs[2].clone()));
        assert_eq!(lru.len(), 2);
        assert!(lru.peek(fps[0]).is_some());
        assert!(lru.peek(fps[1]).is_none(), "LRU entry must be evicted");
        assert!(lru.peek(fps[2]).is_some());
    }

    #[test]
    fn lru_reinsert_does_not_grow() {
        let mut lru = LruCache::new(4);
        let req = ScenarioRequest::regular(2);
        let fp = req.fingerprint();
        for _ in 0..10 {
            lru.insert(fp, entry(req.clone()));
        }
        assert_eq!(lru.len(), 1);
    }
}
