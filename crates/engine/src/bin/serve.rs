//! `vstack-serve` — newline-delimited JSON front-end over the engine.
//!
//! Reads one JSON request object per stdin line, writes one JSON response
//! object per line to stdout (batch ops write one line per sub-request).
//! Malformed input yields a structured error response, never a panic or an
//! exit. EOF or a `shutdown` op flushes the disk cache and exits 0.
//!
//! ```text
//! $ vstack-serve --cache-dir /tmp/vstack-cache
//! {"op":"solve","id":1,"scenario":{"solve":"vs","layers":8,"imbalance":0.3,"fidelity":"quick"}}
//! {"id":1,"ok":true,"outcome":"cold","fingerprint":"…","summary":{…},"latency_us":…}
//! {"op":"stats"}
//! {"ok":true,"stats":{"requests":1,"cold_solves":1,…}}
//! ```
//!
//! Options: `--cache-dir DIR` (enable the disk tier), `--lru N`
//! (memory-tier bound, default 256), `--no-warm-start` (disable
//! neighbour seeding). Diagnostics go to stderr through the `vstack-obs`
//! logger (target `serve`); tune with `VSTACK_LOG`.

use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;

use vstack_engine::engine::{Engine, EngineConfig, QueryResult};
use vstack_engine::json::Json;
use vstack_engine::request::ScenarioRequest;
use vstack_obs::{log_error, log_warn};

fn main() -> ExitCode {
    let config = match parse_args(std::env::args().skip(1)) {
        Ok(c) => c,
        Err(e) => {
            log_error!("serve", "{e}");
            return ExitCode::from(2);
        }
    };
    let mut engine = match Engine::new(config) {
        Ok(e) => e,
        Err(e) => {
            log_error!("serve", "cannot open cache dir: {e}");
            return ExitCode::from(2);
        }
    };

    let stdin = io::stdin();
    let stdout = io::stdout();
    let mut out = stdout.lock();
    for line in stdin.lock().lines() {
        let line = match line {
            Ok(l) => l,
            Err(e) => {
                log_warn!("serve", "stdin read failed: {e}");
                break;
            }
        };
        if line.trim().is_empty() {
            continue;
        }
        let (responses, shutdown) = handle_line(&mut engine, &line);
        for response in responses {
            if writeln!(out, "{}", response.emit())
                .and_then(|()| out.flush())
                .is_err()
            {
                // Reader went away; flush the cache and stop serving.
                let _ = engine.flush();
                return ExitCode::SUCCESS;
            }
        }
        if shutdown {
            break;
        }
    }
    if let Err(e) = engine.flush() {
        log_error!("serve", "cache flush failed: {e}");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

/// Parses CLI flags into an engine configuration.
fn parse_args(args: impl Iterator<Item = String>) -> Result<EngineConfig, String> {
    let mut config = EngineConfig::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--cache-dir" => {
                let dir = args.next().ok_or("--cache-dir needs a path")?;
                config.cache_dir = Some(PathBuf::from(dir));
            }
            "--lru" => {
                let n = args.next().ok_or("--lru needs a count")?;
                config.lru_capacity = n
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n >= 1)
                    .ok_or_else(|| format!("--lru must be a positive integer, got \"{n}\""))?;
            }
            "--no-warm-start" => config.warm_start = false,
            "--help" | "-h" => {
                return Err(
                    "usage: vstack-serve [--cache-dir DIR] [--lru N] [--no-warm-start]".to_string(),
                )
            }
            other => return Err(format!("unknown flag \"{other}\"")),
        }
    }
    Ok(config)
}

/// Serves one input line; returns the response lines and whether to shut
/// down afterwards.
fn handle_line(engine: &mut Engine, line: &str) -> (Vec<Json>, bool) {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            return (
                vec![error_response(None, "parse_error", &e.to_string())],
                false,
            )
        }
    };
    let id = doc.get("id").cloned();
    let Some(op) = doc.get("op").and_then(Json::as_str) else {
        return (
            vec![error_response(
                id,
                "invalid_request",
                "missing \"op\" field",
            )],
            false,
        );
    };
    match op {
        "solve" => {
            let Some(scenario) = doc.get("scenario") else {
                return (
                    vec![error_response(
                        id,
                        "invalid_request",
                        "solve needs a \"scenario\"",
                    )],
                    false,
                );
            };
            (vec![serve_one(engine, id, scenario)], false)
        }
        "batch" => {
            let Some(items) = doc.get("requests").and_then(Json::as_arr) else {
                return (
                    vec![error_response(
                        id,
                        "invalid_request",
                        "batch needs a \"requests\" array",
                    )],
                    false,
                );
            };
            (serve_batch(engine, items), false)
        }
        "stats" => {
            let mut fields = vec![];
            if let Some(id) = id {
                fields.push(("id", id));
            }
            fields.push(("ok", Json::Bool(true)));
            fields.push(("stats", engine.stats().to_json()));
            (vec![Json::obj(fields)], false)
        }
        "metrics" => {
            // Snapshot the process-wide obs registry. The snapshot string
            // is the obs crate's own (schema-versioned) JSON; re-parse it
            // here so it embeds as a structured object, not a string.
            let snapshot = vstack_obs::metrics::snapshot_json();
            let metrics =
                Json::parse(&snapshot).expect("obs metrics snapshot is valid JSON by construction");
            let mut fields = vec![];
            if let Some(id) = id {
                fields.push(("id", id));
            }
            fields.push(("ok", Json::Bool(true)));
            fields.push(("metrics", metrics));
            (vec![Json::obj(fields)], false)
        }
        "shutdown" => {
            let mut fields = vec![];
            if let Some(id) = id {
                fields.push(("id", id));
            }
            fields.push(("ok", Json::Bool(true)));
            fields.push(("shutdown", Json::Bool(true)));
            (vec![Json::obj(fields)], true)
        }
        other => (
            vec![error_response(
                id,
                "unknown_op",
                &format!("unknown op \"{other}\""),
            )],
            false,
        ),
    }
}

/// Serves a single `solve` op.
fn serve_one(engine: &mut Engine, id: Option<Json>, scenario: &Json) -> Json {
    match ScenarioRequest::from_json(scenario) {
        Ok(request) => match engine.query(&request) {
            Ok(result) => ok_response(id, &result),
            Err(e) => error_response(id, "solve_error", &e.to_string()),
        },
        Err(e) => error_response(id, "invalid_request", &e),
    }
}

/// Serves a `batch` op: parse every item first, then run the parseable
/// scenarios through one engine batch (so duplicates dedup and solves run
/// in parallel), and emit one response line per item in input order.
fn serve_batch(engine: &mut Engine, items: &[Json]) -> Vec<Json> {
    let mut parsed: Vec<(Option<Json>, Result<ScenarioRequest, String>)> = Vec::new();
    for item in items {
        let id = item.get("id").cloned();
        let request = match item.get("scenario") {
            Some(s) => ScenarioRequest::from_json(s),
            None => Err("batch item needs a \"scenario\"".to_string()),
        };
        parsed.push((id, request));
    }
    let requests: Vec<ScenarioRequest> = parsed
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().cloned())
        .collect();
    let mut outcomes = engine.query_batch(&requests).into_iter();
    parsed
        .into_iter()
        .map(|(id, request)| match request {
            Err(e) => error_response(id, "invalid_request", &e),
            Ok(_) => match outcomes.next().expect("one outcome per valid request") {
                Ok(result) => ok_response(id, &result),
                Err(e) => error_response(id, "solve_error", &e.to_string()),
            },
        })
        .collect()
}

fn ok_response(id: Option<Json>, result: &QueryResult) -> Json {
    let mut fields = vec![];
    if let Some(id) = id {
        fields.push(("id", id));
    }
    fields.push(("ok", Json::Bool(true)));
    fields.push(("outcome", Json::Str(result.outcome.label().to_string())));
    if let Some(source) = result.outcome.source() {
        fields.push(("source", Json::Str(source.to_string())));
    }
    fields.push((
        "fingerprint",
        Json::Str(ScenarioRequest::format_fingerprint(result.fingerprint)),
    ));
    fields.push(("summary", result.summary.to_json()));
    fields.push(("latency_us", Json::Num(result.latency_us as f64)));
    Json::obj(fields)
}

fn error_response(id: Option<Json>, code: &str, message: &str) -> Json {
    let mut fields = vec![];
    if let Some(id) = id {
        fields.push(("id", id));
    }
    fields.push(("ok", Json::Bool(false)));
    fields.push((
        "error",
        Json::obj(vec![
            ("code", Json::Str(code.to_string())),
            ("message", Json::Str(message.to_string())),
        ]),
    ));
    Json::obj(fields)
}
