//! `vstack-serve` — the serving front-end, in two modes.
//!
//! **Stdin mode** (default): one JSON request object per stdin line, one
//! JSON response object per line to stdout (batch ops write one line per
//! sub-request). Malformed input yields a structured error response,
//! never a panic or an exit. EOF, a `shutdown` op, SIGTERM or SIGINT all
//! drain gracefully: the disk cache is flushed and a final metrics
//! snapshot is logged before exit 0.
//!
//! **Daemon mode** (`--listen ADDR` or `--unix PATH`): a concurrent
//! NDJSON-over-socket server with fingerprint-sharded workers, bounded
//! admission queues (overload answers `{"error":{"code":"overloaded",
//! "retry_after_ms":…}}`), per-request `deadline_ms` enforcement, and
//! cross-request dedup. SIGTERM/SIGINT or a client `shutdown` op stops
//! accepting, finishes queued work, flushes every cache segment and logs
//! the final metrics snapshot.
//!
//! ```text
//! $ vstack-serve --cache-dir /tmp/vstack-cache
//! {"op":"solve","id":1,"scenario":{"solve":"vs","layers":8,"imbalance":0.3,"fidelity":"quick"}}
//! {"id":1,"ok":true,"outcome":"cold","fingerprint":"…","summary":{…},"latency_us":…}
//!
//! $ vstack-serve --listen 127.0.0.1:7077 --shards 4 --queue-depth 32 --cache-dir /var/cache/vstack
//! ```
//!
//! Options: `--cache-dir DIR`, `--lru N` (per engine/shard, default 256),
//! `--no-warm-start`, `--listen ADDR`, `--unix PATH`, `--shards N`,
//! `--queue-depth N`, `--deadline-ms N` (default deadline, 30000),
//! `--max-deadline-ms N`, `--no-drain` (shed instead of finishing queued
//! work on shutdown), `--metrics-out FILE` (write the final metrics
//! snapshot there on exit), `--telemetry-out FILE` (daemon mode: append a
//! telemetry-rollup NDJSON line per interval), `--telemetry-interval-ms
//! N` (default 1000), `--flight-dir DIR` (where flight-recorder dumps
//! land; defaults to `vstack-flight/` under the system temp dir),
//! `--slo-ms N` (windowed-histogram SLO threshold, default 250).
//! Diagnostics go to stderr through the `vstack-obs` logger (target
//! `serve`); tune with `VSTACK_LOG`.

use std::io::{self, BufRead, Write};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::mpsc;
use std::time::{Duration, Instant};

use vstack_engine::engine::{Engine, EngineConfig};
use vstack_engine::json::Json;
use vstack_engine::request::ScenarioRequest;
use vstack_engine::server::protocol::{
    self, attach_telemetry, code, engine_error_response, metrics_response, ok_response,
};
use vstack_engine::server::telemetry::RequestCtx;
use vstack_engine::server::{Bind, Daemon, DaemonConfig, RequestTelemetry, ShardConfig};
use vstack_obs::{log_error, log_info, log_warn};

/// Async-signal-safe SIGTERM/SIGINT latch. Lives in the binary because
/// the library forbids unsafe code; the handler only stores an atomic.
#[cfg(unix)]
mod sig {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERMINATE: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_signal(_signum: i32) {
        TERMINATE.store(true, Ordering::SeqCst);
    }

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }

    /// Installs the latch for SIGINT (2) and SIGTERM (15).
    pub fn install() {
        unsafe {
            signal(2, on_signal);
            signal(15, on_signal);
        }
    }

    /// Whether a termination signal has arrived.
    pub fn terminated() -> bool {
        TERMINATE.load(Ordering::SeqCst)
    }
}

#[cfg(not(unix))]
mod sig {
    pub fn install() {}
    pub fn terminated() -> bool {
        false
    }
}

/// Parsed command line.
struct Args {
    engine: EngineConfig,
    /// `Some` puts the binary in daemon mode.
    bind: Option<Bind>,
    shards: usize,
    queue_depth: usize,
    default_deadline_ms: u64,
    max_deadline_ms: u64,
    drain: bool,
    metrics_out: Option<PathBuf>,
    telemetry_out: Option<PathBuf>,
    telemetry_interval_ms: u64,
    /// `None` means "pick the default under the system temp dir".
    flight_dir: Option<PathBuf>,
    slo_ms: u64,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            engine: EngineConfig::default(),
            bind: None,
            shards: 4,
            queue_depth: 32,
            default_deadline_ms: 30_000,
            max_deadline_ms: 300_000,
            drain: true,
            metrics_out: None,
            telemetry_out: None,
            telemetry_interval_ms: 1_000,
            flight_dir: None,
            slo_ms: 250,
        }
    }
}

fn main() -> ExitCode {
    let args = match parse_args(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            log_error!("serve", "{e}");
            return ExitCode::from(2);
        }
    };
    sig::install();
    match args.bind {
        Some(_) => run_daemon(&args),
        None => run_stdin(&args),
    }
}

/// Daemon mode: start, park until a stop arrives, shut down.
fn run_daemon(args: &Args) -> ExitCode {
    let flight_dir = args
        .flight_dir
        .clone()
        .unwrap_or_else(|| std::env::temp_dir().join("vstack-flight"));
    let config = DaemonConfig {
        bind: args.bind.clone().expect("daemon mode has a bind"),
        shard: ShardConfig {
            shards: args.shards,
            queue_capacity: args.queue_depth,
            lru_capacity: args.engine.lru_capacity,
            cache_dir: args.engine.cache_dir.clone(),
            warm_start: args.engine.warm_start,
            flight_dir: Some(flight_dir),
            slo_us: args.slo_ms.saturating_mul(1_000),
            slo_target: 0.999,
        },
        default_deadline_ms: args.default_deadline_ms,
        max_deadline_ms: args.max_deadline_ms,
        telemetry_out: args.telemetry_out.clone(),
        telemetry_interval_ms: args.telemetry_interval_ms,
    };
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            log_error!("serve", "daemon start failed: {e}");
            return ExitCode::from(2);
        }
    };
    loop {
        if sig::terminated() {
            log_info!("serve", "termination signal; draining");
            break;
        }
        if daemon.wait_shutdown_requested(Duration::from_millis(200)) {
            log_info!("serve", "shutdown op; draining");
            break;
        }
    }
    let snapshot = daemon.shutdown(args.drain);
    finish_metrics(args, &snapshot)
}

/// Stdin mode: the single-engine NDJSON loop, with a reader thread so the
/// main loop can poll the signal latch (glibc installs handlers with
/// SA_RESTART, so a blocking stdin read would never observe them).
fn run_stdin(args: &Args) -> ExitCode {
    let mut engine = match Engine::new(args.engine.clone()) {
        Ok(e) => e,
        Err(e) => {
            log_error!("serve", "cannot open cache dir: {e}");
            return ExitCode::from(2);
        }
    };
    let (tx, rx) = mpsc::channel::<String>();
    // Detached on purpose: it sits in a blocking stdin read and exits
    // with the process; main never joins it.
    let reader = std::thread::Builder::new()
        .name("vstack-stdin".to_string())
        .spawn(move || {
            let stdin = io::stdin();
            for line in stdin.lock().lines() {
                match line {
                    Ok(l) => {
                        if tx.send(l).is_err() {
                            return;
                        }
                    }
                    Err(e) => {
                        log_warn!("serve", "stdin read failed: {e}");
                        return;
                    }
                }
            }
        });
    if let Err(e) = reader {
        log_error!("serve", "stdin reader spawn failed: {e}");
        return ExitCode::from(2);
    }

    let stdout = io::stdout();
    let mut out = stdout.lock();
    loop {
        if sig::terminated() {
            log_info!("serve", "termination signal; draining");
            break;
        }
        let line = match rx.recv_timeout(Duration::from_millis(100)) {
            Ok(l) => l,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => break, // EOF
        };
        if line.trim().is_empty() {
            continue;
        }
        let (responses, shutdown) = handle_line(&mut engine, &line);
        for response in responses {
            if writeln!(out, "{}", response.emit())
                .and_then(|()| out.flush())
                .is_err()
            {
                // Reader went away; flush the cache and stop serving.
                let _ = engine.flush();
                return ExitCode::SUCCESS;
            }
        }
        if shutdown {
            break;
        }
    }
    if let Err(e) = engine.flush() {
        log_error!("serve", "cache flush failed: {e}");
        return ExitCode::FAILURE;
    }
    finish_metrics(args, &vstack_obs::metrics::snapshot_json())
}

/// Emits the final metrics snapshot (log + optional file) and maps the
/// write outcome to the exit code.
fn finish_metrics(args: &Args, snapshot: &str) -> ExitCode {
    log_info!("serve", "final metrics: {snapshot}");
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, snapshot) {
            log_error!("serve", "cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}

/// Parses CLI flags.
fn parse_args(args: impl Iterator<Item = String>) -> Result<Args, String> {
    fn positive(flag: &str, value: Option<String>) -> Result<usize, String> {
        let v = value.ok_or_else(|| format!("{flag} needs a value"))?;
        v.parse::<usize>()
            .ok()
            .filter(|&n| n >= 1)
            .ok_or_else(|| format!("{flag} must be a positive integer, got \"{v}\""))
    }
    let mut parsed = Args::default();
    let mut args = args.peekable();
    while let Some(flag) = args.next() {
        match flag.as_str() {
            "--cache-dir" => {
                let dir = args.next().ok_or("--cache-dir needs a path")?;
                parsed.engine.cache_dir = Some(PathBuf::from(dir));
            }
            "--lru" => parsed.engine.lru_capacity = positive("--lru", args.next())?,
            "--no-warm-start" => parsed.engine.warm_start = false,
            "--listen" => {
                let addr = args.next().ok_or("--listen needs an address")?;
                parsed.bind = Some(Bind::Tcp(addr));
            }
            "--unix" => {
                let path = args.next().ok_or("--unix needs a path")?;
                #[cfg(unix)]
                {
                    parsed.bind = Some(Bind::Unix(PathBuf::from(path)));
                }
                #[cfg(not(unix))]
                {
                    let _ = path;
                    return Err("--unix is only supported on Unix platforms".to_string());
                }
            }
            "--shards" => parsed.shards = positive("--shards", args.next())?,
            "--queue-depth" => parsed.queue_depth = positive("--queue-depth", args.next())?,
            "--deadline-ms" => {
                parsed.default_deadline_ms = positive("--deadline-ms", args.next())? as u64;
            }
            "--max-deadline-ms" => {
                parsed.max_deadline_ms = positive("--max-deadline-ms", args.next())? as u64;
            }
            "--no-drain" => parsed.drain = false,
            "--metrics-out" => {
                let path = args.next().ok_or("--metrics-out needs a path")?;
                parsed.metrics_out = Some(PathBuf::from(path));
            }
            "--telemetry-out" => {
                let path = args.next().ok_or("--telemetry-out needs a path")?;
                parsed.telemetry_out = Some(PathBuf::from(path));
            }
            "--telemetry-interval-ms" => {
                parsed.telemetry_interval_ms =
                    positive("--telemetry-interval-ms", args.next())? as u64;
            }
            "--flight-dir" => {
                let dir = args.next().ok_or("--flight-dir needs a path")?;
                parsed.flight_dir = Some(PathBuf::from(dir));
            }
            "--slo-ms" => parsed.slo_ms = positive("--slo-ms", args.next())? as u64,
            "--help" | "-h" => {
                return Err(
                    "usage: vstack-serve [--cache-dir DIR] [--lru N] [--no-warm-start] \
                     [--listen ADDR | --unix PATH] [--shards N] [--queue-depth N] \
                     [--deadline-ms N] [--max-deadline-ms N] [--no-drain] [--metrics-out FILE] \
                     [--telemetry-out FILE] [--telemetry-interval-ms N] [--flight-dir DIR] \
                     [--slo-ms N]"
                        .to_string(),
                )
            }
            other => return Err(format!("unknown flag \"{other}\"")),
        }
    }
    if parsed.default_deadline_ms > parsed.max_deadline_ms {
        return Err("--deadline-ms must not exceed --max-deadline-ms".to_string());
    }
    Ok(parsed)
}

/// Serves one stdin-mode input line; returns the response lines and
/// whether to shut down afterwards.
fn handle_line(engine: &mut Engine, line: &str) -> (Vec<Json>, bool) {
    let doc = match Json::parse(line) {
        Ok(d) => d,
        Err(e) => {
            return (
                vec![protocol::error_response(
                    None,
                    code::PARSE_ERROR,
                    &e.to_string(),
                )],
                false,
            )
        }
    };
    let id = doc.get("id").cloned();
    let Some(op) = doc.get("op").and_then(Json::as_str) else {
        return (
            vec![protocol::error_response(
                id,
                code::INVALID_REQUEST,
                "missing \"op\" field",
            )],
            false,
        );
    };
    match op {
        "solve" => {
            let Some(scenario) = doc.get("scenario") else {
                return (
                    vec![protocol::error_response(
                        id,
                        code::INVALID_REQUEST,
                        "solve needs a \"scenario\"",
                    )],
                    false,
                );
            };
            (vec![serve_one(engine, id, scenario)], false)
        }
        "batch" => {
            let Some(items) = doc.get("requests").and_then(Json::as_arr) else {
                return (
                    vec![protocol::error_response(
                        id,
                        code::INVALID_REQUEST,
                        "batch needs a \"requests\" array",
                    )],
                    false,
                );
            };
            (serve_batch(engine, items), false)
        }
        "stats" => {
            let mut fields = vec![];
            if let Some(id) = id {
                fields.push(("id", id));
            }
            fields.push(("ok", Json::Bool(true)));
            fields.push(("stats", engine.stats().to_json()));
            (vec![Json::obj(fields)], false)
        }
        "metrics" => (vec![metrics_response(id)], false),
        "shutdown" => {
            let mut fields = vec![];
            if let Some(id) = id {
                fields.push(("id", id));
            }
            fields.push(("ok", Json::Bool(true)));
            fields.push(("shutdown", Json::Bool(true)));
            (vec![Json::obj(fields)], true)
        }
        other => (
            vec![protocol::error_response(
                id,
                code::UNKNOWN_OP,
                &format!("unknown op \"{other}\""),
            )],
            false,
        ),
    }
}

/// Builds the stdin-mode telemetry block: a single-engine front-end has
/// no queue or shards, so `queue_wait_us` is 0 and `shard` is 0, but
/// trace IDs, cache tier, solver path, and solve time match the daemon's
/// vocabulary.
fn stdin_telemetry(
    ctx: RequestCtx,
    solve_us: u64,
    result: &Result<vstack_engine::engine::QueryResult, vstack_engine::engine::EngineError>,
) -> RequestTelemetry {
    let mut t = RequestTelemetry::unserved(ctx.trace_id, 0);
    t.solve_us = solve_us;
    if let Ok(r) = result {
        t.cache_tier = RequestTelemetry::tier_for(r.outcome);
        t.solver_path = r.summary.solver_path.clone();
    }
    t
}

/// Serves a single stdin-mode `solve` op.
fn serve_one(engine: &mut Engine, id: Option<Json>, scenario: &Json) -> Json {
    match ScenarioRequest::from_json(scenario) {
        Ok(request) => {
            let ctx = RequestCtx::mint();
            let trace = vstack_obs::trace::trace_scope(ctx.trace_id);
            let started = Instant::now();
            let result = engine.query(&request);
            let solve_us = u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX);
            drop(trace);
            let t = stdin_telemetry(ctx, solve_us, &result);
            let reply = match result {
                Ok(result) => ok_response(id, &result),
                Err(e) => engine_error_response(id, &e),
            };
            attach_telemetry(reply, &t)
        }
        Err(e) => protocol::error_response(id, code::INVALID_REQUEST, &e),
    }
}

/// Serves a stdin-mode `batch` op: parse every item first, then run the
/// parseable scenarios through one engine batch (so duplicates dedup and
/// solves run in parallel), and emit one response line per item in input
/// order. The batch is one admission, so every item shares one trace ID;
/// per-item solve time comes from the engine's own latency accounting.
fn serve_batch(engine: &mut Engine, items: &[Json]) -> Vec<Json> {
    let mut parsed: Vec<(Option<Json>, Result<ScenarioRequest, String>)> = Vec::new();
    for item in items {
        let id = item.get("id").cloned();
        let request = match item.get("scenario") {
            Some(s) => ScenarioRequest::from_json(s),
            None => Err("batch item needs a \"scenario\"".to_string()),
        };
        parsed.push((id, request));
    }
    let requests: Vec<ScenarioRequest> = parsed
        .iter()
        .filter_map(|(_, r)| r.as_ref().ok().cloned())
        .collect();
    let ctx = RequestCtx::mint();
    let trace = vstack_obs::trace::trace_scope(ctx.trace_id);
    let mut outcomes = engine.query_batch(&requests).into_iter();
    drop(trace);
    parsed
        .into_iter()
        .map(|(id, request)| match request {
            Err(e) => protocol::error_response(id, code::INVALID_REQUEST, &e),
            Ok(_) => {
                let result = outcomes.next().expect("one outcome per valid request");
                let solve_us = match &result {
                    Ok(r) => r.latency_us,
                    Err(_) => 0,
                };
                let t = stdin_telemetry(ctx, solve_us, &result);
                let reply = match result {
                    Ok(result) => ok_response(id, &result),
                    Err(e) => engine_error_response(id, &e),
                };
                attach_telemetry(reply, &t)
            }
        })
        .collect()
}
