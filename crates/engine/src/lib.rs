//! `vstack-engine` — the scenario-query engine.
//!
//! Turns the fast solver stack (`vstack-core` → `vstack-pdn` →
//! `vstack-sparse`) into a fast *service*: design-space exploration is a
//! repeated-query workload, and this crate owns the query lifecycle that
//! amortizes it.
//!
//! * [`request`] — the canonical, versioned [`request::ScenarioRequest`]
//!   with a deterministic 64-bit content fingerprint, stable under JSON
//!   field ordering and float formatting.
//! * [`cache`] — a bounded in-memory LRU (which also retains node
//!   voltages for warm starts) over an optional on-disk store stamped
//!   with [`SCHEMA_VERSION`].
//! * [`engine`] — the deterministic batch scheduler: deduplicates
//!   identical in-flight requests, answers from the cache tiers, and
//!   solves the rest over the `vstack_sparse::pool` workers, seeding each
//!   solve from the nearest cached neighbour.
//! * [`json`] — the std-only JSON tree the wire protocol and disk store
//!   use (the workspace carries no serde).
//!
//! The `vstack-serve` binary in this crate speaks newline-delimited JSON
//! over stdin/stdout on top of [`engine::Engine`].
//!
//! # Quickstart
//!
//! ```
//! use vstack_engine::engine::{Engine, EngineConfig, Outcome};
//! use vstack_engine::request::ScenarioRequest;
//!
//! let mut engine = Engine::new(EngineConfig::default()).unwrap();
//! let req = ScenarioRequest::voltage_stacked(2, 0.4).quick();
//! let first = engine.query(&req).unwrap();
//! let again = engine.query(&req).unwrap();
//! assert_eq!(first.outcome, Outcome::Cold);
//! assert_eq!(again.outcome, Outcome::HitMemory);
//! assert_eq!(engine.stats().solves(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Version stamp of every persisted or wire-visible artifact (request
/// encoding, summary layout, disk-cache files). Bump on any incompatible
/// change; older disk entries are then rejected — never misread — and
/// re-solved.
///
/// Version 3 added the top-level `schema_version` field to the `stats`
/// response object (the metrics/observability release).
///
/// Version 4 is the hardened-serving release: disk-cache entries moved to
/// the checksummed `{schema, checksum, payload}` envelope (torn or
/// corrupted writes are detected and quarantined instead of trusted), and
/// the wire protocol gained `deadline_ms` on requests plus
/// `retry_after_ms` on overload rejections.
///
/// Version 5 is the thermal-coupling release: requests gained the
/// optional thermal axis (`thermal_coupling`, `ambient_c`,
/// `sink_k_per_w`, `hotspot_layer`, `hotspot_w`) and summaries the
/// additive coupling fields. The **fingerprint domain did not move**: it
/// stays pinned at [`request::FINGERPRINT_DOMAIN`] so every pre-thermal
/// request keeps its byte-identical fingerprint (thermal fields hash
/// only when coupling is enabled).
///
/// Version 6 is the fault-axis release: requests gained the optional
/// what-if fault fields (`failed_vdd_pads`, `failed_gnd_pads`,
/// `failed_tsvs`), answered through the rank-k Sherman–Morrison–Woodbury
/// fault sketch. As with the thermal axis the fingerprint domain stays
/// pinned: fault fields hash only when a fault is present, so every
/// unfaulted request keeps its byte-identical fingerprint.
pub const SCHEMA_VERSION: u32 = 6;

pub mod cache;
pub mod engine;
pub mod json;
pub mod request;
pub mod server;
pub mod summary;

pub use engine::{Engine, EngineConfig, EngineStats, Outcome, QueryResult};
pub use request::{ScenarioRequest, SolveKind};
pub use summary::SolveSummary;
