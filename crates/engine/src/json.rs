//! Minimal, std-only JSON tree, parser and emitter.
//!
//! The workspace deliberately carries no serde; the serve protocol and the
//! on-disk cache need only a small, strict JSON subset, implemented here:
//!
//! * Objects preserve insertion order (a `Vec` of pairs, not a hash map),
//!   so emitted documents are deterministic.
//! * Numbers are `f64`. Integral values round-trip exactly up to 2⁵³;
//!   fingerprints therefore travel as hex **strings**, never as numbers.
//! * The emitter uses Rust's shortest round-trip float formatting, so
//!   `parse(emit(x)) == x` bit-for-bit for finite numbers. Non-finite
//!   numbers never enter a tree from `parse` and are emitted as `null`
//!   defensively.
//! * The parser is recursive descent with an explicit depth limit; a
//!   malformed document yields a [`JsonError`] with a byte offset, never a
//!   panic.

/// Maximum container nesting accepted by [`Json::parse`].
const MAX_DEPTH: usize = 64;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; insertion-ordered key/value pairs.
    Obj(Vec<(String, Json)>),
}

/// A parse failure: what went wrong and where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input at which the error was detected.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl core::fmt::Display for JsonError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Json {
    /// Builds an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Looks up `key` in an object; `None` for other variants or missing
    /// keys. First occurrence wins when a document repeats a key.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The boolean value, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as a non-negative integer, if it is one exactly.
    pub fn as_usize(&self) -> Option<usize> {
        match self {
            Json::Num(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= 2f64.powi(53) => {
                Some(*n as usize)
            }
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes the tree to compact JSON text.
    pub fn emit(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Rust's Display is the shortest representation that
                    // round-trips, which keeps fingerprinting stable under
                    // emit→parse cycles.
                    out.push_str(&format!("{n}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document. Trailing non-whitespace is an error.
    ///
    /// # Errors
    ///
    /// Any syntax violation, nesting beyond an internal depth limit, or a
    /// non-finite number literal.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos, 0)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(err(pos, "trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), JsonError> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(err(*pos, &format!("expected '{}'", b as char)))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    if depth > MAX_DEPTH {
        return Err(err(*pos, "nesting too deep"));
    }
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos, depth),
        Some(b'[') => parse_array(bytes, pos, depth),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(_) => Err(err(*pos, "unexpected character")),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    word: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(err(*pos, &format!("expected '{word}'")))
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'{')?;
    let mut pairs = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(pairs));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos, depth + 1)?;
        pairs.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(pairs));
            }
            _ => return Err(err(*pos, "expected ',' or '}' in object")),
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize, depth: usize) -> Result<Json, JsonError> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos, depth + 1)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']' in array")),
        }
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    expect(bytes, pos, b'"')?;
    let mut s = String::new();
    loop {
        let start = *pos;
        // Fast path: copy a run of plain UTF-8 bytes in one go.
        while *pos < bytes.len() && bytes[*pos] != b'"' && bytes[*pos] != b'\\' {
            if bytes[*pos] < 0x20 {
                return Err(err(*pos, "raw control character in string"));
            }
            *pos += 1;
        }
        // The input is a &str, so any byte run between structural
        // characters is valid UTF-8.
        s.push_str(core::str::from_utf8(&bytes[start..*pos]).expect("input was a str"));
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(s);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'b') => s.push('\u{08}'),
                    Some(b'f') => s.push('\u{0c}'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        *pos += 1;
                        let hi = parse_hex4(bytes, pos)?;
                        let c = if (0xd800..0xdc00).contains(&hi) {
                            // High surrogate: a \uXXXX low surrogate must follow.
                            if bytes.get(*pos) == Some(&b'\\') && bytes.get(*pos + 1) == Some(&b'u')
                            {
                                *pos += 2;
                                let lo = parse_hex4(bytes, pos)?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(err(*pos, "invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                return Err(err(*pos, "unpaired high surrogate"));
                            }
                        } else {
                            char::from_u32(hi)
                        };
                        match c {
                            Some(c) => s.push(c),
                            None => return Err(err(*pos, "invalid unicode escape")),
                        }
                        continue; // pos already past the escape
                    }
                    _ => return Err(err(*pos, "invalid escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => unreachable!("loop stops only at '\"' or '\\\\'"),
        }
    }
}

fn parse_hex4(bytes: &[u8], pos: &mut usize) -> Result<u32, JsonError> {
    if *pos + 4 > bytes.len() {
        return Err(err(*pos, "truncated \\u escape"));
    }
    let hex = core::str::from_utf8(&bytes[*pos..*pos + 4])
        .ok()
        .and_then(|h| u32::from_str_radix(h, 16).ok())
        .ok_or_else(|| err(*pos, "invalid \\u escape"))?;
    *pos += 4;
    Ok(hex)
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let int_digits = eat_digits(bytes, pos);
    if int_digits == 0 {
        return Err(err(*pos, "expected digit"));
    }
    if bytes.get(*pos) == Some(&b'.') {
        *pos += 1;
        if eat_digits(bytes, pos) == 0 {
            return Err(err(*pos, "expected digit after '.'"));
        }
    }
    if matches!(bytes.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(bytes.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if eat_digits(bytes, pos) == 0 {
            return Err(err(*pos, "expected digit in exponent"));
        }
    }
    let text = core::str::from_utf8(&bytes[start..*pos]).expect("digits are ascii");
    let value: f64 = text.parse().map_err(|_| err(start, "malformed number"))?;
    if !value.is_finite() {
        return Err(err(start, "number overflows f64"));
    }
    Ok(Json::Num(value))
}

fn eat_digits(bytes: &[u8], pos: &mut usize) -> usize {
    let start = *pos;
    while matches!(bytes.get(*pos), Some(b'0'..=b'9')) {
        *pos += 1;
    }
    *pos - start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-2.5e-1").unwrap(), Json::Num(-0.25));
        assert_eq!(
            Json::parse("\"a\\nb\"").unwrap(),
            Json::Str("a\nb".to_string())
        );
    }

    #[test]
    fn float_formatting_is_irrelevant_after_parse() {
        assert_eq!(Json::parse("0.25").unwrap(), Json::parse("2.5e-1").unwrap());
        assert_eq!(Json::parse("8").unwrap(), Json::parse("8.0").unwrap());
    }

    #[test]
    fn object_round_trip_preserves_order() {
        let doc = "{\"b\":1,\"a\":[true,null,\"x\"]}";
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.emit(), doc);
        assert_eq!(v.get("b").and_then(Json::as_usize), Some(1));
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(
            Json::parse("\"\\u00e9\\ud83d\\ude00\"").unwrap(),
            Json::Str("é😀".to_string())
        );
        assert!(Json::parse("\"\\ud800\"").is_err());
    }

    #[test]
    fn malformed_documents_error_without_panic() {
        for bad in [
            "", "{", "[1,", "{\"a\"}", "tru", "1.2.3", "\"", "01x", "{}{}", "1e999",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let deep = "[".repeat(200) + &"]".repeat(200);
        assert!(Json::parse(&deep).is_err());
    }
}
