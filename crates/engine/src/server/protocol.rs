//! Wire-protocol response builders shared by the stdin front-end and the
//! socket daemon.
//!
//! Every response is a single JSON object on one line. Success carries
//! `"ok": true`; failures carry `"ok": false` and an `"error"` object with
//! a stable `code`, a human-oriented `message`, and — for `overloaded`
//! rejections — a `retry_after_ms` backoff hint. The request's `id` field,
//! when present, is echoed verbatim as the first response field.

use crate::engine::{EngineError, QueryResult};
use crate::json::Json;
use crate::request::ScenarioRequest;
use crate::server::telemetry::{format_trace_id, RequestTelemetry};

/// Stable error codes the serving tier emits.
pub mod code {
    /// The line was not valid JSON.
    pub const PARSE_ERROR: &str = "parse_error";
    /// Structurally valid JSON, semantically unusable request.
    pub const INVALID_REQUEST: &str = "invalid_request";
    /// Unknown `op` value.
    pub const UNKNOWN_OP: &str = "unknown_op";
    /// The solver could not produce a result for a valid request.
    pub const SOLVE_ERROR: &str = "solve_error";
    /// Shed by admission control; the response carries `retry_after_ms`.
    pub const OVERLOADED: &str = "overloaded";
    /// The request's deadline passed before a result was produced.
    pub const DEADLINE_EXCEEDED: &str = "deadline_exceeded";
    /// The request crashed the worker; the worker survived, it did not.
    pub const INTERNAL: &str = "internal";
    /// The server is draining and accepts no new work.
    pub const UNAVAILABLE: &str = "unavailable";
}

/// Builds a success response for one satisfied query.
pub fn ok_response(id: Option<Json>, result: &QueryResult) -> Json {
    let mut fields = vec![];
    if let Some(id) = id {
        fields.push(("id", id));
    }
    fields.push(("ok", Json::Bool(true)));
    fields.push(("outcome", Json::Str(result.outcome.label().to_string())));
    if let Some(source) = result.outcome.source() {
        fields.push(("source", Json::Str(source.to_string())));
    }
    fields.push((
        "fingerprint",
        Json::Str(ScenarioRequest::format_fingerprint(result.fingerprint)),
    ));
    fields.push(("summary", result.summary.to_json()));
    fields.push(("latency_us", Json::Num(result.latency_us as f64)));
    Json::obj(fields)
}

/// Serializes a request's phase telemetry for the wire `telemetry` block.
pub fn telemetry_block(t: &RequestTelemetry) -> Json {
    Json::obj(vec![
        ("trace_id", Json::Str(format_trace_id(t.trace_id))),
        ("queue_wait_us", Json::Num(t.queue_wait_us as f64)),
        ("cache_tier", Json::Str(t.cache_tier.to_string())),
        ("solver_path", Json::Str(t.solver_path.clone())),
        ("solve_us", Json::Num(t.solve_us as f64)),
        ("shard", Json::Num(t.shard as f64)),
    ])
}

/// Appends the `telemetry` block as the *last* field of a response, so
/// every legacy field keeps its byte position (the byte-identity tests
/// pin the prefix).
pub fn attach_telemetry(mut response: Json, t: &RequestTelemetry) -> Json {
    if let Json::Obj(fields) = &mut response {
        fields.push(("telemetry".to_string(), telemetry_block(t)));
    }
    response
}

/// Builds a failure response with a stable error code.
pub fn error_response(id: Option<Json>, code: &str, message: &str) -> Json {
    error_response_with(id, code, message, vec![])
}

/// [`error_response`] with extra fields inside the `error` object (for
/// example `retry_after_ms` on [`code::OVERLOADED`]).
pub fn error_response_with(
    id: Option<Json>,
    code: &str,
    message: &str,
    extra: Vec<(&str, Json)>,
) -> Json {
    let mut fields = vec![];
    if let Some(id) = id {
        fields.push(("id", id));
    }
    fields.push(("ok", Json::Bool(false)));
    let mut error = vec![
        ("code", Json::Str(code.to_string())),
        ("message", Json::Str(message.to_string())),
    ];
    error.extend(extra);
    fields.push(("error", Json::obj(error)));
    Json::obj(fields)
}

/// The `overloaded` rejection. Every shed response carries the
/// `retry_after_ms` hint — this constructor is the only way the serving
/// tier builds one, so the invariant holds by construction.
pub fn overloaded_response(id: Option<Json>, retry_after_ms: u64) -> Json {
    error_response_with(
        id,
        code::OVERLOADED,
        "queue full; retry after the hinted backoff",
        vec![("retry_after_ms", Json::Num(retry_after_ms as f64))],
    )
}

/// Maps an engine failure onto the wire error vocabulary.
pub fn engine_error_response(id: Option<Json>, error: &EngineError) -> Json {
    match error {
        EngineError::Invalid(m) => error_response(id, code::INVALID_REQUEST, m),
        EngineError::Solve(m) => error_response(id, code::SOLVE_ERROR, m),
        EngineError::Cancelled => error_response(
            id,
            code::DEADLINE_EXCEEDED,
            "deadline passed before the solve finished",
        ),
    }
}

/// Builds the `metrics` op response: the process-wide obs registry
/// snapshot embedded as a structured object.
pub fn metrics_response(id: Option<Json>) -> Json {
    let snapshot = vstack_obs::metrics::snapshot_json();
    let metrics =
        Json::parse(&snapshot).expect("obs metrics snapshot is valid JSON by construction");
    let mut fields = vec![];
    if let Some(id) = id {
        fields.push(("id", id));
    }
    fields.push(("ok", Json::Bool(true)));
    fields.push(("metrics", metrics));
    Json::obj(fields)
}

/// Extracts and validates the optional `deadline_ms` request field,
/// clamping it to `[1, max_deadline_ms]`.
///
/// # Errors
///
/// A message naming the field when it is present but not a positive
/// number.
pub fn parse_deadline_ms(doc: &Json, max_deadline_ms: u64) -> Result<Option<u64>, String> {
    match doc.get("deadline_ms") {
        None => Ok(None),
        Some(v) => match v.as_f64() {
            Some(n) if n.is_finite() && n >= 1.0 => {
                Ok(Some((n as u64).clamp(1, max_deadline_ms.max(1))))
            }
            _ => Err("\"deadline_ms\" must be a positive number of milliseconds".to_string()),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overloaded_always_carries_retry_after_ms() {
        let r = overloaded_response(Some(Json::Num(7.0)), 42);
        assert_eq!(r.get("ok"), Some(&Json::Bool(false)));
        let err = r.get("error").unwrap();
        assert_eq!(
            err.get("code").and_then(Json::as_str),
            Some(code::OVERLOADED)
        );
        assert_eq!(err.get("retry_after_ms").and_then(Json::as_f64), Some(42.0));
    }

    #[test]
    fn deadline_parse_clamps_and_rejects() {
        let doc = Json::parse(r#"{"deadline_ms": 5000}"#).unwrap();
        assert_eq!(parse_deadline_ms(&doc, 1000).unwrap(), Some(1000));
        let doc = Json::parse(r#"{"deadline_ms": -3}"#).unwrap();
        assert!(parse_deadline_ms(&doc, 1000).is_err());
        let doc = Json::parse(r#"{"op":"solve"}"#).unwrap();
        assert_eq!(parse_deadline_ms(&doc, 1000).unwrap(), None);
    }
}
