//! Feature-gated fault injection for chaos testing the serving stack.
//!
//! With the `chaos` cargo feature enabled, tests can arm injection points
//! that production code paths poll:
//!
//! * **cache I/O** — the next N disk-cache stores fail with an I/O error,
//!   or are *torn* (half the bytes written, then reported as success —
//!   the moral equivalent of `kill -9` on a filesystem that loses the
//!   tail of a write);
//! * **worker panics** — the next N shard solves panic mid-request;
//! * **slow solves** — every solve sleeps first, driving queues into
//!   overload and deadlines into expiry at will.
//!
//! Without the feature (the default, and what ships), every hook compiles
//! to an empty inline function: zero branches, zero atomics, no way to
//! trip in production.

#[cfg(feature = "chaos")]
mod armed {
    use std::io;
    use std::sync::atomic::{AtomicU64, Ordering};

    static FAIL_STORES: AtomicU64 = AtomicU64::new(0);
    static TEAR_STORES: AtomicU64 = AtomicU64::new(0);
    static PANIC_SOLVES: AtomicU64 = AtomicU64::new(0);
    static SOLVE_DELAY_US: AtomicU64 = AtomicU64::new(0);

    /// Decrements an armed count-down; true if this call consumed a shot.
    fn take(counter: &AtomicU64) -> bool {
        counter
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |n| n.checked_sub(1))
            .is_ok()
    }

    /// Arms the next `n` disk-cache stores to fail with an I/O error.
    pub fn fail_next_cache_stores(n: u64) {
        FAIL_STORES.store(n, Ordering::Relaxed);
    }

    /// Arms the next `n` disk-cache stores to tear: half the entry's
    /// bytes reach the file, yet the store reports success.
    pub fn tear_next_cache_stores(n: u64) {
        TEAR_STORES.store(n, Ordering::Relaxed);
    }

    /// Arms the next `n` worker solves to panic.
    pub fn panic_next_solves(n: u64) {
        PANIC_SOLVES.store(n, Ordering::Relaxed);
    }

    /// Makes every worker solve sleep `us` microseconds before starting
    /// (0 disables).
    pub fn delay_solves_us(us: u64) {
        SOLVE_DELAY_US.store(us, Ordering::Relaxed);
    }

    /// Disarms every injection point.
    pub fn reset() {
        FAIL_STORES.store(0, Ordering::Relaxed);
        TEAR_STORES.store(0, Ordering::Relaxed);
        PANIC_SOLVES.store(0, Ordering::Relaxed);
        SOLVE_DELAY_US.store(0, Ordering::Relaxed);
    }

    pub(crate) fn cache_store_hook(text: &mut String) -> io::Result<()> {
        if take(&FAIL_STORES) {
            return Err(io::Error::other("chaos: injected cache store failure"));
        }
        if take(&TEAR_STORES) {
            text.truncate(text.len() / 2);
        }
        Ok(())
    }

    pub(crate) fn worker_solve_hook() {
        let us = SOLVE_DELAY_US.load(Ordering::Relaxed);
        if us > 0 {
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
        if take(&PANIC_SOLVES) {
            panic!("chaos: injected worker panic");
        }
    }
}

#[cfg(feature = "chaos")]
pub(crate) use armed::{cache_store_hook, worker_solve_hook};
#[cfg(feature = "chaos")]
pub use armed::{
    delay_solves_us, fail_next_cache_stores, panic_next_solves, reset, tear_next_cache_stores,
};

/// Cache-store injection point; a no-op without the `chaos` feature.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn cache_store_hook(_text: &mut String) -> std::io::Result<()> {
    Ok(())
}

/// Worker-solve injection point; a no-op without the `chaos` feature.
#[cfg(not(feature = "chaos"))]
#[inline(always)]
pub(crate) fn worker_solve_hook() {}
