//! A bounded MPMC queue with non-blocking admission — the load-shedding
//! primitive under every worker shard.
//!
//! The queue never blocks a producer: [`BoundedQueue::try_push`] either
//! admits the item or reports [`PushError::Full`] immediately, so the
//! connection thread can answer `overloaded` (with a `retry_after_ms`
//! hint) instead of stacking requests into unbounded memory. Consumers
//! block with a timeout so a draining shard can notice closure promptly.
//!
//! Capacity is a hard invariant: at no point does the queue hold more
//! than `capacity` items (property-tested in `tests/server_queue.rs`).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

/// Why a push was refused.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    /// The queue is at capacity; shed the item (returned unchanged).
    Full(T),
    /// The queue is closed for new work (shutdown drain in progress).
    Closed(T),
}

/// What a pop produced.
#[derive(Debug)]
pub enum Popped<T> {
    /// An item.
    Item(T),
    /// Nothing arrived within the timeout; the queue is still open.
    TimedOut,
    /// The queue is closed *and* empty — the consumer can exit.
    Drained,
}

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// Bounded multi-producer/multi-consumer queue (mutex + condvar).
pub struct BoundedQueue<T> {
    capacity: usize,
    state: Mutex<State<T>>,
    not_empty: Condvar,
    /// Deepest the queue has ever been — a telemetry watermark, updated
    /// under the state lock, readable without it.
    high_watermark: AtomicUsize,
}

impl<T> BoundedQueue<T> {
    /// Creates a queue bounded to `capacity` items (minimum 1).
    pub fn new(capacity: usize) -> Self {
        BoundedQueue {
            capacity: capacity.max(1),
            state: Mutex::new(State {
                items: VecDeque::new(),
                closed: false,
            }),
            not_empty: Condvar::new(),
            high_watermark: AtomicUsize::new(0),
        }
    }

    /// The hard bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The deepest the queue has ever been over its lifetime.
    pub fn high_watermark(&self) -> usize {
        self.high_watermark.load(Ordering::Relaxed)
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.state.lock().expect("queue lock").items.len()
    }

    /// Whether the queue holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Admits `item` if there is room; never blocks.
    ///
    /// # Errors
    ///
    /// [`PushError::Full`] at capacity, [`PushError::Closed`] after
    /// [`BoundedQueue::close`] — both return the item to the caller.
    pub fn try_push(&self, item: T) -> Result<usize, PushError<T>> {
        let mut state = self.state.lock().expect("queue lock");
        if state.closed {
            return Err(PushError::Closed(item));
        }
        if state.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        state.items.push_back(item);
        let depth = state.items.len();
        drop(state);
        self.high_watermark.fetch_max(depth, Ordering::Relaxed);
        self.not_empty.notify_one();
        Ok(depth)
    }

    /// Takes the oldest item, waiting up to `timeout` for one to arrive.
    pub fn pop(&self, timeout: Duration) -> Popped<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(item) = state.items.pop_front() {
                return Popped::Item(item);
            }
            if state.closed {
                return Popped::Drained;
            }
            let (next, wait) = self
                .not_empty
                .wait_timeout(state, timeout)
                .expect("queue lock");
            state = next;
            if wait.timed_out() {
                return match state.items.pop_front() {
                    Some(item) => Popped::Item(item),
                    None if state.closed => Popped::Drained,
                    None => Popped::TimedOut,
                };
            }
        }
    }

    /// Closes the queue: future pushes fail, queued items remain poppable,
    /// and consumers see [`Popped::Drained`] once empty.
    pub fn close(&self) {
        self.state.lock().expect("queue lock").closed = true;
        self.not_empty.notify_all();
    }

    /// Empties the queue without handing items to a consumer, returning
    /// what was shed (used by non-draining shutdown).
    pub fn drain_now(&self) -> Vec<T> {
        let mut state = self.state.lock().expect("queue lock");
        state.items.drain(..).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_in_fifo_order() {
        let q = BoundedQueue::new(4);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.pop(Duration::from_millis(1)), Popped::Item(1)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Popped::Item(2)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Popped::TimedOut));
    }

    #[test]
    fn full_queue_sheds() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn high_watermark_tracks_peak_depth() {
        let q = BoundedQueue::new(4);
        assert_eq!(q.high_watermark(), 0);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert!(matches!(q.pop(Duration::from_millis(1)), Popped::Item(1)));
        q.try_push(3).unwrap();
        // Depth peaked at 2 even though it later dipped to 1.
        assert_eq!(q.high_watermark(), 2);
    }

    #[test]
    fn closed_queue_rejects_but_drains() {
        let q = BoundedQueue::new(2);
        q.try_push(7).unwrap();
        q.close();
        assert_eq!(q.try_push(8), Err(PushError::Closed(8)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Popped::Item(7)));
        assert!(matches!(q.pop(Duration::from_millis(1)), Popped::Drained));
    }

    #[test]
    fn blocked_pop_wakes_on_push() {
        use std::sync::Arc;
        let q = Arc::new(BoundedQueue::new(1));
        let q2 = Arc::clone(&q);
        let h = std::thread::spawn(move || match q2.pop(Duration::from_secs(5)) {
            Popped::Item(v) => v,
            other => panic!("expected item, got {other:?}"),
        });
        std::thread::sleep(Duration::from_millis(20));
        q.try_push(42usize).unwrap();
        assert_eq!(h.join().unwrap(), 42);
    }
}
