//! The hardened serving tier: a concurrent daemon over the engine.
//!
//! The stdin front-end (`vstack-serve` without `--listen`) is one engine
//! on one thread; this module is what turns that into something that
//! survives production traffic:
//!
//! * [`queue`] — the bounded, non-blocking admission queue (the load-shed
//!   primitive);
//! * [`shard`] — fingerprint-sharded workers, each owning a private
//!   engine (LRU + disk-cache segment), with cross-request dedup of
//!   identical in-flight fingerprints and `catch_unwind` panic
//!   containment;
//! * [`daemon`] — the TCP/Unix-socket listener, per-request deadlines
//!   (cooperatively cancelling solves between escalation-ladder rungs),
//!   and graceful drain that flushes every cache segment;
//! * [`protocol`] — shared NDJSON response builders and the stable error
//!   vocabulary (`overloaded` + `retry_after_ms`, `deadline_exceeded`,
//!   `internal`, `unavailable`);
//! * [`telemetry`] — request-scoped observability: trace-ID minting, the
//!   per-request context threaded through the queue, rolling per-shard
//!   SLO histograms behind the `telemetry` verb, and the always-on
//!   flight recorder that dumps the last 512 requests on panic, deadline
//!   miss, or shed spike;
//! * [`chaos`] — feature-gated fault injection (torn cache writes, worker
//!   panics, slow solves) for the chaos test harness; compiled out by
//!   default.
//!
//! Every wait in the tier is bounded: admission never blocks, reply waits
//! are capped by the request deadline, socket reads poll for the drain
//! flag. An overloaded or crashing server answers structured errors; it
//! does not hang, grow without bound, or lose its disk cache.

pub mod chaos;
pub mod daemon;
pub mod protocol;
pub mod queue;
pub mod shard;
pub mod telemetry;

pub use daemon::{Bind, Daemon, DaemonConfig};
pub use shard::{ShardConfig, ShardPool};
pub use telemetry::{RequestCtx, RequestTelemetry};
