//! Fingerprint-sharded worker pool: each shard owns one [`Engine`] (its
//! own LRU and disk-cache segment), a bounded admission queue, and one
//! worker thread.
//!
//! # Why sharding by fingerprint
//!
//! Routing `fingerprint % n_shards` gives every fingerprint a *home
//! shard*: its cached result lives in exactly one LRU and one disk
//! segment (no cross-shard coherence, no global lock), and two concurrent
//! requests for the same scenario always meet at the same shard — which
//! is what makes cross-request dedup a per-shard map instead of a
//! distributed problem.
//!
//! # Admission control
//!
//! A request is admitted, joined, or shed, decided under the shard's
//! waiter lock:
//!
//! * **joined** — the fingerprint is already queued or solving here; the
//!   caller's reply channel is appended to the in-flight entry and no new
//!   work is created (`serve_dedup_joins`).
//! * **admitted** — room in the bounded queue; the job is enqueued with
//!   its cancellation token (`serve_accepted`).
//! * **shed** — the queue is full; the caller gets a `retry_after_ms`
//!   hint derived from the queue depth and the shard's EWMA service time
//!   (`serve_shed`). Nothing is queued, so memory stays bounded under
//!   any overload.
//!
//! # Failure containment
//!
//! The worker wraps every solve in `catch_unwind`: a panicking request
//! produces an [`ShardOutcome::Panicked`] reply (the daemon answers
//! `{"error":{"code":"internal"}}`), bumps `serve_worker_panics`, and the
//! shard keeps serving. Disk-cache flush failures are logged and never
//! fail the request that solved successfully.

use std::collections::HashMap;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use vstack_obs::{log_warn, warn_once};
use vstack_sparse::CancelToken;

use crate::engine::{Engine, EngineConfig, EngineError, QueryResult};
use crate::request::ScenarioRequest;
use crate::server::queue::{BoundedQueue, Popped, PushError};
use crate::server::telemetry::{FlightOutcome, PoolTelemetry, RequestCtx, RequestTelemetry};

/// Configuration for a [`ShardPool`].
#[derive(Debug, Clone)]
pub struct ShardConfig {
    /// Worker shard count (minimum 1).
    pub shards: usize,
    /// Bounded queue capacity per shard; the admission-control knob.
    pub queue_capacity: usize,
    /// LRU entries per shard.
    pub lru_capacity: usize,
    /// Disk-cache root; each shard owns the `shard-NN/` segment under it.
    pub cache_dir: Option<PathBuf>,
    /// Whether solves may warm-start from cached neighbours.
    pub warm_start: bool,
    /// Where flight-recorder dumps land; `None` disables dumping (the
    /// in-memory ring still records).
    pub flight_dir: Option<PathBuf>,
    /// SLO latency threshold for the windowed histograms, microseconds.
    pub slo_us: u64,
    /// SLO availability target in (0, 1), e.g. `0.999`.
    pub slo_target: f64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        ShardConfig {
            shards: 4,
            queue_capacity: 32,
            lru_capacity: 256,
            cache_dir: None,
            warm_start: true,
            flight_dir: None,
            slo_us: 250_000,
            slo_target: 0.999,
        }
    }
}

/// Terminal reply for one admitted or joined request. `Done` and
/// `Panicked` carry the worker-measured phase telemetry of the job that
/// ran (on a dedup join: the leader's timings).
#[derive(Debug, Clone)]
pub enum ShardOutcome {
    /// The solve ran (or was answered from cache).
    Done(Result<QueryResult, EngineError>, RequestTelemetry),
    /// The solve panicked; the shard survived and the request did not.
    Panicked(RequestTelemetry),
    /// The job was shed from the queue during a non-draining shutdown.
    Drained,
}

/// What admission control decided for a submission.
pub enum Admission {
    /// Admitted as new work; await the outcome on the receiver.
    Queued(mpsc::Receiver<ShardOutcome>),
    /// Joined an identical in-flight fingerprint; same receiver contract.
    Joined(mpsc::Receiver<ShardOutcome>),
    /// Shed by admission control: retry after the hinted backoff.
    Shed {
        /// Suggested client backoff, milliseconds.
        retry_after_ms: u64,
    },
    /// The pool is shutting down and accepts no new work.
    Closed,
}

/// One queued unit of work.
struct Job {
    fingerprint: u64,
    request: ScenarioRequest,
    cancel: CancelToken,
    ctx: RequestCtx,
}

/// Reply channels of every request waiting on one in-flight fingerprint.
type WaiterMap = Mutex<HashMap<u64, Vec<mpsc::Sender<ShardOutcome>>>>;

struct Shard {
    queue: Arc<BoundedQueue<Job>>,
    waiters: Arc<WaiterMap>,
    /// EWMA of per-job service time, microseconds — the basis of the
    /// `retry_after_ms` hint.
    ewma_service_us: Arc<AtomicU64>,
    /// Taken (once) by [`ShardPool::shutdown`]; behind a mutex so shutdown
    /// works through a shared reference and is idempotent.
    worker: Mutex<Option<thread::JoinHandle<()>>>,
}

/// The fingerprint-sharded worker pool.
pub struct ShardPool {
    shards: Vec<Shard>,
    telemetry: Arc<PoolTelemetry>,
}

impl ShardPool {
    /// Builds the shards and starts one worker thread per shard.
    ///
    /// # Errors
    ///
    /// Propagates disk-cache segment creation failures.
    pub fn start(config: &ShardConfig) -> io::Result<ShardPool> {
        let n = config.shards.max(1);
        let telemetry = Arc::new(PoolTelemetry::new(
            n,
            config.slo_us,
            config.slo_target,
            config.flight_dir.clone(),
        ));
        let mut shards = Vec::with_capacity(n);
        for i in 0..n {
            let engine_config = EngineConfig {
                lru_capacity: config.lru_capacity,
                cache_dir: config
                    .cache_dir
                    .as_ref()
                    .map(|d| d.join(format!("shard-{i:02}"))),
                warm_start: config.warm_start,
            };
            let engine = Engine::new(engine_config)?;
            let queue = Arc::new(BoundedQueue::new(config.queue_capacity));
            let waiters: Arc<WaiterMap> = Arc::new(Mutex::new(HashMap::new()));
            let ewma = Arc::new(AtomicU64::new(0));
            let worker = {
                let queue = Arc::clone(&queue);
                let waiters = Arc::clone(&waiters);
                let ewma = Arc::clone(&ewma);
                let telemetry = Arc::clone(&telemetry);
                thread::Builder::new()
                    .name(format!("vstack-shard-{i}"))
                    .spawn(move || worker_loop(engine, &queue, &waiters, &ewma, &telemetry, i))
                    .map_err(io::Error::other)?
            };
            shards.push(Shard {
                queue,
                waiters,
                ewma_service_us: ewma,
                worker: Mutex::new(Some(worker)),
            });
        }
        Ok(ShardPool { shards, telemetry })
    }

    /// The pool's telemetry surface (windows, flight recorders, dumps).
    pub fn telemetry(&self) -> &Arc<PoolTelemetry> {
        &self.telemetry
    }

    /// Number of shards.
    pub fn len(&self) -> usize {
        self.shards.len()
    }

    /// Whether the pool has no shards (never true for a started pool).
    pub fn is_empty(&self) -> bool {
        self.shards.is_empty()
    }

    /// Routes `request` to its home shard and runs admission control.
    /// Never blocks on a full queue. The request is canonicalized here so
    /// routing and dedup agree with the engine's own fingerprint domain;
    /// callers should have validated it already. Returns the decision and
    /// the home-shard index (meaningful even for shed requests, so the
    /// caller can attribute the rejection in its reply telemetry).
    pub fn submit(
        &self,
        request: &ScenarioRequest,
        cancel: CancelToken,
        ctx: RequestCtx,
    ) -> (Admission, usize) {
        let m = vstack_obs::metrics::global();
        let request = request.canonical();
        let fingerprint = request.fingerprint();
        let shard_idx = (fingerprint % self.shards.len() as u64) as usize;
        let shard = &self.shards[shard_idx];
        let (tx, rx) = mpsc::channel();
        // Decide join-vs-admit-vs-shed under the waiter lock so the worker
        // (which takes the lock to deliver replies) can never observe a
        // queued job without its waiter entry.
        let mut waiters = shard.waiters.lock().expect("waiter lock");
        if let Some(entry) = waiters.get_mut(&fingerprint) {
            entry.push(tx);
            m.serve_dedup_joins.inc();
            self.telemetry.shard(shard_idx).note_admission(false);
            return (Admission::Joined(rx), shard_idx);
        }
        let job = Job {
            fingerprint,
            request: request.clone(),
            cancel,
            ctx,
        };
        let admission = match shard.queue.try_push(job) {
            Ok(depth) => {
                waiters.insert(fingerprint, vec![tx]);
                m.serve_accepted.inc();
                m.serve_queue_depth.observe(depth as u64);
                self.telemetry.shard(shard_idx).note_admission(false);
                Admission::Queued(rx)
            }
            Err(PushError::Full(_)) => {
                m.serve_shed.inc();
                m.serve_queue_depth.observe(shard.queue.capacity() as u64);
                if self.telemetry.shard(shard_idx).note_admission(true) {
                    // The rolling shed rate just spiked past 50%: capture
                    // the black box while the overload is still in it.
                    self.telemetry.maybe_dump("shed_spike", ctx.trace_id);
                }
                Admission::Shed {
                    retry_after_ms: shard.retry_after_ms(),
                }
            }
            Err(PushError::Closed(_)) => Admission::Closed,
        };
        (admission, shard_idx)
    }

    /// Stops the pool. With `drain`, queued jobs are finished before the
    /// workers flush their disk segments and exit; without it, queued
    /// jobs are shed with [`ShardOutcome::Drained`] first. Blocks until
    /// every worker has exited (and therefore every cache is flushed).
    /// Idempotent; later calls return once the first completes.
    pub fn shutdown(&self, drain: bool) {
        let m = vstack_obs::metrics::global();
        for (i, shard) in self.shards.iter().enumerate() {
            shard.queue.close();
            if !drain {
                for job in shard.queue.drain_now() {
                    m.serve_drained_jobs.inc();
                    let mut t = RequestTelemetry::unserved(job.ctx.trace_id, i);
                    t.queue_wait_us =
                        u64::try_from(job.ctx.admitted.elapsed().as_micros()).unwrap_or(u64::MAX);
                    self.telemetry
                        .record_request(&t, job.fingerprint, FlightOutcome::Drained);
                    deliver(&shard.waiters, job.fingerprint, &ShardOutcome::Drained);
                }
            }
        }
        for shard in &self.shards {
            let handle = shard.worker.lock().expect("worker handle lock").take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
    }

    /// Sum of current queue depths (for tests and stats).
    pub fn queued(&self) -> usize {
        self.shards.iter().map(|s| s.queue.len()).sum()
    }
}

impl Shard {
    /// Backoff hint for a shed request: the time a full queue needs to
    /// drain at the observed service rate, clamped to [1 ms, 60 s]. The
    /// EWMA starts at 0, so an untrained shard hints the 1 ms floor.
    fn retry_after_ms(&self) -> u64 {
        let service_us = self.ewma_service_us.load(Ordering::Relaxed);
        let backlog = self.queue.len() as u64 + 1;
        (backlog * service_us / 1000).clamp(1, 60_000)
    }
}

/// Delivers one outcome to every waiter registered for `fingerprint`.
fn deliver(waiters: &WaiterMap, fingerprint: u64, outcome: &ShardOutcome) {
    let senders = waiters
        .lock()
        .expect("waiter lock")
        .remove(&fingerprint)
        .unwrap_or_default();
    for tx in senders {
        // A departed waiter (deadline hit, connection gone) is fine.
        let _ = tx.send(outcome.clone());
    }
}

/// The shard worker: pop, solve (contained), deliver, until drained.
/// Each job's trace id is published to the thread's trace slot for the
/// duration of the solve, so every span below picks it up.
fn worker_loop(
    mut engine: Engine,
    queue: &BoundedQueue<Job>,
    waiters: &WaiterMap,
    ewma_service_us: &AtomicU64,
    telemetry: &PoolTelemetry,
    shard_idx: usize,
) {
    let m = vstack_obs::metrics::global();
    loop {
        let job = match queue.pop(Duration::from_millis(100)) {
            Popped::Item(job) => job,
            Popped::TimedOut => continue,
            Popped::Drained => break,
        };
        let queue_wait_us =
            u64::try_from(job.ctx.admitted.elapsed().as_micros()).unwrap_or(u64::MAX);
        let trace = vstack_obs::trace::trace_scope(job.ctx.trace_id);
        let solve_start = Instant::now();
        let outcome = if job.cancel.is_cancelled() {
            // Expired while queued: don't waste a solve on it.
            m.serve_deadline_exceeded.inc();
            None
        } else {
            Some(run_job(&mut engine, &job))
        };
        let solve_us = u64::try_from(solve_start.elapsed().as_micros()).unwrap_or(u64::MAX);
        drop(trace);

        let mut request_telemetry = RequestTelemetry {
            trace_id: job.ctx.trace_id,
            shard: shard_idx,
            queue_wait_us,
            solve_us,
            cache_tier: "none",
            solver_path: String::new(),
        };
        let (outcome, flight) = match outcome {
            None => (
                ShardOutcome::Done(Err(EngineError::Cancelled), request_telemetry.clone()),
                FlightOutcome::DeadlineMiss,
            ),
            Some(Ok(done)) => {
                let flight = match &done {
                    Ok(result) => {
                        request_telemetry.cache_tier = RequestTelemetry::tier_for(result.outcome);
                        request_telemetry.solver_path = result.summary.solver_path.clone();
                        FlightOutcome::Ok
                    }
                    Err(EngineError::Cancelled) => FlightOutcome::DeadlineMiss,
                    Err(_) => FlightOutcome::EngineError,
                };
                (ShardOutcome::Done(done, request_telemetry.clone()), flight)
            }
            Some(Err(())) => (
                ShardOutcome::Panicked(request_telemetry.clone()),
                FlightOutcome::Panicked,
            ),
        };
        telemetry.record_request(&request_telemetry, job.fingerprint, flight);
        match flight {
            FlightOutcome::Panicked => {
                telemetry.maybe_dump("worker_panic", job.ctx.trace_id);
            }
            FlightOutcome::DeadlineMiss => {
                telemetry.maybe_dump("deadline_miss", job.ctx.trace_id);
            }
            _ => {}
        }

        let service_us = u64::try_from(job.ctx.admitted.elapsed().as_micros()).unwrap_or(u64::MAX);
        m.serve_request_us.observe(service_us);
        // EWMA with 1/8 gain: smooth enough to ride out cache-hit noise,
        // fast enough to track a fidelity shift within ~a dozen requests.
        let old = ewma_service_us.load(Ordering::Relaxed);
        let new = if old == 0 {
            service_us
        } else {
            old - old / 8 + service_us / 8
        };
        ewma_service_us.store(new, Ordering::Relaxed);
        deliver(waiters, job.fingerprint, &outcome);
    }
    // Queue drained and closed: make the disk segment durable before the
    // shard disappears.
    if let Err(e) = engine.flush() {
        log_warn!("serve", "shard cache flush on shutdown failed: {e}");
    }
}

/// Runs one job with panic containment and prompt cache persistence.
/// `Err(())` means the solve panicked (and was contained).
fn run_job(engine: &mut Engine, job: &Job) -> Result<Result<QueryResult, EngineError>, ()> {
    let m = vstack_obs::metrics::global();
    let result = catch_unwind(AssertUnwindSafe(|| {
        crate::server::chaos::worker_solve_hook();
        engine.set_cancel_token(job.cancel.clone());
        let result = engine.query(&job.request);
        engine.set_cancel_token(CancelToken::never());
        // Persist new entries now: a crash between requests then loses
        // nothing. A flush failure is the cache's problem, not this
        // request's — the solve already succeeded.
        if let Err(e) = engine.flush() {
            warn_once!(
                "serve",
                "disk-cache flush failed ({e}); serving continues uncached"
            );
        }
        result
    }));
    match result {
        Ok(done) => {
            if matches!(done, Err(EngineError::Cancelled)) {
                m.serve_deadline_exceeded.inc();
            }
            Ok(done)
        }
        Err(_) => {
            m.serve_worker_panics.inc();
            log_warn!(
                "serve",
                "worker solve panicked (contained); shard continues"
            );
            Err(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_request(layers: usize) -> ScenarioRequest {
        ScenarioRequest::voltage_stacked(layers, 0.4).quick()
    }

    #[test]
    fn submit_solves_and_caches() {
        let pool = ShardPool::start(&ShardConfig {
            shards: 2,
            ..ShardConfig::default()
        })
        .unwrap();
        let req = quick_request(2);
        let ctx = RequestCtx::mint();
        let rx = match pool.submit(&req, CancelToken::never(), ctx) {
            (Admission::Queued(rx), _) => rx,
            _ => panic!("first submission must queue"),
        };
        match rx.recv_timeout(Duration::from_secs(60)).unwrap() {
            ShardOutcome::Done(Ok(result), telemetry) => {
                assert_eq!(result.fingerprint, req.fingerprint());
                assert_eq!(telemetry.trace_id, ctx.trace_id);
                assert_eq!(telemetry.cache_tier, "solve");
                assert!(!telemetry.solver_path.is_empty());
                assert!(telemetry.solve_us > 0);
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        // The worker recorded the request into its shard's black box.
        let records: usize = (0..pool.len())
            .map(|i| pool.telemetry().shard(i).flight.snapshot().len())
            .sum();
        assert_eq!(records, 1);
        pool.shutdown(true);
    }

    #[test]
    fn expired_token_skips_the_solve() {
        let pool = ShardPool::start(&ShardConfig {
            shards: 1,
            ..ShardConfig::default()
        })
        .unwrap();
        let req = quick_request(2);
        let expired = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        let rx = match pool.submit(&req, expired, RequestCtx::mint()) {
            (Admission::Queued(rx), _) => rx,
            _ => panic!("must queue"),
        };
        match rx.recv_timeout(Duration::from_secs(10)).unwrap() {
            ShardOutcome::Done(Err(EngineError::Cancelled), telemetry) => {
                assert_eq!(telemetry.cache_tier, "none");
            }
            other => panic!("unexpected outcome: {other:?}"),
        }
        pool.shutdown(true);
    }
}
