//! The socket daemon: listener, connection threads, deadline enforcement
//! and graceful drain on top of the [`ShardPool`].
//!
//! # Threading model
//!
//! One accept thread turns connections into one thread each; connection
//! threads parse NDJSON requests, run admission control via
//! [`ShardPool::submit`], and *wait with a bounded timeout* for the
//! shard's reply. Nothing in a connection thread ever blocks without a
//! bound:
//!
//! * socket reads poll with a short timeout so the drain flag is noticed
//!   on idle connections;
//! * reply waits use `recv_timeout` capped at the request deadline plus a
//!   small grace window, so a wedged (or deliberately slowed) solve turns
//!   into a `deadline_exceeded` response rather than a hung client.
//!
//! The per-request [`CancelToken`] carries the same deadline into the
//! escalation ladder, which abandons the solve between rungs — the
//! timeout answer and the cooperative cancellation are two views of one
//! deadline.
//!
//! # Shutdown
//!
//! [`Daemon::shutdown`] (triggered by the owner, typically after SIGTERM,
//! or by a client's `shutdown` op): set the drain flag, nudge the
//! listener awake with a self-connection, stop accepting, then stop the
//! pool — which finishes (drain) or sheds (fast stop) queued jobs and
//! flushes every disk-cache segment before returning. The final metrics
//! snapshot is returned to the caller.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
#[cfg(unix)]
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant, SystemTime};

use vstack_obs::{log_info, log_warn};
use vstack_sparse::CancelToken;

use crate::json::Json;
use crate::request::ScenarioRequest;
use crate::server::protocol::{
    self, attach_telemetry, code, engine_error_response, error_response, metrics_response,
    ok_response, overloaded_response,
};
use crate::server::shard::{Admission, ShardConfig, ShardOutcome, ShardPool};
use crate::server::telemetry::{
    FlightOutcome, RequestCtx, RequestTelemetry, TELEMETRY_SCHEMA_VERSION,
};

/// How long a reply wait may exceed the request deadline: covers the gap
/// between the ladder's cancellation poll points so a cooperatively
/// cancelled solve usually delivers its own `deadline_exceeded` before
/// the connection gives up on it.
const REPLY_GRACE: Duration = Duration::from_millis(500);

/// Poll interval for idle socket reads; bounds how long an idle
/// connection takes to notice the drain flag.
const READ_POLL: Duration = Duration::from_millis(250);

/// Where the daemon listens.
#[derive(Debug, Clone)]
pub enum Bind {
    /// TCP address, e.g. `127.0.0.1:7077` (port 0 picks a free port).
    Tcp(String),
    /// Unix-domain socket path (a stale file there is replaced).
    #[cfg(unix)]
    Unix(PathBuf),
}

/// Daemon construction options.
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Listening endpoint.
    pub bind: Bind,
    /// Worker-pool shape (shards, queue bound, cache tiers).
    pub shard: ShardConfig,
    /// Deadline applied to requests that do not carry `deadline_ms`.
    pub default_deadline_ms: u64,
    /// Upper clamp for client-supplied `deadline_ms`.
    pub max_deadline_ms: u64,
    /// Append one telemetry-rollup NDJSON line per interval here
    /// (`None` disables the writer). A final line is written on
    /// shutdown so short-lived runs are never empty.
    pub telemetry_out: Option<PathBuf>,
    /// Interval between `telemetry_out` lines, milliseconds.
    pub telemetry_interval_ms: u64,
}

impl Default for DaemonConfig {
    fn default() -> Self {
        DaemonConfig {
            bind: Bind::Tcp("127.0.0.1:0".to_string()),
            shard: ShardConfig::default(),
            default_deadline_ms: 30_000,
            max_deadline_ms: 300_000,
            telemetry_out: None,
            telemetry_interval_ms: 1_000,
        }
    }
}

/// State shared by the accept thread and every connection thread.
struct Shared {
    pool: ShardPool,
    /// Set once shutdown begins; connection and accept loops exit on it.
    draining: AtomicBool,
    /// Latched by a client `shutdown` op for the owner to observe.
    shutdown_requested: Mutex<bool>,
    shutdown_signal: Condvar,
    default_deadline_ms: u64,
    max_deadline_ms: u64,
}

/// A running daemon. Dropping it without calling [`Daemon::shutdown`]
/// leaks the listener thread; owners are expected to shut down.
pub struct Daemon {
    shared: Arc<Shared>,
    accept: Mutex<Option<thread::JoinHandle<()>>>,
    telemetry_writer: Mutex<Option<thread::JoinHandle<()>>>,
    bind: Bind,
    /// Resolved TCP address (meaningful for port-0 binds).
    tcp_addr: Option<SocketAddr>,
}

impl Daemon {
    /// Binds the endpoint, starts the shard pool and the accept thread.
    ///
    /// # Errors
    ///
    /// Bind/listen failures and cache-segment creation failures.
    pub fn start(config: DaemonConfig) -> io::Result<Daemon> {
        let pool = ShardPool::start(&config.shard)?;
        let shared = Arc::new(Shared {
            pool,
            draining: AtomicBool::new(false),
            shutdown_requested: Mutex::new(false),
            shutdown_signal: Condvar::new(),
            default_deadline_ms: config.default_deadline_ms.max(1),
            max_deadline_ms: config.max_deadline_ms.max(1),
        });
        let (listener, tcp_addr) = Listener::bind(&config.bind)?;
        let accept = {
            let shared = Arc::clone(&shared);
            thread::Builder::new()
                .name("vstack-accept".to_string())
                .spawn(move || accept_loop(&listener, &shared))
                .map_err(io::Error::other)?
        };
        let telemetry_writer = match &config.telemetry_out {
            Some(path) => {
                let shared = Arc::clone(&shared);
                let path = path.clone();
                let interval = Duration::from_millis(config.telemetry_interval_ms.max(10));
                Some(
                    thread::Builder::new()
                        .name("vstack-telemetry".to_string())
                        .spawn(move || telemetry_writer_loop(&shared, &path, interval))
                        .map_err(io::Error::other)?,
                )
            }
            None => None,
        };
        match &config.bind {
            Bind::Tcp(_) => log_info!(
                "serve",
                "listening on tcp {}",
                tcp_addr.expect("tcp bind resolves an address")
            ),
            #[cfg(unix)]
            Bind::Unix(path) => log_info!("serve", "listening on unix {}", path.display()),
        }
        Ok(Daemon {
            shared,
            accept: Mutex::new(Some(accept)),
            telemetry_writer: Mutex::new(telemetry_writer),
            bind: config.bind,
            tcp_addr,
        })
    }

    /// The resolved TCP listening address (`None` for Unix binds).
    pub fn tcp_addr(&self) -> Option<SocketAddr> {
        self.tcp_addr
    }

    /// Blocks until a client `shutdown` op arrives or `timeout` passes;
    /// true when shutdown was requested. Owners typically loop on this
    /// with a short timeout, interleaving their own signal checks.
    pub fn wait_shutdown_requested(&self, timeout: Duration) -> bool {
        let guard = self
            .shared
            .shutdown_requested
            .lock()
            .expect("shutdown flag lock");
        let (guard, _) = self
            .shared
            .shutdown_signal
            .wait_timeout_while(guard, timeout, |requested| !*requested)
            .expect("shutdown flag lock");
        *guard
    }

    /// Stops the daemon: stop accepting, then stop the pool (finishing
    /// queued work when `drain`, shedding it otherwise) and flush every
    /// cache segment. Returns the final obs metrics snapshot. Idempotent.
    pub fn shutdown(&self, drain: bool) -> String {
        self.shared.draining.store(true, Ordering::SeqCst);
        self.nudge_listener();
        let accept = self.accept.lock().expect("accept handle lock").take();
        if let Some(handle) = accept {
            let _ = handle.join();
        }
        let writer = self
            .telemetry_writer
            .lock()
            .expect("telemetry writer lock")
            .take();
        if let Some(handle) = writer {
            let _ = handle.join();
        }
        self.shared.pool.shutdown(drain);
        #[cfg(unix)]
        if let Bind::Unix(path) = &self.bind {
            let _ = std::fs::remove_file(path);
        }
        let snapshot = vstack_obs::metrics::snapshot_json();
        log_info!("serve", "daemon stopped (drain={drain})");
        snapshot
    }

    /// Wakes the accept loop's blocking `accept` with a throwaway
    /// self-connection so it can observe the drain flag.
    fn nudge_listener(&self) {
        match &self.bind {
            Bind::Tcp(_) => {
                if let Some(addr) = self.tcp_addr {
                    let _ = TcpStream::connect_timeout(&addr, Duration::from_millis(250));
                }
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                let _ = UnixStream::connect(path);
            }
        }
    }
}

/// The listener half of the [`Bind`] abstraction.
enum Listener {
    Tcp(TcpListener),
    #[cfg(unix)]
    Unix(UnixListener),
}

impl Listener {
    fn bind(bind: &Bind) -> io::Result<(Listener, Option<SocketAddr>)> {
        match bind {
            Bind::Tcp(addr) => {
                let listener = TcpListener::bind(addr)?;
                let local = listener.local_addr()?;
                Ok((Listener::Tcp(listener), Some(local)))
            }
            #[cfg(unix)]
            Bind::Unix(path) => {
                // A stale socket file from a previous run would fail the
                // bind; replacing it is the conventional daemon behavior.
                let _ = std::fs::remove_file(path);
                Ok((Listener::Unix(UnixListener::bind(path)?), None))
            }
        }
    }

    fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => l.accept().map(|(s, _)| Conn::Tcp(s)),
            #[cfg(unix)]
            Listener::Unix(l) => l.accept().map(|(s, _)| Conn::Unix(s)),
        }
    }
}

/// The stream half: one accepted connection, TCP or Unix.
enum Conn {
    Tcp(TcpStream),
    #[cfg(unix)]
    Unix(UnixStream),
}

impl Conn {
    fn try_clone(&self) -> io::Result<Conn> {
        match self {
            Conn::Tcp(s) => s.try_clone().map(Conn::Tcp),
            #[cfg(unix)]
            Conn::Unix(s) => s.try_clone().map(Conn::Unix),
        }
    }

    fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            #[cfg(unix)]
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            #[cfg(unix)]
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            #[cfg(unix)]
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// Accepts until the drain flag is set. Connection threads are detached:
/// each exits within a read-poll interval of the flag, and the pool they
/// talk to outlives them through the `Arc`.
fn accept_loop(listener: &Listener, shared: &Arc<Shared>) {
    loop {
        match listener.accept() {
            Ok(conn) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                vstack_obs::metrics::global().serve_connections.inc();
                let shared = Arc::clone(shared);
                let spawned = thread::Builder::new()
                    .name("vstack-conn".to_string())
                    .spawn(move || handle_conn(conn, &shared));
                if let Err(e) = spawned {
                    log_warn!("serve", "connection thread spawn failed: {e}");
                }
            }
            Err(e) => {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                log_warn!("serve", "accept failed: {e}");
            }
        }
    }
}

/// Serves one connection: NDJSON request per line, one (or per batch
/// item, several) NDJSON response line(s) back.
fn handle_conn(conn: Conn, shared: &Arc<Shared>) {
    if conn.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let reader = match conn.try_clone() {
        Ok(clone) => clone,
        Err(e) => {
            log_warn!("serve", "connection clone failed: {e}");
            return;
        }
    };
    let mut reader = BufReader::new(reader);
    let mut writer = conn;
    let mut line = String::new();
    loop {
        // A timeout can surface mid-line; the bytes read so far stay in
        // `line`, so the next pass keeps appending — don't clear on poll.
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                if shared.draining.load(Ordering::SeqCst) {
                    break;
                }
                continue;
            }
            Err(_) => break,
        }
        let text = std::mem::take(&mut line);
        if text.trim().is_empty() {
            continue;
        }
        let (responses, close) = handle_request(&text, shared);
        for response in responses {
            if writeln!(writer, "{}", response.emit())
                .and_then(|()| writer.flush())
                .is_err()
            {
                return;
            }
        }
        if close {
            break;
        }
    }
}

/// Dispatches one request line; returns response lines and whether the
/// connection should close afterwards.
fn handle_request(text: &str, shared: &Arc<Shared>) -> (Vec<Json>, bool) {
    let doc = match Json::parse(text) {
        Ok(d) => d,
        Err(e) => {
            return (
                vec![error_response(None, code::PARSE_ERROR, &e.to_string())],
                false,
            )
        }
    };
    let id = doc.get("id").cloned();
    let Some(op) = doc.get("op").and_then(Json::as_str) else {
        return (
            vec![error_response(
                id,
                code::INVALID_REQUEST,
                "missing \"op\" field",
            )],
            false,
        );
    };
    match op {
        "solve" => (vec![serve_solve(&doc, id, shared)], false),
        "batch" => (serve_batch(&doc, id, shared), false),
        "stats" => (vec![stats_response(id, shared)], false),
        "metrics" => (vec![metrics_response(id)], false),
        "telemetry" => (vec![telemetry_response(id, shared)], false),
        "flightdump" => (vec![flightdump_response(id, shared)], false),
        "shutdown" => {
            let mut fields = vec![];
            if let Some(id) = id {
                fields.push(("id", id));
            }
            fields.push(("ok", Json::Bool(true)));
            fields.push(("shutdown", Json::Bool(true)));
            let mut requested = shared
                .shutdown_requested
                .lock()
                .expect("shutdown flag lock");
            *requested = true;
            shared.shutdown_signal.notify_all();
            (vec![Json::obj(fields)], true)
        }
        other => (
            vec![error_response(
                id,
                code::UNKNOWN_OP,
                &format!("unknown op \"{other}\""),
            )],
            false,
        ),
    }
}

/// Admission plus bounded reply wait for one `solve` op.
fn serve_solve(doc: &Json, id: Option<Json>, shared: &Shared) -> Json {
    let Some(scenario) = doc.get("scenario") else {
        return error_response(id, code::INVALID_REQUEST, "solve needs a \"scenario\"");
    };
    let request = match ScenarioRequest::from_json(scenario) {
        Ok(r) => r,
        Err(e) => return error_response(id, code::INVALID_REQUEST, &e),
    };
    if let Err(e) = request.validate() {
        return error_response(id, code::INVALID_REQUEST, &e);
    }
    let deadline_ms = match protocol::parse_deadline_ms(doc, shared.max_deadline_ms) {
        Ok(ms) => ms.unwrap_or(shared.default_deadline_ms),
        Err(e) => return error_response(id, code::INVALID_REQUEST, &e),
    };
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    let cancel = CancelToken::with_deadline(deadline);
    let ctx = RequestCtx::mint();
    let (admission, shard) = shared.pool.submit(&request, cancel.clone(), ctx);
    settle(
        admission,
        shard,
        request.fingerprint(),
        id,
        deadline,
        &cancel,
        shared,
        ctx,
    )
}

/// A `batch` op: admit every parseable item up front (so siblings dedup
/// against each other in flight), then settle them in order under one
/// shared deadline. One response line per item, input order.
fn serve_batch(doc: &Json, batch_id: Option<Json>, shared: &Shared) -> Vec<Json> {
    let Some(items) = doc.get("requests").and_then(Json::as_arr) else {
        return vec![error_response(
            batch_id,
            code::INVALID_REQUEST,
            "batch needs a \"requests\" array",
        )];
    };
    let deadline_ms = match protocol::parse_deadline_ms(doc, shared.max_deadline_ms) {
        Ok(ms) => ms.unwrap_or(shared.default_deadline_ms),
        Err(e) => return vec![error_response(batch_id, code::INVALID_REQUEST, &e)],
    };
    let deadline = Instant::now() + Duration::from_millis(deadline_ms);
    let cancel = CancelToken::with_deadline(deadline);
    type Pending = (
        Option<Json>,
        Result<(Admission, usize, u64, RequestCtx), Json>,
    );
    let mut pending: Vec<Pending> = Vec::new();
    for item in items {
        let id = item.get("id").cloned();
        let request = match item.get("scenario") {
            Some(s) => ScenarioRequest::from_json(s).and_then(|r| r.validate().map(|()| r)),
            None => Err("batch item needs a \"scenario\"".to_string()),
        };
        match request {
            Ok(request) => {
                let ctx = RequestCtx::mint();
                let (admission, shard) = shared.pool.submit(&request, cancel.clone(), ctx);
                pending.push((id, Ok((admission, shard, request.fingerprint(), ctx))));
            }
            Err(e) => {
                pending.push((
                    id.clone(),
                    Err(error_response(id, code::INVALID_REQUEST, &e)),
                ));
            }
        }
    }
    pending
        .into_iter()
        .map(|(id, entry)| match entry {
            Ok((admission, shard, fingerprint, ctx)) => settle(
                admission,
                shard,
                fingerprint,
                id,
                deadline,
                &cancel,
                shared,
                ctx,
            ),
            Err(response) => response,
        })
        .collect()
}

/// Turns an admission decision into the final response, waiting (bounded)
/// for the shard when the request was admitted or joined. Every response
/// — success or failure — carries an additive `telemetry` block with the
/// caller's own trace ID.
#[allow(clippy::too_many_arguments)]
fn settle(
    admission: Admission,
    shard: usize,
    fingerprint: u64,
    id: Option<Json>,
    deadline: Instant,
    cancel: &CancelToken,
    shared: &Shared,
    ctx: RequestCtx,
) -> Json {
    let m = vstack_obs::metrics::global();
    let own_wall_us = || u64::try_from(ctx.admitted.elapsed().as_micros()).unwrap_or(u64::MAX);
    let (rx, joined) = match admission {
        Admission::Queued(rx) => (rx, false),
        Admission::Joined(rx) => (rx, true),
        Admission::Shed { retry_after_ms } => {
            let t = RequestTelemetry::unserved(ctx.trace_id, shard);
            return attach_telemetry(overloaded_response(id, retry_after_ms), &t);
        }
        Admission::Closed => {
            let t = RequestTelemetry::unserved(ctx.trace_id, shard);
            return attach_telemetry(
                error_response(id, code::UNAVAILABLE, "server is shutting down"),
                &t,
            );
        }
    };
    let wait = deadline + REPLY_GRACE - Instant::now();
    match rx.recv_timeout(wait) {
        Ok(ShardOutcome::Done(result, worker_t)) => {
            let t = reply_telemetry(&worker_t, joined, shard, ctx, own_wall_us());
            let reply = match result {
                Ok(result) => ok_response(id, &result),
                Err(e) => engine_error_response(id, &e),
            };
            attach_telemetry(reply, &t)
        }
        Ok(ShardOutcome::Panicked(worker_t)) => {
            let t = reply_telemetry(&worker_t, joined, shard, ctx, own_wall_us());
            attach_telemetry(
                error_response(
                    id,
                    code::INTERNAL,
                    "request crashed its worker (contained); see server logs",
                ),
                &t,
            )
        }
        Ok(ShardOutcome::Drained) => {
            let mut t = RequestTelemetry::unserved(ctx.trace_id, shard);
            t.queue_wait_us = own_wall_us();
            attach_telemetry(
                error_response(id, code::UNAVAILABLE, "shed during server drain"),
                &t,
            )
        }
        Err(_) => {
            // The solve outlived deadline + grace (it will abandon itself
            // at the ladder's next cancellation poll) or its worker died.
            // Either way the client gets a bounded, structured answer.
            cancel.cancel();
            m.serve_deadline_exceeded.inc();
            let mut t = RequestTelemetry::unserved(ctx.trace_id, shard);
            t.queue_wait_us = own_wall_us();
            let telemetry = shared.pool.telemetry();
            telemetry.record_request(&t, fingerprint, FlightOutcome::DeadlineMiss);
            telemetry.maybe_dump("deadline_miss", ctx.trace_id);
            attach_telemetry(
                error_response(
                    id,
                    code::DEADLINE_EXCEEDED,
                    "deadline passed before the solve finished",
                ),
                &t,
            )
        }
    }
}

/// The telemetry block for a settled reply: the worker's phase breakdown
/// re-stamped with the *caller's* trace ID. A dedup joiner inherits the
/// leader's provenance (cache tier, solver path) but its phase timings
/// are clamped to the joiner's own wall clock — the leader started
/// earlier, so its raw timings could exceed what this caller observed.
fn reply_telemetry(
    worker: &RequestTelemetry,
    joined: bool,
    shard: usize,
    ctx: RequestCtx,
    own_wall_us: u64,
) -> RequestTelemetry {
    let mut t = worker.clone();
    t.trace_id = ctx.trace_id;
    t.shard = shard;
    if joined {
        t.solve_us = t.solve_us.min(own_wall_us);
        t.queue_wait_us = own_wall_us - t.solve_us;
    }
    t
}

/// The daemon `stats` op: serving-tier counters from the global obs
/// registry (engine counters aggregate across all shards there), stamped
/// with the schema version like the stdin front-end's `stats`.
fn stats_response(id: Option<Json>, shared: &Shared) -> Json {
    let m = vstack_obs::metrics::global();
    let mut fields = vec![];
    if let Some(id) = id {
        fields.push(("id", id));
    }
    fields.push(("ok", Json::Bool(true)));
    fields.push((
        "stats",
        Json::obj(vec![
            (
                "schema_version",
                Json::Num(f64::from(crate::SCHEMA_VERSION)),
            ),
            ("shards", Json::Num(shared.pool.len() as f64)),
            ("queued", Json::Num(shared.pool.queued() as f64)),
            ("connections", Json::Num(m.serve_connections.get() as f64)),
            ("accepted", Json::Num(m.serve_accepted.get() as f64)),
            ("shed", Json::Num(m.serve_shed.get() as f64)),
            ("dedup_joins", Json::Num(m.serve_dedup_joins.get() as f64)),
            (
                "deadline_exceeded",
                Json::Num(m.serve_deadline_exceeded.get() as f64),
            ),
            (
                "worker_panics",
                Json::Num(m.serve_worker_panics.get() as f64),
            ),
            ("drained_jobs", Json::Num(m.serve_drained_jobs.get() as f64)),
            (
                "cache_quarantined",
                Json::Num(m.serve_cache_quarantined.get() as f64),
            ),
            // Additions ride at the end so the legacy field prefix stays
            // byte-identical (pinned by tests/telemetry.rs).
            (
                "uptime_ms",
                Json::Num(shared.pool.telemetry().uptime_ms() as f64),
            ),
            (
                "telemetry_schema_version",
                Json::Num(f64::from(TELEMETRY_SCHEMA_VERSION)),
            ),
        ]),
    ));
    Json::obj(fields)
}

/// The `telemetry` op: per-shard rolling phase rollups (p50/p99/p999,
/// SLO burn rate, merged buckets).
fn telemetry_response(id: Option<Json>, shared: &Shared) -> Json {
    let mut fields = vec![];
    if let Some(id) = id {
        fields.push(("id", id));
    }
    fields.push(("ok", Json::Bool(true)));
    fields.push(("telemetry", shared.pool.telemetry().rollup_json()));
    Json::obj(fields)
}

/// The `flightdump` op: force a flight-recorder dump now. Fails with
/// `unavailable` when the daemon has no flight directory configured.
fn flightdump_response(id: Option<Json>, shared: &Shared) -> Json {
    match shared.pool.telemetry().dump("on_demand", 0) {
        Ok(Some(path)) => {
            let mut fields = vec![];
            if let Some(id) = id {
                fields.push(("id", id));
            }
            fields.push(("ok", Json::Bool(true)));
            fields.push((
                "flightdump",
                Json::obj(vec![("path", Json::Str(path.display().to_string()))]),
            ));
            Json::obj(fields)
        }
        Ok(None) => error_response(
            id,
            code::UNAVAILABLE,
            "no flight directory configured (--flight-dir)",
        ),
        Err(e) => error_response(id, code::INTERNAL, &format!("flight dump failed: {e}")),
    }
}

/// Appends one telemetry-rollup line to `path` every `interval` until
/// the daemon drains, plus a final line at shutdown so even a short run
/// leaves evidence. Each line is the `telemetry` verb's document with a
/// wall-clock `ts_ms` stamp appended.
fn telemetry_writer_loop(shared: &Arc<Shared>, path: &std::path::Path, interval: Duration) {
    let write_line = || {
        let mut doc = shared.pool.telemetry().rollup_json();
        if let Json::Obj(fields) = &mut doc {
            let ts_ms = SystemTime::UNIX_EPOCH
                .elapsed()
                .map(|d| d.as_millis() as f64)
                .unwrap_or(0.0);
            fields.push(("ts_ms".to_string(), Json::Num(ts_ms)));
        }
        let appended = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .and_then(|mut f| writeln!(f, "{}", doc.emit()));
        if let Err(e) = appended {
            vstack_obs::warn_once!(
                "serve",
                "telemetry writer cannot append to {} ({e}); lines will be dropped",
                path.display()
            );
        }
    };
    let mut next = Instant::now() + interval;
    while !shared.draining.load(Ordering::SeqCst) {
        thread::sleep(Duration::from_millis(25).min(interval));
        if Instant::now() >= next {
            write_line();
            next = Instant::now() + interval;
        }
    }
    write_line();
}
