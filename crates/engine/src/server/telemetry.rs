//! Request-scoped telemetry for the serving tier: trace-ID minting, the
//! per-request context carried from admission to solve, windowed SLO
//! rollups, and the per-shard black-box flight recorder.
//!
//! # Trace IDs
//!
//! Every request entering the daemon (or the stdin front-end) gets a
//! 64-bit `trace_id` minted by [`mint_trace_id`]: a splitmix64 hash of a
//! process-unique counter seeded from wall-clock time, so IDs are unique
//! within a process and effectively unique across processes without
//! coordination. The ID rides a [`RequestCtx`] into the shard queue; the
//! worker opens a [`vstack_obs::trace::trace_scope`] around the solve so
//! every `span!` recorded anywhere below — down to `solve_robust` in
//! `vstack-sparse` — is tagged with it for free.
//!
//! # Windowed SLO rollups
//!
//! Each shard owns three [`WindowedHistogram`]s (total wall, queue wait,
//! solve time) over a rolling minute of 1-second windows. The daemon's
//! `{"op":"telemetry"}` verb and the `--telemetry-out` writer serialize
//! their rollups (p50/p99/p999, SLO burn rate, merged buckets) per shard.
//!
//! # Flight recorder
//!
//! A per-shard ring of the last [`FLIGHT_SLOTS`] request records. Writes
//! are lock-free (a head `fetch_add` claims a slot; a per-slot seqlock
//! makes reads tear-evident) and always on — the ring costs a few
//! hundred relaxed atomic stores per request. On a worker panic, a
//! deadline miss, or a shed-rate spike the pool dumps every shard's ring
//! to `flight-<ts>-<n>.ndjson` under the configured flight directory
//! (debounced so a panic storm produces one dump per
//! [`DUMP_DEBOUNCE`], not one per panic). `{"op":"flightdump"}` forces a
//! dump on demand.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant, SystemTime};

use vstack_obs::log_warn;
use vstack_obs::metrics::{WindowRollup, WindowedHistogram};

use crate::json::Json;

/// Version stamp of the `telemetry` reply block and rollup documents.
pub const TELEMETRY_SCHEMA_VERSION: u32 = 1;
/// Schema tag on telemetry rollup documents (`telemetry` verb and
/// `--telemetry-out` lines).
pub const TELEMETRY_SCHEMA: &str = "vstack-telemetry/1";
/// Schema tag on the header line of a flight-recorder dump.
pub const FLIGHT_SCHEMA: &str = "vstack-flight/1";
/// Ring capacity per shard: the last 512 requests.
pub const FLIGHT_SLOTS: usize = 512;
/// Minimum spacing between automatic flight dumps.
pub const DUMP_DEBOUNCE: Duration = Duration::from_millis(1_000);

/// Counter behind [`mint_trace_id`]; lazily seeded from wall-clock time.
static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Finalizer from splitmix64: a full-avalanche bijection on `u64`, so
/// sequential counter values become well-spread IDs.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Mints a process-unique, non-zero 64-bit trace ID. Zero is reserved to
/// mean "no trace" in the obs tracer's per-thread slot.
pub fn mint_trace_id() -> u64 {
    let mut seed = TRACE_COUNTER.load(Ordering::Relaxed);
    if seed == 0 {
        let nanos = SystemTime::UNIX_EPOCH
            .elapsed()
            .map(|d| d.as_nanos() as u64)
            .unwrap_or(0x5eed)
            | 1;
        // Racing first-callers agree on whoever stores first.
        let _ = TRACE_COUNTER.compare_exchange(0, nanos, Ordering::Relaxed, Ordering::Relaxed);
        seed = TRACE_COUNTER.load(Ordering::Relaxed);
    }
    loop {
        let id = splitmix64(
            TRACE_COUNTER
                .fetch_add(1, Ordering::Relaxed)
                .wrapping_add(seed),
        );
        if id != 0 {
            return id;
        }
    }
}

/// Formats a trace ID the way every NDJSON surface emits it.
pub fn format_trace_id(trace_id: u64) -> String {
    format!("{trace_id:016x}")
}

/// Per-request context minted at admission and carried through the queue
/// to the shard worker.
#[derive(Debug, Clone, Copy)]
pub struct RequestCtx {
    /// The request's 64-bit trace ID.
    pub trace_id: u64,
    /// When admission control accepted the request; queue wait is
    /// measured from here.
    pub admitted: Instant,
}

impl RequestCtx {
    /// Mints a fresh context stamped "now".
    pub fn mint() -> RequestCtx {
        RequestCtx {
            trace_id: mint_trace_id(),
            admitted: Instant::now(),
        }
    }
}

/// Phase breakdown and provenance of one served request; attached to the
/// NDJSON reply as the additive `telemetry` block.
#[derive(Debug, Clone)]
pub struct RequestTelemetry {
    /// The reply's trace ID (the caller's own, even on a dedup join).
    pub trace_id: u64,
    /// Home shard that served (or would have served) the request.
    pub shard: usize,
    /// Admission → worker pickup, microseconds.
    pub queue_wait_us: u64,
    /// Worker solve wall time, microseconds (0 for shed/drained).
    pub solve_us: u64,
    /// Where the answer came from: `mem`, `disk`, `solve`, or `none`
    /// for requests that never produced one.
    pub cache_tier: &'static str,
    /// Solver ladder path from the summary (for example `stencil+mixed`),
    /// empty when no solve happened.
    pub solver_path: String,
}

impl RequestTelemetry {
    /// Telemetry for a request that never reached a worker (shed, closed,
    /// invalid): zero phase timings, no tier, no solver.
    pub fn unserved(trace_id: u64, shard: usize) -> RequestTelemetry {
        RequestTelemetry {
            trace_id,
            shard,
            queue_wait_us: 0,
            solve_us: 0,
            cache_tier: "none",
            solver_path: String::new(),
        }
    }

    /// Maps an engine outcome onto the wire `cache_tier` vocabulary.
    pub fn tier_for(outcome: crate::engine::Outcome) -> &'static str {
        use crate::engine::Outcome;
        match outcome {
            Outcome::HitMemory | Outcome::Deduped => "mem",
            Outcome::HitDisk => "disk",
            Outcome::Warm | Outcome::Cold => "solve",
        }
    }
}

/// Why a flight record exists / how its request ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightOutcome {
    /// Served successfully.
    Ok,
    /// The engine returned a structured error.
    EngineError,
    /// The solve panicked (contained by the worker).
    Panicked,
    /// The deadline passed before a result was produced.
    DeadlineMiss,
    /// Shed during drain.
    Drained,
}

impl FlightOutcome {
    fn code(self) -> u64 {
        match self {
            FlightOutcome::Ok => 0,
            FlightOutcome::EngineError => 1,
            FlightOutcome::Panicked => 2,
            FlightOutcome::DeadlineMiss => 3,
            FlightOutcome::Drained => 4,
        }
    }

    fn label_of(code: u64) -> &'static str {
        match code {
            0 => "ok",
            1 => "engine_error",
            2 => "panic",
            3 => "deadline_miss",
            4 => "drained",
            _ => "unknown",
        }
    }
}

/// One record as read back out of the ring.
#[derive(Debug, Clone)]
pub struct FlightRecord {
    /// Monotone per-ring sequence number (claim order).
    pub idx: u64,
    /// Microseconds since the pool started.
    pub ts_us: u64,
    /// The request's trace ID.
    pub trace_id: u64,
    /// The scenario fingerprint.
    pub fingerprint: u64,
    /// Queue-wait phase, microseconds.
    pub queue_wait_us: u64,
    /// Solve phase, microseconds.
    pub solve_us: u64,
    /// Outcome code (see [`FlightOutcome`]).
    pub outcome: u64,
    /// Cache-tier label.
    pub cache_tier: &'static str,
}

/// A ring slot: a seqlock (odd = write in progress) over plain atomic
/// fields. Tier is encoded as a small integer.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    idx: AtomicU64,
    ts_us: AtomicU64,
    trace_id: AtomicU64,
    fingerprint: AtomicU64,
    queue_wait_us: AtomicU64,
    solve_us: AtomicU64,
    outcome: AtomicU64,
    tier: AtomicU64,
}

fn tier_code(tier: &str) -> u64 {
    match tier {
        "mem" => 0,
        "disk" => 1,
        "solve" => 2,
        _ => 3,
    }
}

fn tier_label(code: u64) -> &'static str {
    match code {
        0 => "mem",
        1 => "disk",
        2 => "solve",
        _ => "none",
    }
}

/// The always-on per-shard black box: a lock-free ring of the last
/// [`FLIGHT_SLOTS`] request records.
///
/// Writers claim a slot with a `fetch_add` on the head and publish
/// through the slot's seqlock; readers ([`FlightRecorder::snapshot`])
/// retry slots whose sequence is odd or moves underfoot. With more than
/// one writer racing onto the *same* slot (requires `FLIGHT_SLOTS`
/// intervening claims mid-write — vanishingly rare) a record could be
/// assembled from both writes; the seqlock makes that tear *evident* in
/// the common case and the data is diagnostic-only, so this is accepted
/// rather than paying for a lock on the request path.
pub struct FlightRecorder {
    head: AtomicU64,
    slots: Vec<Slot>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// An empty ring of [`FLIGHT_SLOTS`] slots.
    pub fn new() -> FlightRecorder {
        FlightRecorder {
            head: AtomicU64::new(0),
            slots: (0..FLIGHT_SLOTS).map(|_| Slot::default()).collect(),
        }
    }

    /// Records one request. Lock-free; called on the request path.
    pub fn record(
        &self,
        ts_us: u64,
        telemetry: &RequestTelemetry,
        fingerprint: u64,
        outcome: FlightOutcome,
    ) {
        let idx = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(idx % FLIGHT_SLOTS as u64) as usize];
        slot.seq.fetch_add(1, Ordering::AcqRel); // odd: write in progress
        slot.idx.store(idx + 1, Ordering::Relaxed); // +1 so 0 = never written
        slot.ts_us.store(ts_us, Ordering::Relaxed);
        slot.trace_id.store(telemetry.trace_id, Ordering::Relaxed);
        slot.fingerprint.store(fingerprint, Ordering::Relaxed);
        slot.queue_wait_us
            .store(telemetry.queue_wait_us, Ordering::Relaxed);
        slot.solve_us.store(telemetry.solve_us, Ordering::Relaxed);
        slot.outcome.store(outcome.code(), Ordering::Relaxed);
        slot.tier
            .store(tier_code(telemetry.cache_tier), Ordering::Relaxed);
        slot.seq.fetch_add(1, Ordering::AcqRel); // even: stable
    }

    /// Reads every stable record, oldest first. Slots being written
    /// concurrently are skipped after a bounded retry.
    pub fn snapshot(&self) -> Vec<FlightRecord> {
        let mut records: Vec<FlightRecord> = Vec::with_capacity(FLIGHT_SLOTS);
        for slot in &self.slots {
            for _ in 0..4 {
                let seq0 = slot.seq.load(Ordering::Acquire);
                if seq0 % 2 == 1 {
                    std::hint::spin_loop();
                    continue;
                }
                let idx = slot.idx.load(Ordering::Relaxed);
                if idx == 0 {
                    break; // never written
                }
                let rec = FlightRecord {
                    idx: idx - 1,
                    ts_us: slot.ts_us.load(Ordering::Relaxed),
                    trace_id: slot.trace_id.load(Ordering::Relaxed),
                    fingerprint: slot.fingerprint.load(Ordering::Relaxed),
                    queue_wait_us: slot.queue_wait_us.load(Ordering::Relaxed),
                    solve_us: slot.solve_us.load(Ordering::Relaxed),
                    outcome: slot.outcome.load(Ordering::Relaxed),
                    cache_tier: tier_label(slot.tier.load(Ordering::Relaxed)),
                };
                if slot.seq.load(Ordering::Acquire) == seq0 {
                    records.push(rec);
                    break;
                }
            }
        }
        records.sort_by_key(|r| r.idx);
        records
    }
}

/// Fixed-point scale of the shed-rate EWMA (1024 = shedding everything).
const SHED_EWMA_ONE: u64 = 1024;
/// EWMA gain denominator: 1/16 per admission decision.
const SHED_EWMA_GAIN: u64 = 16;
/// Spike threshold: a rolling shed rate above 50%.
const SHED_SPIKE_THRESHOLD: u64 = SHED_EWMA_ONE / 2;
/// Minimum admission decisions before the spike detector may fire.
const SHED_SPIKE_MIN_DECISIONS: u64 = 32;

/// One shard's telemetry: three phase windows, the flight ring, and the
/// shed-rate spike detector.
pub struct ShardTelemetry {
    /// Rolling admission→reply wall time.
    pub total: WindowedHistogram,
    /// Rolling queue-wait phase.
    pub queue: WindowedHistogram,
    /// Rolling solve phase.
    pub solve: WindowedHistogram,
    /// The shard's black box.
    pub flight: FlightRecorder,
    shed_ewma: AtomicU64,
    decisions: AtomicU64,
}

impl ShardTelemetry {
    fn new(slo_us: u64, slo_target: f64) -> ShardTelemetry {
        ShardTelemetry {
            total: WindowedHistogram::per_second_minute(slo_us, slo_target),
            queue: WindowedHistogram::per_second_minute(slo_us, slo_target),
            solve: WindowedHistogram::per_second_minute(slo_us, slo_target),
            flight: FlightRecorder::new(),
            shed_ewma: AtomicU64::new(0),
            decisions: AtomicU64::new(0),
        }
    }

    /// Folds one admission decision into the shed-rate EWMA; true when
    /// the rolling shed rate just crossed the spike threshold.
    pub fn note_admission(&self, shed: bool) -> bool {
        let n = self.decisions.fetch_add(1, Ordering::Relaxed) + 1;
        let old = self.shed_ewma.load(Ordering::Relaxed);
        let contribution = if shed {
            SHED_EWMA_ONE / SHED_EWMA_GAIN
        } else {
            0
        };
        let new = old - old / SHED_EWMA_GAIN + contribution;
        self.shed_ewma.store(new, Ordering::Relaxed);
        n >= SHED_SPIKE_MIN_DECISIONS && old <= SHED_SPIKE_THRESHOLD && new > SHED_SPIKE_THRESHOLD
    }
}

/// Pool-wide telemetry: per-shard state plus the dump machinery.
pub struct PoolTelemetry {
    started: Instant,
    shards: Vec<ShardTelemetry>,
    flight_dir: Option<PathBuf>,
    slo_us: u64,
    slo_target: f64,
    /// Millis-since-start of the last automatic dump (debounce state).
    last_dump_ms: AtomicU64,
    /// Suffix counter making dump filenames unique within a process.
    dump_seq: AtomicU64,
}

impl PoolTelemetry {
    /// Telemetry for `shards` shards judged against `slo_us` /
    /// `slo_target`; dumps land in `flight_dir` (never dumped if `None`).
    pub fn new(
        shards: usize,
        slo_us: u64,
        slo_target: f64,
        flight_dir: Option<PathBuf>,
    ) -> PoolTelemetry {
        PoolTelemetry {
            started: Instant::now(),
            shards: (0..shards.max(1))
                .map(|_| ShardTelemetry::new(slo_us, slo_target))
                .collect(),
            flight_dir,
            slo_us,
            slo_target,
            last_dump_ms: AtomicU64::new(u64::MAX), // "never dumped"
            dump_seq: AtomicU64::new(0),
        }
    }

    /// Microseconds since the pool started (the flight-record clock).
    pub fn now_us(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_micros()).unwrap_or(u64::MAX)
    }

    /// Milliseconds since the pool started.
    pub fn uptime_ms(&self) -> u64 {
        u64::try_from(self.started.elapsed().as_millis()).unwrap_or(u64::MAX)
    }

    /// One shard's telemetry (panics on an out-of-range index, which
    /// would be a routing bug).
    pub fn shard(&self, shard: usize) -> &ShardTelemetry {
        &self.shards[shard]
    }

    /// Records one finished (or failed) request: windows + flight ring.
    pub fn record_request(
        &self,
        telemetry: &RequestTelemetry,
        fingerprint: u64,
        outcome: FlightOutcome,
    ) {
        let shard = &self.shards[telemetry.shard.min(self.shards.len() - 1)];
        shard
            .total
            .observe(telemetry.queue_wait_us + telemetry.solve_us);
        shard.queue.observe(telemetry.queue_wait_us);
        shard.solve.observe(telemetry.solve_us);
        shard
            .flight
            .record(self.now_us(), telemetry, fingerprint, outcome);
    }

    /// Debounced automatic dump (panic / deadline / shed spike). Returns
    /// the dump path when one was written.
    pub fn maybe_dump(&self, reason: &str, trace_id: u64) -> Option<PathBuf> {
        let now_ms = self.uptime_ms();
        let last = self.last_dump_ms.load(Ordering::Relaxed);
        if last != u64::MAX && now_ms.saturating_sub(last) < DUMP_DEBOUNCE.as_millis() as u64 {
            return None;
        }
        if self
            .last_dump_ms
            .compare_exchange(last, now_ms, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return None; // another thread just dumped
        }
        match self.dump(reason, trace_id) {
            Ok(path) => path,
            Err(e) => {
                log_warn!("serve", "flight dump failed: {e}");
                None
            }
        }
    }

    /// Unconditional dump (the `flightdump` verb). `Ok(None)` when no
    /// flight directory is configured.
    pub fn dump(&self, reason: &str, trace_id: u64) -> io::Result<Option<PathBuf>> {
        let Some(dir) = &self.flight_dir else {
            return Ok(None);
        };
        fs::create_dir_all(dir)?;
        let ts_ms = SystemTime::UNIX_EPOCH
            .elapsed()
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let seq = self.dump_seq.fetch_add(1, Ordering::Relaxed);
        let path = dir.join(format!("flight-{ts_ms}-{seq}.ndjson"));
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{{\"schema\":\"{FLIGHT_SCHEMA}\",\"reason\":\"{reason}\",\"trace_id\":\"{}\",\
             \"ts_ms\":{ts_ms},\"uptime_ms\":{},\"shards\":{}}}",
            format_trace_id(trace_id),
            self.uptime_ms(),
            self.shards.len(),
        );
        for (i, shard) in self.shards.iter().enumerate() {
            for r in shard.flight.snapshot() {
                let _ = writeln!(
                    out,
                    "{{\"shard\":{i},\"idx\":{},\"ts_us\":{},\"trace_id\":\"{}\",\
                     \"fingerprint\":\"{:016x}\",\"queue_wait_us\":{},\"solve_us\":{},\
                     \"cache_tier\":\"{}\",\"outcome\":\"{}\"}}",
                    r.idx,
                    r.ts_us,
                    format_trace_id(r.trace_id),
                    r.fingerprint,
                    r.queue_wait_us,
                    r.solve_us,
                    r.cache_tier,
                    FlightOutcome::label_of(r.outcome),
                );
            }
        }
        write_atomically(&path, &out)?;
        log_warn!(
            "serve",
            "flight recorder dumped to {} (reason: {reason})",
            path.display()
        );
        Ok(Some(path))
    }

    /// The rollup document served by the `telemetry` verb and written
    /// (one line per interval) by `--telemetry-out`. Includes merged
    /// bucket counts so downstream tools can re-aggregate across
    /// processes and time.
    pub fn rollup_json(&self) -> Json {
        let shards: Vec<Json> = self
            .shards
            .iter()
            .enumerate()
            .map(|(i, s)| {
                Json::obj(vec![
                    ("shard", Json::Num(i as f64)),
                    ("total", rollup_to_json(&s.total.rollup(), s.total.edges())),
                    ("queue", rollup_to_json(&s.queue.rollup(), s.queue.edges())),
                    ("solve", rollup_to_json(&s.solve.rollup(), s.solve.edges())),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::Str(TELEMETRY_SCHEMA.to_string())),
            (
                "schema_version",
                Json::Num(f64::from(TELEMETRY_SCHEMA_VERSION)),
            ),
            ("uptime_ms", Json::Num(self.uptime_ms() as f64)),
            (
                "slo",
                Json::obj(vec![
                    ("threshold_us", Json::Num(self.slo_us as f64)),
                    ("target", Json::Num(self.slo_target)),
                ]),
            ),
            ("shards", Json::Arr(shards)),
        ])
    }
}

/// Serializes one window rollup for the wire.
fn rollup_to_json(r: &WindowRollup, edges: &[u64]) -> Json {
    Json::obj(vec![
        ("count", Json::Num(r.count as f64)),
        ("sum_us", Json::Num(r.sum as f64)),
        ("over_slo", Json::Num(r.over_slo as f64)),
        ("p50_us", Json::Num(r.p50 as f64)),
        ("p99_us", Json::Num(r.p99 as f64)),
        ("p999_us", Json::Num(r.p999 as f64)),
        ("burn_rate", Json::Num(r.burn_rate)),
        (
            "edges",
            Json::Arr(edges.iter().map(|&e| Json::Num(e as f64)).collect()),
        ),
        (
            "buckets",
            Json::Arr(r.buckets.iter().map(|&b| Json::Num(b as f64)).collect()),
        ),
    ])
}

/// Write-then-rename so a reader never sees a half-written dump.
fn write_atomically(path: &Path, contents: &str) -> io::Result<()> {
    let tmp = path.with_extension("ndjson.tmp");
    fs::write(&tmp, contents)?;
    fs::rename(&tmp, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minted_trace_ids_are_unique_and_nonzero() {
        let mut seen = std::collections::HashSet::new();
        for _ in 0..10_000 {
            let id = mint_trace_id();
            assert_ne!(id, 0);
            assert!(seen.insert(id), "duplicate trace id {id:#x}");
        }
    }

    #[test]
    fn flight_ring_keeps_the_last_records_in_order() {
        let ring = FlightRecorder::new();
        for i in 0..(FLIGHT_SLOTS as u64 + 100) {
            let t = RequestTelemetry {
                trace_id: i + 1,
                shard: 0,
                queue_wait_us: i,
                solve_us: 2 * i,
                cache_tier: "solve",
                solver_path: String::new(),
            };
            ring.record(i, &t, 0xfeed, FlightOutcome::Ok);
        }
        let records = ring.snapshot();
        assert_eq!(records.len(), FLIGHT_SLOTS);
        // Oldest surviving record is number 100 (0-based).
        assert_eq!(records[0].idx, 100);
        assert_eq!(records[0].trace_id, 101);
        let last = records.last().unwrap();
        assert_eq!(last.idx, FLIGHT_SLOTS as u64 + 99);
        assert!(records.windows(2).all(|w| w[0].idx < w[1].idx));
    }

    #[test]
    fn dump_writes_header_and_records() {
        let dir = std::env::temp_dir().join(format!("vstack-flight-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let pt = PoolTelemetry::new(2, 1_000, 0.999, Some(dir.clone()));
        let t = RequestTelemetry {
            trace_id: 0xdead_beef,
            shard: 1,
            queue_wait_us: 10,
            solve_us: 20,
            cache_tier: "mem",
            solver_path: "csr+f64".to_string(),
        };
        pt.record_request(&t, 0xabc, FlightOutcome::Ok);
        let path = pt.dump("test", 0xdead_beef).unwrap().unwrap();
        let text = fs::read_to_string(&path).unwrap();
        let mut lines = text.lines();
        let header = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            header.get("schema").and_then(Json::as_str),
            Some(FLIGHT_SCHEMA)
        );
        assert_eq!(header.get("reason").and_then(Json::as_str), Some("test"));
        let record = Json::parse(lines.next().unwrap()).unwrap();
        assert_eq!(
            record.get("trace_id").and_then(Json::as_str),
            Some("00000000deadbeef")
        );
        assert_eq!(record.get("cache_tier").and_then(Json::as_str), Some("mem"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn shed_spike_fires_once_on_crossing() {
        let st = ShardTelemetry::new(1_000, 0.999);
        let mut fired = 0;
        for _ in 0..SHED_SPIKE_MIN_DECISIONS {
            if st.note_admission(false) {
                fired += 1;
            }
        }
        assert_eq!(fired, 0, "no sheds, no spike");
        for _ in 0..64 {
            if st.note_admission(true) {
                fired += 1;
            }
        }
        assert_eq!(fired, 1, "crossing the threshold fires exactly once");
    }

    #[test]
    fn rollup_json_has_schema_and_per_shard_phases() {
        let pt = PoolTelemetry::new(1, 1_000, 0.999, None);
        let t = RequestTelemetry {
            trace_id: 7,
            shard: 0,
            queue_wait_us: 100,
            solve_us: 900,
            cache_tier: "solve",
            solver_path: "csr+f64".to_string(),
        };
        pt.record_request(&t, 1, FlightOutcome::Ok);
        let doc = pt.rollup_json();
        assert_eq!(
            doc.get("schema").and_then(Json::as_str),
            Some(TELEMETRY_SCHEMA)
        );
        let shards = doc.get("shards").and_then(Json::as_arr).unwrap();
        assert_eq!(shards.len(), 1);
        let total = shards[0].get("total").unwrap();
        assert_eq!(total.get("count").and_then(Json::as_f64), Some(1.0));
        // queue 100 + solve 900 = total 1000.
        assert_eq!(total.get("sum_us").and_then(Json::as_f64), Some(1000.0));
        assert!(shards[0].get("queue").is_some() && shards[0].get("solve").is_some());
    }
}
