//! The cacheable result of one scenario solve.
//!
//! A [`SolveSummary`] is everything a query response carries: the IR-drop
//! and efficiency metrics of the solution, the EM lifetimes of its
//! conductor arrays, and the solver provenance (iterations, escalation
//! trail). It is deliberately small and JSON-serializable — the full
//! node-voltage vector is *not* part of it; voltages live only in the
//! in-memory cache tier, where they seed warm starts.

use crate::json::Json;
use vstack::coupled::CoupledSolution;
use vstack::em_study::paper_em_lifetimes;
use vstack::pdn::FaultedSolution;

/// Scalar results of one solved scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveSummary {
    /// Worst fractional IR drop across the stack.
    pub max_ir_drop_frac: f64,
    /// Mean fractional IR drop.
    pub mean_ir_drop_frac: f64,
    /// Layer index with the worst drop.
    pub worst_layer: usize,
    /// Power-delivery efficiency (load power / input power).
    pub efficiency: f64,
    /// Expected EM-damage-free lifetime of the C4 array, hours.
    pub em_c4_hours: f64,
    /// Expected EM-damage-free lifetime of the TSV array, hours.
    pub em_tsv_hours: f64,
    /// Converters pushed past their rated current, if any.
    pub overloaded_converters: usize,
    /// Iterations the accepted solver method performed (0 when a warm
    /// start was already converged).
    pub solver_iterations: usize,
    /// Microseconds spent building the accepted method's preconditioner
    /// (0 on cache reuse or for setup-free methods).
    pub solver_setup_us: u64,
    /// The escalation-ladder trail, e.g. `"cg+amg"` or
    /// `"cg+ic0 → cg+jacobi"`.
    pub solver_trail: String,
    /// Operator and precision of the accepted rung, `"<operator>+<precision>"`
    /// — e.g. `"stencil+mixed"` for the matrix-free mixed-precision hot
    /// path, `"csr+f64"` for the classic path. Optional-additive on the
    /// wire: summaries cached before this field existed parse as
    /// `"csr+f64"`, keeping the schema version unchanged.
    pub solver_path: String,
    /// Thermal–EM–IR fixed-point iterations behind this result; 0 for a
    /// plain uncoupled solve. Optional-additive on the wire (absent ⇒ 0),
    /// and the coupling block is emitted only when nonzero, so uncoupled
    /// summaries keep their pre-thermal byte layout.
    pub coupling_iterations: usize,
    /// Whether the coupling loop reached its fixed point. `true` for
    /// uncoupled solves (nothing to converge); `false` means the summary
    /// carries the graceful uncoupled fallback.
    pub coupling_converged: bool,
    /// Hotspot cell temperature at the coupled fixed point, °C.
    /// Meaningful only when `coupling_iterations > 0`; 0.0 otherwise.
    pub peak_temperature_c: f64,
}

impl SolveSummary {
    /// Extracts the summary from a completed solve.
    pub fn from_faulted(solved: &FaultedSolution) -> Self {
        let em = paper_em_lifetimes(&solved.solution);
        SolveSummary {
            max_ir_drop_frac: solved.solution.max_ir_drop_frac,
            mean_ir_drop_frac: solved.solution.mean_ir_drop_frac,
            worst_layer: solved.solution.worst_layer,
            efficiency: solved.solution.efficiency(),
            em_c4_hours: em.c4_hours,
            em_tsv_hours: em.tsv_hours,
            overloaded_converters: solved.solution.overloaded_converters,
            solver_iterations: solved.report.iterations,
            solver_setup_us: solved.report.setup_us,
            solver_trail: solved.report.trail(),
            solver_path: format!("{}+{}", solved.report.operator, solved.report.precision),
            coupling_iterations: 0,
            coupling_converged: true,
            peak_temperature_c: 0.0,
        }
    }

    /// Extracts the summary from a thermally coupled solve: the electrical
    /// metrics come from the fixed-point solution, while the EM lifetimes
    /// are the temperature-scaled coupled values (not the fixed-80 °C
    /// baseline [`SolveSummary::from_faulted`] reports).
    pub fn from_coupled(out: &CoupledSolution) -> Self {
        let mut s = Self::from_faulted(&out.solved);
        s.em_c4_hours = out.report.em.c4_hours;
        s.em_tsv_hours = out.report.em.tsv_hours;
        s.coupling_iterations = out.report.iterations;
        s.coupling_converged = out.report.converged;
        s.peak_temperature_c = out.report.peak_temperature_c;
        s
    }

    /// Serializes for the wire and the disk cache.
    pub fn to_json(&self) -> Json {
        let mut fields = vec![
            ("max_ir_drop_frac", Json::Num(self.max_ir_drop_frac)),
            ("mean_ir_drop_frac", Json::Num(self.mean_ir_drop_frac)),
            ("worst_layer", Json::Num(self.worst_layer as f64)),
            ("efficiency", Json::Num(self.efficiency)),
            ("em_c4_hours", Json::Num(self.em_c4_hours)),
            ("em_tsv_hours", Json::Num(self.em_tsv_hours)),
            (
                "overloaded_converters",
                Json::Num(self.overloaded_converters as f64),
            ),
            (
                "solver_iterations",
                Json::Num(self.solver_iterations as f64),
            ),
            ("solver_setup_us", Json::Num(self.solver_setup_us as f64)),
            ("solver_trail", Json::Str(self.solver_trail.clone())),
            ("solver_path", Json::Str(self.solver_path.clone())),
        ];
        if self.coupling_iterations > 0 {
            fields.push((
                "coupling_iterations",
                Json::Num(self.coupling_iterations as f64),
            ));
            fields.push(("coupling_converged", Json::Bool(self.coupling_converged)));
            fields.push(("peak_temperature_c", Json::Num(self.peak_temperature_c)));
        }
        Json::obj(fields)
    }

    /// Parses a summary back from its JSON form.
    ///
    /// # Errors
    ///
    /// Names the first missing or mistyped field.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let num = |key: &str| -> Result<f64, String> {
            value
                .get(key)
                .and_then(Json::as_f64)
                .ok_or_else(|| format!("summary field \"{key}\" missing or not a number"))
        };
        let int = |key: &str| -> Result<usize, String> {
            value
                .get(key)
                .and_then(Json::as_usize)
                .ok_or_else(|| format!("summary field \"{key}\" missing or not an integer"))
        };
        Ok(SolveSummary {
            max_ir_drop_frac: num("max_ir_drop_frac")?,
            mean_ir_drop_frac: num("mean_ir_drop_frac")?,
            worst_layer: int("worst_layer")?,
            efficiency: num("efficiency")?,
            em_c4_hours: num("em_c4_hours")?,
            em_tsv_hours: num("em_tsv_hours")?,
            overloaded_converters: int("overloaded_converters")?,
            solver_iterations: int("solver_iterations")?,
            solver_setup_us: int("solver_setup_us")? as u64,
            solver_trail: value
                .get("solver_trail")
                .and_then(Json::as_str)
                .ok_or("summary field \"solver_trail\" missing or not a string")?
                .to_string(),
            // Additive field: absent in summaries cached by older builds,
            // which all ran the classic CSR/f64 path.
            solver_path: value
                .get("solver_path")
                .and_then(Json::as_str)
                .unwrap_or("csr+f64")
                .to_string(),
            // Additive coupling block: absent for every uncoupled solve
            // (and every pre-thermal cached summary) ⇒ the uncoupled
            // identity values.
            coupling_iterations: value
                .get("coupling_iterations")
                .and_then(Json::as_usize)
                .unwrap_or(0),
            coupling_converged: value
                .get("coupling_converged")
                .and_then(Json::as_bool)
                .unwrap_or(true),
            peak_temperature_c: value
                .get("peak_temperature_c")
                .and_then(Json::as_f64)
                .unwrap_or(0.0),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SolveSummary {
        SolveSummary {
            max_ir_drop_frac: 0.0412,
            mean_ir_drop_frac: 0.021,
            worst_layer: 7,
            efficiency: 0.873,
            em_c4_hours: 1.6e5,
            em_tsv_hours: 3.4e6,
            overloaded_converters: 0,
            solver_iterations: 113,
            solver_setup_us: 842,
            solver_trail: "cg+ic0".to_string(),
            solver_path: "csr+f64".to_string(),
            coupling_iterations: 0,
            coupling_converged: true,
            peak_temperature_c: 0.0,
        }
    }

    #[test]
    fn coupling_block_defaults_for_uncoupled_and_old_summaries() {
        // An uncoupled summary must not emit the coupling keys at all.
        let doc = s_obj();
        assert!(doc.iter().all(|(k, _)| !k.starts_with("coupling")));
        // ... and parsing a document without them yields the identities.
        let s = SolveSummary::from_json(&Json::Obj(doc)).unwrap();
        assert_eq!(s.coupling_iterations, 0);
        assert!(s.coupling_converged);
    }

    #[test]
    fn coupled_summary_round_trips() {
        let s = SolveSummary {
            coupling_iterations: 9,
            coupling_converged: true,
            peak_temperature_c: 91.25,
            ..sample()
        };
        let back = SolveSummary::from_json(&Json::parse(&s.to_json().emit()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn solver_path_defaults_for_old_cached_summaries() {
        let mut doc = s_obj();
        doc.retain(|(k, _)| k != "solver_path");
        let s = SolveSummary::from_json(&Json::Obj(doc)).unwrap();
        assert_eq!(s.solver_path, "csr+f64");
    }

    #[test]
    fn json_round_trip_is_exact() {
        let s = sample();
        let back = SolveSummary::from_json(&Json::parse(&s.to_json().emit()).unwrap()).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn missing_field_is_named() {
        let mut doc = s_obj();
        doc.retain(|(k, _)| k != "efficiency");
        let e = SolveSummary::from_json(&Json::Obj(doc)).unwrap_err();
        assert!(e.contains("efficiency"), "{e}");
    }

    fn s_obj() -> Vec<(String, Json)> {
        match sample().to_json() {
            Json::Obj(pairs) => pairs,
            _ => unreachable!(),
        }
    }
}
