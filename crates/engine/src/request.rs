//! The canonical scenario-request description and its fingerprint.
//!
//! A [`ScenarioRequest`] names one point on the experiment surface the
//! repo's binaries already expose: solve the regular or voltage-stacked
//! PDN at a given layer count, TSV topology, C4 allocation, converter
//! configuration, workload imbalance and fidelity. Requests arriving as
//! JSON are normalized into this struct, **canonicalized** (fields that
//! cannot affect the named solve are forced to their defaults) and then
//! hashed into a 64-bit FNV-1a fingerprint over a fixed, tagged byte
//! encoding. Two requests get the same fingerprint iff they denote the
//! same physical solve, regardless of JSON field order or float
//! formatting (`0.25` vs `2.5e-1` parse to the same `f64` and hash the
//! same bits; `-0.0` is normalized to `+0.0` before hashing).

use crate::json::Json;
use vstack::experiments::Fidelity;
use vstack::pdn::{FaultSet, TsvTopology};
use vstack::sc::compact::ScConverter;
use vstack::scenario::DesignScenario;

/// Which PDN the request solves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveKind {
    /// Regular (per-layer parallel) power delivery at full activity.
    Regular,
    /// Voltage-stacked (charge-recycled) delivery under the interleaved
    /// imbalance pattern.
    VoltageStacked,
}

impl SolveKind {
    /// Wire name used in the JSON protocol.
    pub fn name(self) -> &'static str {
        match self {
            SolveKind::Regular => "regular",
            SolveKind::VoltageStacked => "vs",
        }
    }

    fn from_name(name: &str) -> Option<Self> {
        match name {
            "regular" => Some(SolveKind::Regular),
            "vs" => Some(SolveKind::VoltageStacked),
            _ => None,
        }
    }
}

fn tsv_name(t: TsvTopology) -> &'static str {
    match t {
        TsvTopology::Dense => "dense",
        TsvTopology::Sparse => "sparse",
        TsvTopology::Few => "few",
    }
}

fn tsv_from_name(name: &str) -> Option<TsvTopology> {
    match name {
        "dense" => Some(TsvTopology::Dense),
        "sparse" => Some(TsvTopology::Sparse),
        "few" => Some(TsvTopology::Few),
        _ => None,
    }
}

fn fidelity_name(f: Fidelity) -> &'static str {
    match f {
        Fidelity::Paper => "paper",
        Fidelity::Quick => "quick",
    }
}

fn fidelity_from_name(name: &str) -> Option<Fidelity> {
    match name {
        "paper" => Some(Fidelity::Paper),
        "quick" => Some(Fidelity::Quick),
        _ => None,
    }
}

/// One canonical, versioned scenario query.
///
/// Construct with [`ScenarioRequest::regular`] /
/// [`ScenarioRequest::voltage_stacked`] and the chained setters, or parse
/// from the wire with [`ScenarioRequest::from_json`]. The engine always
/// works on the [`ScenarioRequest::canonical`] form.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioRequest {
    /// Which PDN to solve.
    pub kind: SolveKind,
    /// Stacked layer count.
    pub layers: usize,
    /// TSV topology.
    pub tsv: TsvTopology,
    /// Fraction of C4 pads allocated to power delivery.
    pub power_c4: f64,
    /// SC converters per core (V-S only).
    pub converters: usize,
    /// Workload imbalance of the interleaved pattern (V-S only).
    pub imbalance: f64,
    /// Closed-loop (frequency-modulated) converters instead of the
    /// paper's open-loop design (V-S only).
    pub closed_loop: bool,
    /// Grid fidelity: `Paper` (refinement 3) or `Quick` (coarse grid).
    pub fidelity: Fidelity,
    /// Run the thermal–EM–IR coupled fixed point instead of the
    /// uncoupled solve. Off by default; when off, the remaining thermal
    /// knobs are canonicalized away and the fingerprint is byte-identical
    /// to the pre-thermal schema.
    pub thermal_coupling: bool,
    /// Ambient (case inlet) temperature, °C (coupling only).
    pub ambient_c: f64,
    /// TIM + spreader + heatsink resistance, K/W (coupling only).
    pub sink_k_per_w: f64,
    /// Optional hotspot injection layer (coupling only).
    pub hotspot_layer: Option<usize>,
    /// Hotspot power in watts, spread over the layer (coupling only).
    pub hotspot_w: f64,
    /// Supply pads to open-circuit, by ordinal among Vdd power pads.
    /// Canonicalized sorted and deduplicated; an ordinal beyond the
    /// scenario's pad array is a stamping no-op, never an error.
    pub failed_vdd_pads: Vec<usize>,
    /// Return pads to open-circuit, by ordinal among Gnd power pads.
    pub failed_gnd_pads: Vec<usize>,
    /// TSV faults as `(interface, core, count)` triples — `count` TSVs of
    /// the bundle joining layers `interface` and `interface + 1` under
    /// `core` are opened. Canonicalized sorted by `(interface, core)`
    /// with duplicate keys merged (counts accumulate, matching
    /// [`FaultSet::fail_tsvs`]) and zero-count entries dropped.
    pub failed_tsvs: Vec<(usize, usize, usize)>,
}

/// Baseline values for fields a request leaves unspecified — the paper's
/// evaluation platform (also what canonicalization pins the V-S-only
/// fields of a regular request to).
const DEFAULT_CONVERTERS: usize = 4;
const DEFAULT_POWER_C4: f64 = 0.25;
const DEFAULT_AMBIENT_C: f64 = 45.0;
const DEFAULT_SINK_K_PER_W: f64 = 0.30;

/// Most fault elements (pads + TSV bundles) one request may name. Matches
/// the regime the rank-k SMW sketch is built for; what-if sweeps needing
/// more go through the study binaries, not the serving path.
const MAX_FAULT_ELEMENTS: usize = 16;
/// Generous ceiling on pad ordinals and TSV cores — far above any real
/// array, it only rejects garbage (ordinals beyond the actual array are
/// otherwise legal stamping no-ops).
const MAX_FAULT_ORDINAL: usize = 65_536;
/// Ceiling on a single bundle's failed-TSV count (solve paths clamp at
/// zero survivors anyway).
const MAX_TSVS_PER_FAULT: usize = 4096;

/// The FNV-1a fingerprint domain. Deliberately **decoupled from
/// [`crate::SCHEMA_VERSION`]** and pinned at the value that was current
/// when the fingerprint encoding stabilized: the schema version moves
/// with envelope/summary layout changes, but moving the fingerprint
/// domain would silently re-key every cached scenario. The thermal axis
/// (tags 9–13, hashed only when coupling is enabled) and the fault axis
/// (tags 14–16, hashed only when a fault is present) extend the encoding
/// with *conditional* tagged fields, so every legacy request keeps its
/// byte-identical fingerprint (pinned by regression test below).
pub const FINGERPRINT_DOMAIN: u32 = 4;

/// Largest accepted layer count; above this the dense stamping cost stops
/// being a "query" and the batch path would starve its peers.
const MAX_LAYERS: usize = 64;
const MAX_CONVERTERS: usize = 64;

impl ScenarioRequest {
    /// A regular-PDN solve at full activity with paper-baseline knobs.
    pub fn regular(layers: usize) -> Self {
        ScenarioRequest {
            kind: SolveKind::Regular,
            layers,
            tsv: TsvTopology::Few,
            power_c4: DEFAULT_POWER_C4,
            converters: DEFAULT_CONVERTERS,
            imbalance: 0.0,
            closed_loop: false,
            fidelity: Fidelity::Paper,
            thermal_coupling: false,
            ambient_c: DEFAULT_AMBIENT_C,
            sink_k_per_w: DEFAULT_SINK_K_PER_W,
            hotspot_layer: None,
            hotspot_w: 0.0,
            failed_vdd_pads: Vec::new(),
            failed_gnd_pads: Vec::new(),
            failed_tsvs: Vec::new(),
        }
    }

    /// A voltage-stacked solve under the interleaved pattern.
    pub fn voltage_stacked(layers: usize, imbalance: f64) -> Self {
        ScenarioRequest {
            kind: SolveKind::VoltageStacked,
            imbalance,
            ..ScenarioRequest::regular(layers)
        }
    }

    /// Sets the TSV topology.
    pub fn tsv(mut self, t: TsvTopology) -> Self {
        self.tsv = t;
        self
    }

    /// Sets the power-C4 fraction.
    pub fn power_c4(mut self, f: f64) -> Self {
        self.power_c4 = f;
        self
    }

    /// Sets the converters-per-core count.
    pub fn converters(mut self, k: usize) -> Self {
        self.converters = k;
        self
    }

    /// Selects closed-loop converter control.
    pub fn closed_loop(mut self, on: bool) -> Self {
        self.closed_loop = on;
        self
    }

    /// Switches to the coarse quick-fidelity grid.
    pub fn quick(mut self) -> Self {
        self.fidelity = Fidelity::Quick;
        self
    }

    /// Enables the thermal–EM–IR coupled solve.
    pub fn thermal_coupling(mut self, on: bool) -> Self {
        self.thermal_coupling = on;
        self
    }

    /// Sets the ambient temperature (meaningful with coupling on).
    pub fn ambient_c(mut self, t: f64) -> Self {
        self.ambient_c = t;
        self
    }

    /// Sets the heatsink resistance (meaningful with coupling on).
    pub fn sink_k_per_w(mut self, r: f64) -> Self {
        self.sink_k_per_w = r;
        self
    }

    /// Injects a hotspot of `watts` on `layer` (meaningful with coupling
    /// on).
    pub fn hotspot(mut self, layer: usize, watts: f64) -> Self {
        self.hotspot_layer = Some(layer);
        self.hotspot_w = watts;
        self
    }

    /// Open-circuits supply pad `ordinal` in the what-if solve.
    pub fn fail_vdd_pad(mut self, ordinal: usize) -> Self {
        self.failed_vdd_pads.push(ordinal);
        self
    }

    /// Open-circuits return pad `ordinal` in the what-if solve.
    pub fn fail_gnd_pad(mut self, ordinal: usize) -> Self {
        self.failed_gnd_pads.push(ordinal);
        self
    }

    /// Opens `count` TSVs of the `(interface, core)` bundle in the
    /// what-if solve.
    pub fn fail_tsvs(mut self, interface: usize, core: usize, count: usize) -> Self {
        self.failed_tsvs.push((interface, core, count));
        self
    }

    /// Whether this request names any open-circuit fault (zero-count TSV
    /// entries do not count — they canonicalize away).
    pub fn has_faults(&self) -> bool {
        !self.failed_vdd_pads.is_empty()
            || !self.failed_gnd_pads.is_empty()
            || self.failed_tsvs.iter().any(|&(_, _, n)| n > 0)
    }

    /// The [`FaultSet`] this request's fault axis denotes. Empty when the
    /// request names no fault.
    pub fn fault_set(&self) -> FaultSet {
        let mut f = FaultSet::new();
        for &o in &self.failed_vdd_pads {
            f.fail_vdd_pad(o);
        }
        for &o in &self.failed_gnd_pads {
            f.fail_gnd_pad(o);
        }
        for &(interface, core, count) in &self.failed_tsvs {
            f.fail_tsvs(interface, core, count);
        }
        f
    }

    /// Checks every field is in its physical range and finite.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first violated constraint.
    pub fn validate(&self) -> Result<(), String> {
        if self.layers == 0 || self.layers > MAX_LAYERS {
            return Err(format!(
                "layers must be in 1..={MAX_LAYERS}, got {}",
                self.layers
            ));
        }
        if !self.power_c4.is_finite() || self.power_c4 <= 0.0 || self.power_c4 > 1.0 {
            return Err(format!(
                "power_c4 must be finite in (0, 1], got {}",
                self.power_c4
            ));
        }
        if self.converters == 0 || self.converters > MAX_CONVERTERS {
            return Err(format!(
                "converters must be in 1..={MAX_CONVERTERS}, got {}",
                self.converters
            ));
        }
        if !self.imbalance.is_finite() || !(0.0..=1.0).contains(&self.imbalance) {
            return Err(format!(
                "imbalance must be finite in [0, 1], got {}",
                self.imbalance
            ));
        }
        if !self.ambient_c.is_finite() || !(-55.0..=150.0).contains(&self.ambient_c) {
            return Err(format!(
                "ambient_c must be finite in [-55, 150], got {}",
                self.ambient_c
            ));
        }
        if !self.sink_k_per_w.is_finite() || self.sink_k_per_w <= 0.0 || self.sink_k_per_w > 100.0 {
            return Err(format!(
                "sink_k_per_w must be finite in (0, 100], got {}",
                self.sink_k_per_w
            ));
        }
        if let Some(layer) = self.hotspot_layer {
            if layer >= self.layers {
                return Err(format!(
                    "hotspot_layer must be below layers ({}), got {layer}",
                    self.layers
                ));
            }
        }
        if !self.hotspot_w.is_finite() || !(0.0..=1000.0).contains(&self.hotspot_w) {
            return Err(format!(
                "hotspot_w must be finite in [0, 1000], got {}",
                self.hotspot_w
            ));
        }
        if self.has_faults() && self.thermal_coupling {
            return Err("fault injection cannot combine with thermal_coupling; \
                 the coupled fixed point solves the intact network"
                .to_string());
        }
        let elements =
            self.failed_vdd_pads.len() + self.failed_gnd_pads.len() + self.failed_tsvs.len();
        if elements > MAX_FAULT_ELEMENTS {
            return Err(format!(
                "at most {MAX_FAULT_ELEMENTS} fault elements per request, got {elements}"
            ));
        }
        for &o in self.failed_vdd_pads.iter().chain(&self.failed_gnd_pads) {
            if o > MAX_FAULT_ORDINAL {
                return Err(format!(
                    "pad ordinal must be <= {MAX_FAULT_ORDINAL}, got {o}"
                ));
            }
        }
        for &(interface, core, count) in &self.failed_tsvs {
            if self.layers < 2 || interface >= self.layers - 1 {
                return Err(format!(
                    "tsv interface must be below layers - 1 ({}), got {interface}",
                    self.layers.saturating_sub(1)
                ));
            }
            if core > MAX_FAULT_ORDINAL {
                return Err(format!(
                    "tsv core must be <= {MAX_FAULT_ORDINAL}, got {core}"
                ));
            }
            if count > MAX_TSVS_PER_FAULT {
                return Err(format!(
                    "tsv fault count must be <= {MAX_TSVS_PER_FAULT}, got {count}"
                ));
            }
        }
        Ok(())
    }

    /// The canonical form: `-0.0` floats normalized to `+0.0`, and — for a
    /// regular solve — the V-S-only fields (imbalance, converter count and
    /// control) pinned to their defaults, since they cannot affect the
    /// solve. Canonical requests are what the cache is keyed on, so e.g. a
    /// regular request with `converters: 8` and one with `converters: 4`
    /// share a fingerprint and a cache slot.
    pub fn canonical(&self) -> Self {
        let mut c = self.clone();
        c.power_c4 += 0.0;
        c.imbalance += 0.0;
        c.ambient_c += 0.0;
        c.sink_k_per_w += 0.0;
        c.hotspot_w += 0.0;
        if c.kind == SolveKind::Regular {
            c.imbalance = 0.0;
            c.converters = DEFAULT_CONVERTERS;
            c.closed_loop = false;
        }
        if !c.thermal_coupling {
            // Thermal knobs cannot affect an uncoupled solve.
            c.ambient_c = DEFAULT_AMBIENT_C;
            c.sink_k_per_w = DEFAULT_SINK_K_PER_W;
            c.hotspot_layer = None;
            c.hotspot_w = 0.0;
        }
        // A zero-watt hotspot is no hotspot and vice versa.
        if c.hotspot_w == 0.0 {
            c.hotspot_layer = None;
        }
        if c.hotspot_layer.is_none() {
            c.hotspot_w = 0.0;
        }
        // The fault axis canonicalizes to the [`FaultSet`] it denotes:
        // pads sorted and deduplicated, TSV triples merged per
        // (interface, core) with counts accumulated (the `fail_tsvs`
        // semantics) and zero-count entries dropped. Every spelling of
        // the same fault set shares one fingerprint and cache slot.
        if c.has_faults() {
            let f = c.fault_set();
            c.failed_vdd_pads = f.vdd_pad_ordinals().collect();
            c.failed_gnd_pads = f.gnd_pad_ordinals().collect();
            c.failed_tsvs = f
                .tsv_bundles()
                .map(|((interface, core), count)| (interface, core, count))
                .collect();
        } else {
            c.failed_vdd_pads = Vec::new();
            c.failed_gnd_pads = Vec::new();
            c.failed_tsvs = Vec::new();
        }
        c
    }

    /// The content-address of this request: 64-bit FNV-1a over the
    /// [`FINGERPRINT_DOMAIN`] and a fixed tag/value byte encoding of the
    /// canonical form. Deterministic across runs, platforms and JSON
    /// spellings. The thermal fields (tags 9–13) are hashed **only when
    /// coupling is enabled** and the fault fields (tags 14–16) **only
    /// when a fault is present**, so requests predating either axis keep
    /// their exact fingerprints.
    pub fn fingerprint(&self) -> u64 {
        let c = self.canonical();
        let mut h = Fnv::new();
        h.write(&FINGERPRINT_DOMAIN.to_le_bytes());
        h.field(1, &[c.kind as u8]);
        h.field(2, &(c.layers as u64).to_le_bytes());
        h.field(3, &[tsv_tag(c.tsv)]);
        h.field(4, &c.power_c4.to_bits().to_le_bytes());
        h.field(5, &(c.converters as u64).to_le_bytes());
        h.field(6, &c.imbalance.to_bits().to_le_bytes());
        h.field(7, &[u8::from(c.closed_loop)]);
        h.field(8, &[c.fidelity as u8]);
        if c.thermal_coupling {
            h.field(9, &[1]);
            h.field(10, &c.ambient_c.to_bits().to_le_bytes());
            h.field(11, &c.sink_k_per_w.to_bits().to_le_bytes());
            // Tag 12 encodes presence + layer in one field (0 = none).
            let hotspot = c.hotspot_layer.map_or(0, |l| l as u64 + 1);
            h.field(12, &hotspot.to_le_bytes());
            h.field(13, &c.hotspot_w.to_bits().to_le_bytes());
        }
        // Fault-axis fields (tags 14–16) hash only when a fault is
        // present, mirroring the thermal convention: every unfaulted
        // request keeps its pre-fault fingerprint. The canonical lists
        // are sorted/merged, so equivalent fault sets hash identically
        // regardless of injection order or duplicate entries.
        if c.has_faults() {
            let mut vdd = Vec::with_capacity(c.failed_vdd_pads.len() * 8);
            for &o in &c.failed_vdd_pads {
                vdd.extend_from_slice(&(o as u64).to_le_bytes());
            }
            h.field(14, &vdd);
            let mut gnd = Vec::with_capacity(c.failed_gnd_pads.len() * 8);
            for &o in &c.failed_gnd_pads {
                gnd.extend_from_slice(&(o as u64).to_le_bytes());
            }
            h.field(15, &gnd);
            let mut tsvs = Vec::with_capacity(c.failed_tsvs.len() * 24);
            for &(interface, core, count) in &c.failed_tsvs {
                tsvs.extend_from_slice(&(interface as u64).to_le_bytes());
                tsvs.extend_from_slice(&(core as u64).to_le_bytes());
                tsvs.extend_from_slice(&(count as u64).to_le_bytes());
            }
            h.field(16, &tsvs);
        }
        h.finish()
    }

    /// Builds the [`DesignScenario`] this request denotes.
    pub fn to_scenario(&self) -> DesignScenario {
        let mut s = DesignScenario::paper_baseline()
            .layers(self.layers)
            .tsv_topology(self.tsv)
            .power_c4_fraction(self.power_c4)
            .converters_per_core(self.converters);
        if self.closed_loop {
            s = s.converter(ScConverter::paper_28nm_closed_loop());
        }
        if self.fidelity == Fidelity::Quick {
            s = s.coarse_grid();
        }
        s
    }

    /// Serializes the canonical form. Every pre-thermal field is emitted,
    /// so a document can be archived and re-parsed without depending on
    /// defaults of a future schema; the thermal block is emitted only
    /// when coupling is on (its canonical uncoupled form *is* the
    /// absence of the fields, keeping uncoupled documents byte-identical
    /// to the pre-thermal schema).
    pub fn to_json(&self) -> Json {
        let c = self.canonical();
        let mut fields = vec![
            ("solve", Json::Str(c.kind.name().to_string())),
            ("layers", Json::Num(c.layers as f64)),
            ("tsv", Json::Str(tsv_name(c.tsv).to_string())),
            ("power_c4", Json::Num(c.power_c4)),
            ("converters", Json::Num(c.converters as f64)),
            ("imbalance", Json::Num(c.imbalance)),
            ("closed_loop", Json::Bool(c.closed_loop)),
            ("fidelity", Json::Str(fidelity_name(c.fidelity).to_string())),
        ];
        if c.thermal_coupling {
            fields.push(("thermal_coupling", Json::Bool(true)));
            fields.push(("ambient_c", Json::Num(c.ambient_c)));
            fields.push(("sink_k_per_w", Json::Num(c.sink_k_per_w)));
            if let Some(layer) = c.hotspot_layer {
                fields.push(("hotspot_layer", Json::Num(layer as f64)));
                fields.push(("hotspot_w", Json::Num(c.hotspot_w)));
            }
        }
        // Fault block, like the thermal block, appears only when live —
        // unfaulted documents keep the pre-fault byte layout.
        let ints = |xs: &[usize]| Json::Arr(xs.iter().map(|&x| Json::Num(x as f64)).collect());
        if !c.failed_vdd_pads.is_empty() {
            fields.push(("failed_vdd_pads", ints(&c.failed_vdd_pads)));
        }
        if !c.failed_gnd_pads.is_empty() {
            fields.push(("failed_gnd_pads", ints(&c.failed_gnd_pads)));
        }
        if !c.failed_tsvs.is_empty() {
            fields.push((
                "failed_tsvs",
                Json::Arr(
                    c.failed_tsvs
                        .iter()
                        .map(|&(i, core, n)| ints(&[i, core, n]))
                        .collect(),
                ),
            ));
        }
        Json::obj(fields)
    }

    /// Parses a request object. Only `solve` is required; every other
    /// field defaults to the paper baseline. Unknown keys are rejected so
    /// a typo cannot silently denote a different scenario.
    ///
    /// # Errors
    ///
    /// A description of the offending field; the request is also
    /// [`ScenarioRequest::validate`]d before being returned.
    pub fn from_json(value: &Json) -> Result<Self, String> {
        let Json::Obj(pairs) = value else {
            return Err("scenario must be a JSON object".to_string());
        };
        for (key, _) in pairs {
            if !matches!(
                key.as_str(),
                "solve"
                    | "layers"
                    | "tsv"
                    | "power_c4"
                    | "converters"
                    | "imbalance"
                    | "closed_loop"
                    | "fidelity"
                    | "thermal_coupling"
                    | "ambient_c"
                    | "sink_k_per_w"
                    | "hotspot_layer"
                    | "hotspot_w"
                    | "failed_vdd_pads"
                    | "failed_gnd_pads"
                    | "failed_tsvs"
            ) {
                return Err(format!("unknown scenario field \"{key}\""));
            }
        }
        let kind = value
            .get("solve")
            .and_then(Json::as_str)
            .ok_or("missing required field \"solve\"")?;
        let kind = SolveKind::from_name(kind)
            .ok_or_else(|| format!("solve must be \"regular\" or \"vs\", got \"{kind}\""))?;
        let mut req = match kind {
            SolveKind::Regular => ScenarioRequest::regular(8),
            SolveKind::VoltageStacked => ScenarioRequest::voltage_stacked(8, 0.0),
        };
        if let Some(v) = value.get("layers") {
            req.layers = v
                .as_usize()
                .ok_or("layers must be a non-negative integer")?;
        }
        if let Some(v) = value.get("tsv") {
            let name = v.as_str().ok_or("tsv must be a string")?;
            req.tsv = tsv_from_name(name)
                .ok_or_else(|| format!("tsv must be dense|sparse|few, got \"{name}\""))?;
        }
        if let Some(v) = value.get("power_c4") {
            req.power_c4 = v.as_f64().ok_or("power_c4 must be a number")?;
        }
        if let Some(v) = value.get("converters") {
            req.converters = v
                .as_usize()
                .ok_or("converters must be a non-negative integer")?;
        }
        if let Some(v) = value.get("imbalance") {
            req.imbalance = v.as_f64().ok_or("imbalance must be a number")?;
        }
        if let Some(v) = value.get("closed_loop") {
            req.closed_loop = v.as_bool().ok_or("closed_loop must be a boolean")?;
        }
        if let Some(v) = value.get("fidelity") {
            let name = v.as_str().ok_or("fidelity must be a string")?;
            req.fidelity = fidelity_from_name(name)
                .ok_or_else(|| format!("fidelity must be paper|quick, got \"{name}\""))?;
        }
        if let Some(v) = value.get("thermal_coupling") {
            req.thermal_coupling = v.as_bool().ok_or("thermal_coupling must be a boolean")?;
        }
        if let Some(v) = value.get("ambient_c") {
            req.ambient_c = v.as_f64().ok_or("ambient_c must be a number")?;
        }
        if let Some(v) = value.get("sink_k_per_w") {
            req.sink_k_per_w = v.as_f64().ok_or("sink_k_per_w must be a number")?;
        }
        if let Some(v) = value.get("hotspot_layer") {
            req.hotspot_layer = Some(
                v.as_usize()
                    .ok_or("hotspot_layer must be a non-negative integer")?,
            );
        }
        if let Some(v) = value.get("hotspot_w") {
            req.hotspot_w = v.as_f64().ok_or("hotspot_w must be a number")?;
        }
        let pad_list = |v: &Json, key: &str| -> Result<Vec<usize>, String> {
            v.as_arr()
                .ok_or(format!("{key} must be an array of integers"))?
                .iter()
                .map(|x| {
                    x.as_usize()
                        .ok_or(format!("{key} entries must be non-negative integers"))
                })
                .collect()
        };
        if let Some(v) = value.get("failed_vdd_pads") {
            req.failed_vdd_pads = pad_list(v, "failed_vdd_pads")?;
        }
        if let Some(v) = value.get("failed_gnd_pads") {
            req.failed_gnd_pads = pad_list(v, "failed_gnd_pads")?;
        }
        if let Some(v) = value.get("failed_tsvs") {
            let arr = v
                .as_arr()
                .ok_or("failed_tsvs must be an array of [interface, core, count] triples")?;
            req.failed_tsvs = arr
                .iter()
                .map(|t| {
                    let triple = pad_list(t, "failed_tsvs")?;
                    match triple[..] {
                        [interface, core, count] => Ok((interface, core, count)),
                        _ => Err(
                            "failed_tsvs entries must be [interface, core, count] triples"
                                .to_string(),
                        ),
                    }
                })
                .collect::<Result<_, String>>()?;
        }
        req.validate()?;
        Ok(req)
    }

    /// Formats a fingerprint the way the protocol carries it: 16 lowercase
    /// hex digits inside a string (u64 does not survive a JSON number).
    pub fn format_fingerprint(fp: u64) -> String {
        format!("{fp:016x}")
    }

    /// Parses a [`ScenarioRequest::format_fingerprint`] string back.
    pub fn parse_fingerprint(text: &str) -> Option<u64> {
        (text.len() == 16).then(|| u64::from_str_radix(text, 16).ok())?
    }
}

fn tsv_tag(t: TsvTopology) -> u8 {
    match t {
        TsvTopology::Dense => 0,
        TsvTopology::Sparse => 1,
        TsvTopology::Few => 2,
    }
}

/// Plain 64-bit FNV-1a over a byte string — the checksum the disk cache
/// stamps on every entry payload (see [`crate::cache::DiskCache`]). The
/// same primitive as the request fingerprint, minus the field tagging.
pub(crate) fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.finish()
}

/// 64-bit FNV-1a with length-prefixed field tagging, so adjacent fields
/// can never alias (`[1,2] ++ [3]` hashes differently from `[1] ++ [2,3]`).
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }

    fn field(&mut self, tag: u8, bytes: &[u8]) {
        self.write(&[tag]);
        self.write(&(bytes.len() as u64).to_le_bytes());
        self.write(bytes);
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fingerprint_ignores_json_spelling_and_field_order() {
        let a = ScenarioRequest::from_json(
            &Json::parse(r#"{"solve":"vs","layers":8,"imbalance":0.25}"#).unwrap(),
        )
        .unwrap();
        let b = ScenarioRequest::from_json(
            &Json::parse(r#"{"imbalance":2.5e-1,"solve":"vs","layers":8.0}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn regular_canonicalization_drops_vs_only_fields() {
        let a = ScenarioRequest::regular(8).converters(8).closed_loop(true);
        let b = ScenarioRequest::regular(8);
        assert_eq!(a.fingerprint(), b.fingerprint());
        // ... but those fields do matter for a V-S solve.
        let c = ScenarioRequest::voltage_stacked(8, 0.3).converters(8);
        let d = ScenarioRequest::voltage_stacked(8, 0.3);
        assert_ne!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn negative_zero_imbalance_is_canonical() {
        let a = ScenarioRequest::voltage_stacked(8, -0.0);
        let b = ScenarioRequest::voltage_stacked(8, 0.0);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn every_semantic_field_changes_the_fingerprint() {
        let base = ScenarioRequest::voltage_stacked(8, 0.3);
        let variants = [
            ScenarioRequest::regular(8).power_c4(base.power_c4),
            ScenarioRequest::voltage_stacked(4, 0.3),
            base.clone().tsv(TsvTopology::Dense),
            base.clone().power_c4(0.5),
            base.clone().converters(8),
            ScenarioRequest::voltage_stacked(8, 0.4),
            base.clone().closed_loop(true),
            base.clone().quick(),
        ];
        let fp = base.fingerprint();
        for v in &variants {
            assert_ne!(v.fingerprint(), fp, "{v:?} should differ from base");
        }
    }

    #[test]
    fn unknown_field_is_rejected() {
        let doc = Json::parse(r#"{"solve":"vs","layer":8}"#).unwrap();
        assert!(ScenarioRequest::from_json(&doc)
            .unwrap_err()
            .contains("layer"));
    }

    #[test]
    fn out_of_range_fields_are_rejected() {
        for doc in [
            r#"{"solve":"vs","layers":0}"#,
            r#"{"solve":"vs","power_c4":0}"#,
            r#"{"solve":"vs","power_c4":1.5}"#,
            r#"{"solve":"vs","imbalance":-0.1}"#,
            r#"{"solve":"vs","converters":0}"#,
            r#"{"solve":"neither"}"#,
        ] {
            let v = Json::parse(doc).unwrap();
            assert!(ScenarioRequest::from_json(&v).is_err(), "{doc} should fail");
        }
    }

    #[test]
    fn legacy_fingerprints_are_pinned() {
        // Captured on the pre-thermal schema (FINGERPRINT_DOMAIN 4).
        // These must never change: the disk cache and every warm-start
        // donor are keyed by them. If this test fails, the fingerprint
        // domain moved — that is a cache-invalidation event, not a
        // test-update event.
        let cases = [
            (ScenarioRequest::regular(8), "08e699bfbd25863e"),
            (ScenarioRequest::regular(2).quick(), "dccce5194d60f22f"),
            (
                ScenarioRequest::voltage_stacked(8, 0.30),
                "7a859369d1533fc5",
            ),
            (
                ScenarioRequest::voltage_stacked(4, 0.10)
                    .quick()
                    .closed_loop(true),
                "224f41a3fea807e8",
            ),
        ];
        for (req, expect) in cases {
            assert_eq!(
                ScenarioRequest::format_fingerprint(req.fingerprint()),
                expect,
                "pre-thermal fingerprint moved for {req:?}"
            );
        }
    }

    #[test]
    fn thermal_knobs_hash_only_when_coupling_is_on() {
        // Off: ambient/sink/hotspot are inert and must not perturb the
        // legacy fingerprint.
        let plain = ScenarioRequest::regular(8);
        let decorated = ScenarioRequest::regular(8)
            .ambient_c(70.0)
            .sink_k_per_w(0.9)
            .hotspot(3, 5.0);
        assert_eq!(plain.fingerprint(), decorated.fingerprint());

        // On: the axis is live — enabling coupling and each knob under it
        // produces a distinct scenario.
        let coupled = ScenarioRequest::regular(8).thermal_coupling(true);
        assert_ne!(coupled.fingerprint(), plain.fingerprint());
        let variants = [
            coupled.clone().ambient_c(70.0),
            coupled.clone().sink_k_per_w(0.9),
            coupled.clone().hotspot(3, 5.0),
            coupled.clone().hotspot(2, 5.0),
            coupled.clone().hotspot(3, 7.0),
        ];
        let fp = coupled.fingerprint();
        for v in &variants {
            assert_ne!(v.fingerprint(), fp, "{v:?} should differ from coupled base");
        }
    }

    #[test]
    fn zero_watt_hotspot_is_canonical_none() {
        let a = ScenarioRequest::regular(8)
            .thermal_coupling(true)
            .hotspot(3, 0.0);
        let b = ScenarioRequest::regular(8).thermal_coupling(true);
        assert_eq!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn thermal_json_round_trip_and_legacy_doc_shape() {
        let req = ScenarioRequest::voltage_stacked(8, 0.3)
            .thermal_coupling(true)
            .ambient_c(55.0)
            .sink_k_per_w(0.45)
            .hotspot(2, 3.0);
        let back = ScenarioRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back.fingerprint(), req.fingerprint());
        assert!(back.thermal_coupling);
        assert_eq!(back.hotspot_layer, Some(2));

        // An uncoupled request serializes without any thermal key — the
        // document is byte-compatible with the pre-thermal schema.
        let legacy = ScenarioRequest::regular(8).ambient_c(70.0).to_json();
        for key in [
            "thermal_coupling",
            "ambient_c",
            "sink_k_per_w",
            "hotspot_layer",
            "hotspot_w",
        ] {
            assert!(legacy.get(key).is_none(), "{key} leaked into legacy doc");
        }
    }

    #[test]
    fn out_of_range_thermal_fields_are_rejected() {
        for doc in [
            r#"{"solve":"regular","thermal_coupling":true,"ambient_c":200}"#,
            r#"{"solve":"regular","thermal_coupling":true,"ambient_c":-100}"#,
            r#"{"solve":"regular","thermal_coupling":true,"sink_k_per_w":0}"#,
            r#"{"solve":"regular","thermal_coupling":true,"sink_k_per_w":150}"#,
            r#"{"solve":"regular","layers":4,"thermal_coupling":true,"hotspot_layer":4}"#,
            r#"{"solve":"regular","thermal_coupling":true,"hotspot_layer":0,"hotspot_w":-1}"#,
            r#"{"solve":"regular","thermal_coupling":true,"hotspot_layer":0,"hotspot_w":5000}"#,
        ] {
            let v = Json::parse(doc).unwrap();
            assert!(ScenarioRequest::from_json(&v).is_err(), "{doc} should fail");
        }
    }

    #[test]
    fn equivalent_fault_sets_share_one_fingerprint() {
        // Injection order, duplicate pad entries and split TSV counts are
        // all spellings of the same physical fault set — one fingerprint,
        // one cache slot, one engine solve.
        let a = ScenarioRequest::regular(8)
            .fail_vdd_pad(7)
            .fail_vdd_pad(2)
            .fail_gnd_pad(5)
            .fail_tsvs(1, 3, 2)
            .fail_tsvs(0, 1, 4);
        let b = ScenarioRequest::regular(8)
            .fail_tsvs(0, 1, 1)
            .fail_gnd_pad(5)
            .fail_vdd_pad(2)
            .fail_tsvs(1, 3, 2)
            .fail_vdd_pad(7)
            .fail_vdd_pad(2) // duplicate: pad opens are idempotent
            .fail_tsvs(0, 1, 3); // split: TSV counts accumulate
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.canonical(), b.canonical());

        // ... and the same holds for wire spellings.
        let c = ScenarioRequest::from_json(
            &Json::parse(r#"{"solve":"regular","failed_vdd_pads":[7,2,2]}"#).unwrap(),
        )
        .unwrap();
        let d = ScenarioRequest::from_json(
            &Json::parse(r#"{"solve":"regular","failed_vdd_pads":[2,7]}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(c.fingerprint(), d.fingerprint());
    }

    #[test]
    fn fault_fields_hash_only_when_present() {
        // Empty fault arrays (and zero-count TSV entries) are the absence
        // of the axis: the pre-fault fingerprint must not move.
        let plain = ScenarioRequest::regular(8);
        assert_eq!(
            ScenarioRequest::format_fingerprint(plain.fingerprint()),
            "08e699bfbd25863e"
        );
        let inert = ScenarioRequest::regular(8).fail_tsvs(0, 0, 0);
        assert!(!inert.has_faults());
        assert_eq!(inert.fingerprint(), plain.fingerprint());
        let wire = ScenarioRequest::from_json(
            &Json::parse(r#"{"solve":"regular","failed_vdd_pads":[],"failed_tsvs":[]}"#).unwrap(),
        )
        .unwrap();
        assert_eq!(wire.fingerprint(), plain.fingerprint());

        // A live fault is a distinct scenario, and each element matters.
        let base = ScenarioRequest::regular(8).fail_vdd_pad(3);
        assert_ne!(base.fingerprint(), plain.fingerprint());
        let variants = [
            ScenarioRequest::regular(8).fail_vdd_pad(4),
            ScenarioRequest::regular(8).fail_gnd_pad(3),
            ScenarioRequest::regular(8).fail_tsvs(2, 3, 1),
            base.clone().fail_tsvs(2, 3, 1),
            base.clone().fail_tsvs(2, 3, 2),
            base.clone().fail_vdd_pad(5),
        ];
        let fp = base.fingerprint();
        for v in &variants {
            assert_ne!(v.fingerprint(), fp, "{v:?} should differ from base");
        }
    }

    #[test]
    fn fault_json_round_trip_and_unfaulted_doc_shape() {
        let req = ScenarioRequest::voltage_stacked(8, 0.3)
            .fail_vdd_pad(9)
            .fail_gnd_pad(1)
            .fail_tsvs(4, 11, 3);
        let back = ScenarioRequest::from_json(&req.to_json()).unwrap();
        assert_eq!(back.fingerprint(), req.fingerprint());
        assert_eq!(back.failed_tsvs, vec![(4, 11, 3)]);

        let legacy = ScenarioRequest::regular(8).to_json();
        for key in ["failed_vdd_pads", "failed_gnd_pads", "failed_tsvs"] {
            assert!(legacy.get(key).is_none(), "{key} leaked into legacy doc");
        }
    }

    #[test]
    fn out_of_range_fault_fields_are_rejected() {
        for doc in [
            // The coupled fixed point solves the intact network.
            r#"{"solve":"regular","thermal_coupling":true,"failed_vdd_pads":[0]}"#,
            // Interface beyond the stack.
            r#"{"solve":"regular","layers":4,"failed_tsvs":[[3,0,1]]}"#,
            // Malformed triple.
            r#"{"solve":"regular","failed_tsvs":[[1,0]]}"#,
            r#"{"solve":"regular","failed_tsvs":[5]}"#,
            // Garbage ordinal.
            r#"{"solve":"regular","failed_vdd_pads":[1e9]}"#,
            r#"{"solve":"regular","failed_gnd_pads":[-1]}"#,
        ] {
            let v = Json::parse(doc).unwrap();
            assert!(ScenarioRequest::from_json(&v).is_err(), "{doc} should fail");
        }
        // Element-count ceiling.
        let mut big = ScenarioRequest::regular(8);
        for o in 0..17 {
            big = big.fail_vdd_pad(o);
        }
        assert!(big.validate().is_err());
    }

    #[test]
    fn fingerprint_hex_round_trip() {
        let fp = ScenarioRequest::regular(8).fingerprint();
        let text = ScenarioRequest::format_fingerprint(fp);
        assert_eq!(ScenarioRequest::parse_fingerprint(&text), Some(fp));
        assert_eq!(ScenarioRequest::parse_fingerprint("xyz"), None);
    }
}
