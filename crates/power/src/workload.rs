//! Gem5/Parsec-substitute workload sampler and imbalance patterns.
//!
//! The paper samples one thousand 2k-cycle windows from each Parsec 2.0
//! application with Gem5, converts them to power with McPAT, and reports the
//! per-application power distributions (Fig 7). Gem5 and the Parsec inputs
//! are not reproducible here, so this module substitutes a **statistical
//! sampler**: each application is described by an activity envelope
//! (`act_lo ..= act_hi`) and a three-phase structure (serial / steady /
//! burst), calibrated to the published summary statistics the PDN study
//! actually consumes:
//!
//! * blackscholes shows ≈10% maximum intra-application imbalance,
//! * the application-average maximum imbalance is ≈65%,
//! * the cross-application maximum imbalance exceeds 90%.
//!
//! "Imbalance" follows the paper's definition: the low sample's dynamic
//! power is `X%` below the high sample's dynamic power (leakage is
//! unaffected), so `imbalance(a, b) = 1 − dyn_min / dyn_max`.
//!
//! The [`ImbalancePattern`] type implements the interleaved high/low layer
//! stress pattern of Figs 6 and 8.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::mcpat::{ActivityVector, CoreModel, CorePower};

/// The Parsec 2.0 applications evaluated by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum ParsecApp {
    Blackscholes,
    Bodytrack,
    Canneal,
    Dedup,
    Facesim,
    Ferret,
    Fluidanimate,
    Freqmine,
    Raytrace,
    Streamcluster,
    Swaptions,
    Vips,
    X264,
}

/// Every application in display order.
pub const PARSEC_APPS: [ParsecApp; 13] = [
    ParsecApp::Blackscholes,
    ParsecApp::Bodytrack,
    ParsecApp::Canneal,
    ParsecApp::Dedup,
    ParsecApp::Facesim,
    ParsecApp::Ferret,
    ParsecApp::Fluidanimate,
    ParsecApp::Freqmine,
    ParsecApp::Raytrace,
    ParsecApp::Streamcluster,
    ParsecApp::Swaptions,
    ParsecApp::Vips,
    ParsecApp::X264,
];

impl ParsecApp {
    /// Lower-case benchmark name as used by Parsec.
    pub fn name(self) -> &'static str {
        match self {
            ParsecApp::Blackscholes => "blackscholes",
            ParsecApp::Bodytrack => "bodytrack",
            ParsecApp::Canneal => "canneal",
            ParsecApp::Dedup => "dedup",
            ParsecApp::Facesim => "facesim",
            ParsecApp::Ferret => "ferret",
            ParsecApp::Fluidanimate => "fluidanimate",
            ParsecApp::Freqmine => "freqmine",
            ParsecApp::Raytrace => "raytrace",
            ParsecApp::Streamcluster => "streamcluster",
            ParsecApp::Swaptions => "swaptions",
            ParsecApp::Vips => "vips",
            ParsecApp::X264 => "x264",
        }
    }

    /// Activity envelope `(act_lo, act_hi)`: the calibrated dynamic-activity
    /// range the application's 2k-cycle samples span.
    pub fn activity_envelope(self) -> (f64, f64) {
        // (lo, hi) chosen so 1 − lo/hi matches the intended per-app maximum
        // imbalance; see module docs.
        match self {
            ParsecApp::Blackscholes => (0.810, 0.90),
            ParsecApp::Bodytrack => (0.240, 0.75),
            ParsecApp::Canneal => (0.080, 0.45),
            ParsecApp::Dedup => (0.1625, 0.65),
            ParsecApp::Facesim => (0.238, 0.70),
            ParsecApp::Ferret => (0.2016, 0.72),
            ParsecApp::Fluidanimate => (0.238, 0.68),
            ParsecApp::Freqmine => (0.2886, 0.78),
            ParsecApp::Raytrace => (0.198, 0.66),
            ParsecApp::Streamcluster => (0.144, 0.60),
            ParsecApp::Swaptions => (0.3825, 0.85),
            ParsecApp::Vips => (0.210, 0.70),
            ParsecApp::X264 => (0.123, 0.82),
        }
    }
}

/// One sampled 2k-cycle execution window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerSample {
    /// Application the sample came from.
    pub app: ParsecApp,
    /// Uniform per-unit activity of the window.
    pub activity: f64,
    /// Power of one core during the window.
    pub core_power: CorePower,
}

impl PowerSample {
    /// Total power of a 16-core layer running this window on every core.
    pub fn layer_power_w(&self, cores: usize) -> f64 {
        self.core_power.total_w() * cores as f64
    }
}

/// Five-number summary of a set of power samples (the Fig 7 box plot rows).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Distribution {
    /// Smallest sample.
    pub min: f64,
    /// 25th percentile.
    pub q25: f64,
    /// Median.
    pub median: f64,
    /// 75th percentile.
    pub q75: f64,
    /// Largest sample.
    pub max: f64,
}

impl Distribution {
    /// Computes the summary from unsorted values.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn from_values(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "distribution needs at least one value");
        let mut v = values.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite values"));
        let q = |p: f64| -> f64 {
            let idx = p * (v.len() - 1) as f64;
            let lo = idx.floor() as usize;
            let hi = idx.ceil() as usize;
            let frac = idx - lo as f64;
            v[lo] * (1.0 - frac) + v[hi] * frac
        };
        Distribution {
            min: v[0],
            q25: q(0.25),
            median: q(0.5),
            q75: q(0.75),
            max: *v.last().expect("non-empty"),
        }
    }
}

/// The paper's imbalance metric between two dynamic-power levels:
/// `1 − dyn_min / dyn_max`, in `[0, 1]`.
///
/// # Panics
///
/// Panics if either value is negative or both are zero.
pub fn dynamic_imbalance(dyn_a: f64, dyn_b: f64) -> f64 {
    assert!(dyn_a >= 0.0 && dyn_b >= 0.0, "dynamic power must be ≥ 0");
    let hi = dyn_a.max(dyn_b);
    let lo = dyn_a.min(dyn_b);
    assert!(hi > 0.0, "at least one dynamic power must be positive");
    1.0 - lo / hi
}

/// Statistical sampler substituting the Gem5 + McPAT flow.
///
/// Deterministic for a given seed, so experiments are reproducible.
#[derive(Debug, Clone)]
pub struct WorkloadSampler {
    core: CoreModel,
    samples_per_app: usize,
    seed: u64,
}

impl WorkloadSampler {
    /// A sampler matching the paper's methodology: one thousand samples per
    /// application on the A9-class core.
    pub fn paper_setup() -> Self {
        WorkloadSampler {
            core: CoreModel::arm_cortex_a9(),
            samples_per_app: 1000,
            seed: 0xD0C_2015,
        }
    }

    /// Custom sampler.
    ///
    /// # Panics
    ///
    /// Panics if `samples_per_app == 0`.
    pub fn new(core: CoreModel, samples_per_app: usize, seed: u64) -> Self {
        assert!(samples_per_app > 0, "need at least one sample per app");
        WorkloadSampler {
            core,
            samples_per_app,
            seed,
        }
    }

    /// The core model used to convert activity to power.
    pub fn core(&self) -> &CoreModel {
        &self.core
    }

    /// Draws the configured number of samples for one application.
    ///
    /// Samples follow a three-phase structure: serial phases near the
    /// bottom of the activity envelope (15%), steady-state phases in the
    /// middle (60%), and compute bursts near the top (25%).
    pub fn samples(&self, app: ParsecApp) -> Vec<PowerSample> {
        let mut rng = StdRng::seed_from_u64(self.seed ^ (app as u64).wrapping_mul(0x9E37_79B9));
        let (lo, hi) = app.activity_envelope();
        let span = hi - lo;
        (0..self.samples_per_app)
            .map(|_| {
                let phase: f64 = rng.random();
                let x: f64 = if phase < 0.15 {
                    // Serial / synchronization phase: bottom 15% of range.
                    rng.random_range(0.0..0.15)
                } else if phase < 0.75 {
                    // Steady state: middle of the range.
                    rng.random_range(0.2..0.8)
                } else {
                    // Compute burst: top of the range.
                    rng.random_range(0.85..1.0)
                };
                let activity = lo + span * x;
                let core_power = self.core.power(&ActivityVector::uniform(activity));
                PowerSample {
                    app,
                    activity,
                    core_power,
                }
            })
            .collect()
    }

    /// Generates a *time-correlated* activity trace for one application:
    /// `windows` consecutive 2k-cycle windows whose phase (serial / steady
    /// / burst) follows a persistent three-state Markov chain, so adjacent
    /// windows are correlated the way real program phases are. `stream`
    /// decorrelates traces of different cores/layers running the same
    /// application.
    ///
    /// Independent draws ([`WorkloadSampler::samples`]) are right for
    /// distribution statistics (Fig 7); traces are right for trace-driven
    /// noise analysis, where *when* the imbalance happens matters.
    pub fn activity_trace(&self, app: ParsecApp, windows: usize, stream: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(
            self.seed ^ (app as u64).wrapping_mul(0x9E37_79B9) ^ stream.wrapping_mul(0xC2B2_AE35),
        );
        let (lo, hi) = app.activity_envelope();
        let span = hi - lo;
        // Phase states: 0 = serial, 1 = steady, 2 = burst, with the same
        // stationary mix as `samples()` (15% / 60% / 25%) under
        // persistence 0.85.
        let mut phase = 1usize;
        (0..windows)
            .map(|_| {
                let u: f64 = rng.random();
                if u > 0.85 {
                    // Leave the current phase; re-enter per stationary mix.
                    let v: f64 = rng.random();
                    phase = if v < 0.15 {
                        0
                    } else if v < 0.75 {
                        1
                    } else {
                        2
                    };
                }
                let x: f64 = match phase {
                    0 => rng.random_range(0.0..0.15),
                    1 => rng.random_range(0.2..0.8),
                    _ => rng.random_range(0.85..1.0),
                };
                lo + span * x
            })
            .collect()
    }

    /// Per-application five-number summaries of 16-core layer power — the
    /// rows of the paper's Fig 7 box plot.
    pub fn layer_power_distributions(&self, cores: usize) -> Vec<(ParsecApp, Distribution)> {
        PARSEC_APPS
            .iter()
            .map(|&app| {
                let powers: Vec<f64> = self
                    .samples(app)
                    .iter()
                    .map(|s| s.layer_power_w(cores))
                    .collect();
                (app, Distribution::from_values(&powers))
            })
            .collect()
    }

    /// Maximum intra-application imbalance: the paper's per-app
    /// `1 − dyn_min / dyn_max` over all sample pairs.
    pub fn max_imbalance(&self, app: ParsecApp) -> f64 {
        let samples = self.samples(app);
        let dyn_min = samples
            .iter()
            .map(|s| s.core_power.dynamic)
            .fold(f64::INFINITY, f64::min);
        let dyn_max = samples
            .iter()
            .map(|s| s.core_power.dynamic)
            .fold(0.0, f64::max);
        dynamic_imbalance(dyn_min, dyn_max)
    }

    /// Average of [`WorkloadSampler::max_imbalance`] across all
    /// applications — the paper's 65% figure.
    pub fn average_max_imbalance(&self) -> f64 {
        PARSEC_APPS
            .iter()
            .map(|&a| self.max_imbalance(a))
            .sum::<f64>()
            / PARSEC_APPS.len() as f64
    }

    /// Maximum imbalance across *all* samples of *all* applications — the
    /// paper's ">90%" worst case.
    pub fn global_max_imbalance(&self) -> f64 {
        let mut dyn_min = f64::INFINITY;
        let mut dyn_max = 0.0f64;
        for &app in &PARSEC_APPS {
            for s in self.samples(app) {
                dyn_min = dyn_min.min(s.core_power.dynamic);
                dyn_max = dyn_max.max(s.core_power.dynamic);
            }
        }
        dynamic_imbalance(dyn_min, dyn_max)
    }
}

/// The interleaved high/low workload-imbalance stress pattern of Figs 6
/// and 8: even layers run fully active, odd layers consume `imbalance`
/// less **dynamic** power (leakage unchanged). `imbalance = 1.0` means the
/// low layers are idle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImbalancePattern {
    /// Fractional dynamic-power reduction of the low layers, in `[0, 1]`.
    pub imbalance: f64,
}

impl ImbalancePattern {
    /// Creates the pattern.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ imbalance ≤ 1`.
    pub fn new(imbalance: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&imbalance),
            "imbalance must be in [0,1], got {imbalance}"
        );
        ImbalancePattern { imbalance }
    }

    /// Whether `layer` (0-based, bottom first) is a high-power layer.
    pub fn is_high_layer(&self, layer: usize) -> bool {
        layer.is_multiple_of(2)
    }

    /// Dynamic activity factor of a layer under this pattern.
    pub fn layer_activity(&self, layer: usize) -> f64 {
        if self.is_high_layer(layer) {
            1.0
        } else {
            1.0 - self.imbalance
        }
    }

    /// Power of one core on `layer`.
    pub fn layer_core_power(&self, core: &CoreModel, layer: usize) -> CorePower {
        core.power(&ActivityVector::uniform(self.layer_activity(layer)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blackscholes_is_nearly_balanced() {
        let s = WorkloadSampler::paper_setup();
        let imb = s.max_imbalance(ParsecApp::Blackscholes);
        assert!(
            imb < 0.12,
            "blackscholes imbalance should be ≈10%, got {imb}"
        );
        assert!(
            imb > 0.05,
            "blackscholes should still vary a little, got {imb}"
        );
    }

    #[test]
    fn average_max_imbalance_matches_paper() {
        let s = WorkloadSampler::paper_setup();
        let avg = s.average_max_imbalance();
        assert!(
            (0.60..=0.70).contains(&avg),
            "paper reports ≈65% average, got {avg}"
        );
    }

    #[test]
    fn global_imbalance_exceeds_ninety_percent() {
        let s = WorkloadSampler::paper_setup();
        let g = s.global_max_imbalance();
        assert!(g > 0.90, "paper reports >90%, got {g}");
    }

    #[test]
    fn sampling_is_deterministic() {
        let s = WorkloadSampler::paper_setup();
        let a = s.samples(ParsecApp::Ferret);
        let b = s.samples(ParsecApp::Ferret);
        assert_eq!(a, b);
    }

    #[test]
    fn different_apps_get_different_streams() {
        let s = WorkloadSampler::paper_setup();
        let a = s.samples(ParsecApp::Ferret);
        let b = s.samples(ParsecApp::Vips);
        assert_ne!(
            a[0].activity, b[0].activity,
            "apps should not share an RNG stream"
        );
    }

    #[test]
    fn samples_respect_envelope() {
        let s = WorkloadSampler::paper_setup();
        for &app in &PARSEC_APPS {
            let (lo, hi) = app.activity_envelope();
            for sample in s.samples(app) {
                assert!(
                    sample.activity >= lo - 1e-12 && sample.activity <= hi + 1e-12,
                    "{} sample escaped envelope",
                    app.name()
                );
            }
        }
    }

    #[test]
    fn distribution_five_numbers_ordered() {
        let s = WorkloadSampler::paper_setup();
        for (_, d) in s.layer_power_distributions(16) {
            assert!(d.min <= d.q25 && d.q25 <= d.median);
            assert!(d.median <= d.q75 && d.q75 <= d.max);
        }
    }

    #[test]
    fn distribution_from_known_values() {
        let d = Distribution::from_values(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(d.min, 1.0);
        assert_eq!(d.median, 3.0);
        assert_eq!(d.max, 5.0);
        assert_eq!(d.q25, 2.0);
        assert_eq!(d.q75, 4.0);
    }

    #[test]
    fn imbalance_metric_definition() {
        assert_eq!(dynamic_imbalance(1.0, 1.0), 0.0);
        assert_eq!(dynamic_imbalance(1.0, 0.5), 0.5);
        assert_eq!(dynamic_imbalance(0.0, 1.0), 1.0);
        assert_eq!(dynamic_imbalance(0.2, 1.0), dynamic_imbalance(1.0, 0.2));
    }

    #[test]
    fn traces_are_phase_correlated() {
        // Adjacent windows of a trace must be more alike than independent
        // samples: compare lag-1 autocorrelation against zero.
        let s = WorkloadSampler::paper_setup();
        let trace = s.activity_trace(ParsecApp::Ferret, 2000, 1);
        let mean = trace.iter().sum::<f64>() / trace.len() as f64;
        let var: f64 = trace.iter().map(|x| (x - mean).powi(2)).sum();
        let cov: f64 = trace
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum();
        let rho = cov / var;
        assert!(rho > 0.3, "expected persistent phases, lag-1 rho = {rho}");
    }

    #[test]
    fn trace_streams_decorrelate() {
        let s = WorkloadSampler::paper_setup();
        let a = s.activity_trace(ParsecApp::Vips, 100, 0);
        let b = s.activity_trace(ParsecApp::Vips, 100, 1);
        assert_ne!(a, b);
        // Same stream is reproducible.
        assert_eq!(a, s.activity_trace(ParsecApp::Vips, 100, 0));
    }

    #[test]
    fn traces_respect_envelope() {
        let s = WorkloadSampler::paper_setup();
        let (lo, hi) = ParsecApp::X264.activity_envelope();
        for x in s.activity_trace(ParsecApp::X264, 500, 7) {
            assert!(x >= lo - 1e-12 && x <= hi + 1e-12);
        }
    }

    #[test]
    fn pattern_alternates_layers() {
        let p = ImbalancePattern::new(0.4);
        assert_eq!(p.layer_activity(0), 1.0);
        assert!((p.layer_activity(1) - 0.6).abs() < 1e-12);
        assert_eq!(p.layer_activity(2), 1.0);
    }

    #[test]
    fn full_imbalance_means_idle_low_layers() {
        let p = ImbalancePattern::new(1.0);
        let core = CoreModel::arm_cortex_a9();
        let low = p.layer_core_power(&core, 1);
        assert_eq!(low.dynamic, 0.0);
        assert!(low.leakage > 0.0);
    }

    #[test]
    fn pattern_preserves_leakage() {
        let core = CoreModel::arm_cortex_a9();
        let p = ImbalancePattern::new(0.7);
        let hi = p.layer_core_power(&core, 0);
        let lo = p.layer_core_power(&core, 1);
        assert_eq!(hi.leakage, lo.leakage);
        assert!((lo.dynamic / hi.dynamic - 0.3).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "imbalance must be in [0,1]")]
    fn out_of_range_imbalance_rejected() {
        ImbalancePattern::new(1.2);
    }
}
