//! Processor power, floorplan and workload models for the `vstack` 3D-IC
//! study.
//!
//! The paper builds its evaluation platform from three external tools, all
//! re-implemented here at the fidelity the PDN study actually consumes:
//!
//! * **McPAT** → [`mcpat`]: an analytic per-unit power model of a 40 nm,
//!   1 GHz ARM Cortex-A9-class core, calibrated to the paper's totals — a
//!   16-core layer has a peak power of 7.6 W and an area of 44.12 mm² at
//!   1 V (paper §4.1).
//! * **ArchFP** → [`floorplan`]: a rapid grid floorplanner that places the
//!   16 cores and their functional blocks, giving the PDN model its current
//!   density map.
//! * **Gem5 + Parsec 2.0** → [`workload`]: a statistical sampler that
//!   reproduces the published per-application power distributions (1000 ×
//!   2k-cycle samples per application, paper §5.2 / Fig 7), plus the
//!   interleaved high/low "workload imbalance" stress pattern used by
//!   Fig 6 and Fig 8.
//!
//! # Example
//!
//! ```
//! use vstack_power::mcpat::{ActivityVector, CoreModel};
//!
//! let core = CoreModel::arm_cortex_a9();
//! let peak = core.power(&ActivityVector::full());
//! // 16 such cores draw the paper's 7.6 W peak layer power.
//! assert!((16.0 * peak.total_w() - 7.6).abs() < 0.01);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod floorplan;
pub mod mcpat;
pub mod workload;

pub use floorplan::{Floorplan, Rect};
pub use mcpat::{ActivityVector, CoreModel, CorePower};
pub use workload::{ImbalancePattern, ParsecApp, PowerSample, WorkloadSampler};
