//! McPAT-style analytic core power model.
//!
//! McPAT decomposes a core into functional units, each with a peak dynamic
//! power (scaled by an activity factor) and a leakage power. We reproduce
//! that structure for the paper's platform: a 40 nm, dual-issue ARM
//! Cortex-A9-class core at 1 GHz and 1 V, replicated 16× per layer. The
//! per-unit budget below is calibrated so that a fully-active 16-core layer
//! draws the paper's 7.6 W peak in 44.12 mm² (§4.1), with a 20% leakage
//! share typical of 40 nm bulk CMOS.

/// Functional units of the modelled core, in floorplan order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Unit {
    /// Instruction fetch + branch prediction.
    Fetch,
    /// Decode/rename/dispatch.
    Decode,
    /// Integer execution cluster.
    IntExec,
    /// Floating-point / NEON cluster.
    FpExec,
    /// Load-store unit + L1 data cache.
    LoadStore,
    /// L1 instruction cache.
    ICache,
    /// Per-core slice of the shared L2.
    L2Slice,
    /// Clock tree and uncore glue attributed to the core tile.
    ClockUncore,
}

/// All units in a fixed iteration order.
pub const UNITS: [Unit; 8] = [
    Unit::Fetch,
    Unit::Decode,
    Unit::IntExec,
    Unit::FpExec,
    Unit::LoadStore,
    Unit::ICache,
    Unit::L2Slice,
    Unit::ClockUncore,
];

/// Per-unit activity factors in `[0, 1]`.
///
/// An activity of 1.0 on every unit reproduces the peak (TDP-style) power.
#[derive(Debug, Clone, PartialEq)]
pub struct ActivityVector {
    factors: [f64; 8],
}

impl ActivityVector {
    /// All units fully active (peak power).
    pub fn full() -> Self {
        ActivityVector { factors: [1.0; 8] }
    }

    /// All units idle (leakage only).
    pub fn idle() -> Self {
        ActivityVector { factors: [0.0; 8] }
    }

    /// Uniform activity `a` on every unit.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ a ≤ 1`.
    pub fn uniform(a: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&a),
            "activity must be in [0,1], got {a}"
        );
        ActivityVector { factors: [a; 8] }
    }

    /// Sets one unit's activity, returning `self` for chaining.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ a ≤ 1`.
    pub fn with(mut self, unit: Unit, a: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&a),
            "activity must be in [0,1], got {a}"
        );
        self.factors[unit as usize] = a;
        self
    }

    /// Activity of one unit.
    pub fn factor(&self, unit: Unit) -> f64 {
        self.factors[unit as usize]
    }

    /// Mean activity across units (used by coarse-grained reports).
    pub fn mean(&self) -> f64 {
        self.factors.iter().sum::<f64>() / self.factors.len() as f64
    }
}

/// Power budget for one functional unit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UnitBudget {
    /// Peak dynamic power at nominal voltage/frequency, in watts.
    pub peak_dynamic_w: f64,
    /// Leakage power at nominal voltage, in watts.
    pub leakage_w: f64,
    /// Area share of the core tile, as a fraction summing to 1.
    pub area_fraction: f64,
}

/// Analytic model of one core tile.
#[derive(Debug, Clone, PartialEq)]
pub struct CoreModel {
    budgets: [UnitBudget; 8],
    /// Core tile area in mm².
    area_mm2: f64,
    /// Nominal supply voltage in volts.
    vdd: f64,
    /// Nominal clock frequency in hertz.
    frequency_hz: f64,
}

impl CoreModel {
    /// The paper's platform core: 40 nm dual-core Cortex-A9 IP replicated
    /// to 16 cores per layer; per-core tile 2.7575 mm² (44.12 mm² / 16),
    /// peak 0.475 W (7.6 W / 16) at 1 V, 1 GHz, with a 20% leakage share.
    pub fn arm_cortex_a9() -> Self {
        const PEAK_TOTAL: f64 = 7.6 / 16.0; // 0.475 W
        const LEAK_SHARE: f64 = 0.20;
        let dyn_total = PEAK_TOTAL * (1.0 - LEAK_SHARE);
        let leak_total = PEAK_TOTAL * LEAK_SHARE;
        // Dynamic power split across units (fractions sum to 1), with
        // leakage tracking SRAM-heavy units more strongly; area fractions
        // follow the usual A9 die-photo proportions.
        let split = [
            // (dynamic, leakage, area) fractions per unit
            (0.12, 0.08, 0.10), // Fetch
            (0.10, 0.06, 0.08), // Decode
            (0.16, 0.10, 0.12), // IntExec
            (0.12, 0.08, 0.12), // FpExec
            (0.18, 0.16, 0.16), // LoadStore + L1D
            (0.08, 0.10, 0.08), // ICache
            (0.14, 0.32, 0.24), // L2 slice (SRAM leakage heavy)
            (0.10, 0.10, 0.10), // Clock/uncore
        ];
        let budgets = split.map(|(d, l, a)| UnitBudget {
            peak_dynamic_w: dyn_total * d,
            leakage_w: leak_total * l,
            area_fraction: a,
        });
        CoreModel {
            budgets,
            area_mm2: 44.12 / 16.0,
            vdd: 1.0,
            frequency_hz: 1.0e9,
        }
    }

    /// Core tile area in mm².
    pub fn area_mm2(&self) -> f64 {
        self.area_mm2
    }

    /// Nominal supply voltage in volts.
    pub fn vdd(&self) -> f64 {
        self.vdd
    }

    /// Nominal clock frequency in hertz.
    pub fn frequency_hz(&self) -> f64 {
        self.frequency_hz
    }

    /// Budget of one unit.
    pub fn budget(&self, unit: Unit) -> UnitBudget {
        self.budgets[unit as usize]
    }

    /// Evaluates core power for a per-unit activity vector at nominal
    /// voltage and frequency.
    pub fn power(&self, activity: &ActivityVector) -> CorePower {
        self.power_scaled(activity, self.vdd, self.frequency_hz)
    }

    /// Evaluates core power at a non-nominal operating point: dynamic power
    /// scales with `V²·f`, leakage approximately linearly with `V`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` or `frequency_hz` is not finite and positive.
    pub fn power_scaled(
        &self,
        activity: &ActivityVector,
        vdd: f64,
        frequency_hz: f64,
    ) -> CorePower {
        assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
        assert!(
            frequency_hz.is_finite() && frequency_hz > 0.0,
            "frequency must be positive"
        );
        let v_ratio = vdd / self.vdd;
        let dyn_scale = v_ratio * v_ratio * (frequency_hz / self.frequency_hz);
        let leak_scale = v_ratio;
        let mut dynamic = 0.0;
        let mut leakage = 0.0;
        for (i, unit) in UNITS.iter().enumerate() {
            let b = self.budgets[*unit as usize];
            dynamic += b.peak_dynamic_w * activity.factors[i] * dyn_scale;
            leakage += b.leakage_w * leak_scale;
        }
        CorePower { dynamic, leakage }
    }

    /// Peak (all-units-active) power at nominal conditions.
    pub fn peak_power(&self) -> CorePower {
        self.power(&ActivityVector::full())
    }
}

/// Power of one core, split into dynamic and leakage components.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CorePower {
    /// Activity-dependent dynamic power in watts.
    pub dynamic: f64,
    /// Activity-independent leakage power in watts.
    pub leakage: f64,
}

impl CorePower {
    /// Total power in watts.
    pub fn total_w(&self) -> f64 {
        self.dynamic + self.leakage
    }

    /// Supply current in amperes at voltage `vdd`.
    ///
    /// # Panics
    ///
    /// Panics if `vdd` is not finite and positive.
    pub fn current_a(&self, vdd: f64) -> f64 {
        assert!(vdd.is_finite() && vdd > 0.0, "vdd must be positive");
        self.total_w() / vdd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_cores_peak_at_paper_power() {
        let core = CoreModel::arm_cortex_a9();
        let total = 16.0 * core.peak_power().total_w();
        assert!((total - 7.6).abs() < 1e-9, "got {total}");
    }

    #[test]
    fn sixteen_cores_cover_paper_area() {
        let core = CoreModel::arm_cortex_a9();
        assert!((16.0 * core.area_mm2() - 44.12).abs() < 1e-9);
    }

    #[test]
    fn idle_power_is_leakage_only() {
        let core = CoreModel::arm_cortex_a9();
        let idle = core.power(&ActivityVector::idle());
        assert_eq!(idle.dynamic, 0.0);
        assert!((idle.leakage - 0.475 * 0.20).abs() < 1e-9);
    }

    #[test]
    fn budget_fractions_sum_to_one() {
        let core = CoreModel::arm_cortex_a9();
        let area: f64 = UNITS.iter().map(|&u| core.budget(u).area_fraction).sum();
        assert!((area - 1.0).abs() < 1e-9);
        let dyn_sum: f64 = UNITS.iter().map(|&u| core.budget(u).peak_dynamic_w).sum();
        assert!((dyn_sum - 0.475 * 0.8).abs() < 1e-9);
    }

    #[test]
    fn power_is_linear_in_activity() {
        let core = CoreModel::arm_cortex_a9();
        let half = core.power(&ActivityVector::uniform(0.5));
        let full = core.power(&ActivityVector::full());
        assert!((half.dynamic - full.dynamic / 2.0).abs() < 1e-12);
        assert_eq!(half.leakage, full.leakage);
    }

    #[test]
    fn voltage_scaling_is_quadratic_for_dynamic() {
        let core = CoreModel::arm_cortex_a9();
        let a = ActivityVector::full();
        let nominal = core.power_scaled(&a, 1.0, 1e9);
        let low_v = core.power_scaled(&a, 0.8, 1e9);
        assert!((low_v.dynamic - nominal.dynamic * 0.64).abs() < 1e-12);
        assert!((low_v.leakage - nominal.leakage * 0.8).abs() < 1e-12);
    }

    #[test]
    fn per_unit_override() {
        let core = CoreModel::arm_cortex_a9();
        let fp_idle = ActivityVector::full().with(Unit::FpExec, 0.0);
        let p = core.power(&fp_idle);
        let expect = core.peak_power().dynamic - core.budget(Unit::FpExec).peak_dynamic_w;
        assert!((p.dynamic - expect).abs() < 1e-12);
    }

    #[test]
    fn current_at_one_volt_equals_watts() {
        let p = CorePower {
            dynamic: 0.3,
            leakage: 0.1,
        };
        assert!((p.current_a(1.0) - 0.4).abs() < 1e-12);
        assert!((p.current_a(2.0) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "activity must be in [0,1]")]
    fn activity_out_of_range_rejected() {
        ActivityVector::uniform(1.5);
    }
}
