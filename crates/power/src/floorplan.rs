//! ArchFP-style rapid floorplanning.
//!
//! The paper generates its 16-core floorplan with ArchFP (ref \[5\]). The PDN
//! model only consumes block bounding boxes — it maps each block's current
//! onto the nearest power-grid nodes — so a regular grid tiling with
//! area-proportional intra-core slicing reproduces everything downstream
//! models need.

use crate::mcpat::{CoreModel, UNITS};

/// Axis-aligned rectangle in millimetres.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Rect {
    /// Left edge.
    pub x: f64,
    /// Bottom edge.
    pub y: f64,
    /// Width.
    pub w: f64,
    /// Height.
    pub h: f64,
}

impl Rect {
    /// Center point `(x, y)`.
    pub fn center(&self) -> (f64, f64) {
        (self.x + self.w / 2.0, self.y + self.h / 2.0)
    }

    /// Area in mm².
    pub fn area(&self) -> f64 {
        self.w * self.h
    }

    /// Whether the point lies inside (inclusive of edges).
    pub fn contains(&self, x: f64, y: f64) -> bool {
        x >= self.x && x <= self.x + self.w && y >= self.y && y <= self.y + self.h
    }
}

/// A placed functional block.
#[derive(Debug, Clone, PartialEq)]
pub struct Block {
    /// Which core tile the block belongs to.
    pub core: usize,
    /// Unit index within [`UNITS`].
    pub unit: usize,
    /// Placement.
    pub rect: Rect,
}

/// A single-layer floorplan: a `cols × rows` grid of core tiles, each
/// sliced into its functional units.
///
/// # Example
///
/// ```
/// use vstack_power::floorplan::Floorplan;
/// use vstack_power::mcpat::CoreModel;
///
/// let fp = Floorplan::grid(&CoreModel::arm_cortex_a9(), 4, 4);
/// assert_eq!(fp.core_count(), 16);
/// assert!((fp.chip_width_mm() * fp.chip_height_mm() - 44.12).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Floorplan {
    cols: usize,
    rows: usize,
    chip_w: f64,
    chip_h: f64,
    cores: Vec<Rect>,
    blocks: Vec<Block>,
}

impl Floorplan {
    /// Tiles `cols × rows` copies of `core` into a near-square chip and
    /// slices each tile into unit blocks by area fraction (vertical strips).
    ///
    /// # Panics
    ///
    /// Panics if `cols` or `rows` is zero.
    pub fn grid(core: &CoreModel, cols: usize, rows: usize) -> Self {
        assert!(cols > 0 && rows > 0, "floorplan grid must be non-empty");
        let tile_area = core.area_mm2();
        let tile_side = tile_area.sqrt();
        let (tile_w, tile_h) = (tile_side, tile_side);
        let chip_w = tile_w * cols as f64;
        let chip_h = tile_h * rows as f64;

        let mut cores = Vec::with_capacity(cols * rows);
        let mut blocks = Vec::new();
        for r in 0..rows {
            for c in 0..cols {
                let core_idx = r * cols + c;
                let rect = Rect {
                    x: c as f64 * tile_w,
                    y: r as f64 * tile_h,
                    w: tile_w,
                    h: tile_h,
                };
                cores.push(rect);
                // Slice the tile into vertical strips, one per unit, with
                // widths proportional to unit area fractions.
                let mut x = rect.x;
                for (unit_idx, unit) in UNITS.iter().enumerate() {
                    let frac = core.budget(*unit).area_fraction;
                    let w = rect.w * frac;
                    blocks.push(Block {
                        core: core_idx,
                        unit: unit_idx,
                        rect: Rect {
                            x,
                            y: rect.y,
                            w,
                            h: rect.h,
                        },
                    });
                    x += w;
                }
            }
        }
        Floorplan {
            cols,
            rows,
            chip_w,
            chip_h,
            cores,
            blocks,
        }
    }

    /// Chip width in mm.
    pub fn chip_width_mm(&self) -> f64 {
        self.chip_w
    }

    /// Chip height in mm.
    pub fn chip_height_mm(&self) -> f64 {
        self.chip_h
    }

    /// Number of core tiles.
    pub fn core_count(&self) -> usize {
        self.cores.len()
    }

    /// Grid shape `(cols, rows)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.cols, self.rows)
    }

    /// Bounding box of core `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx` is out of range.
    pub fn core_bounds(&self, idx: usize) -> Rect {
        self.cores[idx]
    }

    /// All placed unit blocks.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// The core tile containing a point, if any.
    pub fn core_at(&self, x: f64, y: f64) -> Option<usize> {
        self.cores.iter().position(|r| r.contains(x, y))
    }

    /// Evenly spaced positions inside core `core_idx` for placing `n`
    /// on-core resources (SC converters, TSV clusters): a near-square
    /// sub-grid of the tile, matching the paper's "uniformly distribute
    /// them within each core" (§3.2).
    ///
    /// # Panics
    ///
    /// Panics if `core_idx` is out of range or `n == 0`.
    pub fn uniform_positions_in_core(&self, core_idx: usize, n: usize) -> Vec<(f64, f64)> {
        assert!(n > 0, "need at least one position");
        let rect = self.core_bounds(core_idx);
        let cols = (n as f64).sqrt().ceil() as usize;
        let rows = n.div_ceil(cols);
        let mut out = Vec::with_capacity(n);
        'outer: for r in 0..rows {
            for c in 0..cols {
                if out.len() == n {
                    break 'outer;
                }
                let fx = (c as f64 + 0.5) / cols as f64;
                let fy = (r as f64 + 0.5) / rows as f64;
                out.push((rect.x + fx * rect.w, rect.y + fy * rect.h));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp() -> Floorplan {
        Floorplan::grid(&CoreModel::arm_cortex_a9(), 4, 4)
    }

    #[test]
    fn sixteen_tiles_cover_chip_area() {
        let f = fp();
        let total: f64 = (0..16).map(|i| f.core_bounds(i).area()).sum();
        assert!((total - 44.12).abs() < 1e-9);
    }

    #[test]
    fn tiles_do_not_overlap() {
        let f = fp();
        for i in 0..16 {
            for j in (i + 1)..16 {
                let (a, b) = (f.core_bounds(i), f.core_bounds(j));
                let overlap_x = (a.x + a.w).min(b.x + b.w) - a.x.max(b.x);
                let overlap_y = (a.y + a.h).min(b.y + b.h) - a.y.max(b.y);
                assert!(
                    overlap_x <= 1e-12 || overlap_y <= 1e-12,
                    "cores {i} and {j} overlap"
                );
            }
        }
    }

    #[test]
    fn blocks_partition_each_tile() {
        let f = fp();
        for core in 0..16 {
            let area: f64 = f
                .blocks()
                .iter()
                .filter(|b| b.core == core)
                .map(|b| b.rect.area())
                .sum();
            assert!((area - f.core_bounds(core).area()).abs() < 1e-9);
        }
    }

    #[test]
    fn core_lookup_by_point() {
        let f = fp();
        let r = f.core_bounds(5);
        let (cx, cy) = r.center();
        assert_eq!(f.core_at(cx, cy), Some(5));
        assert_eq!(f.core_at(-1.0, 0.0), None);
    }

    #[test]
    fn uniform_positions_stay_inside_core() {
        let f = fp();
        for n in [1, 2, 4, 6, 8] {
            let pts = f.uniform_positions_in_core(3, n);
            assert_eq!(pts.len(), n);
            let r = f.core_bounds(3);
            for (x, y) in pts {
                assert!(r.contains(x, y), "({x},{y}) escaped core 3");
            }
        }
    }

    #[test]
    fn uniform_positions_are_distinct() {
        let f = fp();
        let pts = f.uniform_positions_in_core(0, 8);
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let d = (pts[i].0 - pts[j].0).hypot(pts[i].1 - pts[j].1);
                assert!(d > 1e-6, "positions {i} and {j} coincide");
            }
        }
    }
}
