//! Property-based tests for the power and workload models.

use proptest::prelude::*;
use vstack_power::mcpat::{ActivityVector, CoreModel};
use vstack_power::workload::{dynamic_imbalance, Distribution, ImbalancePattern};

proptest! {
    /// Core power is affine in uniform activity: leakage floor plus a
    /// linear dynamic term.
    #[test]
    fn power_affine_in_activity(a in 0.0..1.0f64, b in 0.0..1.0f64) {
        let core = CoreModel::arm_cortex_a9();
        let pa = core.power(&ActivityVector::uniform(a));
        let pb = core.power(&ActivityVector::uniform(b));
        prop_assert!((pa.leakage - pb.leakage).abs() < 1e-12);
        if a > 0.0 {
            let slope_a = pa.dynamic / a;
            if b > 0.0 {
                let slope_b = pb.dynamic / b;
                prop_assert!((slope_a - slope_b).abs() < 1e-9);
            }
        }
    }

    /// Voltage scaling keeps dynamic power quadratic and leakage linear.
    #[test]
    fn scaling_laws(v in 0.5..1.2f64) {
        let core = CoreModel::arm_cortex_a9();
        let act = ActivityVector::uniform(0.7);
        let nom = core.power_scaled(&act, 1.0, 1e9);
        let s = core.power_scaled(&act, v, 1e9);
        prop_assert!((s.dynamic - nom.dynamic * v * v).abs() < 1e-9);
        prop_assert!((s.leakage - nom.leakage * v).abs() < 1e-9);
    }

    /// The imbalance metric is symmetric, bounded, and zero iff equal.
    #[test]
    fn imbalance_metric_properties(a in 0.001..1.0f64, b in 0.001..1.0f64) {
        let i = dynamic_imbalance(a, b);
        prop_assert!((0.0..1.0).contains(&i));
        prop_assert!((dynamic_imbalance(b, a) - i).abs() < 1e-12);
        if (a - b).abs() < 1e-12 {
            prop_assert!(i < 1e-9);
        }
    }

    /// Five-number summaries are order statistics of the input.
    #[test]
    fn distribution_bounds(values in prop::collection::vec(0.0..100.0f64, 1..200)) {
        let d = Distribution::from_values(&values);
        let min = values.iter().cloned().fold(f64::MAX, f64::min);
        let max = values.iter().cloned().fold(f64::MIN, f64::max);
        prop_assert_eq!(d.min, min);
        prop_assert_eq!(d.max, max);
        prop_assert!(d.min <= d.q25 && d.q25 <= d.median);
        prop_assert!(d.median <= d.q75 && d.q75 <= d.max);
    }

    /// The interleaved pattern's layer dynamic ratio equals 1 − imbalance.
    #[test]
    fn pattern_ratio(x in 0.0..1.0f64) {
        let core = CoreModel::arm_cortex_a9();
        let p = ImbalancePattern::new(x);
        let hi = p.layer_core_power(&core, 0);
        let lo = p.layer_core_power(&core, 1);
        if hi.dynamic > 0.0 {
            prop_assert!((lo.dynamic / hi.dynamic - (1.0 - x)).abs() < 1e-9);
        }
        // And the measured imbalance between the layers is exactly x.
        prop_assert!((dynamic_imbalance(hi.dynamic, lo.dynamic) - x).abs() < 1e-9);
    }
}
