//! Resilient solve pipeline: a deterministic escalation ladder over the
//! iterative solvers, with a [`SolveReport`] recording every fallback.
//!
//! Degraded power grids (failed C4 pads, open TSVs — see `vstack-pdn`'s
//! fault injection) produce systems that are much harder than the pristine
//! SPD grid Laplacians the default solver configuration is tuned for:
//! IC(0) can hit a non-positive pivot, CG can break down or stagnate on a
//! near-singular operator. [`solve_robust`] climbs a fixed ladder instead
//! of giving up:
//!
//! -1. **CG + f32 AMG** (opt-in via [`RobustOptions::start_with_mixed`])
//!    — the mixed-precision hot path: an f64 outer CG (optionally driven
//!    through a matrix-free [`StencilOperator`]) preconditioned by a
//!    single-precision V-cycle ([`crate::amg::AmgHierarchyF32`]); any
//!    breakdown or stagnation of the refinement drops to the pure-f64
//!    rungs below with a [`FallbackStep`] on record;
//! 0. **CG + AMG** (opt-in via [`RobustOptions::start_with_amg`]) — an
//!    aggregation-based multigrid V-cycle whose iteration counts stay
//!    nearly flat as grids grow; degenerate coarsening
//!    ([`SolveError::CoarseningFailed`]) or any other numerical failure
//!    drops cleanly to the next rung;
//! 1. **CG + IC(0)** (on by default via [`RobustOptions::start_with_ic`])
//!    — strongest single-level preconditioner on healthy grids;
//! 2. **CG + Jacobi** — if the incomplete factorization fails (or IC-
//!    preconditioned CG errors), fall back to diagonal scaling;
//! 3. **BiCGSTAB + Jacobi** — if CG breaks down or stagnates; BiCGSTAB
//!    tolerates indefiniteness that kills CG (uses no preconditioner when
//!    the diagonal itself is singular);
//! 4. **CG + Jacobi on `A + λI`** — a last-resort Tikhonov (diagonal)
//!    shift with `λ = shift_scale · max|diag(A)|`; the reported residual
//!    is measured against the *original* system, never the shifted one.
//!
//! Every abandoned rung is recorded in [`SolveReport::fallbacks`] with the
//! error that caused the transition, so experiments can log exactly which
//! solves needed rescue. The ladder is fully deterministic: the same
//! system and options always take the same path.

use std::time::Instant;

use crate::amg::{AmgHierarchy, AmgHierarchyF32, AmgOptions};
use crate::cancel::CancelToken;
use crate::solver::{
    bicgstab_with_guess_ws, cg_with_amg_f32_ws, cg_with_amg_ws, cg_with_guess_ws, validate_finite,
    BiCgStabOptions, CgOptions, Preconditioner, SolveWorkspace, Solved,
};
use crate::stencil::{LinearOperator, StencilOperator};
use crate::{CsrMatrix, SolveError, TripletMatrix};

/// Solver method identifiers for [`SolveReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveMethod {
    /// Mixed-precision conjugate gradient: f64 outer iteration
    /// preconditioned by a single-precision AMG V-cycle
    /// ([`crate::amg::AmgHierarchyF32`]).
    CgAmgMixed,
    /// Conjugate gradient preconditioned by an aggregation-based algebraic
    /// multigrid V-cycle (see [`crate::amg`]).
    CgAmg,
    /// Conjugate gradient with zero-fill incomplete-Cholesky preconditioning.
    CgIncompleteCholesky,
    /// Conjugate gradient with Jacobi (diagonal) preconditioning.
    CgJacobi,
    /// BiCGSTAB with Jacobi preconditioning (or none if the diagonal is
    /// singular).
    BiCgStab,
    /// Conjugate gradient on the Tikhonov-shifted system `A + λI`.
    CgShifted,
    /// Sherman–Morrison–Woodbury rank-k update against a cached baseline
    /// factorization (see [`crate::smw`]) — no Krylov iteration at all.
    SmwSketch,
}

impl core::fmt::Display for SolveMethod {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let name = match self {
            SolveMethod::CgAmgMixed => "cg+amgf32",
            SolveMethod::CgAmg => "cg+amg",
            SolveMethod::CgIncompleteCholesky => "cg+ic0",
            SolveMethod::CgJacobi => "cg+jacobi",
            SolveMethod::BiCgStab => "bicgstab",
            SolveMethod::CgShifted => "cg+shift",
            SolveMethod::SmwSketch => "smw-sketch",
        };
        f.write_str(name)
    }
}

/// One abandoned rung of the escalation ladder.
#[derive(Debug, Clone, PartialEq)]
pub struct FallbackStep {
    /// The method that was attempted and abandoned.
    pub from: SolveMethod,
    /// The error that forced the escalation.
    pub error: SolveError,
}

/// Diagnostics for a [`solve_robust`] call: which method finally produced
/// the answer, every fallback taken on the way, and the final quality.
///
/// Equality ([`PartialEq`]) compares only the deterministic outcome and
/// ignores the wall-clock fields ([`SolveReport::setup_us`],
/// [`SolveReport::solve_us`]), so study results embedding reports stay
/// comparable with `assert_eq!` across threads and re-runs.
#[derive(Debug, Clone)]
pub struct SolveReport {
    /// Method that produced the accepted solution.
    pub method: SolveMethod,
    /// Every abandoned attempt, in order.
    pub fallbacks: Vec<FallbackStep>,
    /// Iterations performed by the successful method.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖` against the **original**
    /// system (even when the answer came from the shifted rung).
    pub relative_residual: f64,
    /// Diagonal (Tikhonov) shift applied, `0.0` unless the last rung ran.
    pub diagonal_shift: f64,
    /// Fine-grid operator the accepted rung iterated with: `"stencil"`
    /// when the matrix-free [`StencilOperator`] drove the SpMVs, `"csr"`
    /// otherwise (including every pure-f64 fallback rung).
    pub operator: &'static str,
    /// Arithmetic of the accepted rung's preconditioner: `"mixed"` for
    /// the f32 V-cycle refinement rung, `"f64"` everywhere else. The
    /// solution always meets the f64 tolerance either way.
    pub precision: &'static str,
    /// Wall-clock microseconds the accepted rung spent on preconditioner
    /// setup (AMG hierarchy build, IC(0) factorization, …); 0 when a
    /// cached hierarchy was reused. Excluded from equality.
    pub setup_us: u64,
    /// Wall-clock microseconds the accepted rung spent iterating.
    /// Excluded from equality.
    pub solve_us: u64,
}

impl PartialEq for SolveReport {
    fn eq(&self, other: &Self) -> bool {
        self.method == other.method
            && self.fallbacks == other.fallbacks
            && self.iterations == other.iterations
            && self.relative_residual == other.relative_residual
            && self.diagonal_shift == other.diagonal_shift
            && self.operator == other.operator
            && self.precision == other.precision
    }
}

impl SolveReport {
    /// True when the first-choice method did not produce the answer.
    pub fn was_rescued(&self) -> bool {
        !self.fallbacks.is_empty()
    }

    /// Compact single-line rendering for experiment logs, e.g.
    /// `cg+ic0->cg+jacobi->bicgstab (14 iters, res 3.2e-11)`.
    pub fn trail(&self) -> String {
        let mut s = String::new();
        for step in &self.fallbacks {
            s.push_str(&step.from.to_string());
            s.push_str("->");
        }
        s.push_str(&self.method.to_string());
        s.push_str(&format!(
            " ({} iters, res {:.1e})",
            self.iterations, self.relative_residual
        ));
        s
    }
}

/// Result of a successful [`solve_robust`]: the solution plus its report.
#[derive(Debug, Clone, PartialEq)]
pub struct RobustSolved {
    /// The solution vector.
    pub x: Vec<f64>,
    /// How it was obtained.
    pub report: SolveReport,
}

/// Options controlling [`solve_robust`].
#[derive(Debug, Clone, PartialEq)]
pub struct RobustOptions {
    /// Relative residual tolerance `‖r‖/‖b‖` at which a rung succeeds.
    pub tolerance: f64,
    /// Iteration budget per rung.
    pub max_iterations: usize,
    /// Stagnation window handed to the CG rungs (see
    /// [`CgOptions::stagnation_window`]); `0` disables early stagnation
    /// escalation.
    pub stagnation_window: usize,
    /// Relative Tikhonov shift for the last rung:
    /// `λ = shift_scale · max|diag(A)|`. `0.0` disables the rung.
    pub shift_scale: f64,
    /// Acceptance slack for the shifted rung: its solution is accepted if
    /// the residual against the original system is within
    /// `shift_acceptance × tolerance`.
    pub shift_acceptance: f64,
    /// Whether the ladder starts at IC(0) (rung 1). Disable for systems
    /// known to defeat incomplete factorization, saving the failed attempt.
    pub start_with_ic: bool,
    /// Whether the ladder tries CG + AMG before everything else (rung 0).
    /// Off by default: AMG setup only pays for itself on large systems or
    /// when the hierarchy is cached across re-solves, so callers (e.g.
    /// `vstack-pdn` above its node-count threshold) opt in explicitly.
    pub start_with_amg: bool,
    /// Whether the ladder tries the mixed-precision rung (f64 outer CG +
    /// f32 AMG V-cycle) before everything else. Off by default for the
    /// same reason as [`RobustOptions::start_with_amg`]: the hierarchy
    /// build and f32 conversion only pay for themselves on large systems
    /// or with caching. When the refinement breaks down or stagnates the
    /// ladder falls back to the pure-f64 rungs below, so enabling this is
    /// never a correctness risk.
    pub start_with_mixed: bool,
    /// Build options for the AMG rung's hierarchy.
    pub amg: AmgOptions,
    /// Cooperative cancellation handle, polled between ladder rungs. The
    /// default ([`CancelToken::never`]) can never fire. A fired token
    /// aborts the ladder with [`SolveError::Cancelled`] before the next
    /// rung starts; a rung already running completes normally. Tokens
    /// compare equal, so options equality is unaffected.
    pub cancel: CancelToken,
}

impl Default for RobustOptions {
    fn default() -> Self {
        RobustOptions {
            tolerance: 1e-10,
            max_iterations: 20_000,
            stagnation_window: 250,
            shift_scale: 1e-8,
            shift_acceptance: 100.0,
            start_with_ic: true,
            start_with_amg: false,
            start_with_mixed: false,
            amg: AmgOptions::default(),
            cancel: CancelToken::never(),
        }
    }
}

fn cg_options(o: &RobustOptions, pre: Preconditioner) -> CgOptions {
    CgOptions {
        tolerance: o.tolerance,
        max_iterations: o.max_iterations,
        preconditioner: pre,
        stagnation_window: o.stagnation_window,
    }
}

/// Is this error worth escalating past, or a structural caller bug that
/// every rung would reproduce identically?
fn is_structural(e: &SolveError) -> bool {
    matches!(
        e,
        SolveError::DimensionMismatch { .. }
            | SolveError::NotSquare { .. }
            | SolveError::NonFinite { .. }
            | SolveError::Cancelled
    )
}

/// Polls the cooperative cancellation token at a rung boundary.
fn check_cancelled(cancel: &CancelToken) -> Result<(), SolveError> {
    if cancel.is_cancelled() {
        vstack_obs::metrics::global().ladder_cancelled.inc();
        Err(SolveError::Cancelled)
    } else {
        Ok(())
    }
}

/// Records an abandoned rung: bumps the escalation counter exactly once
/// per recorded fallback step, keeping the two in lock-step for tests.
fn note_fallback(fallbacks: &mut Vec<FallbackStep>, from: SolveMethod, error: SolveError) {
    vstack_obs::metrics::global().ladder_escalations.inc();
    fallbacks.push(FallbackStep { from, error });
}

fn shifted_matrix(a: &CsrMatrix, lambda: f64) -> CsrMatrix {
    let mut t = TripletMatrix::new(a.rows(), a.cols());
    for (r, c, v) in a.iter() {
        t.push(r, c, v);
    }
    for i in 0..a.rows() {
        t.push(i, i, lambda);
    }
    t.to_csr()
}

/// Solves `A x = b` through the deterministic escalation ladder described
/// in the [module docs](self), reporting every fallback taken.
///
/// # Errors
///
/// * [`SolveError::NonFinite`] / shape errors immediately — these are
///   caller bugs no fallback can fix.
/// * Otherwise, the error of the **last** rung attempted, with all earlier
///   failures necessarily having occurred first (the ladder never skips
///   downward).
///
/// # Example
///
/// ```
/// use vstack_sparse::robust::{solve_robust, RobustOptions};
/// use vstack_sparse::CsrMatrix;
///
/// # fn main() -> Result<(), vstack_sparse::SolveError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (1, 1, 9.0)]);
/// let sol = solve_robust(&a, &[8.0, 27.0], None, &RobustOptions::default())?;
/// assert!((sol.x[0] - 2.0).abs() < 1e-9);
/// assert!(!sol.report.was_rescued());
/// # Ok(())
/// # }
/// ```
pub fn solve_robust(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &RobustOptions,
) -> Result<RobustSolved, SolveError> {
    solve_robust_ws(a, b, guess, options, &mut SolveWorkspace::new())
}

/// Like [`solve_robust`], but every rung of the ladder borrows its work
/// vectors from `ws` instead of allocating them — the entry point for
/// loops that solve many related systems (fault sweeps, wearout rounds).
/// Results are bit-identical to [`solve_robust`].
///
/// # Errors
///
/// Same as [`solve_robust`].
pub fn solve_robust_ws(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &RobustOptions,
    ws: &mut SolveWorkspace,
) -> Result<RobustSolved, SolveError> {
    solve_robust_cached_ws(a, b, guess, options, ws, &mut None)
}

/// Like [`solve_robust_ws`], but the AMG rung's hierarchy lives in a
/// caller-owned cache slot. When [`RobustOptions::start_with_amg`] is set
/// and the slot is empty, the rung builds the hierarchy and *leaves it in
/// the slot*; subsequent calls reuse it and report
/// [`SolveReport::setup_us`] of 0. `vstack-pdn` holds the slot in its
/// `SolveScratch`, clearing it whenever the sparsity pattern changes, so
/// fault/sweep/warm-start re-solves pay AMG setup once per pattern.
///
/// The cached hierarchy is *frozen*: re-solves after value-only re-stamps
/// keep using it (CG converges against the current matrix under any fixed
/// SPD preconditioner; only iteration counts drift as values do).
///
/// # Errors
///
/// Same as [`solve_robust`].
pub fn solve_robust_cached_ws(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &RobustOptions,
    ws: &mut SolveWorkspace,
    amg_cache: &mut Option<AmgHierarchy>,
) -> Result<RobustSolved, SolveError> {
    solve_robust_operator_ws(a, None, b, guess, options, ws, amg_cache, &mut None)
}

/// Builds the f64 hierarchy into the cache slot if absent, returning the
/// build time in microseconds (0 on a cache hit). A failed build is
/// remembered in `prior_err` so a later rung sharing the slot reports the
/// same error without paying for a second doomed build.
fn ensure_hierarchy(
    a: &CsrMatrix,
    options: &RobustOptions,
    ws: &mut SolveWorkspace,
    amg_cache: &mut Option<AmgHierarchy>,
    prior_err: &mut Option<SolveError>,
) -> Result<u64, SolveError> {
    if amg_cache.is_some() {
        return Ok(0);
    }
    if let Some(e) = prior_err.clone() {
        return Err(e);
    }
    let timer = Instant::now();
    match AmgHierarchy::build_ws(a, &options.amg, ws) {
        Ok(h) => {
            let us = timer.elapsed().as_micros() as u64;
            *amg_cache = Some(h);
            Ok(us)
        }
        Err(e) => {
            *prior_err = Some(e.clone());
            Err(e)
        }
    }
}

/// The full ladder: [`solve_robust_cached_ws`] plus two opt-in hot-path
/// ingredients.
///
/// * `stencil` — a matrix-free [`StencilOperator`] extracted from `a`.
///   When present, the mixed-precision rung drives its outer CG SpMVs
///   through it instead of the CSR (bit-identical by the stencil's
///   extraction contract, just faster); every pure-f64 fallback rung
///   deliberately stays on the CSR so a stencil-side surprise can never
///   take down the whole ladder. The accepted rung's choice is recorded
///   in [`SolveReport::operator`].
/// * `amg_f32_cache` — a caller-owned slot for the f32 mirror of the
///   cached f64 hierarchy, filled on first use by the mixed rung (see
///   [`RobustOptions::start_with_mixed`]) and cleared by the caller
///   whenever the f64 slot is. [`SolveReport::precision`] records whether
///   the accepted rung used it.
///
/// `vstack-pdn` routes every scenario solve through here with both caches
/// held in its `SolveScratch`.
///
/// # Errors
///
/// Same as [`solve_robust`].
#[allow(clippy::too_many_arguments)]
pub fn solve_robust_operator_ws(
    a: &CsrMatrix,
    stencil: Option<&StencilOperator>,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &RobustOptions,
    ws: &mut SolveWorkspace,
    amg_cache: &mut Option<AmgHierarchy>,
    amg_f32_cache: &mut Option<AmgHierarchyF32>,
) -> Result<RobustSolved, SolveError> {
    if a.cols() != a.rows() {
        return Err(SolveError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != a.rows() {
        return Err(SolveError::DimensionMismatch {
            expected: a.rows(),
            found: b.len(),
        });
    }
    validate_finite(a, b, guess)?;

    let _span = vstack_obs::span!("solve_robust");
    vstack_obs::metrics::global().ladder_solves.inc();
    check_cancelled(&options.cancel)?;
    let mut fallbacks = Vec::new();

    let accept = |method: SolveMethod,
                  operator: &'static str,
                  precision: &'static str,
                  solved: Solved,
                  fallbacks: &mut Vec<FallbackStep>| {
        if !fallbacks.is_empty() {
            vstack_obs::metrics::global().ladder_rescued.inc();
        }
        RobustSolved {
            x: solved.x,
            report: SolveReport {
                method,
                fallbacks: core::mem::take(fallbacks),
                iterations: solved.iterations,
                relative_residual: solved.relative_residual,
                diagonal_shift: 0.0,
                operator,
                precision,
                setup_us: solved.setup_us,
                solve_us: solved.solve_us,
            },
        }
    };

    // A failed f64 hierarchy build is shared between the mixed and the
    // pure-f64 AMG rungs; each still records its own fallback step.
    let mut amg_build_err: Option<SolveError> = None;

    // Rung −1: mixed-precision CG + f32 AMG (opt-in). The f64 hierarchy
    // is built (or reused) from the shared cache slot, mirrored into f32
    // once per pattern, and the outer CG runs through the stencil
    // operator when one was provided.
    if options.start_with_mixed {
        match ensure_hierarchy(a, options, ws, amg_cache, &mut amg_build_err) {
            Err(e) if is_structural(&e) => return Err(e),
            Err(e) => note_fallback(&mut fallbacks, SolveMethod::CgAmgMixed, e),
            Ok(mut build_us) => {
                if amg_f32_cache.is_none() {
                    let timer = Instant::now();
                    let h = amg_cache.as_ref().expect("hierarchy just ensured");
                    *amg_f32_cache = Some(AmgHierarchyF32::from_hierarchy(h));
                    build_us += timer.elapsed().as_micros() as u64;
                }
                let h32 = amg_f32_cache.as_ref().expect("f32 mirror just ensured");
                let op: &dyn LinearOperator = match stencil {
                    Some(s) => s,
                    None => a,
                };
                match cg_with_amg_f32_ws(
                    op,
                    b,
                    guess,
                    &cg_options(options, Preconditioner::Amg),
                    h32,
                    ws,
                ) {
                    Ok(mut solved) => {
                        solved.setup_us += build_us;
                        let operator = if stencil.is_some() { "stencil" } else { "csr" };
                        return Ok(accept(
                            SolveMethod::CgAmgMixed,
                            operator,
                            "mixed",
                            solved,
                            &mut fallbacks,
                        ));
                    }
                    Err(e) if is_structural(&e) => return Err(e),
                    Err(e) => note_fallback(&mut fallbacks, SolveMethod::CgAmgMixed, e),
                }
            }
        }
    }

    // Rung 0: CG + AMG (opt-in). Build into the caller's cache slot when
    // empty; any numerical failure — degenerate coarsening included —
    // drops to the single-level rungs below. Deliberately pure f64 and
    // pure CSR: this is the fallback target when the mixed rung above
    // stagnates or breaks down.
    if options.start_with_amg {
        check_cancelled(&options.cancel)?;
        match ensure_hierarchy(a, options, ws, amg_cache, &mut amg_build_err) {
            Err(e) if is_structural(&e) => return Err(e),
            Err(e) => note_fallback(&mut fallbacks, SolveMethod::CgAmg, e),
            Ok(build_us) => {
                let h = amg_cache.as_ref().expect("hierarchy just ensured");
                match cg_with_amg_ws(
                    a,
                    b,
                    guess,
                    &cg_options(options, Preconditioner::Amg),
                    h,
                    ws,
                ) {
                    Ok(mut solved) => {
                        solved.setup_us += build_us;
                        return Ok(accept(
                            SolveMethod::CgAmg,
                            "csr",
                            "f64",
                            solved,
                            &mut fallbacks,
                        ));
                    }
                    Err(e) if is_structural(&e) => return Err(e),
                    Err(e) => note_fallback(&mut fallbacks, SolveMethod::CgAmg, e),
                }
            }
        }
    }

    // Rung 1: CG + IC(0).
    check_cancelled(&options.cancel)?;
    if options.start_with_ic {
        match cg_with_guess_ws(
            a,
            b,
            guess,
            &cg_options(options, Preconditioner::IncompleteCholesky),
            ws,
        ) {
            Ok(solved) => {
                return Ok(accept(
                    SolveMethod::CgIncompleteCholesky,
                    "csr",
                    "f64",
                    solved,
                    &mut fallbacks,
                ))
            }
            Err(e) if is_structural(&e) => return Err(e),
            Err(e) => note_fallback(&mut fallbacks, SolveMethod::CgIncompleteCholesky, e),
        }
    }

    // Rung 2: CG + Jacobi.
    check_cancelled(&options.cancel)?;
    match cg_with_guess_ws(
        a,
        b,
        guess,
        &cg_options(options, Preconditioner::Jacobi),
        ws,
    ) {
        Ok(solved) => {
            return Ok(accept(
                SolveMethod::CgJacobi,
                "csr",
                "f64",
                solved,
                &mut fallbacks,
            ))
        }
        Err(e) if is_structural(&e) => return Err(e),
        Err(e) => note_fallback(&mut fallbacks, SolveMethod::CgJacobi, e),
    }

    // Rung 3: BiCGSTAB. Use Jacobi unless the diagonal itself is singular
    // (the very error rung 2 may have just hit), in which case run
    // unpreconditioned.
    check_cancelled(&options.cancel)?;
    let bicg_pre = if fallbacks
        .iter()
        .any(|f| matches!(f.error, SolveError::SingularDiagonal { .. }))
    {
        Preconditioner::None
    } else {
        Preconditioner::Jacobi
    };
    let bicg_opts = BiCgStabOptions {
        tolerance: options.tolerance,
        max_iterations: options.max_iterations,
        preconditioner: bicg_pre,
    };
    match bicgstab_with_guess_ws(a, b, guess, &bicg_opts, ws) {
        Ok(solved) => {
            return Ok(accept(
                SolveMethod::BiCgStab,
                "csr",
                "f64",
                solved,
                &mut fallbacks,
            ))
        }
        Err(e) if is_structural(&e) => return Err(e),
        Err(e) => note_fallback(&mut fallbacks, SolveMethod::BiCgStab, e),
    }

    // Rung 4: Tikhonov-shifted CG. The shift regularizes a near-singular
    // operator; the answer is only accepted if it actually satisfies the
    // *original* system to within the acceptance slack.
    check_cancelled(&options.cancel)?;
    let max_diag = a
        .diagonal()
        .into_iter()
        .fold(0.0f64, |acc, d| acc.max(d.abs()));
    let lambda = options.shift_scale * max_diag;
    if lambda > 0.0 {
        let shifted = shifted_matrix(a, lambda);
        match cg_with_guess_ws(
            &shifted,
            b,
            guess,
            &cg_options(options, Preconditioner::Jacobi),
            ws,
        ) {
            Ok(solved) => {
                let b_norm = crate::vecops::norm2(b);
                let true_res = a.residual_norm(&solved.x, b) / b_norm.max(f64::MIN_POSITIVE);
                if true_res <= options.shift_acceptance * options.tolerance {
                    vstack_obs::metrics::global().ladder_rescued.inc();
                    return Ok(RobustSolved {
                        x: solved.x,
                        report: SolveReport {
                            method: SolveMethod::CgShifted,
                            fallbacks,
                            iterations: solved.iterations,
                            relative_residual: true_res,
                            diagonal_shift: lambda,
                            operator: "csr",
                            precision: "f64",
                            setup_us: solved.setup_us,
                            solve_us: solved.solve_us,
                        },
                    });
                }
                return Err(SolveError::NotConverged {
                    iterations: solved.iterations,
                    residual: true_res,
                });
            }
            Err(e) if is_structural(&e) => return Err(e),
            Err(e) => return Err(e),
        }
    }

    // Ladder exhausted; surface the most recent failure.
    Err(fallbacks
        .pop()
        .map(|f| f.error)
        .unwrap_or(SolveError::Breakdown { iterations: 0 }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    /// Kershaw's classic 4×4 SPD matrix on which zero-fill incomplete
    /// Cholesky breaks down with a negative pivot.
    fn kershaw() -> CsrMatrix {
        let vals = [
            [3.0, -2.0, 0.0, 2.0],
            [-2.0, 3.0, -2.0, 0.0],
            [0.0, -2.0, 3.0, -2.0],
            [2.0, 0.0, -2.0, 3.0],
        ];
        let mut t = TripletMatrix::new(4, 4);
        for (r, row) in vals.iter().enumerate() {
            for (c, &v) in row.iter().enumerate() {
                if v != 0.0 {
                    t.push(r, c, v);
                }
            }
        }
        t.to_csr()
    }

    #[test]
    fn healthy_system_takes_first_rung() {
        let a = laplacian_1d(50);
        let b = vec![1.0; 50];
        let sol = solve_robust(&a, &b, None, &RobustOptions::default()).expect("solves");
        assert_eq!(sol.report.method, SolveMethod::CgIncompleteCholesky);
        assert!(!sol.report.was_rescued());
        assert!(a.residual_norm(&sol.x, &b) < 1e-8);
    }

    #[test]
    fn kershaw_defeats_ic0_but_is_rescued() {
        let a = kershaw();
        let x_true = [1.0, 2.0, -1.0, 0.5];
        let b = a.mul_vec(&x_true);
        let sol = solve_robust(&a, &b, None, &RobustOptions::default()).expect("rescued");
        assert!(sol.report.was_rescued(), "trail: {}", sol.report.trail());
        assert_eq!(
            sol.report.fallbacks[0].from,
            SolveMethod::CgIncompleteCholesky
        );
        for (u, v) in sol.x.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn warm_start_is_honored() {
        let a = laplacian_1d(200);
        let b = vec![1.0; 200];
        let opts = RobustOptions::default();
        let cold = solve_robust(&a, &b, None, &opts).expect("cold");
        let warm = solve_robust(&a, &b, Some(&cold.x), &opts).expect("warm");
        assert!(warm.report.iterations <= 1);
    }

    #[test]
    fn non_finite_inputs_fail_fast() {
        let a = laplacian_1d(4);
        let err = solve_robust(
            &a,
            &[1.0, f64::NAN, 0.0, 0.0],
            None,
            &RobustOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SolveError::NonFinite {
                what: "rhs",
                index: 1
            }
        ));
        let err = solve_robust(
            &a,
            &[1.0; 4],
            Some(&[0.0, 0.0, f64::INFINITY, 0.0]),
            &RobustOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(err, SolveError::NonFinite { what: "guess", .. }));
    }

    #[test]
    fn zero_diagonal_escalates_to_unpreconditioned_bicgstab() {
        // Symmetric indefinite with a zero diagonal entry: IC(0) and Jacobi
        // are both impossible, but the system is well-posed.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        let b = [2.0, 5.0];
        let sol = solve_robust(&a, &b, None, &RobustOptions::default()).expect("rescued");
        assert!(sol.report.was_rescued());
        assert!(sol
            .report
            .fallbacks
            .iter()
            .any(|f| matches!(f.error, SolveError::SingularDiagonal { .. })));
        // x = (b1 - b0, b0) for this matrix.
        assert!((sol.x[0] - 3.0).abs() < 1e-8, "x = {:?}", sol.x);
        assert!((sol.x[1] - 2.0).abs() < 1e-8);
    }

    #[test]
    fn singular_system_reports_failure_not_panic() {
        // Exactly singular: two identical rows, inconsistent rhs.
        let a =
            CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)]);
        let err = solve_robust(&a, &[1.0, 2.0], None, &RobustOptions::default()).unwrap_err();
        assert!(!is_structural(&err), "numerical failure expected: {err}");
    }

    #[test]
    fn amg_rung_takes_priority_and_caches_the_hierarchy() {
        let a = laplacian_1d(600);
        let b = vec![1.0; 600];
        let opts = RobustOptions {
            start_with_amg: true,
            ..RobustOptions::default()
        };
        let mut cache = None;
        let cold =
            solve_robust_cached_ws(&a, &b, None, &opts, &mut SolveWorkspace::new(), &mut cache)
                .expect("amg rung solves");
        assert_eq!(cold.report.method, SolveMethod::CgAmg);
        assert!(!cold.report.was_rescued(), "trail: {}", cold.report.trail());
        assert!(a.residual_norm(&cold.x, &b) < 1e-7);
        assert!(cache.is_some(), "hierarchy must be left in the cache slot");
        let warm =
            solve_robust_cached_ws(&a, &b, None, &opts, &mut SolveWorkspace::new(), &mut cache)
                .expect("cached re-solve");
        assert_eq!(warm.report.setup_us, 0, "cached hierarchy skips setup");
        assert_eq!(cold, warm, "cached re-solve must be bit-identical");
    }

    #[test]
    fn degenerate_coarsening_falls_through_to_ic0() {
        // Diagonal matrix above the AMG direct-solve size: every node
        // aggregates into a singleton, coarsening stalls, and the ladder
        // must carry on to IC(0) with the failure on record.
        let n = 300;
        let triplets: Vec<_> = (0..n).map(|i| (i, i, 2.0)).collect();
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        let b = vec![1.0; n];
        let opts = RobustOptions {
            start_with_amg: true,
            ..RobustOptions::default()
        };
        let mut cache = None;
        let sol =
            solve_robust_cached_ws(&a, &b, None, &opts, &mut SolveWorkspace::new(), &mut cache)
                .expect("rescued by ic0");
        assert_eq!(sol.report.method, SolveMethod::CgIncompleteCholesky);
        assert!(
            cache.is_none(),
            "no hierarchy to cache after a failed build"
        );
        assert!(
            matches!(
                sol.report.fallbacks.first(),
                Some(FallbackStep {
                    from: SolveMethod::CgAmg,
                    error: SolveError::CoarseningFailed { .. },
                })
            ),
            "trail: {}",
            sol.report.trail()
        );
        assert!(sol.report.trail().starts_with("cg+amg->cg+ic0"));
    }

    #[test]
    fn trail_renders_methods_in_order() {
        let a = kershaw();
        let b = a.mul_vec(&[1.0, 1.0, 1.0, 1.0]);
        let sol = solve_robust(&a, &b, None, &RobustOptions::default()).expect("rescued");
        let trail = sol.report.trail();
        assert!(trail.starts_with("cg+ic0->"), "trail: {trail}");
    }
}
