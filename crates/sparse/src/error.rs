use std::error::Error;
use std::fmt;

/// Error returned when a linear solve cannot produce a solution.
///
/// All solver entry points in this crate return `Result<_, SolveError>`.
/// The variants distinguish *structural* problems (caller bugs, e.g. shape
/// mismatches) from *numerical* problems (singular matrices, stagnating
/// iterations), because callers typically want to panic on the former and
/// recover — e.g. by switching solvers or loosening tolerances — on the
/// latter.
#[derive(Debug, Clone, PartialEq)]
pub enum SolveError {
    /// Matrix and right-hand-side dimensions are inconsistent.
    DimensionMismatch {
        /// What the operation expected (rows/cols description).
        expected: usize,
        /// What was actually supplied.
        found: usize,
    },
    /// The matrix must be square for this operation but is not.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// A zero (or numerically negligible) pivot was encountered during a
    /// direct factorization; the matrix is singular to working precision.
    SingularMatrix {
        /// Pivot index at which the factorization broke down.
        pivot: usize,
    },
    /// An iterative solver failed to reach the requested tolerance.
    NotConverged {
        /// Iterations performed before giving up.
        iterations: usize,
        /// Relative residual at the final iterate.
        residual: f64,
    },
    /// The iteration broke down (division by a vanishing inner product).
    Breakdown {
        /// Iteration at which breakdown occurred.
        iterations: usize,
    },
    /// A diagonal entry is zero to working precision, so a diagonal
    /// (Jacobi) preconditioner cannot be formed. Previously this was
    /// silently masked by substituting `1.0`; it is now surfaced so the
    /// escalation ladder (or the caller) can pick a different method.
    SingularDiagonal {
        /// Row whose diagonal entry vanishes.
        row: usize,
    },
    /// A non-finite (NaN or infinite) value was found in the inputs.
    /// Detected up front so malformed systems fail fast instead of
    /// iterating to a confusing [`SolveError::Breakdown`].
    NonFinite {
        /// Which input held the value: `"matrix"`, `"rhs"` or `"guess"`.
        what: &'static str,
        /// Index (row for the matrix, element otherwise) of the first
        /// offending value.
        index: usize,
    },
    /// A triplet fell outside a CSR matrix's stored sparsity pattern during
    /// value re-stamping ([`crate::CsrMatrix::set_values_from_triplets`]).
    /// Callers caching a symbolic pattern across re-solves treat this as
    /// "the structure changed — rebuild from scratch".
    PatternMismatch {
        /// Row of the offending triplet.
        row: usize,
        /// Column of the offending triplet.
        col: usize,
    },
    /// Algebraic-multigrid coarsening failed to shrink the problem: the
    /// aggregation pass produced (nearly) as many aggregates as unknowns,
    /// so another level would gain nothing. Typical causes are matrices
    /// with no strong off-diagonal couplings (e.g. diagonal matrices) —
    /// a *numerical* condition, so the escalation ladder falls through to
    /// a single-level preconditioner instead of failing the solve.
    CoarseningFailed {
        /// Multigrid level at which coarsening stalled (0 = finest).
        level: usize,
        /// Unknowns at the stalled level.
        unknowns: usize,
        /// Aggregates the pass produced for those unknowns.
        aggregates: usize,
    },
    /// The residual stopped improving for a full stagnation window before
    /// reaching tolerance. Distinct from [`SolveError::NotConverged`]:
    /// stagnation is detected early, leaving iteration budget for a
    /// fallback method.
    Stagnated {
        /// Iterations performed when stagnation was declared.
        iterations: usize,
        /// Relative residual at the stagnated iterate.
        residual: f64,
    },
    /// The solve was abandoned because its [`crate::cancel::CancelToken`]
    /// fired — a request deadline passed or a shutdown/drain was
    /// requested. The system may well be solvable; the caller chose to
    /// stop waiting. Never escalated past: every further rung would waste
    /// the same already-expired budget.
    Cancelled,
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
            SolveError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            SolveError::SingularMatrix { pivot } => {
                write!(
                    f,
                    "matrix is singular to working precision at pivot {pivot}"
                )
            }
            SolveError::NotConverged {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver did not converge after {iterations} iterations \
                 (relative residual {residual:.3e})"
            ),
            SolveError::Breakdown { iterations } => {
                write!(f, "iterative solver broke down at iteration {iterations}")
            }
            SolveError::SingularDiagonal { row } => {
                write!(
                    f,
                    "diagonal entry at row {row} is zero to working precision; \
                     cannot form a jacobi preconditioner"
                )
            }
            SolveError::NonFinite { what, index } => {
                write!(f, "non-finite value in {what} at index {index}")
            }
            SolveError::PatternMismatch { row, col } => {
                write!(
                    f,
                    "entry ({row}, {col}) is outside the stored sparsity pattern; \
                     the matrix structure changed and must be rebuilt"
                )
            }
            SolveError::CoarseningFailed {
                level,
                unknowns,
                aggregates,
            } => write!(
                f,
                "amg coarsening stalled at level {level}: {aggregates} aggregates \
                 for {unknowns} unknowns"
            ),
            SolveError::Stagnated {
                iterations,
                residual,
            } => write!(
                f,
                "iterative solver stagnated after {iterations} iterations \
                 (relative residual {residual:.3e})"
            ),
            SolveError::Cancelled => {
                write!(f, "solve cancelled (deadline exceeded or shutdown)")
            }
        }
    }
}

impl Error for SolveError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let e = SolveError::NotConverged {
            iterations: 10,
            residual: 0.5,
        };
        let s = e.to_string();
        assert!(s.contains("10"));
        assert!(s.starts_with("iterative"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SolveError>();
    }
}
