use crate::CsrMatrix;

/// Coordinate-format (COO) sparse matrix builder.
///
/// Nodal-analysis "stamping" naturally produces duplicate `(row, col)`
/// entries — each circuit element adds its conductance contribution to the
/// same few matrix cells. `TripletMatrix` accepts duplicates and sums them
/// during [`TripletMatrix::to_csr`], so element stamping code can stay
/// simple.
///
/// # Example
///
/// ```
/// use vstack_sparse::TripletMatrix;
///
/// let mut t = TripletMatrix::new(2, 2);
/// t.push(0, 0, 1.0);
/// t.push(0, 0, 2.0); // duplicate: summed
/// t.push(1, 1, 4.0);
/// let m = t.to_csr();
/// assert_eq!(m.get(0, 0), 3.0);
/// assert_eq!(m.get(1, 1), 4.0);
/// assert_eq!(m.get(0, 1), 0.0);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TripletMatrix {
    rows: usize,
    cols: usize,
    entries: Vec<(usize, usize, f64)>,
}

impl TripletMatrix {
    /// Creates an empty `rows × cols` builder.
    pub fn new(rows: usize, cols: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::new(),
        }
    }

    /// Creates an empty builder with room for `cap` entries.
    pub fn with_capacity(rows: usize, cols: usize, cap: usize) -> Self {
        TripletMatrix {
            rows,
            cols,
            entries: Vec::with_capacity(cap),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of raw (pre-deduplication) entries pushed so far.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if no entries have been pushed.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Adds `value` at `(row, col)`. Duplicates are summed at conversion.
    ///
    /// Zero values are kept (they may still define the sparsity pattern,
    /// which keeps repeated factorizations structurally identical).
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn push(&mut self, row: usize, col: usize, value: f64) {
        assert!(
            row < self.rows && col < self.cols,
            "triplet entry ({row}, {col}) out of bounds for {}x{} matrix",
            self.rows,
            self.cols
        );
        self.entries.push((row, col, value));
    }

    /// Stamps a two-terminal conductance `g` between nodes `a` and `b`.
    ///
    /// This is the fundamental nodal-analysis operation: adds `+g` to the
    /// diagonals `(a,a)`/`(b,b)` and `−g` to the off-diagonals. Either node
    /// may be `None` to represent the ground/reference node (contributions
    /// involving ground are dropped).
    pub fn stamp_conductance(&mut self, a: Option<usize>, b: Option<usize>, g: f64) {
        if let Some(i) = a {
            self.push(i, i, g);
        }
        if let Some(j) = b {
            self.push(j, j, g);
        }
        if let (Some(i), Some(j)) = (a, b) {
            self.push(i, j, -g);
            self.push(j, i, -g);
        }
    }

    /// Converts to compressed-sparse-row form, summing duplicate entries.
    ///
    /// Entries that sum exactly to zero are retained so that the sparsity
    /// pattern is deterministic for a given stamping sequence.
    pub fn to_csr(&self) -> CsrMatrix {
        CsrMatrix::from_triplets(self.rows, self.cols, &self.entries)
    }

    /// Iterates over the raw `(row, col, value)` entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &(usize, usize, f64)> {
        self.entries.iter()
    }

    /// The raw `(row, col, value)` entries in insertion order — the slice
    /// form [`crate::CsrMatrix::set_values_from_triplets`] re-stamps from.
    pub fn entries(&self) -> &[(usize, usize, f64)] {
        &self.entries
    }
}

impl Extend<(usize, usize, f64)> for TripletMatrix {
    fn extend<I: IntoIterator<Item = (usize, usize, f64)>>(&mut self, iter: I) {
        for (r, c, v) in iter {
            self.push(r, c, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stamp_conductance_both_nodes() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(Some(0), Some(1), 2.0);
        let m = t.to_csr();
        assert_eq!(m.get(0, 0), 2.0);
        assert_eq!(m.get(1, 1), 2.0);
        assert_eq!(m.get(0, 1), -2.0);
        assert_eq!(m.get(1, 0), -2.0);
    }

    #[test]
    fn stamp_conductance_to_ground() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(Some(1), None, 5.0);
        let m = t.to_csr();
        assert_eq!(m.get(1, 1), 5.0);
        assert_eq!(m.get(0, 0), 0.0);
        assert_eq!(m.get(0, 1), 0.0);
    }

    #[test]
    fn stamp_conductance_ground_to_ground_is_noop() {
        let mut t = TripletMatrix::new(2, 2);
        t.stamp_conductance(None, None, 5.0);
        assert!(t.is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn push_out_of_bounds_panics() {
        let mut t = TripletMatrix::new(2, 2);
        t.push(2, 0, 1.0);
    }

    #[test]
    fn extend_collects_entries() {
        let mut t = TripletMatrix::new(3, 3);
        t.extend(vec![(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0)]);
        assert_eq!(t.len(), 3);
        let m = t.to_csr();
        assert_eq!(m.get(2, 2), 3.0);
    }
}
