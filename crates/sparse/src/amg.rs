//! Aggregation-based algebraic multigrid (AMG) preconditioner.
//!
//! Jacobi- and IC(0)-preconditioned CG iteration counts on PDN grid
//! Laplacians grow with grid resolution (roughly `O(n^0.5)` iterations),
//! which makes the total solve cost super-linear exactly where the paper's
//! experiments need it flat: many-layer, fine-grid sweeps. A multigrid
//! V-cycle removes low-frequency error components that point smoothers
//! cannot, giving iteration counts that are nearly independent of problem
//! size.
//!
//! This module implements classic *smoothed aggregation* ([Vaněk, Mandel,
//! Brezina 1996]-style) with deliberately boring, deterministic choices:
//!
//! * **Strength of connection**: `|a_ij| ≥ θ·√(a_ii·a_jj)`.
//! * **Aggregation**: greedy neighborhood aggregation in ascending node
//!   order — pass 1 seeds an aggregate from each node whose strong
//!   neighbors are all unassigned; pass 2 attaches leftovers to the
//!   strongest pass-1 neighbor aggregate (ties broken by lowest column
//!   index); pass 3 turns stragglers into singletons. No randomness, no
//!   data races: the hierarchy is bit-identical across runs and thread
//!   counts.
//! * **Prolongation**: the piecewise-constant tentative operator smoothed
//!   by one damped-Jacobi step, `P = (I − ω D⁻¹ A)·T`.
//! * **Coarse operators**: Galerkin triple products `Aᶜ = Pᵀ(A·P)` via
//!   [`CsrMatrix::matmul`].
//! * **Cycle**: a V-cycle with damped-Jacobi pre/post smoothing and a
//!   dense Cholesky direct solve at the coarsest level. Equal pre/post
//!   sweep counts keep the preconditioner symmetric positive definite, as
//!   CG requires.
//!
//! [`AmgHierarchy::apply`] is allocation-free: every per-level vector is
//! preallocated at build time and reused via interior mutability. SpMVs go
//! through [`CsrMatrix::mul_vec_into`], which routes large matrices
//! through the scoped [`crate::pool::ThreadPool`] with bit-identical
//! row-partitioned results, so the whole preconditioner inherits the
//! crate's cross-thread determinism guarantee.
//!
//! Coarsening can *degenerate* — a diagonal-dominant matrix with no strong
//! couplings aggregates into singletons and the "coarse" grid is as large
//! as the fine one. [`AmgHierarchy::build`] detects this and returns
//! [`SolveError::CoarseningFailed`] so the escalation ladder in
//! [`crate::robust`] can fall back to single-level preconditioners instead
//! of looping forever or exploding memory.

use std::cell::RefCell;

use crate::dense::{CholeskyFactors, DenseMatrix};
use crate::solver::{SetupScratch, SolveWorkspace};
use crate::vecops::norm_inf;
use crate::{CsrMatrix, SolveError};

/// Tuning knobs for [`AmgHierarchy::build`].
///
/// The defaults are tuned for the conductance Laplacians this crate
/// actually solves (2-D grids stacked into 3-D PDNs, SPD, M-matrix-like
/// with occasional rank-1 converter stamps) and should rarely need
/// changing.
#[derive(Debug, Clone, PartialEq)]
pub struct AmgOptions {
    /// Strength-of-connection threshold θ: `j` is a strong neighbor of `i`
    /// when `|a_ij| ≥ θ·√(a_ii·a_jj)`. Smaller values aggregate more
    /// aggressively.
    pub strength_theta: f64,
    /// Damping factor ω for the Jacobi pre/post smoother (2/3 is optimal
    /// for model Laplacians).
    pub smoother_omega: f64,
    /// Damping factor for prolongation smoothing, `P = (I − ω D⁻¹ A)·T`.
    /// `0.0` disables smoothing (plain aggregation).
    pub prolongation_omega: f64,
    /// Pre-smoothing sweeps per V-cycle level.
    pub pre_sweeps: usize,
    /// Post-smoothing sweeps per V-cycle level. Keep equal to
    /// [`AmgOptions::pre_sweeps`] so the preconditioner stays symmetric.
    pub post_sweeps: usize,
    /// Hard cap on hierarchy depth; exceeded only when coarsening stalls,
    /// which is reported as [`SolveError::CoarseningFailed`].
    pub max_levels: usize,
    /// Problems at or below this size are solved directly with a dense
    /// Cholesky factorization instead of coarsening further.
    pub direct_max: usize,
    /// An aggregation pass must shrink the unknown count below
    /// `ratio · n`, else coarsening is declared degenerate.
    pub max_coarsening_ratio: f64,
}

impl Default for AmgOptions {
    fn default() -> Self {
        AmgOptions {
            strength_theta: 0.08,
            smoother_omega: 2.0 / 3.0,
            prolongation_omega: 2.0 / 3.0,
            pre_sweeps: 1,
            post_sweeps: 1,
            max_levels: 30,
            direct_max: 128,
            max_coarsening_ratio: 0.75,
        }
    }
}

/// One non-coarsest level of the hierarchy.
#[derive(Debug, Clone)]
struct Level {
    /// The operator at this level (level 0 holds a copy of the fine
    /// matrix).
    a: CsrMatrix,
    /// `1 / a_ii`, validated positive and finite at build time.
    inv_diag: Vec<f64>,
    /// Prolongation from the next-coarser level into this one.
    p: CsrMatrix,
    /// Restriction (`Pᵀ`) from this level into the next-coarser one.
    pt: CsrMatrix,
}

/// Per-level work vectors, preallocated once so `apply` never allocates.
#[derive(Debug, Clone)]
struct Scratch {
    /// Solution iterate per fine level.
    x: Vec<Vec<f64>>,
    /// Right-hand side (restricted residual) per fine level.
    r: Vec<Vec<f64>>,
    /// General temporary (`A·x`, residuals, prolonged corrections).
    t: Vec<Vec<f64>>,
    /// Coarsest-level vector, solved in place by the dense factor.
    coarse: Vec<f64>,
}

/// A built multigrid hierarchy: a frozen, reusable preconditioner.
///
/// Built once per sparsity pattern (and values), then applied as `z ≈
/// A⁻¹ r` inside CG. [`crate::pdn`]-style callers cache it across
/// re-solves; CG converges against whatever the *current* matrix is, the
/// hierarchy only has to stay SPD to keep CG sound.
///
/// The type is `Send` but not `Sync` (scratch buffers use a [`RefCell`]);
/// each solver thread owns its own hierarchy.
#[derive(Debug, Clone)]
pub struct AmgHierarchy {
    /// Fine-level dimension.
    n: usize,
    /// Smoother damping, copied from build options.
    smoother_omega: f64,
    /// Pre-smoothing sweeps.
    pre_sweeps: usize,
    /// Post-smoothing sweeps.
    post_sweeps: usize,
    /// Fine-to-coarse levels, finest first. Empty when the whole problem
    /// fits the direct solver.
    levels: Vec<Level>,
    /// Dense Cholesky factor of the coarsest operator.
    coarse: CholeskyFactors,
    scratch: RefCell<Scratch>,
}

impl AmgHierarchy {
    /// Builds the hierarchy for a symmetric positive-definite matrix.
    ///
    /// Setup is serial and deterministic; cost is a small constant factor
    /// over one fine-grid SpMV per level.
    ///
    /// # Errors
    ///
    /// * [`SolveError::NotSquare`] — non-square input.
    /// * [`SolveError::SingularDiagonal`] — a level operator has a zero,
    ///   negative, or non-finite diagonal entry (the damped-Jacobi
    ///   smoother cannot be formed).
    /// * [`SolveError::CoarseningFailed`] — aggregation stopped shrinking
    ///   the problem (e.g. no strong couplings anywhere).
    /// * [`SolveError::SingularMatrix`] — the coarsest operator is not
    ///   positive definite to working precision.
    pub fn build(a: &CsrMatrix, options: &AmgOptions) -> Result<Self, SolveError> {
        Self::build_scratch(a, options, &mut SetupScratch::default())
    }

    /// Like [`AmgHierarchy::build`], but setup temporaries (strength-graph
    /// diagonal, aggregation buffers, prolongator triplets) come from the
    /// workspace instead of fresh allocations — once the workspace has
    /// grown to the largest pattern it has seen, re-setup is allocation-
    /// free apart from the hierarchy's own storage (verify with
    /// [`SolveWorkspace::setup_regrowths`]). Results are bit-identical to
    /// [`AmgHierarchy::build`].
    ///
    /// # Errors
    ///
    /// Same as [`AmgHierarchy::build`].
    pub fn build_ws(
        a: &CsrMatrix,
        options: &AmgOptions,
        ws: &mut SolveWorkspace,
    ) -> Result<Self, SolveError> {
        Self::build_scratch(a, options, &mut ws.setup)
    }

    pub(crate) fn build_scratch(
        a: &CsrMatrix,
        options: &AmgOptions,
        scratch: &mut SetupScratch,
    ) -> Result<Self, SolveError> {
        let _span = vstack_obs::span!("amg_build");
        let built = Self::build_inner(a, options, scratch);
        match &built {
            Ok(_) => vstack_obs::metrics::global().amg_builds.inc(),
            Err(_) => vstack_obs::metrics::global().amg_build_failures.inc(),
        }
        built
    }

    fn build_inner(
        a: &CsrMatrix,
        options: &AmgOptions,
        scratch: &mut SetupScratch,
    ) -> Result<Self, SolveError> {
        if a.rows() != a.cols() {
            return Err(SolveError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        let mut current = a.clone();
        let mut levels: Vec<Level> = Vec::new();
        while current.rows() > options.direct_max {
            let n = current.rows();
            if levels.len() + 1 >= options.max_levels {
                return Err(SolveError::CoarseningFailed {
                    level: levels.len(),
                    unknowns: n,
                    aggregates: n,
                });
            }
            SetupScratch::prep(&mut scratch.growths, &mut scratch.diag, n, 0.0);
            diagonal_into(&current, &mut scratch.diag);
            let inv_diag = invert_diagonal(&scratch.diag)?;
            let n_agg = aggregate_into(
                &current,
                &scratch.diag,
                options.strength_theta,
                &mut scratch.agg,
                &mut scratch.pass,
                &mut scratch.growths,
            );
            if n_agg == 0 || (n_agg as f64) > options.max_coarsening_ratio * (n as f64) {
                return Err(SolveError::CoarseningFailed {
                    level: levels.len(),
                    unknowns: n,
                    aggregates: n_agg,
                });
            }
            let p = prolongator(
                &current,
                &inv_diag,
                &scratch.agg,
                n_agg,
                options.prolongation_omega,
                &mut scratch.trip,
                &mut scratch.growths,
            );
            let pt = p.transpose();
            let coarse_a = pt.matmul(&current.matmul(&p));
            let fine = std::mem::replace(&mut current, coarse_a);
            levels.push(Level {
                a: fine,
                inv_diag,
                p,
                pt,
            });
        }
        let coarse = csr_to_dense(&current).cholesky()?;
        let scratch = Scratch {
            x: levels.iter().map(|l| vec![0.0; l.a.rows()]).collect(),
            r: levels.iter().map(|l| vec![0.0; l.a.rows()]).collect(),
            t: levels.iter().map(|l| vec![0.0; l.a.rows()]).collect(),
            coarse: vec![0.0; current.rows()],
        };
        Ok(AmgHierarchy {
            n: a.rows(),
            smoother_omega: options.smoother_omega,
            pre_sweeps: options.pre_sweeps,
            post_sweeps: options.post_sweeps,
            levels,
            coarse,
            scratch: RefCell::new(scratch),
        })
    }

    /// Dimension of the fine-level system this hierarchy preconditions.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Number of levels including the coarsest direct level.
    pub fn num_levels(&self) -> usize {
        self.levels.len() + 1
    }

    /// Unknown counts per level, finest first.
    pub fn level_dims(&self) -> Vec<usize> {
        let mut dims: Vec<usize> = self.levels.iter().map(|l| l.a.rows()).collect();
        dims.push(self.coarse.dim());
        dims
    }

    /// Applies one V-cycle: `z ≈ A⁻¹ r`. Allocation-free after build.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` or `z.len()` differ from [`AmgHierarchy::dim`],
    /// or (unreachably for the usual CG callers) on re-entrant use of the
    /// shared scratch buffers.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "amg apply: rhs dimension mismatch");
        assert_eq!(z.len(), self.n, "amg apply: output dimension mismatch");
        vstack_obs::metrics::global().amg_vcycles.inc();
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        if self.levels.is_empty() {
            z.copy_from_slice(r);
            self.coarse.solve_into(z);
            return;
        }
        s.r[0].copy_from_slice(r);
        let depth = self.levels.len();
        // Downward sweep: smooth, form the residual, restrict.
        for l in 0..depth {
            let level = &self.levels[l];
            smooth_from_zero(
                level,
                &mut s.x[l],
                &s.r[l],
                &mut s.t[l],
                self.smoother_omega,
                self.pre_sweeps,
            );
            level.a.mul_vec_into(&s.x[l], &mut s.t[l]);
            for (ti, ri) in s.t[l].iter_mut().zip(&s.r[l]) {
                *ti = ri - *ti;
            }
            if l + 1 == depth {
                level.pt.mul_vec_into(&s.t[l], &mut s.coarse);
            } else {
                let (_, tail) = s.r.split_at_mut(l + 1);
                level.pt.mul_vec_into(&s.t[l], &mut tail[0]);
            }
        }
        self.coarse.solve_into(&mut s.coarse);
        // Upward sweep: prolong the correction, post-smooth.
        for l in (0..depth).rev() {
            let level = &self.levels[l];
            if l + 1 == depth {
                level.p.mul_vec_into(&s.coarse, &mut s.t[l]);
            } else {
                let (_, tail) = s.x.split_at_mut(l + 1);
                level.p.mul_vec_into(&tail[0], &mut s.t[l]);
            }
            for (xi, ti) in s.x[l].iter_mut().zip(&s.t[l]) {
                *xi += ti;
            }
            for _ in 0..self.post_sweeps {
                level.a.mul_vec_into(&s.x[l], &mut s.t[l]);
                for ((xi, ti), (ri, di)) in s.x[l]
                    .iter_mut()
                    .zip(&s.t[l])
                    .zip(s.r[l].iter().zip(&level.inv_diag))
                {
                    *xi += self.smoother_omega * di * (ri - ti);
                }
            }
        }
        z.copy_from_slice(&s.x[0]);
    }
}

/// `x ← sweeps` of damped Jacobi on `A x = r` starting from `x = 0`.
fn smooth_from_zero(
    level: &Level,
    x: &mut [f64],
    r: &[f64],
    t: &mut [f64],
    omega: f64,
    sweeps: usize,
) {
    if sweeps == 0 {
        x.fill(0.0);
        return;
    }
    for ((xi, ri), di) in x.iter_mut().zip(r).zip(&level.inv_diag) {
        *xi = omega * di * ri;
    }
    for _ in 1..sweeps {
        level.a.mul_vec_into(x, t);
        for ((xi, ti), (ri, di)) in x
            .iter_mut()
            .zip(t.iter())
            .zip(r.iter().zip(&level.inv_diag))
        {
            *xi += omega * di * (ri - ti);
        }
    }
}

/// Compressed-sparse-row storage in `f32` with `u32` indices.
///
/// A compact single-precision mirror of a [`CsrMatrix`] used by
/// [`AmgHierarchyF32`]: halving both the value and the index width roughly
/// halves the memory traffic of the smoother and residual SpMVs that
/// dominate V-cycle cost. Applied serially only — the f32 cycle is a
/// preconditioner whose output feeds a fixed-precision f64 outer
/// iteration, and keeping it serial keeps it deterministic across thread
/// counts without duplicating the pool's chunked-reduction machinery in a
/// second precision.
#[derive(Debug, Clone)]
struct CsrF32 {
    rows: usize,
    row_ptr: Vec<u32>,
    col_idx: Vec<u32>,
    values: Vec<f32>,
}

impl CsrF32 {
    fn from_f64(a: &CsrMatrix) -> Self {
        let (row_ptr, col_idx, values) = a.raw_parts();
        assert!(
            values.len() <= u32::MAX as usize,
            "matrix too large for the u32-indexed f32 mirror"
        );
        CsrF32 {
            rows: a.rows(),
            row_ptr: row_ptr.iter().map(|&p| p as u32).collect(),
            col_idx: col_idx.iter().map(|&c| c as u32).collect(),
            values: values.iter().map(|&v| v as f32).collect(),
        }
    }

    /// Serial SpMV with a fixed 4-way-unrolled summation order. Unlike
    /// the f64 kernels this is *not* bound by the CSR bit-identity
    /// contract — the f32 cycle is a preconditioner, so any deterministic
    /// order is valid — and independent accumulators break the dependent
    /// add chain that makes the scalar gather loop latency-bound.
    #[allow(clippy::needless_range_loop)]
    fn mul_vec_into(&self, x: &[f32], y: &mut [f32]) {
        for r in 0..self.rows {
            let lo = self.row_ptr[r] as usize;
            let hi = self.row_ptr[r + 1] as usize;
            let vals = &self.values[lo..hi];
            let cols = &self.col_idx[lo..hi];
            let mut acc = [0.0f32; 4];
            let mut v4 = vals.chunks_exact(4);
            let mut c4 = cols.chunks_exact(4);
            for (v, c) in (&mut v4).zip(&mut c4) {
                acc[0] += v[0] * x[c[0] as usize];
                acc[1] += v[1] * x[c[1] as usize];
                acc[2] += v[2] * x[c[2] as usize];
                acc[3] += v[3] * x[c[3] as usize];
            }
            for (v, c) in v4.remainder().iter().zip(c4.remainder()) {
                acc[0] += v * x[*c as usize];
            }
            y[r] = (acc[0] + acc[2]) + (acc[1] + acc[3]);
        }
    }
}

/// One non-coarsest level of the single-precision hierarchy.
#[derive(Debug, Clone)]
struct LevelF32 {
    a: CsrF32,
    inv_diag: Vec<f32>,
    p: CsrF32,
    pt: CsrF32,
}

/// Per-level f32 work vectors plus the f64 staging buffer for the
/// coarsest direct solve.
#[derive(Debug, Clone)]
struct ScratchF32 {
    x: Vec<Vec<f32>>,
    r: Vec<Vec<f32>>,
    t: Vec<Vec<f32>>,
    coarse32: Vec<f32>,
    coarse64: Vec<f64>,
}

/// A single-precision mirror of a built [`AmgHierarchy`].
///
/// Smoothing, residual formation, restriction, and prolongation all run in
/// `f32` (roughly half the memory traffic of the f64 V-cycle); only the
/// coarsest dense Cholesky solve round-trips through `f64`, reusing the
/// factor from the source hierarchy. Used as the preconditioner of a
/// **mixed-precision iterative-refinement** scheme: the outer CG iteration
/// stays entirely in f64 (same fixed-chunk reduction order, same
/// bit-identity guarantees), while each preconditioner application is a
/// cheap low-precision V-cycle. CG tolerates an approximate (but fixed,
/// SPD-ish) preconditioner, so the outer solve converges to full f64
/// tolerance; if the f32 cycle degrades convergence, the escalation ladder
/// in [`crate::robust`] falls back to the pure-f64 path.
///
/// To guard against overflow/underflow of extreme residuals in `f32`, each
/// application scales the residual by `1/‖r‖∞` before conversion and
/// rescales the result. A non-finite or zero scale, or a non-finite cycle
/// output (e.g. matrix entries that overflow `f32`), yields `z = 0`, which
/// deterministically surfaces as [`SolveError::Breakdown`] in the outer CG
/// so the ladder can escalate.
///
/// Like [`AmgHierarchy`], the type is `Send` but not `Sync`; each solver
/// thread owns its own mirror.
#[derive(Debug, Clone)]
pub struct AmgHierarchyF32 {
    /// Fine-level dimension.
    n: usize,
    /// Smoother damping, converted from the source hierarchy.
    smoother_omega: f32,
    /// Pre-smoothing sweeps.
    pre_sweeps: usize,
    /// Post-smoothing sweeps.
    post_sweeps: usize,
    /// Fine-to-coarse f32 levels, finest first.
    levels: Vec<LevelF32>,
    /// Dense f64 Cholesky factor cloned from the source hierarchy.
    coarse: CholeskyFactors,
    scratch: RefCell<ScratchF32>,
}

impl AmgHierarchyF32 {
    /// Converts a built f64 hierarchy into its f32 mirror.
    ///
    /// The conversion is value-only (indices, aggregates, and the coarse
    /// factor are reused), so it is much cheaper than an
    /// [`AmgHierarchy::build`] and can be cached alongside the f64
    /// hierarchy per sparsity pattern.
    pub fn from_hierarchy(h: &AmgHierarchy) -> Self {
        let _span = vstack_obs::span!("amg_f32_build");
        vstack_obs::metrics::global().f32_hierarchy_builds.inc();
        let levels: Vec<LevelF32> = h
            .levels
            .iter()
            .map(|l| LevelF32 {
                a: CsrF32::from_f64(&l.a),
                inv_diag: l.inv_diag.iter().map(|&d| d as f32).collect(),
                p: CsrF32::from_f64(&l.p),
                pt: CsrF32::from_f64(&l.pt),
            })
            .collect();
        let scratch = ScratchF32 {
            x: levels.iter().map(|l| vec![0.0f32; l.a.rows]).collect(),
            r: levels.iter().map(|l| vec![0.0f32; l.a.rows]).collect(),
            t: levels.iter().map(|l| vec![0.0f32; l.a.rows]).collect(),
            coarse32: vec![0.0f32; h.coarse.dim()],
            coarse64: vec![0.0f64; h.coarse.dim()],
        };
        AmgHierarchyF32 {
            n: h.n,
            smoother_omega: h.smoother_omega as f32,
            pre_sweeps: h.pre_sweeps,
            post_sweeps: h.post_sweeps,
            levels,
            coarse: h.coarse.clone(),
            scratch: RefCell::new(scratch),
        }
    }

    /// Dimension of the fine-level system this hierarchy preconditions.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Applies one scaled f32 V-cycle: `z ≈ A⁻¹ r`. Allocation-free.
    ///
    /// The residual is normalized by `1/‖r‖∞` before conversion to `f32`
    /// and the correction rescaled on the way out; see the type-level
    /// documentation for the degenerate-input contract.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` or `z.len()` differ from
    /// [`AmgHierarchyF32::dim`], or on re-entrant use of the shared
    /// scratch buffers.
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "amg f32 apply: rhs dimension mismatch");
        assert_eq!(z.len(), self.n, "amg f32 apply: output dimension mismatch");
        vstack_obs::metrics::global().refinement_sweeps.inc();
        if self.levels.is_empty() {
            // Degenerate tiny problem: the "hierarchy" is just the dense
            // f64 factor, so there is nothing to do in reduced precision.
            z.copy_from_slice(r);
            self.coarse.solve_into(z);
            return;
        }
        let scale = norm_inf(r);
        if !scale.is_finite() || scale == 0.0 {
            z.fill(0.0);
            return;
        }
        let inv_scale = 1.0 / scale;
        let mut scratch = self.scratch.borrow_mut();
        let s = &mut *scratch;
        for (ri32, &ri) in s.r[0].iter_mut().zip(r) {
            *ri32 = (ri * inv_scale) as f32;
        }
        let depth = self.levels.len();
        // Downward sweep: smooth, form the residual, restrict.
        for l in 0..depth {
            let level = &self.levels[l];
            smooth_from_zero_f32(
                level,
                &mut s.x[l],
                &s.r[l],
                &mut s.t[l],
                self.smoother_omega,
                self.pre_sweeps,
            );
            level.a.mul_vec_into(&s.x[l], &mut s.t[l]);
            for (ti, ri) in s.t[l].iter_mut().zip(&s.r[l]) {
                *ti = ri - *ti;
            }
            if l + 1 == depth {
                level.pt.mul_vec_into(&s.t[l], &mut s.coarse32);
            } else {
                let (_, tail) = s.r.split_at_mut(l + 1);
                level.pt.mul_vec_into(&s.t[l], &mut tail[0]);
            }
        }
        // Coarsest level: round-trip through the dense f64 factor.
        for (c64, &c32) in s.coarse64.iter_mut().zip(&s.coarse32) {
            *c64 = c32 as f64;
        }
        self.coarse.solve_into(&mut s.coarse64);
        for (c32, &c64) in s.coarse32.iter_mut().zip(&s.coarse64) {
            *c32 = c64 as f32;
        }
        // Upward sweep: prolong the correction, post-smooth.
        for l in (0..depth).rev() {
            let level = &self.levels[l];
            if l + 1 == depth {
                level.p.mul_vec_into(&s.coarse32, &mut s.t[l]);
            } else {
                let (_, tail) = s.x.split_at_mut(l + 1);
                level.p.mul_vec_into(&tail[0], &mut s.t[l]);
            }
            for (xi, ti) in s.x[l].iter_mut().zip(&s.t[l]) {
                *xi += ti;
            }
            for _ in 0..self.post_sweeps {
                level.a.mul_vec_into(&s.x[l], &mut s.t[l]);
                for ((xi, ti), (ri, di)) in s.x[l]
                    .iter_mut()
                    .zip(&s.t[l])
                    .zip(s.r[l].iter().zip(&level.inv_diag))
                {
                    *xi += self.smoother_omega * di * (ri - ti);
                }
            }
        }
        for (zi, &xi) in z.iter_mut().zip(&s.x[0]) {
            *zi = (xi as f64) * scale;
        }
        if z.iter().any(|v| !v.is_finite()) {
            // f32 overflow somewhere inside the cycle (e.g. matrix entries
            // beyond f32 range). Zeroing makes the outer CG break down
            // deterministically instead of propagating NaN.
            z.fill(0.0);
        }
    }
}

/// `x ← sweeps` of damped Jacobi on `A x = r` in `f32`, from `x = 0`.
fn smooth_from_zero_f32(
    level: &LevelF32,
    x: &mut [f32],
    r: &[f32],
    t: &mut [f32],
    omega: f32,
    sweeps: usize,
) {
    if sweeps == 0 {
        x.fill(0.0);
        return;
    }
    for ((xi, ri), di) in x.iter_mut().zip(r).zip(&level.inv_diag) {
        *xi = omega * di * ri;
    }
    for _ in 1..sweeps {
        level.a.mul_vec_into(x, t);
        for ((xi, ti), (ri, di)) in x
            .iter_mut()
            .zip(t.iter())
            .zip(r.iter().zip(&level.inv_diag))
        {
            *xi += omega * di * (ri - ti);
        }
    }
}

/// Validates and inverts the diagonal for the damped-Jacobi smoother.
fn invert_diagonal(diag: &[f64]) -> Result<Vec<f64>, SolveError> {
    let mut inv = Vec::with_capacity(diag.len());
    for (row, &d) in diag.iter().enumerate() {
        // `!d.is_finite()` also rejects NaN entries.
        if !d.is_finite() || d <= 0.0 {
            return Err(SolveError::SingularDiagonal { row });
        }
        inv.push(1.0 / d);
    }
    Ok(inv)
}

/// Extracts the diagonal of `a` into a caller-provided buffer (the
/// allocation-free sibling of [`CsrMatrix::diagonal`]).
fn diagonal_into(a: &CsrMatrix, out: &mut [f64]) {
    for (r, slot) in out.iter_mut().enumerate() {
        let (cols, vals) = a.row(r);
        *slot = match cols.binary_search(&r) {
            Ok(k) => vals[k],
            Err(_) => 0.0,
        };
    }
}

/// Greedy neighborhood aggregation in fixed ascending node order.
///
/// Writes the aggregate id of every node into `agg` (a reused scratch
/// buffer; `pass1` holds the pass-1 snapshot) and returns the number of
/// aggregates. Entirely serial and order-deterministic: re-running on the
/// same matrix always yields the same partition.
fn aggregate_into(
    a: &CsrMatrix,
    diag: &[f64],
    theta: f64,
    agg_buf: &mut Vec<usize>,
    pass1_buf: &mut Vec<usize>,
    growths: &mut u64,
) -> usize {
    const UNASSIGNED: usize = usize::MAX;
    let n = a.rows();
    let theta2 = theta * theta;
    let strong = |i: usize, j: usize, v: f64| -> bool {
        j != i && v != 0.0 && v * v >= theta2 * (diag[i] * diag[j]).abs()
    };
    SetupScratch::prep(growths, agg_buf, n, UNASSIGNED);
    let agg = &mut agg_buf[..];
    let mut next = 0usize;
    // Pass 1: seed an aggregate from every node whose strong neighborhood
    // is fully unassigned; isolated nodes become singletons immediately.
    for i in 0..n {
        if agg[i] != UNASSIGNED {
            continue;
        }
        let (cols, vals) = a.row(i);
        let mut all_free = true;
        let mut has_strong = false;
        for (&j, &v) in cols.iter().zip(vals) {
            if strong(i, j, v) {
                has_strong = true;
                if agg[j] != UNASSIGNED {
                    all_free = false;
                    break;
                }
            }
        }
        if !has_strong {
            agg[i] = next;
            next += 1;
            continue;
        }
        if all_free {
            agg[i] = next;
            for (&j, &v) in cols.iter().zip(vals) {
                if strong(i, j, v) {
                    agg[j] = next;
                }
            }
            next += 1;
        }
    }
    // Pass 2: attach leftovers to the strongest pass-1 aggregate in reach.
    // Ties go to the lowest column index (CSR order), keeping the
    // partition independent of everything but the matrix itself.
    SetupScratch::prep(growths, pass1_buf, n, UNASSIGNED);
    pass1_buf.copy_from_slice(agg);
    let pass1 = &pass1_buf[..];
    for (i, slot) in agg.iter_mut().enumerate() {
        if *slot != UNASSIGNED {
            continue;
        }
        let (cols, vals) = a.row(i);
        let mut best: Option<(f64, usize)> = None;
        for (&j, &v) in cols.iter().zip(vals) {
            if strong(i, j, v) && pass1[j] != UNASSIGNED {
                let mag = v.abs();
                if best.is_none_or(|(bm, _)| mag > bm) {
                    best = Some((mag, pass1[j]));
                }
            }
        }
        if let Some((_, g)) = best {
            *slot = g;
        }
    }
    // Pass 3: whatever is still unassigned becomes a singleton.
    for slot in agg.iter_mut() {
        if *slot == UNASSIGNED {
            *slot = next;
            next += 1;
        }
    }
    next
}

/// Builds the (optionally smoothed) prolongator for an aggregation.
///
/// The tentative operator `T` maps coarse unknown `g` to 1 on every fine
/// node in aggregate `g`. With `omega > 0` it is smoothed into
/// `P = (I − ω D⁻¹ A)·T`, which is what makes aggregation AMG converge at
/// grid-independent rates on Laplacians.
fn prolongator(
    a: &CsrMatrix,
    inv_diag: &[f64],
    agg: &[usize],
    n_agg: usize,
    omega: f64,
    triplets: &mut Vec<(usize, usize, f64)>,
    growths: &mut u64,
) -> CsrMatrix {
    let n = a.rows();
    let needed = if omega == 0.0 { n } else { n + a.nnz() };
    if triplets.capacity() < needed {
        *growths += 1;
        triplets.reserve(needed - triplets.len());
    }
    triplets.clear();
    for i in 0..n {
        triplets.push((i, agg[i], 1.0));
        if omega != 0.0 {
            let (cols, vals) = a.row(i);
            for (&j, &v) in cols.iter().zip(vals) {
                triplets.push((i, agg[j], -omega * inv_diag[i] * v));
            }
        }
    }
    CsrMatrix::from_triplets(n, n_agg, triplets)
}

/// Densifies the (small) coarsest operator for direct factorization.
fn csr_to_dense(a: &CsrMatrix) -> DenseMatrix {
    let mut d = DenseMatrix::zeros(a.rows(), a.cols());
    for (r, c, v) in a.iter() {
        d[(r, c)] += v;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::solver::{cg_with_guess, CgOptions, Preconditioner};

    /// 2-D grid Laplacian with a grounding leak on every node (SPD).
    fn grid_laplacian(side: usize, g: f64) -> CsrMatrix {
        let n = side * side;
        let mut triplets = Vec::new();
        let idx = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let i = idx(r, c);
                let mut diag = 1e-3 * g; // leak keeps the matrix nonsingular
                let mut couple = |j: usize| {
                    triplets.push((i, j, -g));
                    diag += g;
                };
                if r > 0 {
                    couple(idx(r - 1, c));
                }
                if r + 1 < side {
                    couple(idx(r + 1, c));
                }
                if c > 0 {
                    couple(idx(r, c - 1));
                }
                if c + 1 < side {
                    couple(idx(r, c + 1));
                }
                triplets.push((i, i, diag));
            }
        }
        CsrMatrix::from_triplets(n, n, &triplets)
    }

    fn rhs(n: usize) -> Vec<f64> {
        (0..n).map(|i| ((i % 11) as f64 - 5.0) * 1e-3).collect()
    }

    #[test]
    fn hierarchy_coarsens_a_grid() {
        let a = grid_laplacian(40, 20.0);
        let h = AmgHierarchy::build(&a, &AmgOptions::default()).unwrap();
        assert!(h.num_levels() >= 2, "dims: {:?}", h.level_dims());
        let dims = h.level_dims();
        assert_eq!(dims[0], 1600);
        assert!(dims.windows(2).all(|w| w[1] < w[0]), "dims: {dims:?}");
        assert!(*dims.last().unwrap() <= AmgOptions::default().direct_max);
    }

    #[test]
    fn amg_cg_converges_faster_than_jacobi_cg() {
        let a = grid_laplacian(48, 20.0);
        let b = rhs(a.rows());
        let opts = |p| CgOptions {
            preconditioner: p,
            ..CgOptions::default()
        };
        let amg = cg_with_guess(&a, &b, None, &opts(Preconditioner::Amg)).unwrap();
        let jac = cg_with_guess(&a, &b, None, &opts(Preconditioner::Jacobi)).unwrap();
        assert!(
            amg.iterations * 3 < jac.iterations,
            "amg {} vs jacobi {}",
            amg.iterations,
            jac.iterations
        );
        let diff = amg
            .x
            .iter()
            .zip(&jac.x)
            .map(|(u, v)| (u - v).abs())
            .fold(0.0f64, f64::max);
        let scale = jac.x.iter().map(|v| v.abs()).fold(0.0f64, f64::max);
        assert!(
            diff <= 1e-6 * scale.max(1e-30),
            "diff {diff}, scale {scale}"
        );
    }

    #[test]
    fn tiny_problem_is_a_pure_direct_solve() {
        let a = grid_laplacian(3, 1.0); // 9 unknowns < direct_max
        let h = AmgHierarchy::build(&a, &AmgOptions::default()).unwrap();
        assert_eq!(h.num_levels(), 1);
        let b = rhs(9);
        let mut z = vec![0.0; 9];
        h.apply(&b, &mut z);
        assert!(a.residual_norm(&z, &b) < 1e-10);
    }

    #[test]
    fn one_by_one_grid_builds_and_applies() {
        let a = CsrMatrix::from_triplets(1, 1, &[(0, 0, 4.0)]);
        let h = AmgHierarchy::build(&a, &AmgOptions::default()).unwrap();
        let mut z = vec![0.0];
        h.apply(&[8.0], &mut z);
        assert_eq!(z[0], 2.0);
    }

    #[test]
    fn diagonal_matrix_degenerates_to_coarsening_failure() {
        // No off-diagonal couplings: every node becomes a singleton
        // aggregate and coarsening cannot shrink the problem.
        let n = 300;
        let triplets: Vec<_> = (0..n).map(|i| (i, i, 2.0 + i as f64)).collect();
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        let err = AmgHierarchy::build(&a, &AmgOptions::default()).unwrap_err();
        assert!(
            matches!(
                err,
                SolveError::CoarseningFailed {
                    level: 0,
                    unknowns: 300,
                    aggregates: 300,
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn zero_diagonal_is_reported() {
        let n = 200;
        let mut triplets: Vec<_> = (0..n).map(|i| (i, i, 1.0)).collect();
        triplets[7].2 = 0.0;
        for i in 0..n - 1 {
            triplets.push((i, i + 1, -0.9));
            triplets.push((i + 1, i, -0.9));
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        let err = AmgHierarchy::build(&a, &AmgOptions::default()).unwrap_err();
        assert!(
            matches!(err, SolveError::SingularDiagonal { row: 7 }),
            "{err:?}"
        );
    }

    #[test]
    fn nonsquare_rejected() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            AmgHierarchy::build(&a, &AmgOptions::default()),
            Err(SolveError::NotSquare { .. })
        ));
    }

    #[test]
    fn near_singular_shift_does_not_panic() {
        // Pure-Neumann Laplacian plus a vanishing shift: the coarsest
        // operator is singular to working precision. Build must either
        // succeed or fail cleanly — no panic either way — and a successful
        // hierarchy must still produce finite output.
        let side = 20;
        let n = side * side;
        let mut triplets = Vec::new();
        let idx = |r: usize, c: usize| r * side + c;
        for r in 0..side {
            for c in 0..side {
                let i = idx(r, c);
                let mut d = 1e-14;
                if r > 0 {
                    triplets.push((i, idx(r - 1, c), -1.0));
                    d += 1.0;
                }
                if r + 1 < side {
                    triplets.push((i, idx(r + 1, c), -1.0));
                    d += 1.0;
                }
                if c > 0 {
                    triplets.push((i, idx(r, c - 1), -1.0));
                    d += 1.0;
                }
                if c + 1 < side {
                    triplets.push((i, idx(r, c + 1), -1.0));
                    d += 1.0;
                }
                triplets.push((i, i, d));
            }
        }
        let a = CsrMatrix::from_triplets(n, n, &triplets);
        if let Ok(h) = AmgHierarchy::build(&a, &AmgOptions::default()) {
            let b = rhs(n);
            let mut z = vec![0.0; n];
            h.apply(&b, &mut z);
            assert!(z.iter().all(|v| v.is_finite()));
        }
    }

    #[test]
    fn apply_is_deterministic_across_repeats() {
        let a = grid_laplacian(32, 5.0);
        let h = AmgHierarchy::build(&a, &AmgOptions::default()).unwrap();
        let b = rhs(a.rows());
        let mut z1 = vec![0.0; a.rows()];
        let mut z2 = vec![0.0; a.rows()];
        h.apply(&b, &mut z1);
        h.apply(&b, &mut z2);
        assert!(z1.iter().zip(&z2).all(|(u, v)| u.to_bits() == v.to_bits()));
    }
}
