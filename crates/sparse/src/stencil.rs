//! Matrix-free stencil operator for regular-grid PDN Laplacians.
//!
//! A stacked-rail power-delivery network is, away from its stamped
//! irregularities, a stack of identical 5-point grid Laplacians coupled
//! vertically by TSVs: the sparsity pattern and most values are implied by
//! the grid geometry, so streaming 8-byte CSR column indices for them is
//! pure memory-bandwidth waste. [`StencilOperator`] stores that regular
//! portion structurally — one horizontal coupling per plane, one diagonal
//! per row, one optional vertical coupling per node — and keeps the rows
//! that *don't* fit (converter rank-1 couplings, anything value-perturbed)
//! in a small side-CSR, applied per-row.
//!
//! ## Bit-identity contract
//!
//! The apply reproduces [`CsrMatrix::mul_vec_into`] *bitwise*: each regular
//! row accumulates its terms in exactly the ascending-column order the CSR
//! kernel uses (`acc = 0.0; acc += v·x` per stored entry), irregular rows
//! delegate to the side-CSR's `row_dot`, and rows are independent, so any
//! contiguous row partition across pool contexts yields the same bits at
//! any thread count. Extraction verifies every regular row's values
//! *bitwise* against the per-plane couplings — a row that deviates (faulted
//! conductance, boundary stamp) is demoted to the side-CSR rather than
//! approximated. Consequently swapping a `CsrMatrix` for the
//! [`StencilOperator`] built from it changes performance, never results.
//!
//! The [`LinearOperator`] trait is the common surface: `cg` and `bicgstab`
//! cores in [`crate::solver`] take `&dyn LinearOperator`, so a solve can be
//! driven by either representation without duplicating solver code.

use crate::error::SolveError;
use crate::CsrMatrix;

/// Minimal abstraction over `y = A x` that iterative solvers accept, so a
/// [`CsrMatrix`] and a [`StencilOperator`] are interchangeable in the hot
/// path. Implementations must be deterministic: same inputs, same bits,
/// at any pool width.
pub trait LinearOperator: Sync {
    /// Number of rows of the operator.
    fn rows(&self) -> usize;
    /// Number of columns of the operator.
    fn cols(&self) -> usize;
    /// Computes `y = A x` into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOperator for CsrMatrix {
    fn rows(&self) -> usize {
        CsrMatrix::rows(self)
    }
    fn cols(&self) -> usize {
        CsrMatrix::cols(self)
    }
    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        CsrMatrix::mul_vec_into(self, x, y)
    }
}

/// Geometry of a stacked regular grid: `planes` copies of an `nx × ny`
/// 5-point grid, with plane `p` coupled to plane `p + 1` (at node offset
/// `nx · ny`) iff `interfaces[p]` is true.
///
/// For the vstacked PDN each layer contributes two planes (top rail,
/// bottom rail) and only odd interfaces carry TSVs — the even ones are
/// converter-coupled, which is a rank-1 stamp the stencil treats as
/// irregular. Emitted by the network builder next to the assembled CSR so
/// the solver can build the matching [`StencilOperator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StencilDescriptor {
    /// Grid width (fastest-varying index).
    pub nx: usize,
    /// Grid height.
    pub ny: usize,
    /// Number of stacked planes.
    pub planes: usize,
    /// `interfaces[p]` ⇒ plane `p` may couple to plane `p + 1` at node
    /// offset `nx · ny`. Length `planes - 1` (empty for a single plane).
    pub interfaces: Vec<bool>,
}

impl StencilDescriptor {
    /// A single `n × n` plane with no vertical couplings.
    pub fn single_plane(n: usize) -> Self {
        StencilDescriptor {
            nx: n,
            ny: n,
            planes: 1,
            interfaces: Vec::new(),
        }
    }

    /// Total unknown count `nx · ny · planes`.
    pub fn unknowns(&self) -> usize {
        self.nx * self.ny * self.planes
    }
}

/// Matrix-free representation of a stacked-grid Laplacian: structural
/// storage for rows matching the regular stencil, a side-CSR for the rest.
/// Built from an assembled [`CsrMatrix`] (the CSR stays the source of
/// truth for preconditioner setup and validation); applying it is
/// bit-identical to applying that CSR.
#[derive(Debug, Clone)]
pub struct StencilOperator {
    desc: StencilDescriptor,
    /// Uniform horizontal (east/west/north/south) coupling value per plane.
    horiz: Vec<f64>,
    /// Diagonal entry per row (regular rows only are read from here).
    diag: Vec<f64>,
    /// Vertical coupling of node `i` to `i + nx·ny`; only read where
    /// `up_present[i]`. Row `i + nx·ny`'s *down* term reuses `up[i]`, which
    /// extraction verified bitwise against the stored symmetric entry.
    up: Vec<f64>,
    /// Pattern-level presence of the `i → i + nx·ny` coupling. Explicit
    /// stored zeros (e.g. faulted TSVs restamped to zero) stay *present* so
    /// the accumulation order matches the CSR exactly.
    up_present: Vec<bool>,
    /// Per-row flag: `p > 0 && interfaces[p-1] && up_present[i - nx·ny]`,
    /// precomputed so the apply kernel does no interface lookups.
    down_present: Vec<bool>,
    /// Rows whose pattern or values fit the stencil; others go via `side`.
    regular: Vec<bool>,
    /// Full rows of every irregular row (all other rows empty).
    side: CsrMatrix,
    irregular_rows: usize,
}

/// Row count above which the apply runs on the active thread pool; below
/// it a broadcast costs more than the product (cf.
/// [`CsrMatrix::PAR_SPMV_MIN_NNZ`] at ~5 entries/row).
const PAR_MIN_ROWS: usize = 8_192;

impl StencilOperator {
    /// Extracts a stencil operator from `a` using grid geometry `desc`.
    ///
    /// Every row is classified: a row is *regular* iff its stored column
    /// set is exactly the expected stencil neighborhood (down, north,
    /// west, diagonal, east, south, up — each where the geometry admits
    /// it) **and** its horizontal values bitwise match the plane's uniform
    /// coupling **and** its down value bitwise matches the symmetric up
    /// value stored at `i - nx·ny`. Anything else — converter rank-1
    /// terms, value-perturbed rows — lands whole in the side-CSR.
    ///
    /// # Errors
    ///
    /// [`SolveError::DimensionMismatch`] if `a` is not square of dimension
    /// `desc.unknowns()` or `desc.interfaces` has the wrong length.
    pub fn from_csr(a: &CsrMatrix, desc: StencilDescriptor) -> Result<Self, SolveError> {
        let n = desc.unknowns();
        if a.rows() != a.cols() || a.rows() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                found: a.rows(),
            });
        }
        if desc.planes == 0 || desc.interfaces.len() + 1 != desc.planes {
            return Err(SolveError::DimensionMismatch {
                expected: desc.planes.saturating_sub(1),
                found: desc.interfaces.len(),
            });
        }
        let mut op = StencilOperator {
            desc,
            horiz: Vec::new(),
            diag: Vec::new(),
            up: Vec::new(),
            up_present: Vec::new(),
            down_present: Vec::new(),
            regular: Vec::new(),
            side: CsrMatrix::from_triplets(n, n, &[]),
            irregular_rows: 0,
        };
        op.fill_from(a)?;
        Ok(op)
    }

    /// Re-extracts all values (and row classifications) from `a` after a
    /// value restamp on the same pattern, reusing this operator's buffers.
    /// Rows may migrate between the regular and side-CSR sets — a faulted
    /// conductance breaks a plane's value uniformity for that row only.
    ///
    /// # Errors
    ///
    /// [`SolveError::DimensionMismatch`] if `a`'s shape no longer matches
    /// the descriptor; the operator is left in an unspecified but safe
    /// state and should be rebuilt.
    pub fn refresh_values_from(&mut self, a: &CsrMatrix) -> Result<(), SolveError> {
        let n = self.desc.unknowns();
        if a.rows() != a.cols() || a.rows() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                found: a.rows(),
            });
        }
        self.fill_from(a)
    }

    /// Extraction core shared by [`StencilOperator::from_csr`] and
    /// [`StencilOperator::refresh_values_from`]; overwrites every field
    /// from `a`, reusing buffer capacity.
    fn fill_from(&mut self, a: &CsrMatrix) -> Result<(), SolveError> {
        let desc = &self.desc;
        let (nx, ny, planes) = (desc.nx, desc.ny, desc.planes);
        let ps = nx * ny;
        let n = ps * planes;
        let (row_ptr, col_idx, values) = a.raw_parts();

        self.horiz.clear();
        self.horiz.resize(planes, 0.0);
        self.diag.clear();
        self.diag.resize(n, 0.0);
        self.up.clear();
        self.up.resize(n, 0.0);
        self.up_present.clear();
        self.up_present.resize(n, false);
        self.down_present.clear();
        self.down_present.resize(n, false);
        self.regular.clear();
        self.regular.resize(n, false);

        // Expected ascending-column neighborhood of row i, value-checked
        // against what extraction has already established. Returns the
        // (up_value, up_present) pair on success, None if the row is
        // irregular.
        let mut side_triplets: Vec<(usize, usize, f64)> = Vec::new();
        let mut irregular = 0usize;

        for p in 0..planes {
            // Pass A: pick this plane's candidate horizontal coupling from
            // the first structurally-regular row that has a horizontal
            // neighbor. Converter rows fail the structural check (extra
            // columns) and are skipped, so the candidate comes from a
            // genuinely regular interior/edge row.
            let mut w = 0.0f64;
            let mut w_found = nx * ny == 1;
            for i in p * ps..(p + 1) * ps {
                if w_found {
                    break;
                }
                let r = i - p * ps;
                let (iy, ix) = (r / nx, r % nx);
                let cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
                let vals = &values[row_ptr[i]..row_ptr[i + 1]];
                let mut k = 0usize;
                let mut ok = true;
                let mut first_horiz = None;
                let mut eat = |expect: usize, horiz: bool, k: &mut usize| -> bool {
                    if *k < cols.len() && cols[*k] == expect {
                        if horiz && first_horiz.is_none() {
                            first_horiz = Some(vals[*k]);
                        }
                        *k += 1;
                        true
                    } else {
                        false
                    }
                };
                if self.down_allowed(p) && self.up_present[i - ps] && !eat(i - ps, false, &mut k) {
                    ok = false;
                }
                if ok && iy > 0 && !eat(i - nx, true, &mut k) {
                    ok = false;
                }
                if ok && ix > 0 && !eat(i - 1, true, &mut k) {
                    ok = false;
                }
                if ok && !eat(i, false, &mut k) {
                    ok = false;
                }
                if ok && ix + 1 < nx && !eat(i + 1, true, &mut k) {
                    ok = false;
                }
                if ok && iy + 1 < ny && !eat(i + nx, true, &mut k) {
                    ok = false;
                }
                if ok && self.up_allowed(p) && *cols.last().unwrap_or(&0) == i + ps {
                    // Optional up coupling: pattern-level presence.
                    eat(i + ps, false, &mut k);
                }
                if ok && k == cols.len() {
                    if let Some(v) = first_horiz {
                        w = v;
                        w_found = true;
                    }
                }
            }
            self.horiz[p] = w;

            // Pass B: classify and extract every row of the plane.
            for i in p * ps..(p + 1) * ps {
                let r = i - p * ps;
                let (iy, ix) = (r / nx, r % nx);
                let cols = &col_idx[row_ptr[i]..row_ptr[i + 1]];
                let vals = &values[row_ptr[i]..row_ptr[i + 1]];
                let down = self.down_allowed(p) && self.up_present[i - ps];
                let mut k = 0usize;
                let mut ok = true;
                let mut up_val = 0.0f64;
                let mut up_here = false;

                if down {
                    // Down value must bitwise equal the symmetric stored
                    // up value so the apply can reuse `up[i - ps]`.
                    if k < cols.len()
                        && cols[k] == i - ps
                        && vals[k].to_bits() == self.up[i - ps].to_bits()
                    {
                        k += 1;
                    } else {
                        ok = false;
                    }
                }
                let horiz_ok = |k: &mut usize, expect: usize| -> bool {
                    if *k < cols.len() && cols[*k] == expect && vals[*k].to_bits() == w.to_bits() {
                        *k += 1;
                        true
                    } else {
                        false
                    }
                };
                if ok && iy > 0 && !horiz_ok(&mut k, i - nx) {
                    ok = false;
                }
                if ok && ix > 0 && !horiz_ok(&mut k, i - 1) {
                    ok = false;
                }
                let mut diag_val = 0.0f64;
                if ok {
                    if k < cols.len() && cols[k] == i {
                        diag_val = vals[k];
                        k += 1;
                    } else {
                        ok = false;
                    }
                }
                if ok && ix + 1 < nx && !horiz_ok(&mut k, i + 1) {
                    ok = false;
                }
                if ok && iy + 1 < ny && !horiz_ok(&mut k, i + nx) {
                    ok = false;
                }
                if ok && self.up_allowed(p) && k < cols.len() && cols[k] == i + ps {
                    up_val = vals[k];
                    up_here = true;
                    k += 1;
                }
                if ok && k != cols.len() {
                    ok = false;
                }

                if ok {
                    self.regular[i] = true;
                    self.diag[i] = diag_val;
                    self.up[i] = up_val;
                    self.up_present[i] = up_here;
                    self.down_present[i] = down;
                } else {
                    // Whole row via the side-CSR; still record vertical
                    // *pattern* presence so rows above see a consistent
                    // neighborhood, and the symmetric up value for their
                    // down check.
                    self.regular[i] = false;
                    irregular += 1;
                    if self.up_allowed(p) {
                        if let Ok(pos) = cols.binary_search(&(i + ps)) {
                            self.up[i] = vals[pos];
                            self.up_present[i] = true;
                        }
                    }
                    for (c, v) in cols.iter().zip(vals.iter()) {
                        side_triplets.push((i, *c, *v));
                    }
                }
            }
        }

        self.irregular_rows = irregular;
        self.side = CsrMatrix::from_triplets(n, n, &side_triplets);
        Ok(())
    }

    #[inline]
    fn down_allowed(&self, p: usize) -> bool {
        p > 0 && self.desc.interfaces[p - 1]
    }

    #[inline]
    fn up_allowed(&self, p: usize) -> bool {
        p + 1 < self.desc.planes && self.desc.interfaces[p]
    }

    /// The grid geometry this operator was built for.
    pub fn descriptor(&self) -> &StencilDescriptor {
        &self.desc
    }

    /// Rows served by the side-CSR instead of the structural kernel.
    pub fn irregular_rows(&self) -> usize {
        self.irregular_rows
    }

    /// One grid row (`nx` nodes) of the apply, columns `ix0..ix1` of band
    /// (`p`, `iy`); `base` is the node index of the band's `ix = 0` node.
    /// Term order per node matches the CSR's ascending-column storage
    /// exactly.
    #[inline]
    #[allow(clippy::too_many_arguments)]
    fn band_into(
        &self,
        x: &[f64],
        y: &mut [f64],
        p: usize,
        iy: usize,
        base: usize,
        ix0: usize,
        ix1: usize,
    ) {
        let (nx, ny) = (self.desc.nx, self.desc.ny);
        let ps = nx * ny;
        let w = self.horiz[p];
        let north = iy > 0;
        let south = iy + 1 < ny;
        for ix in ix0..ix1 {
            let i = base + ix;
            if !self.regular[i] {
                y[ix - ix0] = self.side.row_dot(i, x);
                continue;
            }
            let mut acc = 0.0f64;
            if self.down_present[i] {
                acc += self.up[i - ps] * x[i - ps];
            }
            if north {
                acc += w * x[i - nx];
            }
            if ix > 0 {
                acc += w * x[i - 1];
            }
            acc += self.diag[i] * x[i];
            if ix + 1 < nx {
                acc += w * x[i + 1];
            }
            if south {
                acc += w * x[i + nx];
            }
            if self.up_present[i] {
                acc += self.up[i] * x[i + ps];
            }
            y[ix - ix0] = acc;
        }
    }

    /// Applies rows `[r0, r1)` into `y[r0 - r0_off..]`... serial kernel
    /// used by both the serial path and each pool context. `y` is indexed
    /// by `row - r0`.
    fn apply_range(&self, x: &[f64], y: &mut [f64], r0: usize, r1: usize) {
        let (nx, ny) = (self.desc.nx, self.desc.ny);
        let ps = nx * ny;
        let mut i = r0;
        while i < r1 {
            let p = i / ps;
            let rem = i - p * ps;
            let iy = rem / nx;
            let ix0 = rem - iy * nx;
            let band_end = (i + (nx - ix0)).min(r1);
            let base = i - ix0;
            self.band_into(
                x,
                &mut y[(i - r0)..(band_end - r0)],
                p,
                iy,
                base,
                ix0,
                ix0 + (band_end - i),
            );
            i = band_end;
        }
    }

    /// Computes `y = A x`, bit-identical to the source CSR's
    /// `mul_vec_into` at any pool width. Large operators
    /// (≥ `8192` rows) partition rows contiguously across the active
    /// thread pool.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` don't match the operator shape.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        let n = self.desc.unknowns();
        assert_eq!(x.len(), n, "stencil apply dimension mismatch (x)");
        assert_eq!(y.len(), n, "stencil apply dimension mismatch (y)");
        vstack_obs::metrics::global().stencil_applies.inc();
        if n >= PAR_MIN_ROWS {
            crate::pool::active(|pool| self.par_mul_vec_into(pool, x, y));
            return;
        }
        self.apply_range(x, y, 0, n);
    }

    /// Pool-parallel apply with contiguous equal-row partitioning; rows
    /// are independent, so this is bit-identical to the serial kernel for
    /// any context count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len()` or `y.len()` don't match the operator shape.
    pub fn par_mul_vec_into(&self, pool: &crate::pool::ThreadPool, x: &[f64], y: &mut [f64]) {
        let n = self.desc.unknowns();
        assert_eq!(x.len(), n, "stencil apply dimension mismatch (x)");
        assert_eq!(y.len(), n, "stencil apply dimension mismatch (y)");
        let contexts = pool.contexts();
        if contexts == 1 {
            self.apply_range(x, y, 0, n);
            return;
        }
        let out = crate::pool::SharedSliceMut::new(y);
        pool.run(&|ctx| {
            let r0 = n * ctx / contexts;
            let r1 = n * (ctx + 1) / contexts;
            // Per-context stack buffer is not possible for arbitrary
            // ranges; write through the shared slice row by row via a
            // small fixed chunk.
            let mut buf = [0.0f64; 256];
            let mut i = r0;
            while i < r1 {
                let hi = (i + buf.len()).min(r1);
                self.apply_range(x, &mut buf[..hi - i], i, hi);
                for (k, v) in buf[..hi - i].iter().enumerate() {
                    // SAFETY: row ranges are disjoint across contexts and
                    // `i + k < n = out.len()`.
                    #[allow(unsafe_code)]
                    unsafe {
                        out.set(i + k, *v)
                    };
                }
                i = hi;
            }
        });
    }
}

impl LinearOperator for StencilOperator {
    fn rows(&self) -> usize {
        self.desc.unknowns()
    }
    fn cols(&self) -> usize {
        self.desc.unknowns()
    }
    fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        StencilOperator::mul_vec_into(self, x, y)
    }
}
