//! Cooperative cancellation for long-running solves.
//!
//! A [`CancelToken`] is a cheap, clonable handle carrying a shared
//! cancellation flag and an optional wall-clock deadline. Solvers poll it
//! at natural checkpoints — [`crate::robust::solve_robust`] checks between
//! escalation-ladder rungs — and bail out with
//! [`crate::SolveError::Cancelled`] instead of burning a full iteration
//! budget on an answer nobody is waiting for. Serving tiers hand one token
//! per request down the solve path: the request deadline becomes the token
//! deadline, and shutdown/drain flips the shared flag.
//!
//! Cancellation is *cooperative and coarse* by design: a token is only
//! observed at rung boundaries, so a cancelled solve stops within one
//! rung's worth of work, never mid-iteration. This keeps the hot iteration
//! loops free of per-iteration atomic loads and preserves bit-identical
//! results for solves that complete.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// A clonable cancellation handle: a shared flag plus an optional deadline.
///
/// The default token ([`CancelToken::never`]) can never fire, so threading
/// a token parameter through a solve path costs nothing for callers that
/// do not use it.
///
/// # Equality
///
/// Tokens compare equal to every other token: cancellation state is
/// runtime plumbing, not part of the mathematical identity of a solve
/// configuration. This lets types embedding a token (e.g.
/// [`crate::robust::RobustOptions`]) keep their derived `PartialEq`
/// semantics.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    /// Shared flag; `None` for the never-cancelled token so that default
    /// construction allocates nothing.
    flag: Option<Arc<AtomicBool>>,
    /// Absolute deadline after which the token reads as cancelled.
    deadline: Option<Instant>,
}

impl PartialEq for CancelToken {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl CancelToken {
    /// A token that can never be cancelled (no flag, no deadline).
    pub fn never() -> Self {
        CancelToken::default()
    }

    /// A manually cancellable token with no deadline.
    pub fn new() -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: None,
        }
    }

    /// A cancellable token that also fires once `deadline` passes.
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            flag: Some(Arc::new(AtomicBool::new(false))),
            deadline: Some(deadline),
        }
    }

    /// Flips the shared flag; every clone observes the cancellation. A
    /// no-op on [`CancelToken::never`] tokens.
    pub fn cancel(&self) {
        if let Some(flag) = &self.flag {
            flag.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the token has been cancelled or its deadline has passed.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if let Some(flag) = &self.flag {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        match self.deadline {
            Some(d) => Instant::now() >= d,
            None => false,
        }
    }

    /// The configured deadline, if any.
    pub fn deadline(&self) -> Option<Instant> {
        self.deadline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn never_token_never_fires() {
        let t = CancelToken::never();
        t.cancel();
        assert!(!t.is_cancelled());
    }

    #[test]
    fn cancel_is_shared_across_clones() {
        let t = CancelToken::new();
        let c = t.clone();
        assert!(!c.is_cancelled());
        t.cancel();
        assert!(c.is_cancelled());
    }

    #[test]
    fn past_deadline_reads_cancelled() {
        let t = CancelToken::with_deadline(Instant::now() - Duration::from_millis(1));
        assert!(t.is_cancelled());
        let future = CancelToken::with_deadline(Instant::now() + Duration::from_secs(3600));
        assert!(!future.is_cancelled());
    }

    #[test]
    fn tokens_compare_equal() {
        let a = CancelToken::new();
        let b = CancelToken::never();
        a.cancel();
        assert_eq!(a, b);
    }
}
