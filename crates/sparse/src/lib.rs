//! Sparse linear algebra kernels for the `vstack` 3D-IC power-delivery toolkit.
//!
//! The power-delivery-network (PDN), circuit (MNA) and thermal models in
//! `vstack` all reduce to solving large, sparse systems of linear equations
//! `A x = b`. This crate provides everything those models need, with no
//! external dependencies:
//!
//! * [`TripletMatrix`] — a coordinate-format builder that tolerates duplicate
//!   entries (they are summed), which is exactly how nodal-analysis stamping
//!   works.
//! * [`CsrMatrix`] — compressed-sparse-row storage with matrix–vector
//!   products, transpose, and structural queries.
//! * [`solver`] — iterative solvers: preconditioned conjugate gradient
//!   ([`solver::cg`]) for the symmetric positive-definite systems produced by
//!   resistive grids and thermal networks, and BiCGSTAB
//!   ([`solver::bicgstab`]) for the mildly non-symmetric systems produced by
//!   MNA matrices with voltage and controlled sources.
//! * [`amg`] — an aggregation-based algebraic multigrid preconditioner
//!   whose CG iteration counts stay nearly flat as grids grow; the
//!   escalation ladder uses it as its top rung on large PDN systems.
//! * [`smw`] — a Sherman–Morrison–Woodbury rank-k update sketch that
//!   answers low-rank *downdates* of a cached baseline solve (PDN fault
//!   what-ifs) with dense k×k work instead of a fresh Krylov solve.
//! * [`dense`] — a small dense matrix with LU and Cholesky factorizations,
//!   used for tiny systems (converter test benches), the AMG coarsest
//!   level, and as a reference implementation in tests.
//! * [`pool`] — a std-only scoped thread pool behind the parallel kernels
//!   (row-partitioned SpMV, fixed-chunk tree reductions, level-scheduled
//!   IC(0) triangular solves). All parallel paths are bit-identical to the
//!   serial ones at any thread count; set `VSTACK_THREADS` to override the
//!   default (available parallelism).
//!
//! # Example
//!
//! Solve the 1-D Poisson system `tridiag(-1, 2, -1) x = b`:
//!
//! ```
//! use vstack_sparse::{TripletMatrix, solver::{cg, CgOptions}};
//!
//! # fn main() -> Result<(), vstack_sparse::SolveError> {
//! let n = 64;
//! let mut a = TripletMatrix::new(n, n);
//! for i in 0..n {
//!     a.push(i, i, 2.0);
//!     if i + 1 < n {
//!         a.push(i, i + 1, -1.0);
//!         a.push(i + 1, i, -1.0);
//!     }
//! }
//! let a = a.to_csr();
//! let b = vec![1.0; n];
//! let x = cg(&a, &b, &CgOptions::default())?;
//! let r = a.residual_norm(&x, &b);
//! assert!(r < 1e-8);
//! # Ok(())
//! # }
//! ```

// Unsafe code is denied by default; the only exemption is the thread pool
// (`pool`), whose lifetime-erased broadcast and partitioned slice writes
// cannot be expressed in safe Rust. Each use carries a SAFETY comment.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod error;
mod triplet;

pub mod amg;
pub mod cancel;
pub mod dense;
pub mod ichol;
pub mod pool;
pub mod robust;
pub mod smw;
pub mod solver;
pub mod stencil;
pub mod vecops;

pub use amg::{AmgHierarchy, AmgHierarchyF32, AmgOptions};
pub use cancel::CancelToken;
pub use csr::CsrMatrix;
pub use error::SolveError;
pub use robust::{
    solve_robust, solve_robust_cached_ws, solve_robust_operator_ws, solve_robust_ws, RobustOptions,
    RobustSolved, SolveMethod, SolveReport,
};
pub use smw::{SmwAnswer, SmwRejection, SmwSketch, SmwUpdate};
pub use solver::SolveWorkspace;
pub use stencil::{LinearOperator, StencilDescriptor, StencilOperator};
pub use triplet::TripletMatrix;
