//! Sherman–Morrison–Woodbury rank-k update sketch.
//!
//! A [`SmwSketch`] caches one solved baseline system `A0 x0 = b0` together
//! with lazily-solved *columns* `W_j = A0⁻¹ u_j` for a registry of sparse
//! candidate vectors `u_j`. A query then answers the *downdated* system
//!
//! ```text
//!     (A0 − U D Uᵀ) x = b0 + U r,      D = diag(s_j) ≻ 0
//! ```
//!
//! for any small subset of registered columns without touching `A0` at all:
//! by the Woodbury identity
//!
//! ```text
//!     (A0 − U D Uᵀ)⁻¹ = A0⁻¹ + W C⁻¹ Wᵀ,   C = D⁻¹ − UᵀW  (k×k, SPD)
//! ```
//!
//! so a query is two length-n axpy sweeps, a handful of sparse dot
//! products, and one dense k×k Cholesky — no Krylov iteration, no SpMV.
//!
//! The intended consumer is the PDN fault path (`vstack-pdn`): `u_j` are
//! the pad-rail and TSV-edge conductance columns, a fault *removes*
//! conductance (hence the downdate sign), and `r` carries the matching
//! right-hand-side correction for supply-rail columns.
//!
//! # Guards
//!
//! Downdates can destroy positive-definiteness (structurally: the fault
//! set disconnects part of the network). The query refuses to answer —
//! returning a typed [`SmwRejection`] so the caller can fall back to an
//! exact solve — when any of these trip:
//!
//! 1. the k×k capacitance matrix `C` fails its Cholesky factorization
//!    (`A_f` is not SPD: hard disconnection),
//! 2. the Cholesky pivot ratio `min(L_ii)/max(L_ii)` falls below
//!    [`PIVOT_RATIO_MIN`], or any single pivot `L_jj²` falls below
//!    [`PIVOT_RATIO_MIN`]` · max(1/s_j, |G_jj|)` — cancellation-dominated
//!    relative to its row's natural scale, which the ratio alone cannot
//!    see when every pivot cancels uniformly (`A_f` is *nearly* singular:
//!    the update is numerically untrustworthy even though the
//!    factorization survived),
//! 3. the relative subspace residual `‖b_f − A_f x‖ / ‖b_f‖` — computed
//!    exactly in O(k²) without any SpMV, see [`SmwSketch::query`] —
//!    exceeds the sketch tolerance, or any intermediate is non-finite.
//!
//! The residual guard measures the *update* error on top of the baseline:
//! it is exactly zero (in exact arithmetic) when `C z = t` is solved
//! exactly, so it catches ill-conditioned `C` solves, but it cannot see
//! iterative error already present in `x0` or `W_j`. Callers should build
//! the baseline and columns at a tolerance comfortably tighter than the
//! accuracy they want from queries.

use crate::dense::DenseMatrix;
use crate::error::SolveError;
use crate::vecops;

/// Cholesky pivot-ratio floor: `min(L_ii)/max(L_ii)` below this rejects
/// the query as near-singular (squared, this is a ~1e14 condition-number
/// ceiling on the capacitance matrix — past the point where the dense
/// solve retains the digits the residual guard needs).
pub const PIVOT_RATIO_MIN: f64 = 1e-7;

/// One registered candidate column: the sparse pattern `u_j` and, once
/// solved, the dense solve-vector `w_j = A0⁻¹ u_j`.
struct SmwColumn {
    /// Sparse `(index, value)` pairs, sorted by index, duplicates merged.
    pattern: Vec<(usize, f64)>,
    /// `A0⁻¹ u_j`, present once [`SmwSketch::ensure_column`] has run and
    /// until [`SmwSketch::clear_column`] evicts it.
    w: Option<Vec<f64>>,
}

/// One rank-1 term of a query: subtract `scale · u_c u_cᵀ` from the
/// baseline matrix and add `rhs_delta · u_c` to the baseline right-hand
/// side.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmwUpdate {
    /// Index of a column previously registered with
    /// [`SmwSketch::add_column`]. Repeating a column within one query is
    /// legal and equivalent to a single update with the scales (and
    /// `rhs_delta`s) summed.
    pub column: usize,
    /// Conductance removed along this column; must be finite and `> 0`.
    pub scale: f64,
    /// Right-hand-side correction coefficient `r_j` (e.g. `−scale·v_rail`
    /// for a supply-pad column whose rail stamp disappears with it).
    pub rhs_delta: f64,
}

/// A successful sketch answer.
#[derive(Debug, Clone, PartialEq)]
pub struct SmwAnswer {
    /// Solution of the downdated system.
    pub x: Vec<f64>,
    /// Relative subspace residual `‖b_f − A_f x‖ / ‖b_f‖` of the update
    /// (exact in the span of the update columns; does not include
    /// iterative error already baked into the baseline).
    pub rel_residual: f64,
}

/// Why a query refused to answer. Every variant means "fall back to the
/// exact solve" — none is a caller bug except possibly
/// [`SmwRejection::ColumnNotReady`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SmwRejection {
    /// A referenced column has no solve-vector; call
    /// [`SmwSketch::ensure_column`] first (or it was evicted).
    ColumnNotReady {
        /// The column id missing its solve-vector.
        column: usize,
    },
    /// The capacitance matrix is not (or barely) positive definite: the
    /// downdated system is singular or near-singular, which for PDN
    /// faults means the fault set structurally disconnects the network.
    NearSingular,
    /// The update solved, but its subspace residual exceeds the sketch
    /// tolerance — the answer would be less accurate than promised.
    ResidualTooLarge {
        /// The offending relative residual.
        rel_residual: f64,
    },
    /// A non-finite (or non-positive `scale`) input or intermediate was
    /// encountered.
    NonFinite,
}

impl std::fmt::Display for SmwRejection {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SmwRejection::ColumnNotReady { column } => {
                write!(f, "sketch column {column} has no solve-vector")
            }
            SmwRejection::NearSingular => {
                write!(f, "downdated system is singular or near-singular")
            }
            SmwRejection::ResidualTooLarge { rel_residual } => {
                write!(
                    f,
                    "update residual {rel_residual:.3e} exceeds sketch tolerance"
                )
            }
            SmwRejection::NonFinite => write!(f, "non-finite value in sketch update"),
        }
    }
}

/// A cached baseline solve plus lazily-materialized Woodbury columns.
///
/// See the [module docs](self) for the math. The sketch is *value-bound*:
/// it answers downdates of exactly the `(A0, b0)` it was built from, so
/// callers must discard it whenever the baseline matrix values change.
pub struct SmwSketch {
    n: usize,
    x0: Vec<f64>,
    b0: Vec<f64>,
    b0_norm_sq: f64,
    columns: Vec<SmwColumn>,
    tolerance: f64,
}

impl SmwSketch {
    /// Wrap a solved baseline: `x0` solves `A0 x0 = b0` (to a tolerance
    /// tighter than `tolerance`, which bounds the accepted *update*
    /// residual of each query).
    ///
    /// # Panics
    /// If `x0` and `b0` differ in length or `tolerance` is not positive.
    pub fn new(x0: Vec<f64>, b0: Vec<f64>, tolerance: f64) -> Self {
        assert_eq!(x0.len(), b0.len(), "baseline solution/rhs length mismatch");
        assert!(tolerance > 0.0, "sketch tolerance must be positive");
        let b0_norm_sq = vecops::dot(&b0, &b0);
        SmwSketch {
            n: x0.len(),
            x0,
            b0,
            b0_norm_sq,
            columns: Vec::new(),
            tolerance,
        }
    }

    /// Number of unknowns in the baseline system.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The query-residual acceptance tolerance.
    pub fn tolerance(&self) -> f64 {
        self.tolerance
    }

    /// The baseline solution `x0` (the answer to the empty fault set).
    pub fn baseline(&self) -> &[f64] {
        &self.x0
    }

    /// Number of registered columns (ready or not).
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Register a candidate column `u` as sparse `(index, value)` pairs
    /// and return its id. The pattern is sorted and duplicate indices are
    /// merged; the solve-vector is *not* computed — see
    /// [`SmwSketch::ensure_column`].
    ///
    /// # Panics
    /// If any index is out of range or any value is non-finite.
    pub fn add_column(&mut self, mut pattern: Vec<(usize, f64)>) -> usize {
        pattern.sort_unstable_by_key(|&(i, _)| i);
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(pattern.len());
        for (i, v) in pattern {
            assert!(i < self.n, "column index {i} out of range for n={}", self.n);
            assert!(v.is_finite(), "non-finite column value at index {i}");
            match merged.last_mut() {
                Some((last, acc)) if *last == i => *acc += v,
                _ => merged.push((i, v)),
            }
        }
        self.columns.push(SmwColumn {
            pattern: merged,
            w: None,
        });
        self.columns.len() - 1
    }

    /// Whether column `id` has a materialized solve-vector.
    pub fn column_ready(&self, id: usize) -> bool {
        self.columns.get(id).is_some_and(|c| c.w.is_some())
    }

    /// Number of columns whose solve-vector is currently materialized.
    pub fn ready_count(&self) -> usize {
        self.columns.iter().filter(|c| c.w.is_some()).count()
    }

    /// Drop column `id`'s solve-vector (memory eviction); the pattern
    /// stays registered and the column can be re-solved later.
    pub fn clear_column(&mut self, id: usize) {
        if let Some(c) = self.columns.get_mut(id) {
            c.w = None;
        }
    }

    /// Materialize `w_id = A0⁻¹ u_id` if absent, using `solve` to run the
    /// actual linear solve (the sketch does not hold `A0`). The callback
    /// receives the dense right-hand side `u_id` and must return a
    /// solution at a tolerance tighter than the sketch tolerance.
    ///
    /// # Panics
    /// If `id` is not a registered column or the callback returns a
    /// vector of the wrong length.
    pub fn ensure_column<F>(&mut self, id: usize, solve: F) -> Result<(), SolveError>
    where
        F: FnOnce(&[f64]) -> Result<Vec<f64>, SolveError>,
    {
        let col = &self.columns[id];
        if col.w.is_some() {
            return Ok(());
        }
        let mut rhs = vec![0.0; self.n];
        for &(i, v) in &col.pattern {
            rhs[i] = v;
        }
        let w = solve(&rhs)?;
        assert_eq!(
            w.len(),
            self.n,
            "solve-vector length mismatch for column {id}"
        );
        self.columns[id].w = Some(w);
        Ok(())
    }

    /// Sparse dot `u_idᵀ y` for a registered column against a dense vector.
    fn pattern_dot(&self, id: usize, y: &[f64]) -> f64 {
        self.columns[id]
            .pattern
            .iter()
            .map(|&(i, v)| v * y[i])
            .sum()
    }

    /// Sparse–sparse dot `u_aᵀ u_b` (both patterns sorted by index).
    fn pattern_pattern_dot(&self, a: usize, b: usize) -> f64 {
        let (pa, pb) = (&self.columns[a].pattern, &self.columns[b].pattern);
        let (mut ia, mut ib) = (0usize, 0usize);
        let mut acc = 0.0;
        while ia < pa.len() && ib < pb.len() {
            match pa[ia].0.cmp(&pb[ib].0) {
                std::cmp::Ordering::Less => ia += 1,
                std::cmp::Ordering::Greater => ib += 1,
                std::cmp::Ordering::Equal => {
                    acc += pa[ia].1 * pb[ib].1;
                    ia += 1;
                    ib += 1;
                }
            }
        }
        acc
    }

    /// Answer the downdated system `(A0 − U D Uᵀ) x = b0 + U r` for the
    /// given rank-1 updates. Cost: `2k` length-n axpys plus `O(k³)` dense
    /// work — no matrix–vector product against `A0`.
    ///
    /// An empty update list returns the baseline solution with zero
    /// residual. Every referenced column must be ready
    /// ([`SmwSketch::ensure_column`]).
    ///
    /// The returned residual is computed *exactly* (up to rounding) from
    /// the identity `b_f − A_f x = U·(D(t + Gz) − z)`, which only needs
    /// the already-formed k×k Gram matrices — so accepting an answer
    /// never costs an SpMV.
    pub fn query(&self, updates: &[SmwUpdate]) -> Result<SmwAnswer, SmwRejection> {
        if updates.is_empty() {
            return Ok(SmwAnswer {
                x: self.x0.clone(),
                rel_residual: 0.0,
            });
        }
        let k = updates.len();
        for u in updates {
            if !(u.scale.is_finite() && u.scale > 0.0 && u.rhs_delta.is_finite()) {
                return Err(SmwRejection::NonFinite);
            }
            match self.columns.get(u.column) {
                None => return Err(SmwRejection::ColumnNotReady { column: u.column }),
                Some(c) if c.w.is_none() => {
                    return Err(SmwRejection::ColumnNotReady { column: u.column })
                }
                Some(_) => {}
            }
        }

        // y0 = A0⁻¹ b_f = x0 + Σ r_j w_j.
        let mut y0 = self.x0.clone();
        for u in updates {
            if u.rhs_delta != 0.0 {
                let w = self.columns[u.column].w.as_deref().expect("checked ready");
                vecops::axpy(u.rhs_delta, w, &mut y0);
            }
        }

        // t = Uᵀ y0 and the k×k Gram matrices G = UᵀW, P = UᵀU.
        let mut t = vec![0.0; k];
        let mut g = DenseMatrix::zeros(k, k);
        let mut p = DenseMatrix::zeros(k, k);
        for (row, ur) in updates.iter().enumerate() {
            t[row] = self.pattern_dot(ur.column, &y0);
            for (col, uc) in updates.iter().enumerate() {
                let w = self.columns[uc.column].w.as_deref().expect("checked ready");
                g[(row, col)] = self.pattern_dot(ur.column, w);
                p[(row, col)] = self.pattern_pattern_dot(ur.column, uc.column);
            }
        }

        // Capacitance matrix C = D⁻¹ − G; SPD iff the downdated system is.
        let mut c = DenseMatrix::zeros(k, k);
        for row in 0..k {
            for col in 0..k {
                c[(row, col)] = -g[(row, col)];
            }
            c[(row, row)] += 1.0 / updates[row].scale;
        }
        let chol = match c.cholesky() {
            Ok(f) => f,
            Err(_) => return Err(SmwRejection::NearSingular),
        };
        let (dmin, dmax) = chol.diag_range();
        if !(dmin.is_finite() && dmax.is_finite()) || dmin < PIVOT_RATIO_MIN * dmax {
            return Err(SmwRejection::NearSingular);
        }
        // The ratio alone cannot see *uniform* cancellation (for k = 1 it
        // is trivially 1): each pivot must also survive cancellation
        // against its row's pre-elimination scale `max(1/s_j, |G_jj|)`.
        // A pivot seven digits below that scale means the downdate all
        // but annihilated the row — a structural disconnection whose
        // tiny-positive remainder is pure solve noise.
        for (j, u) in updates.iter().enumerate() {
            let pivot = chol.diag_entry(j);
            let row_scale = (1.0 / u.scale).max(g[(j, j)].abs());
            if pivot * pivot < PIVOT_RATIO_MIN * row_scale {
                return Err(SmwRejection::NearSingular);
            }
        }

        // z = C⁻¹ t, then x = y0 + Σ z_j w_j.
        let mut z = t.clone();
        chol.solve_into(&mut z);
        let mut x = y0;
        for (j, u) in updates.iter().enumerate() {
            if z[j] != 0.0 {
                let w = self.columns[u.column].w.as_deref().expect("checked ready");
                vecops::axpy(z[j], w, &mut x);
            }
        }

        // Subspace residual: b_f − A_f x = U s_hat with
        // s_hat = D(t + Gz) − z, so ‖resid‖² = s_hatᵀ P s_hat.
        let gz = g.mul_vec(&z);
        let s_hat: Vec<f64> = updates
            .iter()
            .enumerate()
            .map(|(j, u)| u.scale * (t[j] + gz[j]) - z[j])
            .collect();
        let ps = p.mul_vec(&s_hat);
        let resid_sq: f64 = s_hat.iter().zip(&ps).map(|(a, b)| a * b).sum();

        // ‖b_f‖² = ‖b0‖² + 2 Σ r_j u_jᵀb0 + rᵀ P r, same Gram trick.
        let r: Vec<f64> = updates.iter().map(|u| u.rhs_delta).collect();
        let mut bf_sq = self.b0_norm_sq;
        for (j, u) in updates.iter().enumerate() {
            if r[j] != 0.0 {
                bf_sq += 2.0 * r[j] * self.pattern_dot(u.column, &self.b0);
            }
        }
        let pr = p.mul_vec(&r);
        bf_sq += r.iter().zip(&pr).map(|(a, b)| a * b).sum::<f64>();

        if !(resid_sq.is_finite() && bf_sq.is_finite()) || bf_sq <= 0.0 {
            return Err(SmwRejection::NonFinite);
        }
        let rel_residual = (resid_sq.max(0.0) / bf_sq).sqrt();
        if !rel_residual.is_finite() {
            return Err(SmwRejection::NonFinite);
        }
        if rel_residual > self.tolerance {
            return Err(SmwRejection::ResidualTooLarge { rel_residual });
        }
        if x.iter().any(|v| !v.is_finite()) {
            return Err(SmwRejection::NonFinite);
        }
        Ok(SmwAnswer { x, rel_residual })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// 1-D resistor ladder with `rails` grounding conductances: SPD, and
    /// removing the only rail disconnects the chain.
    fn ladder(n: usize, g_chain: f64, rails: &[(usize, f64)]) -> DenseMatrix {
        let mut a = DenseMatrix::zeros(n, n);
        for i in 0..n - 1 {
            a[(i, i)] += g_chain;
            a[(i + 1, i + 1)] += g_chain;
            a[(i, i + 1)] -= g_chain;
            a[(i + 1, i)] -= g_chain;
        }
        for &(i, g) in rails {
            a[(i, i)] += g;
        }
        a
    }

    fn dense_solve(a: &DenseMatrix, b: &[f64]) -> Vec<f64> {
        a.solve(b).expect("reference dense solve")
    }

    fn rel_err(x: &[f64], y: &[f64]) -> f64 {
        let num: f64 = x
            .iter()
            .zip(y)
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f64>()
            .sqrt();
        let den: f64 = y.iter().map(|v| v * v).sum::<f64>().sqrt();
        num / den.max(1e-300)
    }

    fn build_sketch(a: &DenseMatrix, b: &[f64], tol: f64) -> SmwSketch {
        let x0 = dense_solve(a, b);
        SmwSketch::new(x0, b.to_vec(), tol)
    }

    #[test]
    fn rank1_downdate_matches_dense_solve() {
        let n = 12;
        let rails = [(0, 2.0), (7, 1.5)];
        let a0 = ladder(n, 3.0, &rails);
        let b: Vec<f64> = (0..n).map(|i| 0.1 * (i as f64) - 0.4).collect();
        let mut sk = build_sketch(&a0, &b, 1e-9);
        // Remove the rail at node 7 (scale 1.5) and its rhs stamp 0.3.
        let col = sk.add_column(vec![(7, 1.0)]);
        sk.ensure_column(col, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        let ans = sk
            .query(&[SmwUpdate {
                column: col,
                scale: 1.5,
                rhs_delta: 0.3,
            }])
            .expect("rank-1 query");
        // Exact: A_f = A0 − 1.5 e7e7ᵀ, b_f = b + 0.3 e7.
        let mut af = a0.clone();
        af[(7, 7)] -= 1.5;
        let mut bf = b.clone();
        bf[7] += 0.3;
        let exact = dense_solve(&af, &bf);
        assert!(
            rel_err(&ans.x, &exact) < 1e-12,
            "rel err {}",
            rel_err(&ans.x, &exact)
        );
        assert!(ans.rel_residual <= 1e-9);
    }

    #[test]
    fn rank2_downdate_with_sparse_multi_entry_columns() {
        let n = 16;
        let a0 = ladder(n, 2.0, &[(0, 1.0), (5, 0.8), (11, 0.6), (15, 1.2)]);
        let b = vec![0.05; n];
        let mut sk = build_sketch(&a0, &b, 1e-9);
        // A column spanning two nodes (like a TSV bundle edge pair).
        let c1 = sk.add_column(vec![(5, 1.0)]);
        let c2 = sk.add_column(vec![(11, 0.5), (15, 0.5)]);
        sk.ensure_column(c1, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        sk.ensure_column(c2, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        let ups = [
            SmwUpdate {
                column: c1,
                scale: 0.8,
                rhs_delta: -0.2,
            },
            SmwUpdate {
                column: c2,
                scale: 0.4,
                rhs_delta: 0.0,
            },
        ];
        let ans = sk.query(&ups).expect("rank-2 query");
        let mut af = a0.clone();
        af[(5, 5)] -= 0.8;
        for &(i, vi) in &[(11usize, 0.5), (15usize, 0.5)] {
            for &(j, vj) in &[(11usize, 0.5), (15usize, 0.5)] {
                af[(i, j)] -= 0.4 * vi * vj;
            }
        }
        let mut bf = b.clone();
        bf[5] -= 0.2;
        let exact = dense_solve(&af, &bf);
        assert!(
            rel_err(&ans.x, &exact) < 1e-11,
            "rel err {}",
            rel_err(&ans.x, &exact)
        );
    }

    #[test]
    fn removing_the_only_rail_rejects_near_singular() {
        let n = 8;
        let a0 = ladder(n, 5.0, &[(3, 2.0)]);
        let b = vec![0.1; n];
        let mut sk = build_sketch(&a0, &b, 1e-9);
        let col = sk.add_column(vec![(3, 1.0)]);
        sk.ensure_column(col, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        let err = sk
            .query(&[SmwUpdate {
                column: col,
                scale: 2.0,
                rhs_delta: -0.2,
            }])
            .expect_err("singular downdate must reject");
        assert_eq!(err, SmwRejection::NearSingular);
    }

    #[test]
    fn duplicate_column_sums_like_a_single_merged_update() {
        let n = 8;
        let a0 = ladder(n, 5.0, &[(0, 2.0), (7, 2.0)]);
        let b = vec![0.1; n];
        let mut sk = build_sketch(&a0, &b, 1e-9);
        let col = sk.add_column(vec![(0, 1.0)]);
        sk.ensure_column(col, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        let split = sk
            .query(&[
                SmwUpdate {
                    column: col,
                    scale: 1.0,
                    rhs_delta: -0.1,
                },
                SmwUpdate {
                    column: col,
                    scale: 1.0,
                    rhs_delta: -0.1,
                },
            ])
            .expect("duplicate-column query");
        let merged = sk
            .query(&[SmwUpdate {
                column: col,
                scale: 2.0,
                rhs_delta: -0.2,
            }])
            .expect("merged query");
        assert!(rel_err(&split.x, &merged.x) < 1e-12);
    }

    #[test]
    fn unready_column_rejects_and_ensure_fixes_it() {
        let n = 6;
        let a0 = ladder(n, 1.0, &[(0, 1.0), (5, 1.0)]);
        let b = vec![1.0; n];
        let mut sk = build_sketch(&a0, &b, 1e-9);
        let col = sk.add_column(vec![(5, 1.0)]);
        let up = [SmwUpdate {
            column: col,
            scale: 1.0,
            rhs_delta: 0.0,
        }];
        assert_eq!(
            sk.query(&up).expect_err("column not solved yet"),
            SmwRejection::ColumnNotReady { column: col }
        );
        assert_eq!(sk.ready_count(), 0);
        sk.ensure_column(col, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        assert_eq!(sk.ready_count(), 1);
        assert!(sk.query(&up).is_ok());
        // Eviction round-trips.
        sk.clear_column(col);
        assert!(!sk.column_ready(col));
        assert_eq!(
            sk.query(&up).expect_err("evicted column not ready"),
            SmwRejection::ColumnNotReady { column: col }
        );
    }

    #[test]
    fn empty_update_list_returns_baseline() {
        let n = 5;
        let a0 = ladder(n, 1.0, &[(2, 1.0)]);
        let b = vec![0.3; n];
        let sk = build_sketch(&a0, &b, 1e-9);
        let ans = sk.query(&[]).expect("empty query");
        assert_eq!(ans.x, sk.baseline());
        assert_eq!(ans.rel_residual, 0.0);
    }

    #[test]
    fn nonpositive_scale_rejects_nonfinite() {
        let n = 4;
        let a0 = ladder(n, 1.0, &[(0, 1.0)]);
        let b = vec![0.1; n];
        let mut sk = build_sketch(&a0, &b, 1e-9);
        let col = sk.add_column(vec![(0, 1.0)]);
        sk.ensure_column(col, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let err = sk
                .query(&[SmwUpdate {
                    column: col,
                    scale: bad,
                    rhs_delta: 0.0,
                }])
                .expect_err("invalid scale rejects");
            assert_eq!(err, SmwRejection::NonFinite);
        }
    }

    #[test]
    fn add_column_merges_duplicate_indices() {
        let n = 6;
        let a0 = ladder(n, 1.0, &[(0, 1.0), (5, 1.0)]);
        let b = vec![1.0; n];
        let mut sk = build_sketch(&a0, &b, 1e-9);
        let merged = sk.add_column(vec![(3, 0.25), (1, 1.0), (3, 0.75)]);
        let plain = sk.add_column(vec![(1, 1.0), (3, 1.0)]);
        sk.ensure_column(merged, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        sk.ensure_column(plain, |rhs| Ok(dense_solve(&a0, rhs)))
            .unwrap();
        let a = sk
            .query(&[SmwUpdate {
                column: merged,
                scale: 0.05,
                rhs_delta: 0.1,
            }])
            .unwrap();
        let bq = sk
            .query(&[SmwUpdate {
                column: plain,
                scale: 0.05,
                rhs_delta: 0.1,
            }])
            .unwrap();
        assert_eq!(a.x, bq.x);
    }
}
