//! Small dense-vector kernels shared by the iterative solvers.
//!
//! These are deliberately simple, allocation-free loops; the sparse
//! matrix–vector product dominates solver runtime, so there is nothing to be
//! gained from cleverness here.

/// Dot product `xᵀ y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    x.iter().zip(y).map(|(a, b)| a * b).sum()
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
pub fn norm_inf(x: &[f64]) -> f64 {
    x.iter().fold(0.0, |m, &v| m.max(v.abs()))
}

/// `y ← y + a·x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (scale-then-add, as used in CG direction updates).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// Element-wise subtraction `x − y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 41.0]);
    }

    #[test]
    fn xpby_updates_in_place() {
        let mut y = vec![1.0, 2.0];
        xpby(&[10.0, 10.0], 3.0, &mut y);
        assert_eq!(y, vec![13.0, 16.0]);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
