//! Small dense-vector kernels shared by the iterative solvers.
//!
//! The reductions ([`dot`], [`norm2`]) are **chunked pairwise sums**: the
//! input is cut into fixed [`CHUNK`]-element pieces, each piece is summed
//! serially, and the per-chunk partials are combined by a fixed binary
//! tree. The chunking is a property of the *data length only* — never of
//! the thread count — so the parallel variants ([`par_dot`],
//! [`par_norm2`]) produce bit-identical results to the serial ones on any
//! pool. (Pairwise summation also carries a better error bound than the
//! naive left fold, `O(log n)` vs `O(n)` ulps.)
//!
//! The element-wise kernels (`axpy`, `xpby`, `sub`) stay serial: they are
//! memory-bound and run at a few µs for PDN-sized vectors, below the cost
//! of a pool broadcast.

use crate::pool::{self, SharedSliceMut, ThreadPool};

/// Chunk length for the pairwise reductions. Fixed so that the reduction
/// tree — and therefore the floating-point result — is independent of the
/// thread count.
pub const CHUNK: usize = 1024;

/// Vector length above which [`dot`]/[`norm2`] route through the active
/// thread pool on their own. Below it, a broadcast costs more than the
/// reduction itself.
const PAR_MIN_LEN: usize = 64 * 1024;

/// Serial dot product of one chunk (plain left-to-right fold).
#[inline]
fn chunk_dot(x: &[f64], y: &[f64]) -> f64 {
    let mut acc = 0.0;
    for (a, b) in x.iter().zip(y) {
        acc += a * b;
    }
    acc
}

/// Pairwise dot over the chunk range `[lo, hi)` (chunk indices).
fn dot_chunks(x: &[f64], y: &[f64], lo: usize, hi: usize) -> f64 {
    if hi - lo == 1 {
        let start = lo * CHUNK;
        let end = (start + CHUNK).min(x.len());
        return chunk_dot(&x[start..end], &y[start..end]);
    }
    let mid = lo + (hi - lo) / 2;
    dot_chunks(x, y, lo, mid) + dot_chunks(x, y, mid, hi)
}

/// Pairwise combine of precomputed per-chunk partials over `[lo, hi)`.
/// Must mirror the split rule of [`dot_chunks`] exactly so the serial and
/// parallel reductions share one combination tree.
fn combine_partials(partials: &[f64], lo: usize, hi: usize) -> f64 {
    if hi - lo == 1 {
        return partials[lo];
    }
    let mid = lo + (hi - lo) / 2;
    combine_partials(partials, lo, mid) + combine_partials(partials, mid, hi)
}

fn dot_serial(x: &[f64], y: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    dot_chunks(x, y, 0, x.len().div_ceil(CHUNK))
}

/// Dot product `xᵀ y` (chunked pairwise; see the [module docs](self)).
///
/// Routes through the active thread pool for very long vectors; the result
/// is bit-identical either way.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn dot(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    if x.len() >= PAR_MIN_LEN {
        return pool::active(|p| par_dot(p, x, y));
    }
    dot_serial(x, y)
}

/// [`dot`] computed on an explicit pool, bit-identical to the serial path.
///
/// Each context computes a contiguous range of the fixed-size chunk
/// partials; the caller combines them with the same pairwise tree the
/// serial path uses.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn par_dot(pool: &ThreadPool, x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "dot: length mismatch");
    if x.is_empty() {
        return 0.0;
    }
    let nchunks = x.len().div_ceil(CHUNK);
    let contexts = pool.contexts();
    if contexts == 1 || nchunks < 2 {
        return dot_serial(x, y);
    }
    let mut partials = vec![0.0; nchunks];
    {
        let out = SharedSliceMut::new(&mut partials);
        pool.run(&|ctx| {
            let lo = nchunks * ctx / contexts;
            let hi = nchunks * (ctx + 1) / contexts;
            for chunk in lo..hi {
                let start = chunk * CHUNK;
                let end = (start + CHUNK).min(x.len());
                let v = chunk_dot(&x[start..end], &y[start..end]);
                // SAFETY: chunk ranges are disjoint across contexts and
                // `chunk < nchunks = out.len()`.
                #[allow(unsafe_code)]
                unsafe {
                    out.set(chunk, v)
                };
            }
        });
    }
    combine_partials(&partials, 0, nchunks)
}

/// Euclidean norm `‖x‖₂`.
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// [`norm2`] computed on an explicit pool, bit-identical to the serial
/// path.
pub fn par_norm2(pool: &ThreadPool, x: &[f64]) -> f64 {
    par_dot(pool, x, x).sqrt()
}

/// Infinity norm `‖x‖∞`.
///
/// NaN entries **propagate**: the result is NaN if any element is NaN.
/// (A plain `f64::max` fold silently drops NaN, which once let a NaN
/// residual read as `0.0` — i.e. as converged.)
pub fn norm_inf(x: &[f64]) -> f64 {
    let mut m = 0.0f64;
    for &v in x {
        let a = v.abs();
        if a.is_nan() {
            return f64::NAN;
        }
        if a > m {
            m = a;
        }
    }
    m
}

/// `y ← y + a·x`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn axpy(a: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi += a * xi;
    }
}

/// `y ← x + b·y` (scale-then-add, as used in CG direction updates).
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn xpby(x: &[f64], b: f64, y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "xpby: length mismatch");
    for (yi, xi) in y.iter_mut().zip(x) {
        *yi = xi + b * *yi;
    }
}

/// Element-wise subtraction `x − y`.
///
/// # Panics
///
/// Panics if the lengths differ.
pub fn sub(x: &[f64], y: &[f64]) -> Vec<f64> {
    assert_eq!(x.len(), y.len(), "sub: length mismatch");
    x.iter().zip(y).map(|(a, b)| a - b).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norms() {
        let x = [3.0, 4.0];
        assert_eq!(dot(&x, &x), 25.0);
        assert_eq!(norm2(&x), 5.0);
        assert_eq!(norm_inf(&[-7.0, 2.0]), 7.0);
    }

    #[test]
    fn dot_of_empty_is_zero() {
        assert_eq!(dot(&[], &[]), 0.0);
        assert_eq!(norm2(&[]), 0.0);
        assert_eq!(norm_inf(&[]), 0.0);
    }

    #[test]
    fn dot_crossing_chunk_boundaries_matches_reference() {
        // Lengths straddling 1, 2 and 3 chunks; compare against a Kahan
        // reference within a few ulps (pairwise ≠ naive, but both are
        // close to the compensated sum).
        for n in [1, CHUNK - 1, CHUNK, CHUNK + 1, 2 * CHUNK + 7, 3 * CHUNK] {
            let x: Vec<f64> = (0..n).map(|i| ((i * 31 + 7) % 97) as f64 * 1e-3).collect();
            let y: Vec<f64> = (0..n)
                .map(|i| ((i * 17 + 3) % 89) as f64 * 1e-3 - 0.04)
                .collect();
            let (mut s, mut c) = (0.0f64, 0.0f64);
            for (a, b) in x.iter().zip(&y) {
                let t = s + (a * b - c);
                c = (t - s) - (a * b - c);
                s = t;
            }
            let d = dot(&x, &y);
            assert!(
                (d - s).abs() <= 1e-12 * s.abs().max(1.0),
                "n={n}: {d} vs {s}"
            );
        }
    }

    #[test]
    fn par_dot_is_bit_identical_to_serial() {
        for contexts in [1, 2, 4] {
            let pool = ThreadPool::new(contexts);
            for n in [0, 1, 100, CHUNK, 3 * CHUNK + 11] {
                let x: Vec<f64> = (0..n).map(|i| ((i * 13 + 1) % 101) as f64 - 50.0).collect();
                let y: Vec<f64> = (0..n).map(|i| ((i * 29 + 5) % 103) as f64 * 0.01).collect();
                assert_eq!(par_dot(&pool, &x, &y).to_bits(), dot(&x, &y).to_bits());
                assert_eq!(par_norm2(&pool, &x).to_bits(), norm2(&x).to_bits());
            }
        }
    }

    #[test]
    fn norm_inf_propagates_nan() {
        // Regression: f64::max(acc, NaN) returns acc, so a NaN residual
        // used to read as 0.0 — i.e. "converged".
        assert!(norm_inf(&[1.0, f64::NAN, 3.0]).is_nan());
        assert!(norm_inf(&[f64::NAN]).is_nan());
        assert!(norm_inf(&[-f64::NAN, 100.0]).is_nan());
        assert_eq!(norm_inf(&[1.0, -2.0]), 2.0);
    }

    #[test]
    fn axpy_updates_in_place() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[10.0, 20.0], &mut y);
        assert_eq!(y, vec![21.0, 41.0]);
    }

    #[test]
    fn xpby_updates_in_place() {
        let mut y = vec![1.0, 2.0];
        xpby(&[10.0, 10.0], 3.0, &mut y);
        assert_eq!(y, vec![13.0, 16.0]);
    }

    #[test]
    fn sub_elementwise() {
        assert_eq!(sub(&[3.0, 2.0], &[1.0, 5.0]), vec![2.0, -3.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn dot_length_mismatch_panics() {
        dot(&[1.0], &[1.0, 2.0]);
    }
}
