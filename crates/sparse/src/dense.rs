//! Small dense matrices with LU factorization.
//!
//! The detailed switched-capacitor transient simulations in `vstack-circuit`
//! produce systems with only tens of unknowns per timestep, where a dense LU
//! with partial pivoting beats any sparse iterative method. The factorization
//! is also reused across the thousands of timesteps that share a switch
//! phase, so [`LuFactors`] is exposed as a first-class value.

use crate::SolveError;

/// Row-major dense matrix.
///
/// # Example
///
/// ```
/// use vstack_sparse::dense::DenseMatrix;
///
/// # fn main() -> Result<(), vstack_sparse::SolveError> {
/// let a = DenseMatrix::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]);
/// let x = a.solve(&[3.0, 5.0])?;
/// assert!((x[0] - 0.8).abs() < 1e-12);
/// assert!((x[1] - 1.4).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DenseMatrix {
    n_rows: usize,
    n_cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Creates a zero-filled `rows × cols` matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DenseMatrix {
            n_rows: rows,
            n_cols: cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        let mut m = DenseMatrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have inconsistent lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Self {
        let n_rows = rows.len();
        let n_cols = rows.first().map_or(0, |r| r.len());
        let mut data = Vec::with_capacity(n_rows * n_cols);
        for r in rows {
            assert_eq!(r.len(), n_cols, "ragged rows in DenseMatrix::from_rows");
            data.extend_from_slice(r);
        }
        DenseMatrix {
            n_rows,
            n_cols,
            data,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.n_rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.n_cols
    }

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.n_cols, "mul_vec dimension mismatch");
        (0..self.n_rows)
            .map(|r| {
                let row = &self.data[r * self.n_cols..(r + 1) * self.n_cols];
                row.iter().zip(x).map(|(a, b)| a * b).sum()
            })
            .collect()
    }

    /// Factorizes the matrix (LU with partial pivoting).
    ///
    /// # Errors
    ///
    /// * [`SolveError::NotSquare`] if the matrix is not square.
    /// * [`SolveError::SingularMatrix`] if a pivot is numerically zero.
    pub fn lu(&self) -> Result<LuFactors, SolveError> {
        if self.n_rows != self.n_cols {
            return Err(SolveError::NotSquare {
                rows: self.n_rows,
                cols: self.n_cols,
            });
        }
        let n = self.n_rows;
        let mut lu = self.data.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivot: largest |value| in column k at/below row k.
            let mut p = k;
            let mut max = lu[k * n + k].abs();
            for r in (k + 1)..n {
                let v = lu[r * n + k].abs();
                if v > max {
                    max = v;
                    p = r;
                }
            }
            if max < 1e-300 {
                return Err(SolveError::SingularMatrix { pivot: k });
            }
            if p != k {
                for c in 0..n {
                    lu.swap(k * n + c, p * n + c);
                }
                perm.swap(k, p);
            }
            let pivot = lu[k * n + k];
            for r in (k + 1)..n {
                let f = lu[r * n + k] / pivot;
                lu[r * n + k] = f;
                for c in (k + 1)..n {
                    lu[r * n + c] -= f * lu[k * n + c];
                }
            }
        }
        Ok(LuFactors { n, lu, perm })
    }

    /// Convenience: factorize and solve `A x = b` in one call.
    ///
    /// # Errors
    ///
    /// Same as [`DenseMatrix::lu`], plus
    /// [`SolveError::DimensionMismatch`] if `b.len() != self.rows()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        self.lu()?.solve(b)
    }

    /// Factorizes a symmetric positive-definite matrix as `A = L Lᵀ`.
    ///
    /// Only the lower triangle is read, so a numerically slightly
    /// asymmetric input (e.g. a Galerkin coarse operator assembled in
    /// floating point) is treated as its lower-triangular symmetrization.
    ///
    /// # Errors
    ///
    /// * [`SolveError::NotSquare`] if the matrix is not square.
    /// * [`SolveError::SingularMatrix`] if a pivot is not strictly
    ///   positive — the matrix is not positive definite to working
    ///   precision.
    pub fn cholesky(&self) -> Result<CholeskyFactors, SolveError> {
        if self.n_rows != self.n_cols {
            return Err(SolveError::NotSquare {
                rows: self.n_rows,
                cols: self.n_cols,
            });
        }
        let n = self.n_rows;
        let mut l = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..=r {
                let mut acc = self.data[r * n + c];
                for k in 0..c {
                    acc -= l[r * n + k] * l[c * n + k];
                }
                if c == r {
                    // `!acc.is_finite()` also rejects NaN pivots.
                    if !acc.is_finite() || acc <= 1e-300 {
                        return Err(SolveError::SingularMatrix { pivot: r });
                    }
                    l[r * n + r] = acc.sqrt();
                } else {
                    l[r * n + c] = acc / l[c * n + c];
                }
            }
        }
        Ok(CholeskyFactors { n, l })
    }
}

impl std::ops::Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.n_rows && c < self.n_cols, "index out of bounds");
        &self.data[r * self.n_cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for DenseMatrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.n_rows && c < self.n_cols, "index out of bounds");
        &mut self.data[r * self.n_cols + c]
    }
}

/// LU factors of a [`DenseMatrix`], reusable across many right-hand sides.
#[derive(Debug, Clone, PartialEq)]
pub struct LuFactors {
    n: usize,
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Vec<f64>,
    /// Row permutation: factorized row `i` came from original row `perm[i]`.
    perm: Vec<usize>,
}

impl LuFactors {
    /// Dimension of the factorized system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Solves `A x = b` using the stored factors.
    ///
    /// # Errors
    ///
    /// [`SolveError::DimensionMismatch`] if `b.len() != self.dim()`.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, SolveError> {
        let n = self.n;
        if b.len() != n {
            return Err(SolveError::DimensionMismatch {
                expected: n,
                found: b.len(),
            });
        }
        // Apply permutation, then forward/back substitution.
        let mut x: Vec<f64> = self.perm.iter().map(|&p| b[p]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for (c, xc) in x.iter().enumerate().take(r) {
                acc -= self.lu[r * n + c] * xc;
            }
            x[r] = acc;
        }
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (c, xc) in x.iter().enumerate().take(n).skip(r + 1) {
                acc -= self.lu[r * n + c] * xc;
            }
            x[r] = acc / self.lu[r * n + r];
        }
        Ok(x)
    }
}

/// Cholesky factor `L` of a symmetric positive-definite [`DenseMatrix`].
///
/// Unlike [`LuFactors::solve`], [`CholeskyFactors::solve_into`] writes into
/// a caller-provided buffer and allocates nothing, which lets the AMG
/// V-cycle run its coarsest-level direct solve on every preconditioner
/// application without touching the allocator.
#[derive(Debug, Clone, PartialEq)]
pub struct CholeskyFactors {
    n: usize,
    /// Row-major lower-triangular factor (upper triangle is zero).
    l: Vec<f64>,
}

impl CholeskyFactors {
    /// Dimension of the factorized system.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// `(min, max)` of the factor's diagonal entries (the square roots of
    /// the Cholesky pivots). Their ratio is a cheap conditioning probe:
    /// `min/max ≈ 1/√κ(A)`, so a tiny ratio flags a factorization that
    /// succeeded numerically but sits on the edge of singularity — the
    /// SMW capacitance matrix of a structurally disconnecting fault set
    /// looks exactly like this.
    ///
    /// Returns `(0.0, 0.0)` for an empty factorization.
    pub fn diag_range(&self) -> (f64, f64) {
        let mut min = f64::MAX;
        let mut max = 0.0f64;
        for r in 0..self.n {
            let d = self.l[r * self.n + r];
            min = min.min(d);
            max = max.max(d);
        }
        if self.n == 0 {
            (0.0, 0.0)
        } else {
            (min, max)
        }
    }

    /// The `r`-th diagonal entry of the factor — the square root of the
    /// `r`-th Cholesky pivot, i.e. of the Schur-complement diagonal at
    /// elimination step `r`. Comparing it against the *pre-elimination*
    /// magnitude of row `r` exposes cancellation that the
    /// [`diag_range`](Self::diag_range) ratio cannot see when every pivot
    /// cancels uniformly (the `1×1` case being the extreme).
    ///
    /// # Panics
    ///
    /// Panics if `r >= self.dim()`.
    pub fn diag_entry(&self, r: usize) -> f64 {
        assert!(
            r < self.n,
            "diagonal index {r} out of range for n={}",
            self.n
        );
        self.l[r * self.n + r]
    }

    /// Solves `A x = b` in place: `x` holds `b` on entry and the solution
    /// on exit. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.dim()`.
    pub fn solve_into(&self, x: &mut [f64]) {
        let n = self.n;
        assert_eq!(x.len(), n, "cholesky solve dimension mismatch");
        // Forward substitution: L y = b.
        for r in 0..n {
            let mut acc = x[r];
            for (c, xc) in x.iter().enumerate().take(r) {
                acc -= self.l[r * n + c] * xc;
            }
            x[r] = acc / self.l[r * n + r];
        }
        // Back substitution: Lᵀ x = y.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (c, xc) in x.iter().enumerate().take(n).skip(r + 1) {
                acc -= self.l[c * n + r] * xc;
            }
            x[r] = acc / self.l[r * n + r];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_identity() {
        let i = DenseMatrix::identity(3);
        let b = [1.0, -2.0, 3.0];
        assert_eq!(i.solve(&b).unwrap(), b.to_vec());
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero in the (0,0) position forces a row swap.
        let a = DenseMatrix::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]);
        let x = a.solve(&[5.0, 7.0]).unwrap();
        assert_eq!(x, vec![7.0, 5.0]);
    }

    #[test]
    fn solve_3x3_known_answer() {
        let a = DenseMatrix::from_rows(&[&[2.0, 1.0, -1.0], &[-3.0, -1.0, 2.0], &[-2.0, 1.0, 2.0]]);
        let x = a.solve(&[8.0, -11.0, -3.0]).unwrap();
        let expect = [2.0, 3.0, -1.0];
        for (u, v) in x.iter().zip(&expect) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn singular_matrix_reported() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]);
        let err = a.solve(&[1.0, 2.0]).unwrap_err();
        assert!(matches!(err, SolveError::SingularMatrix { .. }));
    }

    #[test]
    fn nonsquare_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.lu(), Err(SolveError::NotSquare { .. })));
    }

    #[test]
    fn lu_factors_reused_across_rhs() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]]);
        let lu = a.lu().unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [2.0, -5.0]] {
            let x = lu.solve(&b).unwrap();
            let ax = a.mul_vec(&x);
            for (u, v) in ax.iter().zip(&b) {
                assert!((u - v).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn cholesky_matches_lu_on_spd() {
        let a = DenseMatrix::from_rows(&[&[4.0, 1.0, 0.5], &[1.0, 3.0, -0.2], &[0.5, -0.2, 5.0]]);
        let chol = a.cholesky().unwrap();
        let b = [1.0, -2.0, 3.0];
        let mut x = b;
        chol.solve_into(&mut x);
        let via_lu = a.solve(&b).unwrap();
        for (u, v) in x.iter().zip(&via_lu) {
            assert!((u - v).abs() < 1e-12);
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]);
        assert!(matches!(
            a.cholesky(),
            Err(SolveError::SingularMatrix { pivot: 1 })
        ));
    }

    #[test]
    fn cholesky_rejects_nonsquare() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(a.cholesky(), Err(SolveError::NotSquare { .. })));
    }

    #[test]
    fn cholesky_1x1() {
        let a = DenseMatrix::from_rows(&[&[4.0]]);
        let mut x = [8.0];
        a.cholesky().unwrap().solve_into(&mut x);
        assert_eq!(x[0], 2.0);
    }

    #[test]
    fn mul_vec_known() {
        let a = DenseMatrix::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(a.mul_vec(&[1.0, 1.0]), vec![3.0, 7.0]);
    }

    #[test]
    fn index_roundtrip() {
        let mut a = DenseMatrix::zeros(2, 2);
        a[(0, 1)] = 9.0;
        assert_eq!(a[(0, 1)], 9.0);
        assert_eq!(a[(1, 0)], 0.0);
    }
}
