//! Zero-fill incomplete Cholesky factorization, IC(0).
//!
//! Jacobi preconditioning only rescales the diagonal; for the PDN's grid
//! Laplacians the iteration count still grows with the grid diameter.
//! IC(0) computes a lower-triangular factor `L` with the sparsity pattern
//! of `A`'s lower triangle such that `L·Lᵀ ≈ A`, and preconditions CG with
//! `M⁻¹ = (L·Lᵀ)⁻¹` (two sparse triangular solves per iteration). On the
//! refined 8-layer PDN this typically cuts CG iterations by 3–5× for ~2×
//! the per-iteration cost — see the `solver_kernels` bench group.
//!
//! The factorization is only guaranteed to exist for M-matrices (which
//! grid Laplacians with Dirichlet ties are); for general SPD input a
//! breakdown (non-positive pivot) is reported as an error so callers can
//! fall back to Jacobi.

use crate::pool::{self, SharedSliceMut, ThreadPool};
use crate::solver::SetupScratch;
use crate::{CsrMatrix, SolveError};

/// An IC(0) factor `L` (lower triangular, unit-free, CSR-like storage).
///
/// The factorization also computes **level sets** for both triangular
/// solves — groups of rows (columns for the transpose solve) with no
/// mutual dependencies — once, so [`IncompleteCholesky::apply`] can run
/// each level in parallel across every CG iteration without re-analyzing
/// the structure. Rows within a level are independent and each row's
/// accumulation order is fixed, so the parallel solves are bit-identical
/// to the serial ones.
#[derive(Debug, Clone, PartialEq)]
pub struct IncompleteCholesky {
    n: usize,
    /// Row pointers into `col_idx`/`values`, length `n + 1`. Each row's
    /// entries are sorted by column and end with the diagonal.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Column-major access for the transpose solve: for each column `j`,
    /// the (row, value-index) pairs of sub-diagonal entries.
    col_ptr: Vec<usize>,
    col_rows: Vec<usize>,
    col_vals: Vec<usize>,
    /// Forward-solve level sets: `flevel_rows[flevel_ptr[l]..flevel_ptr[l+1]]`
    /// are the rows of level `l`, each depending only on rows in levels `< l`.
    flevel_ptr: Vec<usize>,
    flevel_rows: Vec<usize>,
    /// Backward-solve (`Lᵀ`) level sets over columns, analogously.
    blevel_ptr: Vec<usize>,
    blevel_cols: Vec<usize>,
}

/// Buckets indices `0..n` by a level number into a CSR-like
/// `(level_ptr, members)` pair; members are ascending within each level.
fn bucket_levels(levels: &[usize]) -> (Vec<usize>, Vec<usize>) {
    let n_levels = levels.iter().map(|&l| l + 1).max().unwrap_or(0);
    let mut ptr = vec![0usize; n_levels + 1];
    for &l in levels {
        ptr[l + 1] += 1;
    }
    for l in 0..n_levels {
        ptr[l + 1] += ptr[l];
    }
    let mut next = ptr.clone();
    let mut members = vec![0usize; levels.len()];
    for (i, &l) in levels.iter().enumerate() {
        members[next[l]] = i;
        next[l] += 1;
    }
    (ptr, members)
}

impl IncompleteCholesky {
    /// Factorizes the lower triangle of `a` in place of pattern.
    ///
    /// # Errors
    ///
    /// * [`SolveError::NotSquare`] if `a` is not square.
    /// * [`SolveError::SingularMatrix`] if a pivot becomes non-positive
    ///   (the matrix is not an M-matrix / not SPD enough for IC(0)).
    pub fn factor(a: &CsrMatrix) -> Result<Self, SolveError> {
        Self::factor_scratch(a, &mut SetupScratch::default())
    }

    /// [`IncompleteCholesky::factor`] with analysis temporaries (column
    /// counts, level numbers) drawn from the solver workspace's setup
    /// scratch instead of fresh allocations. Once the scratch has grown to
    /// the largest pattern seen, re-factorization only allocates the
    /// factor's own storage. Results are bit-identical to
    /// [`IncompleteCholesky::factor`].
    pub(crate) fn factor_scratch(
        a: &CsrMatrix,
        scratch: &mut SetupScratch,
    ) -> Result<Self, SolveError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(SolveError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        // Extract the lower triangle (including diagonal), row-sorted.
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for r in 0..n {
            let (cols, vals) = a.row(r);
            for (c, v) in cols.iter().zip(vals) {
                if *c <= r {
                    col_idx.push(*c);
                    values.push(*v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }

        // Column lookup: position of (r, c) within row r, if present.
        let find = |row_ptr: &[usize], col_idx: &[usize], r: usize, c: usize| -> Option<usize> {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            col_idx[lo..hi].binary_search(&c).ok().map(|k| lo + k)
        };

        // Standard IC(0): for each row r, for each stored (r, c) with
        // c < r: L[r,c] = (A[r,c] − Σ_k L[r,k]·L[c,k]) / L[c,c]; then
        // L[r,r] = sqrt(A[r,r] − Σ_k L[r,k]²).
        for r in 0..n {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            for idx in lo..hi {
                let c = col_idx[idx];
                if c == r {
                    // Diagonal: subtract squares of the strictly-lower row.
                    let mut acc = values[idx];
                    for v in &values[lo..idx] {
                        acc -= v * v;
                    }
                    if acc <= 0.0 || !acc.is_finite() {
                        return Err(SolveError::SingularMatrix { pivot: r });
                    }
                    values[idx] = acc.sqrt();
                } else {
                    // Off-diagonal: sparse dot of rows r and c over shared
                    // columns < c.
                    let mut acc = values[idx];
                    let (clo, chi) = (row_ptr[c], row_ptr[c + 1]);
                    let mut i = lo;
                    let mut j = clo;
                    while i < idx && j < chi && col_idx[j] < c {
                        match col_idx[i].cmp(&col_idx[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                acc -= values[i] * values[j];
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    let diag = find(&row_ptr, &col_idx, c, c)
                        .map(|k| values[k])
                        .unwrap_or(0.0);
                    if diag == 0.0 {
                        return Err(SolveError::SingularMatrix { pivot: c });
                    }
                    values[idx] = acc / diag;
                }
            }
        }

        // Build the column-major view of the strictly-lower entries for
        // the Lᵀ solve. Counts live in the workspace scratch; `col_ptr`
        // is part of the factor and stays an owned allocation.
        SetupScratch::prep(&mut scratch.growths, &mut scratch.idx_a, n + 1, 0);
        let col_counts = &mut scratch.idx_a[..];
        for r in 0..n {
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if c < r {
                    col_counts[c + 1] += 1;
                }
            }
        }
        for j in 0..n {
            col_counts[j + 1] += col_counts[j];
        }
        let col_ptr: Vec<usize> = col_counts.to_vec();
        let next = col_counts;
        let nnz_lower = col_ptr[n];
        let mut col_rows = vec![0usize; nnz_lower];
        let mut col_vals = vec![0usize; nnz_lower];
        for r in 0..n {
            for (idx, &c) in col_idx
                .iter()
                .enumerate()
                .take(row_ptr[r + 1])
                .skip(row_ptr[r])
            {
                if c < r {
                    let slot = next[c];
                    col_rows[slot] = r;
                    col_vals[slot] = idx;
                    next[c] += 1;
                }
            }
        }

        // Level schedules (computed once here, reused every apply).
        // Forward: row r waits on every strictly-lower column it touches.
        SetupScratch::prep(&mut scratch.growths, &mut scratch.idx_b, n, 0);
        let flevels = &mut scratch.idx_b[..];
        for r in 0..n {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            let mut l = 0;
            if hi > lo {
                for &c in &col_idx[lo..hi - 1] {
                    l = l.max(flevels[c] + 1);
                }
            }
            flevels[r] = l;
        }
        let (flevel_ptr, flevel_rows) = bucket_levels(flevels);
        // Backward (Lᵀ): column j waits on every sub-diagonal row of its
        // column, i.e. dependencies run from high indices to low.
        SetupScratch::prep(&mut scratch.growths, &mut scratch.idx_c, n, 0);
        let blevels = &mut scratch.idx_c[..];
        for col in (0..n).rev() {
            let mut l = 0;
            for k in col_ptr[col]..col_ptr[col + 1] {
                l = l.max(blevels[col_rows[k]] + 1);
            }
            blevels[col] = l;
        }
        let (blevel_ptr, blevel_cols) = bucket_levels(blevels);

        Ok(IncompleteCholesky {
            n,
            row_ptr,
            col_idx,
            values,
            col_ptr,
            col_rows,
            col_vals,
            flevel_ptr,
            flevel_rows,
            blevel_ptr,
            blevel_cols,
        })
    }

    /// Number of forward-solve dependency levels (the critical-path length
    /// of the parallel lower-triangular solve).
    pub fn forward_levels(&self) -> usize {
        self.flevel_ptr.len().saturating_sub(1)
    }

    /// Number of backward-solve dependency levels.
    pub fn backward_levels(&self) -> usize {
        self.blevel_ptr.len().saturating_sub(1)
    }

    /// Dimension of the factor.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Dimension above which [`IncompleteCholesky::apply`] routes through
    /// the active thread pool. Small factors finish before a broadcast
    /// would even start.
    pub const PAR_MIN_DIM: usize = 8_192;

    /// Rows per level below which a level runs serially even on a parallel
    /// pool (the broadcast overhead would dominate).
    pub const PAR_MIN_LEVEL_WIDTH: usize = 512;

    /// Applies the preconditioner: solves `L·Lᵀ·z = r`.
    ///
    /// Large factors (≥ [`IncompleteCholesky::PAR_MIN_DIM`]) route through
    /// the active thread pool using the precomputed level schedule; the
    /// result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` or `z.len()` differs from [`Self::dim`].
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "apply: r length mismatch");
        assert_eq!(z.len(), self.n, "apply: z length mismatch");
        if self.n >= Self::PAR_MIN_DIM {
            pool::active(|p| self.par_apply(p, r, z));
            return;
        }
        self.apply_serial(r, z);
    }

    /// Serial triangular solves (row/column order). Each row's update is
    /// the same expression the level-scheduled path evaluates, so the two
    /// agree bit for bit.
    fn apply_serial(&self, r: &[f64], z: &mut [f64]) {
        // Forward solve L y = r (y stored in z).
        for row in 0..self.n {
            let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
            let mut acc = r[row];
            // All entries before the diagonal are strictly lower.
            for idx in lo..hi - 1 {
                acc -= self.values[idx] * z[self.col_idx[idx]];
            }
            z[row] = acc / self.values[hi - 1];
        }
        // Backward solve Lᵀ z = y, column-oriented.
        for col in (0..self.n).rev() {
            let hi = self.row_ptr[col + 1];
            let diag = self.values[hi - 1];
            let mut acc = z[col];
            for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                acc -= self.values[self.col_vals[k]] * z[self.col_rows[k]];
            }
            z[col] = acc / diag;
        }
    }

    /// [`IncompleteCholesky::apply`] on an explicit pool: both triangular
    /// solves proceed level by level, with the rows (columns) of each wide
    /// level partitioned across contexts. Bit-identical to the serial path
    /// for any context count.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` or `z.len()` differs from [`Self::dim`].
    pub fn par_apply(&self, pool: &ThreadPool, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "apply: r length mismatch");
        assert_eq!(z.len(), self.n, "apply: z length mismatch");
        let contexts = pool.contexts();
        if contexts == 1 {
            self.apply_serial(r, z);
            return;
        }
        // Forward solve L y = r, level by level.
        for l in 0..self.forward_levels() {
            let rows = &self.flevel_rows[self.flevel_ptr[l]..self.flevel_ptr[l + 1]];
            if rows.len() < Self::PAR_MIN_LEVEL_WIDTH {
                for &row in rows {
                    let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
                    let mut acc = r[row];
                    for idx in lo..hi - 1 {
                        acc -= self.values[idx] * z[self.col_idx[idx]];
                    }
                    z[row] = acc / self.values[hi - 1];
                }
            } else {
                let zs = SharedSliceMut::new(z);
                pool.run(&|ctx| {
                    let a = rows.len() * ctx / contexts;
                    let b = rows.len() * (ctx + 1) / contexts;
                    for &row in &rows[a..b] {
                        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
                        let mut acc = r[row];
                        for idx in lo..hi - 1 {
                            // SAFETY: `col_idx[idx] < row` belongs to an
                            // earlier level — fully written, no concurrent
                            // writer in this level.
                            #[allow(unsafe_code)]
                            let zc = unsafe { zs.get(self.col_idx[idx]) };
                            acc -= self.values[idx] * zc;
                        }
                        // SAFETY: each row appears in exactly one level
                        // partition, so this write is race-free.
                        #[allow(unsafe_code)]
                        unsafe {
                            zs.set(row, acc / self.values[hi - 1])
                        };
                    }
                });
            }
        }
        // Backward solve Lᵀ z = y, level by level over columns.
        for l in 0..self.backward_levels() {
            let cols = &self.blevel_cols[self.blevel_ptr[l]..self.blevel_ptr[l + 1]];
            if cols.len() < Self::PAR_MIN_LEVEL_WIDTH {
                for &col in cols {
                    let hi = self.row_ptr[col + 1];
                    let diag = self.values[hi - 1];
                    let mut acc = z[col];
                    for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                        acc -= self.values[self.col_vals[k]] * z[self.col_rows[k]];
                    }
                    z[col] = acc / diag;
                }
            } else {
                let zs = SharedSliceMut::new(z);
                pool.run(&|ctx| {
                    let a = cols.len() * ctx / contexts;
                    let b = cols.len() * (ctx + 1) / contexts;
                    for &col in &cols[a..b] {
                        let hi = self.row_ptr[col + 1];
                        let diag = self.values[hi - 1];
                        // SAFETY: `col` is written by exactly this context
                        // (one level partition), and every `col_rows[k] >
                        // col` belongs to an earlier backward level.
                        #[allow(unsafe_code)]
                        let mut acc = unsafe { zs.get(col) };
                        for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                            #[allow(unsafe_code)]
                            let zr = unsafe { zs.get(self.col_rows[k]) };
                            acc -= self.values[self.col_vals[k]] * zr;
                        }
                        #[allow(unsafe_code)]
                        unsafe {
                            zs.set(col, acc / diag)
                        };
                    }
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn laplacian_2d(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n * n, n * n);
        for j in 0..n {
            for i in 0..n {
                let a = j * n + i;
                t.push(a, a, 1e-6); // weak ground tie keeps it PD
                if i + 1 < n {
                    t.stamp_conductance(Some(a), Some(a + 1), 1.0);
                }
                if j + 1 < n {
                    t.stamp_conductance(Some(a), Some(a + n), 1.0);
                }
            }
        }
        t.push(0, 0, 10.0);
        t.to_csr()
    }

    #[test]
    fn exact_for_diagonal_matrices() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 4.0), (1, 1, 9.0), (2, 2, 16.0)]);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let r = [8.0, 27.0, 32.0];
        let mut z = vec![0.0; 3];
        ic.apply(&r, &mut z);
        assert!((z[0] - 2.0).abs() < 1e-12);
        assert!((z[1] - 3.0).abs() < 1e-12);
        assert!((z[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_for_tridiagonal_spd() {
        // IC(0) on a tridiagonal matrix is the exact Cholesky factor, so
        // apply() must solve the system exactly.
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 3.0);
            if i + 1 < 5 {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.to_csr();
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5, 3.0, -1.0];
        let b = a.mul_vec(&x_true);
        let mut z = vec![0.0; 5];
        ic.apply(&b, &mut z);
        for (u, v) in z.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-10, "{z:?}");
        }
    }

    #[test]
    fn preconditioner_is_spd_like() {
        // z = M⁻¹ r must preserve positivity of the inner product ⟨r, z⟩.
        let a = laplacian_2d(8);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let r: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut z = vec![0.0; 64];
        ic.apply(&r, &mut z);
        let dot: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        assert!(dot > 0.0);
    }

    #[test]
    fn rejects_indefinite() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, -1.0)]);
        assert!(matches!(
            IncompleteCholesky::factor(&a),
            Err(SolveError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn rejects_nonsquare() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            IncompleteCholesky::factor(&a),
            Err(SolveError::NotSquare { .. })
        ));
    }

    #[test]
    fn level_schedule_shapes() {
        // Diagonal matrix: every row independent, one level each way.
        let d =
            CsrMatrix::from_triplets(4, 4, &[(0, 0, 1.0), (1, 1, 2.0), (2, 2, 3.0), (3, 3, 4.0)]);
        let ic = IncompleteCholesky::factor(&d).unwrap();
        assert_eq!(ic.forward_levels(), 1);
        assert_eq!(ic.backward_levels(), 1);
        // Tridiagonal: a pure chain, n levels each way.
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 3.0);
            if i + 1 < 5 {
                t.stamp_conductance(Some(i), Some(i + 1), 1.0);
            }
        }
        let ic = IncompleteCholesky::factor(&t.to_csr()).unwrap();
        assert_eq!(ic.forward_levels(), 5);
        assert_eq!(ic.backward_levels(), 5);
        // 2-D Laplacian: levels are (anti-)diagonal wavefronts, 2·n − 1.
        let ic = IncompleteCholesky::factor(&laplacian_2d(8)).unwrap();
        assert_eq!(ic.forward_levels(), 15);
        assert_eq!(ic.backward_levels(), 15);
    }

    #[test]
    fn par_apply_is_bit_identical_to_serial() {
        let a = laplacian_2d(16); // 256 unknowns, 31 levels
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let r: Vec<f64> = (0..256)
            .map(|i| ((i * 31 + 5) % 101) as f64 - 50.0)
            .collect();
        let mut z_serial = vec![0.0; 256];
        ic.apply_serial(&r, &mut z_serial);
        for contexts in [1, 2, 4] {
            let pool = crate::pool::ThreadPool::new(contexts);
            let mut z = vec![f64::NAN; 256];
            ic.par_apply(&pool, &r, &mut z);
            let same = z
                .iter()
                .zip(&z_serial)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "contexts = {contexts}");
        }
    }

    #[test]
    fn par_apply_wide_levels_match_serial() {
        // A diagonal system has a single level of width n, wide enough
        // (n > PAR_MIN_LEVEL_WIDTH) to exercise the partitioned branch.
        let n = 2 * IncompleteCholesky::PAR_MIN_LEVEL_WIDTH;
        let trips: Vec<(usize, usize, f64)> =
            (0..n).map(|i| (i, i, 1.0 + (i % 7) as f64)).collect();
        let a = CsrMatrix::from_triplets(n, n, &trips);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        assert_eq!(ic.forward_levels(), 1);
        let r: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let mut z_serial = vec![0.0; n];
        ic.apply_serial(&r, &mut z_serial);
        for contexts in [2, 4] {
            let pool = crate::pool::ThreadPool::new(contexts);
            let mut z = vec![f64::NAN; n];
            ic.par_apply(&pool, &r, &mut z);
            let same = z
                .iter()
                .zip(&z_serial)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "contexts = {contexts}");
        }
    }
}
