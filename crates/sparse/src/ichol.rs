//! Zero-fill incomplete Cholesky factorization, IC(0).
//!
//! Jacobi preconditioning only rescales the diagonal; for the PDN's grid
//! Laplacians the iteration count still grows with the grid diameter.
//! IC(0) computes a lower-triangular factor `L` with the sparsity pattern
//! of `A`'s lower triangle such that `L·Lᵀ ≈ A`, and preconditions CG with
//! `M⁻¹ = (L·Lᵀ)⁻¹` (two sparse triangular solves per iteration). On the
//! refined 8-layer PDN this typically cuts CG iterations by 3–5× for ~2×
//! the per-iteration cost — see the `solver_kernels` bench group.
//!
//! The factorization is only guaranteed to exist for M-matrices (which
//! grid Laplacians with Dirichlet ties are); for general SPD input a
//! breakdown (non-positive pivot) is reported as an error so callers can
//! fall back to Jacobi.

use crate::{CsrMatrix, SolveError};

/// An IC(0) factor `L` (lower triangular, unit-free, CSR-like storage).
#[derive(Debug, Clone, PartialEq)]
pub struct IncompleteCholesky {
    n: usize,
    /// Row pointers into `col_idx`/`values`, length `n + 1`. Each row's
    /// entries are sorted by column and end with the diagonal.
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
    /// Column-major access for the transpose solve: for each column `j`,
    /// the (row, value-index) pairs of sub-diagonal entries.
    col_ptr: Vec<usize>,
    col_rows: Vec<usize>,
    col_vals: Vec<usize>,
}

impl IncompleteCholesky {
    /// Factorizes the lower triangle of `a` in place of pattern.
    ///
    /// # Errors
    ///
    /// * [`SolveError::NotSquare`] if `a` is not square.
    /// * [`SolveError::SingularMatrix`] if a pivot becomes non-positive
    ///   (the matrix is not an M-matrix / not SPD enough for IC(0)).
    pub fn factor(a: &CsrMatrix) -> Result<Self, SolveError> {
        let n = a.rows();
        if a.cols() != n {
            return Err(SolveError::NotSquare {
                rows: a.rows(),
                cols: a.cols(),
            });
        }
        // Extract the lower triangle (including diagonal), row-sorted.
        let mut row_ptr = vec![0usize; n + 1];
        let mut col_idx: Vec<usize> = Vec::new();
        let mut values: Vec<f64> = Vec::new();
        for r in 0..n {
            let (cols, vals) = a.row(r);
            for (c, v) in cols.iter().zip(vals) {
                if *c <= r {
                    col_idx.push(*c);
                    values.push(*v);
                }
            }
            row_ptr[r + 1] = col_idx.len();
        }

        // Column lookup: position of (r, c) within row r, if present.
        let find = |row_ptr: &[usize], col_idx: &[usize], r: usize, c: usize| -> Option<usize> {
            let lo = row_ptr[r];
            let hi = row_ptr[r + 1];
            col_idx[lo..hi].binary_search(&c).ok().map(|k| lo + k)
        };

        // Standard IC(0): for each row r, for each stored (r, c) with
        // c < r: L[r,c] = (A[r,c] − Σ_k L[r,k]·L[c,k]) / L[c,c]; then
        // L[r,r] = sqrt(A[r,r] − Σ_k L[r,k]²).
        for r in 0..n {
            let (lo, hi) = (row_ptr[r], row_ptr[r + 1]);
            for idx in lo..hi {
                let c = col_idx[idx];
                if c == r {
                    // Diagonal: subtract squares of the strictly-lower row.
                    let mut acc = values[idx];
                    for v in &values[lo..idx] {
                        acc -= v * v;
                    }
                    if acc <= 0.0 || !acc.is_finite() {
                        return Err(SolveError::SingularMatrix { pivot: r });
                    }
                    values[idx] = acc.sqrt();
                } else {
                    // Off-diagonal: sparse dot of rows r and c over shared
                    // columns < c.
                    let mut acc = values[idx];
                    let (clo, chi) = (row_ptr[c], row_ptr[c + 1]);
                    let mut i = lo;
                    let mut j = clo;
                    while i < idx && j < chi && col_idx[j] < c {
                        match col_idx[i].cmp(&col_idx[j]) {
                            std::cmp::Ordering::Less => i += 1,
                            std::cmp::Ordering::Greater => j += 1,
                            std::cmp::Ordering::Equal => {
                                acc -= values[i] * values[j];
                                i += 1;
                                j += 1;
                            }
                        }
                    }
                    let diag = find(&row_ptr, &col_idx, c, c)
                        .map(|k| values[k])
                        .unwrap_or(0.0);
                    if diag == 0.0 {
                        return Err(SolveError::SingularMatrix { pivot: c });
                    }
                    values[idx] = acc / diag;
                }
            }
        }

        // Build the column-major view of the strictly-lower entries for
        // the Lᵀ solve.
        let mut col_counts = vec![0usize; n + 1];
        for r in 0..n {
            for &c in &col_idx[row_ptr[r]..row_ptr[r + 1]] {
                if c < r {
                    col_counts[c + 1] += 1;
                }
            }
        }
        for j in 0..n {
            col_counts[j + 1] += col_counts[j];
        }
        let col_ptr = col_counts.clone();
        let mut next = col_counts;
        let nnz_lower = col_ptr[n];
        let mut col_rows = vec![0usize; nnz_lower];
        let mut col_vals = vec![0usize; nnz_lower];
        for r in 0..n {
            for (idx, &c) in col_idx
                .iter()
                .enumerate()
                .take(row_ptr[r + 1])
                .skip(row_ptr[r])
            {
                if c < r {
                    let slot = next[c];
                    col_rows[slot] = r;
                    col_vals[slot] = idx;
                    next[c] += 1;
                }
            }
        }

        Ok(IncompleteCholesky {
            n,
            row_ptr,
            col_idx,
            values,
            col_ptr,
            col_rows,
            col_vals,
        })
    }

    /// Dimension of the factor.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Applies the preconditioner: solves `L·Lᵀ·z = r`.
    ///
    /// # Panics
    ///
    /// Panics if `r.len()` or `z.len()` differs from [`Self::dim`].
    pub fn apply(&self, r: &[f64], z: &mut [f64]) {
        assert_eq!(r.len(), self.n, "apply: r length mismatch");
        assert_eq!(z.len(), self.n, "apply: z length mismatch");
        // Forward solve L y = r (y stored in z).
        for row in 0..self.n {
            let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
            let mut acc = r[row];
            // All entries before the diagonal are strictly lower.
            for idx in lo..hi - 1 {
                acc -= self.values[idx] * z[self.col_idx[idx]];
            }
            z[row] = acc / self.values[hi - 1];
        }
        // Backward solve Lᵀ z = y, column-oriented.
        for col in (0..self.n).rev() {
            let hi = self.row_ptr[col + 1];
            let diag = self.values[hi - 1];
            let mut acc = z[col];
            for k in self.col_ptr[col]..self.col_ptr[col + 1] {
                acc -= self.values[self.col_vals[k]] * z[self.col_rows[k]];
            }
            z[col] = acc / diag;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn laplacian_2d(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n * n, n * n);
        for j in 0..n {
            for i in 0..n {
                let a = j * n + i;
                t.push(a, a, 1e-6); // weak ground tie keeps it PD
                if i + 1 < n {
                    t.stamp_conductance(Some(a), Some(a + 1), 1.0);
                }
                if j + 1 < n {
                    t.stamp_conductance(Some(a), Some(a + n), 1.0);
                }
            }
        }
        t.push(0, 0, 10.0);
        t.to_csr()
    }

    #[test]
    fn exact_for_diagonal_matrices() {
        let a = CsrMatrix::from_triplets(3, 3, &[(0, 0, 4.0), (1, 1, 9.0), (2, 2, 16.0)]);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let r = [8.0, 27.0, 32.0];
        let mut z = vec![0.0; 3];
        ic.apply(&r, &mut z);
        assert!((z[0] - 2.0).abs() < 1e-12);
        assert!((z[1] - 3.0).abs() < 1e-12);
        assert!((z[2] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exact_for_tridiagonal_spd() {
        // IC(0) on a tridiagonal matrix is the exact Cholesky factor, so
        // apply() must solve the system exactly.
        let mut t = TripletMatrix::new(5, 5);
        for i in 0..5 {
            t.push(i, i, 3.0);
            if i + 1 < 5 {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        let a = t.to_csr();
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let x_true = [1.0, -2.0, 0.5, 3.0, -1.0];
        let b = a.mul_vec(&x_true);
        let mut z = vec![0.0; 5];
        ic.apply(&b, &mut z);
        for (u, v) in z.iter().zip(&x_true) {
            assert!((u - v).abs() < 1e-10, "{z:?}");
        }
    }

    #[test]
    fn preconditioner_is_spd_like() {
        // z = M⁻¹ r must preserve positivity of the inner product ⟨r, z⟩.
        let a = laplacian_2d(8);
        let ic = IncompleteCholesky::factor(&a).unwrap();
        let r: Vec<f64> = (0..64).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        let mut z = vec![0.0; 64];
        ic.apply(&r, &mut z);
        let dot: f64 = r.iter().zip(&z).map(|(a, b)| a * b).sum();
        assert!(dot > 0.0);
    }

    #[test]
    fn rejects_indefinite() {
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, -1.0)]);
        assert!(matches!(
            IncompleteCholesky::factor(&a),
            Err(SolveError::SingularMatrix { .. })
        ));
    }

    #[test]
    fn rejects_nonsquare() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        assert!(matches!(
            IncompleteCholesky::factor(&a),
            Err(SolveError::NotSquare { .. })
        ));
    }
}
