//! Iterative solvers for sparse linear systems.
//!
//! The resistive-grid and thermal systems in `vstack` are symmetric positive
//! definite (SPD) — including the voltage-stacked PDN, whose switched-
//! capacitor converter stamps are rank-1 PSD (see `vstack-pdn`) — so the
//! preconditioned [conjugate gradient](cg) method is the default. The
//! [BiCGSTAB](bicgstab) method is provided for general non-symmetric systems
//! produced by full MNA matrices with unreduced controlled sources.
//!
//! Both solvers support Jacobi (diagonal) preconditioning, which is exact for
//! diagonally dominant grid Laplacians' scaling and costs one divide per
//! unknown per iteration.

use std::time::Instant;

use crate::amg::{AmgHierarchy, AmgHierarchyF32, AmgOptions};
use crate::ichol::IncompleteCholesky;
use crate::stencil::LinearOperator;
use crate::vecops::{axpy, dot, norm2, xpby};
use crate::{CsrMatrix, SolveError};

/// Preconditioner selection for the iterative solvers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Preconditioner {
    /// No preconditioning.
    None,
    /// Diagonal (Jacobi) scaling: `M⁻¹ = diag(A)⁻¹`.
    #[default]
    Jacobi,
    /// Zero-fill incomplete Cholesky, `M = L·Lᵀ` (see
    /// [`crate::ichol::IncompleteCholesky`]). Strongest single-level
    /// option on grid Laplacians; factorization fails (and the solve
    /// errors) if the matrix is not SPD enough — fall back to Jacobi in
    /// that case.
    IncompleteCholesky,
    /// Aggregation-based algebraic multigrid V-cycle (see
    /// [`crate::amg::AmgHierarchy`]), built with [`AmgOptions::default`].
    /// Iteration counts are nearly independent of problem size, at the
    /// price of a setup pass; callers that re-solve one sparsity pattern
    /// many times should build the hierarchy once and use
    /// [`cg_with_amg_ws`] instead.
    Amg,
}

/// Options controlling a [`cg`] solve.
#[derive(Debug, Clone, PartialEq)]
pub struct CgOptions {
    /// Relative residual tolerance `‖r‖/‖b‖` at which to stop.
    pub tolerance: f64,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Preconditioner to apply.
    pub preconditioner: Preconditioner,
    /// If non-zero, declare [`SolveError::Stagnated`] when the residual
    /// fails to improve for this many consecutive iterations. `0` disables
    /// the check (the default, preserving plain-CG behavior); the
    /// [`crate::robust`] escalation ladder enables it so a stalled solve
    /// hands control to the next rung instead of burning the full budget.
    pub stagnation_window: usize,
}

impl Default for CgOptions {
    fn default() -> Self {
        CgOptions {
            tolerance: 1e-10,
            max_iterations: 20_000,
            preconditioner: Preconditioner::Jacobi,
            stagnation_window: 0,
        }
    }
}

/// Options controlling a [`bicgstab`] solve.
#[derive(Debug, Clone, PartialEq)]
pub struct BiCgStabOptions {
    /// Relative residual tolerance `‖r‖/‖b‖` at which to stop.
    pub tolerance: f64,
    /// Maximum number of iterations before giving up.
    pub max_iterations: usize,
    /// Preconditioner to apply.
    pub preconditioner: Preconditioner,
}

impl Default for BiCgStabOptions {
    fn default() -> Self {
        BiCgStabOptions {
            tolerance: 1e-10,
            max_iterations: 20_000,
            preconditioner: Preconditioner::Jacobi,
        }
    }
}

fn inverse_diagonal(a: &CsrMatrix) -> Result<Vec<f64>, SolveError> {
    a.diagonal()
        .into_iter()
        .enumerate()
        .map(|(row, d)| {
            if d.abs() > f64::MIN_POSITIVE {
                Ok(1.0 / d)
            } else {
                Err(SolveError::SingularDiagonal { row })
            }
        })
        .collect()
}

/// Rejects NaN/Inf in the matrix, right-hand side and warm-start guess so
/// malformed systems fail fast with [`SolveError::NonFinite`] instead of
/// iterating to a confusing breakdown.
pub(crate) fn validate_finite(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
) -> Result<(), SolveError> {
    for (row, _, v) in a.iter() {
        if !v.is_finite() {
            return Err(SolveError::NonFinite {
                what: "matrix",
                index: row,
            });
        }
    }
    if let Some(index) = b.iter().position(|v| !v.is_finite()) {
        return Err(SolveError::NonFinite { what: "rhs", index });
    }
    if let Some(g) = guess {
        if let Some(index) = g.iter().position(|v| !v.is_finite()) {
            return Err(SolveError::NonFinite {
                what: "guess",
                index,
            });
        }
    }
    Ok(())
}

/// Reusable scratch vectors for [`cg_with_guess_ws`],
/// [`bicgstab_with_guess_ws`] and [`crate::solve_robust_ws`].
///
/// A CG solve needs four work vectors and a BiCGSTAB solve eight; sweep
/// loops and the wearout feedback loop used to re-allocate them for every
/// solve. A workspace owns them all and is resized (never shrunk) to each
/// system's dimension on entry, so steady-state re-solves perform **no
/// allocation** beyond the returned solution vector. Every vector is
/// re-zeroed on entry, so reuse across solves — including solves of
/// different sizes or sparsity patterns — is bit-identical to the
/// allocate-fresh path.
#[derive(Debug, Clone, Default)]
pub struct SolveWorkspace {
    r: Vec<f64>,
    z: Vec<f64>,
    p: Vec<f64>,
    ap: Vec<f64>,
    r_hat: Vec<f64>,
    v: Vec<f64>,
    phat: Vec<f64>,
    s: Vec<f64>,
    shat: Vec<f64>,
    t: Vec<f64>,
    /// Preconditioner-setup scratch (AMG strength/aggregation buffers,
    /// IC(0) level-schedule temps), so cached-pattern re-setup is
    /// allocation-free once grown.
    pub(crate) setup: SetupScratch,
}

impl SolveWorkspace {
    /// Creates an empty workspace; vectors grow on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total `f64` capacity currently held (diagnostic; used by tests to
    /// verify that steady-state reuse stops allocating).
    pub fn capacity(&self) -> usize {
        self.r.capacity()
            + self.z.capacity()
            + self.p.capacity()
            + self.ap.capacity()
            + self.r_hat.capacity()
            + self.v.capacity()
            + self.phat.capacity()
            + self.s.capacity()
            + self.shat.capacity()
            + self.t.capacity()
    }

    /// How many times a preconditioner-setup scratch buffer had to grow its
    /// allocation. Steady once the workspace has seen its largest system:
    /// tests assert this stays flat across repeated AMG/IC(0) setups on a
    /// cached pattern.
    pub fn setup_regrowths(&self) -> u64 {
        self.setup.growths
    }
}

/// Scratch buffers for preconditioner *setup* (as opposed to the per-
/// iteration vectors above): AMG diagonal/aggregation/prolongator-triplet
/// temporaries and IC(0) level-schedule temporaries. Every buffer is
/// `clear()`-ed and re-filled on use, so reuse across setups — including
/// setups of different sizes — is bit-identical to the allocate-fresh path.
#[derive(Debug, Clone, Default)]
pub(crate) struct SetupScratch {
    /// Level diagonal (AMG strength graph / smoother setup).
    pub(crate) diag: Vec<f64>,
    /// Aggregate ids per node (AMG).
    pub(crate) agg: Vec<usize>,
    /// Pass-1 aggregate snapshot (AMG) / misc index temp.
    pub(crate) pass: Vec<usize>,
    /// Prolongator assembly triplets (AMG).
    pub(crate) trip: Vec<(usize, usize, f64)>,
    /// Index temp A (IC(0) column counts).
    pub(crate) idx_a: Vec<usize>,
    /// Index temp B (IC(0) column cursors).
    pub(crate) idx_b: Vec<usize>,
    /// Index temp C (IC(0) level numbers).
    pub(crate) idx_c: Vec<usize>,
    /// Number of buffer regrowths since creation (see
    /// [`SolveWorkspace::setup_regrowths`]).
    pub(crate) growths: u64,
}

impl SetupScratch {
    /// Resets `v` to `n` copies of `fill`, reusing its allocation when
    /// large enough and counting a regrowth when not.
    pub(crate) fn prep<T: Clone>(growths: &mut u64, v: &mut Vec<T>, n: usize, fill: T) {
        if v.capacity() < n {
            *growths += 1;
        }
        v.clear();
        v.resize(n, fill);
    }
}

/// Resets `v` to `n` zeros, reusing its allocation when large enough —
/// the workspace equivalent of `vec![0.0; n]`.
fn prep(v: &mut Vec<f64>, n: usize) {
    v.clear();
    v.resize(n, 0.0);
}

/// Publishes a completed CG solve to the global metrics registry.
fn record_cg(solved: Solved, amg_preconditioned: bool) -> Solved {
    let m = vstack_obs::metrics::global();
    let it = solved.iterations as u64;
    m.cg_solves.inc();
    m.solver_iterations.add(it);
    m.solver_iterations_hist.observe(it);
    m.solver_setup_us.add(solved.setup_us);
    m.solver_solve_us.add(solved.solve_us);
    m.setup_us_hist.observe(solved.setup_us);
    m.solve_us_hist.observe(solved.solve_us);
    if amg_preconditioned {
        m.amg_vcycles_per_solve.observe(it);
    }
    solved
}

/// Publishes a completed BiCGSTAB solve to the global metrics registry.
fn record_bicgstab(solved: Solved) -> Solved {
    let m = vstack_obs::metrics::global();
    let it = solved.iterations as u64;
    m.bicgstab_solves.inc();
    m.solver_iterations.add(it);
    m.solver_iterations_hist.observe(it);
    m.solver_setup_us.add(solved.setup_us);
    m.solver_solve_us.add(solved.solve_us);
    m.setup_us_hist.observe(solved.setup_us);
    m.solve_us_hist.observe(solved.solve_us);
    solved
}

/// Materialized preconditioner state. `AmgRef`/`AmgF32Ref` borrow a
/// hierarchy a caller built (and caches) elsewhere; the other variants are
/// owned.
enum Precond<'a> {
    None,
    Jacobi(Vec<f64>),
    Ic(Box<IncompleteCholesky>),
    Amg(Box<AmgHierarchy>),
    AmgRef(&'a AmgHierarchy),
    /// Mixed-precision V-cycle: the f32 hierarchy applied with
    /// scale-to-unit iterative-refinement framing (see
    /// [`AmgHierarchyF32::apply`]). The outer CG stays entirely in f64.
    AmgF32Ref(&'a AmgHierarchyF32),
}

impl Precond<'_> {
    fn build(
        kind: Preconditioner,
        a: &CsrMatrix,
        scratch: &mut SetupScratch,
    ) -> Result<Self, SolveError> {
        Ok(match kind {
            Preconditioner::None => Precond::None,
            Preconditioner::Jacobi => Precond::Jacobi(inverse_diagonal(a)?),
            Preconditioner::IncompleteCholesky => {
                Precond::Ic(Box::new(IncompleteCholesky::factor_scratch(a, scratch)?))
            }
            Preconditioner::Amg => Precond::Amg(Box::new(AmgHierarchy::build_scratch(
                a,
                &AmgOptions::default(),
                scratch,
            )?)),
        })
    }

    fn apply(&self, r: &[f64], z: &mut [f64]) {
        match self {
            Precond::Jacobi(inv_d) => {
                for ((zi, ri), di) in z.iter_mut().zip(r).zip(inv_d) {
                    *zi = ri * di;
                }
            }
            Precond::Ic(ic) => ic.apply(r, z),
            Precond::Amg(h) => h.apply(r, z),
            Precond::AmgRef(h) => h.apply(r, z),
            Precond::AmgF32Ref(h) => h.apply(r, z),
            Precond::None => z.copy_from_slice(r),
        }
    }
}

/// Solves the SPD system `A x = b` by preconditioned conjugate gradient.
///
/// Returns the solution vector. Use [`CsrMatrix::residual_norm`] to verify
/// independently.
///
/// # Errors
///
/// * [`SolveError::NotSquare`] / [`SolveError::DimensionMismatch`] on shape
///   problems.
/// * [`SolveError::NotConverged`] if the relative residual fails to reach
///   `options.tolerance` within `options.max_iterations`.
/// * [`SolveError::Breakdown`] if an inner product vanishes (typically the
///   matrix was not SPD).
///
/// # Example
///
/// ```
/// use vstack_sparse::{CsrMatrix, solver::{cg, CgOptions}};
///
/// # fn main() -> Result<(), vstack_sparse::SolveError> {
/// let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 4.0), (1, 1, 9.0)]);
/// let x = cg(&a, &[8.0, 27.0], &CgOptions::default())?;
/// assert!((x[0] - 2.0).abs() < 1e-9 && (x[1] - 3.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn cg(a: &CsrMatrix, b: &[f64], options: &CgOptions) -> Result<Vec<f64>, SolveError> {
    let solved = cg_with_guess(a, b, None, options)?;
    Ok(solved.x)
}

/// Output of [`cg_with_guess`]: solution plus convergence diagnostics.
///
/// Equality ([`PartialEq`]) compares only the *numerical* outcome — `x`,
/// `iterations` and `relative_residual` — and deliberately ignores the
/// wall-clock observability fields, so the crate's bit-identity guarantees
/// ("reused workspace equals fresh", "threaded equals serial") remain
/// testable with `assert_eq!`.
#[derive(Debug, Clone)]
pub struct Solved {
    /// The solution vector.
    pub x: Vec<f64>,
    /// Iterations actually performed.
    pub iterations: usize,
    /// Final relative residual `‖b − Ax‖ / ‖b‖`.
    pub relative_residual: f64,
    /// Wall-clock microseconds spent building the preconditioner (0 when
    /// the caller supplied a prebuilt one). Excluded from equality.
    pub setup_us: u64,
    /// Wall-clock microseconds spent iterating after setup. Excluded from
    /// equality.
    pub solve_us: u64,
}

impl PartialEq for Solved {
    fn eq(&self, other: &Self) -> bool {
        self.x == other.x
            && self.iterations == other.iterations
            && self.relative_residual == other.relative_residual
    }
}

impl Solved {
    /// The trivial solution of a zero right-hand side.
    fn zeros(n: usize) -> Self {
        Solved {
            x: vec![0.0; n],
            iterations: 0,
            relative_residual: 0.0,
            setup_us: 0,
            solve_us: 0,
        }
    }
}

/// Like [`cg`], but accepts a warm-start guess and reports diagnostics.
///
/// Warm starting matters in `vstack`: parameter sweeps (e.g. the Fig 6
/// imbalance sweep) solve a sequence of nearby systems, and reusing the
/// previous solution typically halves iteration counts.
///
/// # Errors
///
/// Same as [`cg`].
pub fn cg_with_guess(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &CgOptions,
) -> Result<Solved, SolveError> {
    cg_with_guess_ws(a, b, guess, options, &mut SolveWorkspace::new())
}

/// Like [`cg_with_guess`], but borrows its work vectors from `ws` instead
/// of allocating them — the entry point for sweep loops that solve many
/// systems in sequence. Results are bit-identical to [`cg_with_guess`].
///
/// # Errors
///
/// Same as [`cg`].
pub fn cg_with_guess_ws(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &CgOptions,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    validate_finite(a, b, guess)?;
    if norm2(b) == 0.0 {
        return Ok(Solved::zeros(n));
    }

    let setup_timer = Instant::now();
    let pre = {
        let _span = vstack_obs::span!("cg_setup");
        Precond::build(options.preconditioner, a, &mut ws.setup)?
    };
    let setup_us = setup_timer.elapsed().as_micros() as u64;
    cg_core(a, b, guess, options, &pre, setup_us, ws)
}

/// Like [`cg_with_guess_ws`], but preconditions with a *prebuilt* AMG
/// hierarchy instead of building one from `options.preconditioner` (which
/// is ignored). This is the warm path for callers that solve one sparsity
/// pattern many times — `vstack-pdn` caches the hierarchy in its
/// `SolveScratch` so fault and sweep re-solves skip setup entirely; the
/// reported [`Solved::setup_us`] is 0.
///
/// The hierarchy stays mathematically sound as a preconditioner even when
/// the matrix *values* have drifted since it was built (CG converges
/// against the current `a` for any fixed SPD preconditioner); only its
/// dimension must still match.
///
/// # Errors
///
/// Same as [`cg`], plus [`SolveError::DimensionMismatch`] when
/// `amg.dim() != a.rows()`.
pub fn cg_with_amg_ws(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &CgOptions,
    amg: &AmgHierarchy,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    if amg.dim() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: amg.dim(),
        });
    }
    validate_finite(a, b, guess)?;
    if norm2(b) == 0.0 {
        return Ok(Solved::zeros(n));
    }
    cg_core(a, b, guess, options, &Precond::AmgRef(amg), 0, ws)
}

/// Rejects NaN/Inf in the right-hand side and warm-start guess (operator
/// entry points cannot cheaply enumerate matrix entries, so only the
/// vectors are screened; a non-finite operator value surfaces as a
/// [`SolveError::Breakdown`] instead, which the escalation ladder treats
/// as numerical and falls back from).
fn validate_finite_vecs(b: &[f64], guess: Option<&[f64]>) -> Result<(), SolveError> {
    if let Some(index) = b.iter().position(|v| !v.is_finite()) {
        return Err(SolveError::NonFinite { what: "rhs", index });
    }
    if let Some(g) = guess {
        if let Some(index) = g.iter().position(|v| !v.is_finite()) {
            return Err(SolveError::NonFinite {
                what: "guess",
                index,
            });
        }
    }
    Ok(())
}

/// Shape screening shared by the operator entry points.
fn validate_operator(op: &dyn LinearOperator, b: &[f64]) -> Result<usize, SolveError> {
    let n = op.rows();
    if op.cols() != n {
        return Err(SolveError::NotSquare {
            rows: op.rows(),
            cols: op.cols(),
        });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    Ok(n)
}

/// Like [`cg_with_amg_ws`], but drives the outer iteration through any
/// [`LinearOperator`] — e.g. a [`crate::StencilOperator`] whose apply is
/// bit-identical to the CSR it was extracted from, making this a pure
/// speedup over [`cg_with_amg_ws`] on regular grids.
///
/// # Errors
///
/// Same as [`cg_with_amg_ws`].
pub fn cg_with_amg_op_ws(
    op: &dyn LinearOperator,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &CgOptions,
    amg: &AmgHierarchy,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveError> {
    let n = validate_operator(op, b)?;
    if amg.dim() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: amg.dim(),
        });
    }
    validate_finite_vecs(b, guess)?;
    if norm2(b) == 0.0 {
        return Ok(Solved::zeros(n));
    }
    cg_core(op, b, guess, options, &Precond::AmgRef(amg), 0, ws)
}

/// Mixed-precision solve: f64 outer CG over `op`, preconditioned by a
/// prebuilt **f32** AMG hierarchy applied as one V-cycle of iterative
/// refinement per iteration (see [`AmgHierarchyF32`]). The solution meets
/// the same f64 tolerance as the all-f64 path — precision of the
/// preconditioner only affects the iteration count — and the f32 V-cycle
/// is fully serial, so results are deterministic across thread counts.
///
/// # Errors
///
/// Same as [`cg_with_amg_ws`]. An overflowing f32 conversion (matrix
/// values beyond ~3.4e38) produces non-finite V-cycle output and surfaces
/// as [`SolveError::Breakdown`], which the escalation ladder treats as a
/// cue to fall back to the pure-f64 path.
pub fn cg_with_amg_f32_ws(
    op: &dyn LinearOperator,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &CgOptions,
    amg: &AmgHierarchyF32,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveError> {
    let n = validate_operator(op, b)?;
    if amg.dim() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: amg.dim(),
        });
    }
    validate_finite_vecs(b, guess)?;
    if norm2(b) == 0.0 {
        return Ok(Solved::zeros(n));
    }
    cg_core(op, b, guess, options, &Precond::AmgF32Ref(amg), 0, ws)
}

/// The shared CG iteration, parameterized over a materialized
/// preconditioner and a generic fine-grid operator. Inputs are already
/// validated and `b` is non-zero.
fn cg_core(
    a: &dyn LinearOperator,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &CgOptions,
    pre: &Precond<'_>,
    setup_us: u64,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveError> {
    let _span = vstack_obs::span!("cg_solve");
    let amg_preconditioned = matches!(
        pre,
        Precond::Amg(_) | Precond::AmgRef(_) | Precond::AmgF32Ref(_)
    );
    let n = a.rows();
    let b_norm = norm2(b);
    let solve_timer = Instant::now();

    let mut x = match guess {
        Some(g) => {
            if g.len() != n {
                return Err(SolveError::DimensionMismatch {
                    expected: n,
                    found: g.len(),
                });
            }
            g.to_vec()
        }
        None => vec![0.0; n],
    };

    let SolveWorkspace { r, z, p, ap, .. } = ws;
    prep(r, n);
    prep(z, n);
    prep(p, n);
    prep(ap, n);

    // r = b − A x
    a.mul_vec_into(&x, r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }

    pre.apply(r, z);
    p.copy_from_slice(z);
    let mut rz = dot(r, z);

    // Stagnation tracking: `best_res` only updates on a meaningful
    // (relative) improvement, so round-off chatter does not reset the
    // window.
    let mut best_res = f64::INFINITY;
    let mut stalled = 0usize;

    for it in 0..options.max_iterations {
        let res = norm2(r) / b_norm;
        if res <= options.tolerance {
            return Ok(record_cg(
                Solved {
                    x,
                    iterations: it,
                    relative_residual: res,
                    setup_us,
                    solve_us: solve_timer.elapsed().as_micros() as u64,
                },
                amg_preconditioned,
            ));
        }
        if options.stagnation_window > 0 {
            if res < best_res * (1.0 - 1e-6) {
                best_res = res;
                stalled = 0;
            } else {
                stalled += 1;
                if stalled >= options.stagnation_window {
                    return Err(SolveError::Stagnated {
                        iterations: it,
                        residual: res,
                    });
                }
            }
        }
        a.mul_vec_into(p, ap);
        let pap = dot(p, ap);
        if pap <= 0.0 || !pap.is_finite() {
            return Err(SolveError::Breakdown { iterations: it });
        }
        let alpha = rz / pap;
        axpy(alpha, p, &mut x);
        axpy(-alpha, ap, r);
        pre.apply(r, z);
        let rz_next = dot(r, z);
        let beta = rz_next / rz;
        rz = rz_next;
        xpby(z, beta, p);
    }

    let res = norm2(r) / b_norm;
    if res <= options.tolerance {
        Ok(record_cg(
            Solved {
                x,
                iterations: options.max_iterations,
                relative_residual: res,
                setup_us,
                solve_us: solve_timer.elapsed().as_micros() as u64,
            },
            amg_preconditioned,
        ))
    } else {
        Err(SolveError::NotConverged {
            iterations: options.max_iterations,
            residual: res,
        })
    }
}

/// Solves the (possibly non-symmetric) system `A x = b` by BiCGSTAB.
///
/// Used for full MNA matrices that retain voltage-source and controlled-
/// source rows. For SPD systems prefer [`cg`], which is cheaper per
/// iteration and guaranteed to converge.
///
/// # Errors
///
/// * [`SolveError::NotSquare`] / [`SolveError::DimensionMismatch`] on shape
///   problems.
/// * [`SolveError::NotConverged`] if the tolerance is not met in
///   `options.max_iterations`.
/// * [`SolveError::Breakdown`] on vanishing inner products.
pub fn bicgstab(
    a: &CsrMatrix,
    b: &[f64],
    options: &BiCgStabOptions,
) -> Result<Vec<f64>, SolveError> {
    let solved = bicgstab_with_guess(a, b, None, options)?;
    Ok(solved.x)
}

/// Like [`bicgstab`], but accepts a warm-start guess and reports
/// diagnostics — the same contract as [`cg_with_guess`].
///
/// Warm starting is what makes the wearout loop in `vstack` affordable:
/// each pad-kill step perturbs the previous system only locally, so the
/// previous voltage field is an excellent initial iterate.
///
/// # Errors
///
/// Same as [`bicgstab`].
pub fn bicgstab_with_guess(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &BiCgStabOptions,
) -> Result<Solved, SolveError> {
    bicgstab_with_guess_ws(a, b, guess, options, &mut SolveWorkspace::new())
}

/// Like [`bicgstab_with_guess`], but borrows its eight work vectors from
/// `ws` instead of allocating them. Results are bit-identical to
/// [`bicgstab_with_guess`].
///
/// # Errors
///
/// Same as [`bicgstab`].
pub fn bicgstab_with_guess_ws(
    a: &CsrMatrix,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &BiCgStabOptions,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(SolveError::NotSquare {
            rows: a.rows(),
            cols: a.cols(),
        });
    }
    if b.len() != n {
        return Err(SolveError::DimensionMismatch {
            expected: n,
            found: b.len(),
        });
    }
    validate_finite(a, b, guess)?;
    if norm2(b) == 0.0 {
        return Ok(Solved::zeros(n));
    }

    let setup_timer = Instant::now();
    let pre = Precond::build(options.preconditioner, a, &mut ws.setup)?;
    let setup_us = setup_timer.elapsed().as_micros() as u64;
    bicgstab_core(a, b, guess, options, &pre, setup_us, ws)
}

/// Like [`bicgstab_with_guess_ws`], but drives every matrix–vector product
/// through any [`LinearOperator`]. Runs **unpreconditioned**
/// (`options.preconditioner` is ignored): the single-level preconditioners
/// need explicit matrix entries, which a matrix-free operator does not
/// expose. Intended for operators whose apply is bit-identical to an
/// assembled matrix (e.g. [`crate::StencilOperator`]).
///
/// # Errors
///
/// Same as [`bicgstab`].
pub fn bicgstab_with_operator_ws(
    op: &dyn LinearOperator,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &BiCgStabOptions,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveError> {
    let n = validate_operator(op, b)?;
    validate_finite_vecs(b, guess)?;
    if norm2(b) == 0.0 {
        return Ok(Solved::zeros(n));
    }
    bicgstab_core(op, b, guess, options, &Precond::None, 0, ws)
}

/// The shared BiCGSTAB iteration, parameterized over a materialized
/// preconditioner and a generic operator. Inputs are already validated and
/// `b` is non-zero.
fn bicgstab_core(
    a: &dyn LinearOperator,
    b: &[f64],
    guess: Option<&[f64]>,
    options: &BiCgStabOptions,
    pre: &Precond<'_>,
    setup_us: u64,
    ws: &mut SolveWorkspace,
) -> Result<Solved, SolveError> {
    let _span = vstack_obs::span!("bicgstab_solve");
    let n = a.rows();
    let b_norm = norm2(b);
    let solve_timer = Instant::now();

    let mut x = match guess {
        Some(g) => {
            if g.len() != n {
                return Err(SolveError::DimensionMismatch {
                    expected: n,
                    found: g.len(),
                });
            }
            g.to_vec()
        }
        None => vec![0.0; n],
    };

    let SolveWorkspace {
        r,
        r_hat,
        v,
        p,
        phat,
        s,
        shat,
        t,
        ..
    } = ws;
    prep(r, n);
    prep(r_hat, n);
    prep(v, n);
    prep(p, n);
    prep(phat, n);
    prep(s, n);
    prep(shat, n);
    prep(t, n);

    // r = b − A x
    a.mul_vec_into(&x, r);
    for (ri, bi) in r.iter_mut().zip(b) {
        *ri = bi - *ri;
    }
    let initial_res = norm2(r) / b_norm;
    if initial_res <= options.tolerance {
        return Ok(record_bicgstab(Solved {
            x,
            iterations: 0,
            relative_residual: initial_res,
            setup_us,
            solve_us: solve_timer.elapsed().as_micros() as u64,
        }));
    }
    r_hat.copy_from_slice(r);
    let mut rho = 1.0;
    let mut alpha = 1.0;
    let mut omega = 1.0;

    for it in 0..options.max_iterations {
        let rho_next = dot(r_hat, r);
        if rho_next.abs() < f64::MIN_POSITIVE {
            return Err(SolveError::Breakdown { iterations: it });
        }
        let beta = (rho_next / rho) * (alpha / omega);
        rho = rho_next;
        // p = r + beta (p − omega v)
        for i in 0..n {
            p[i] = r[i] + beta * (p[i] - omega * v[i]);
        }
        pre.apply(p, phat);
        a.mul_vec_into(phat, v);
        let denom = dot(r_hat, v);
        if denom.abs() < f64::MIN_POSITIVE {
            return Err(SolveError::Breakdown { iterations: it });
        }
        alpha = rho / denom;
        for i in 0..n {
            s[i] = r[i] - alpha * v[i];
        }
        let s_res = norm2(s) / b_norm;
        if s_res <= options.tolerance {
            axpy(alpha, phat, &mut x);
            return Ok(record_bicgstab(Solved {
                x,
                iterations: it + 1,
                relative_residual: s_res,
                setup_us,
                solve_us: solve_timer.elapsed().as_micros() as u64,
            }));
        }
        pre.apply(s, shat);
        a.mul_vec_into(shat, t);
        let tt = dot(t, t);
        if tt.abs() < f64::MIN_POSITIVE {
            return Err(SolveError::Breakdown { iterations: it });
        }
        omega = dot(t, s) / tt;
        axpy(alpha, phat, &mut x);
        axpy(omega, shat, &mut x);
        for i in 0..n {
            r[i] = s[i] - omega * t[i];
        }
        let res = norm2(r) / b_norm;
        if res <= options.tolerance {
            return Ok(record_bicgstab(Solved {
                x,
                iterations: it + 1,
                relative_residual: res,
                setup_us,
                solve_us: solve_timer.elapsed().as_micros() as u64,
            }));
        }
        if omega.abs() < f64::MIN_POSITIVE {
            return Err(SolveError::Breakdown { iterations: it });
        }
    }

    Err(SolveError::NotConverged {
        iterations: options.max_iterations,
        residual: norm2(r) / b_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripletMatrix;

    fn laplacian_1d(n: usize) -> CsrMatrix {
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 2.0);
            if i + 1 < n {
                t.push(i, i + 1, -1.0);
                t.push(i + 1, i, -1.0);
            }
        }
        t.to_csr()
    }

    #[test]
    fn cg_solves_laplacian() {
        let n = 100;
        let a = laplacian_1d(n);
        let x_true: Vec<f64> = (0..n).map(|i| (i as f64 * 0.37).sin()).collect();
        let b = a.mul_vec(&x_true);
        let x = cg(&a, &b, &CgOptions::default()).expect("cg should converge");
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "max err {err}");
    }

    #[test]
    fn cg_without_preconditioner() {
        let a = laplacian_1d(50);
        let b = vec![1.0; 50];
        let opts = CgOptions {
            preconditioner: Preconditioner::None,
            ..CgOptions::default()
        };
        let x = cg(&a, &b, &opts).expect("cg should converge");
        assert!(a.residual_norm(&x, &b) < 1e-8);
    }

    #[test]
    fn cg_zero_rhs_returns_zero() {
        let a = laplacian_1d(10);
        let x = cg(&a, &[0.0; 10], &CgOptions::default()).expect("trivial solve");
        assert_eq!(x, vec![0.0; 10]);
    }

    #[test]
    fn cg_warm_start_converges_faster() {
        let n = 400;
        let a = laplacian_1d(n);
        let b = vec![1.0; n];
        let opts = CgOptions::default();
        let cold = cg_with_guess(&a, &b, None, &opts).expect("cold solve");
        let warm = cg_with_guess(&a, &b, Some(&cold.x), &opts).expect("warm solve");
        assert!(warm.iterations <= 1, "warm start should converge instantly");
    }

    #[test]
    fn cg_dimension_mismatch_rejected() {
        let a = laplacian_1d(4);
        let err = cg(&a, &[1.0; 3], &CgOptions::default()).unwrap_err();
        assert!(matches!(err, SolveError::DimensionMismatch { .. }));
    }

    #[test]
    fn cg_rejects_nonsquare() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0)]);
        let err = cg(&a, &[1.0, 1.0], &CgOptions::default()).unwrap_err();
        assert!(matches!(err, SolveError::NotSquare { .. }));
    }

    #[test]
    fn cg_not_converged_when_budget_too_small() {
        let a = laplacian_1d(200);
        let b = vec![1.0; 200];
        let opts = CgOptions {
            max_iterations: 2,
            ..CgOptions::default()
        };
        let err = cg(&a, &b, &opts).unwrap_err();
        assert!(matches!(err, SolveError::NotConverged { .. }));
    }

    #[test]
    fn cg_with_incomplete_cholesky_converges_faster() {
        let a = laplacian_1d(400);
        let b = vec![1.0; 400];
        let jacobi = cg_with_guess(&a, &b, None, &CgOptions::default()).expect("jacobi");
        let ic_opts = CgOptions {
            preconditioner: Preconditioner::IncompleteCholesky,
            ..CgOptions::default()
        };
        let ic = cg_with_guess(&a, &b, None, &ic_opts).expect("ic");
        assert!(a.residual_norm(&ic.x, &b) < 1e-7);
        assert!(
            ic.iterations < jacobi.iterations / 2,
            "IC(0) {} vs Jacobi {} iterations",
            ic.iterations,
            jacobi.iterations
        );
    }

    #[test]
    fn ic_preconditioner_matches_jacobi_solution() {
        let a = laplacian_1d(64);
        let b: Vec<f64> = (0..64).map(|i| (i as f64 * 0.3).sin()).collect();
        let x1 = cg(&a, &b, &CgOptions::default()).expect("jacobi");
        let x2 = cg(
            &a,
            &b,
            &CgOptions {
                preconditioner: Preconditioner::IncompleteCholesky,
                ..CgOptions::default()
            },
        )
        .expect("ic");
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn bicgstab_solves_nonsymmetric() {
        // Upwind-like convection-diffusion matrix: non-symmetric, diagonally
        // dominant.
        let n = 60;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            t.push(i, i, 3.0);
            if i + 1 < n {
                t.push(i, i + 1, -0.5);
                t.push(i + 1, i, -1.5);
            }
        }
        let a = t.to_csr();
        assert!(!a.is_symmetric(1e-12));
        let x_true: Vec<f64> = (0..n).map(|i| 1.0 + (i % 5) as f64).collect();
        let b = a.mul_vec(&x_true);
        let x = bicgstab(&a, &b, &BiCgStabOptions::default()).expect("bicgstab converges");
        let err: f64 = x
            .iter()
            .zip(&x_true)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max);
        assert!(err < 1e-6, "max err {err}");
    }

    #[test]
    fn bicgstab_matches_cg_on_spd() {
        let a = laplacian_1d(64);
        let b: Vec<f64> = (0..64).map(|i| (i as f64).cos()).collect();
        let x1 = cg(&a, &b, &CgOptions::default()).expect("cg");
        let x2 = bicgstab(&a, &b, &BiCgStabOptions::default()).expect("bicgstab");
        for (u, v) in x1.iter().zip(&x2) {
            assert!((u - v).abs() < 1e-6);
        }
    }

    #[test]
    fn bicgstab_zero_rhs() {
        let a = laplacian_1d(8);
        let x = bicgstab(&a, &[0.0; 8], &BiCgStabOptions::default()).expect("trivial");
        assert_eq!(x, vec![0.0; 8]);
    }

    #[test]
    fn bicgstab_warm_start_converges_instantly() {
        let a = laplacian_1d(100);
        let b = vec![1.0; 100];
        let opts = BiCgStabOptions::default();
        let cold = bicgstab_with_guess(&a, &b, None, &opts).expect("cold");
        assert!(cold.iterations > 0);
        let warm = bicgstab_with_guess(&a, &b, Some(&cold.x), &opts).expect("warm");
        assert_eq!(warm.iterations, 0, "residual {}", warm.relative_residual);
    }

    #[test]
    fn jacobi_on_zero_diagonal_is_surfaced_not_masked() {
        // Zero diagonal at row 1: previously silently treated as 1.0.
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0)]);
        let err = cg(&a, &[1.0, 1.0], &CgOptions::default()).unwrap_err();
        assert!(matches!(err, SolveError::SingularDiagonal { row: 1 }));
    }

    #[test]
    fn non_finite_inputs_rejected_up_front() {
        let a = laplacian_1d(3);
        let err = cg(&a, &[1.0, f64::NAN, 0.0], &CgOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            SolveError::NonFinite {
                what: "rhs",
                index: 1
            }
        ));

        let err = cg_with_guess(
            &a,
            &[1.0; 3],
            Some(&[f64::INFINITY, 0.0, 0.0]),
            &CgOptions::default(),
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SolveError::NonFinite {
                what: "guess",
                index: 0
            }
        ));

        let bad = CsrMatrix::from_triplets(2, 2, &[(0, 0, f64::NAN), (1, 1, 1.0)]);
        let err = bicgstab(&bad, &[1.0, 1.0], &BiCgStabOptions::default()).unwrap_err();
        assert!(matches!(
            err,
            SolveError::NonFinite {
                what: "matrix",
                index: 0
            }
        ));
    }

    #[test]
    fn workspace_reuse_is_bit_identical_and_allocation_stable() {
        let mut ws = SolveWorkspace::new();
        // Solve systems of several sizes through one workspace, interleaving
        // CG and BiCGSTAB; every result must match the allocate-fresh path
        // bit for bit, and once the workspace has grown to the largest size
        // its capacity must stop changing.
        for &n in &[10, 50, 30, 50, 7] {
            let a = laplacian_1d(n);
            let b: Vec<f64> = (0..n).map(|i| (i as f64 * 0.7).cos()).collect();
            let fresh = cg_with_guess(&a, &b, None, &CgOptions::default()).unwrap();
            let reused = cg_with_guess_ws(&a, &b, None, &CgOptions::default(), &mut ws).unwrap();
            assert_eq!(fresh, reused, "cg n={n}");
            let fresh = bicgstab_with_guess(&a, &b, None, &BiCgStabOptions::default()).unwrap();
            let reused =
                bicgstab_with_guess_ws(&a, &b, None, &BiCgStabOptions::default(), &mut ws).unwrap();
            assert_eq!(fresh, reused, "bicgstab n={n}");
        }
        let cap = ws.capacity();
        for _ in 0..3 {
            let a = laplacian_1d(50);
            let b = vec![1.0; 50];
            cg_with_guess_ws(&a, &b, None, &CgOptions::default(), &mut ws).unwrap();
            bicgstab_with_guess_ws(&a, &b, None, &BiCgStabOptions::default(), &mut ws).unwrap();
        }
        assert_eq!(ws.capacity(), cap, "steady-state reuse must not reallocate");
    }

    #[test]
    fn stagnation_detected_on_singular_neumann_laplacian() {
        // Pure-Neumann 1-D Laplacian: singular (constant null space). With a
        // right-hand side that has a component in the null space, CG's
        // residual plateaus at the projection instead of converging.
        let n = 40;
        let mut t = TripletMatrix::new(n, n);
        for i in 0..n {
            if i + 1 < n {
                t.stamp_conductance(Some(i), Some(i + 1), 1.0);
            }
        }
        let a = t.to_csr();
        let b = vec![1.0; n];
        let opts = CgOptions {
            stagnation_window: 50,
            ..CgOptions::default()
        };
        let err = cg(&a, &b, &opts).unwrap_err();
        assert!(
            matches!(
                err,
                SolveError::Stagnated { .. } | SolveError::Breakdown { .. }
            ),
            "got {err:?}"
        );
    }
}
