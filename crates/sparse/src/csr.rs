/// Compressed-sparse-row (CSR) matrix.
///
/// The workhorse storage format for all `vstack` solvers. Construct one from
/// a [`crate::TripletMatrix`] (duplicates summed) or directly from raw
/// triplets with [`CsrMatrix::from_triplets`].
///
/// # Example
///
/// ```
/// use vstack_sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 1, 3.0)]);
/// let y = m.mul_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    /// Nonzero values, parallel to `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw `(row, col, value)` triplets, summing
    /// duplicates. Column indices within each row end up sorted.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        // Scatter into row buckets.
        let mut next = counts.clone();
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0f64; triplets.len()];
        for &(r, c, v) in triplets {
            let slot = next[r];
            col_idx[slot] = c;
            values[slot] = v;
            next[r] += 1;
        }
        // Sort each row by column and compact duplicates in place.
        let mut row_ptr = vec![0usize; rows + 1];
        let mut out_col: Vec<usize> = Vec::with_capacity(triplets.len());
        let mut out_val: Vec<f64> = Vec::with_capacity(triplets.len());
        for r in 0..rows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            let mut pairs: Vec<(usize, f64)> = col_idx[lo..hi]
                .iter()
                .copied()
                .zip(values[lo..hi].iter().copied())
                .collect();
            pairs.sort_unstable_by_key(|&(c, _)| c);
            let mut i = 0;
            while i < pairs.len() {
                let c = pairs[i].0;
                let mut v = pairs[i].1;
                let mut j = i + 1;
                while j < pairs.len() && pairs[j].0 == c {
                    v += pairs[j].1;
                    j += 1;
                }
                out_col.push(c);
                out_val.push(v);
                i = j;
            }
            row_ptr[r + 1] = out_col.len();
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx: out_col,
            values: out_val,
        }
    }

    /// Builds an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (including explicit zeros).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at `(row, col)`, or `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Returns `(column indices, values)` of the stored entries in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> (&[usize], &[f64]) {
        assert!(row < self.rows, "row {row} out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Computes `y = A x` into a caller-provided buffer (no allocation).
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch (x)");
        assert_eq!(y.len(), self.rows, "mul_vec dimension mismatch (y)");
        for (r, yr) in y.iter_mut().enumerate() {
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            let mut acc = 0.0;
            for k in lo..hi {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            *yr = acc;
        }
    }

    /// Returns the transpose `Aᵀ`.
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Returns the main diagonal as a dense vector (zeros where unset).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// `‖b − A x‖₂` — handy for verifying solver output.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn residual_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.rows, "residual dimension mismatch");
        let ax = self.mul_vec(x);
        ax.iter()
            .zip(b)
            .map(|(a, bb)| (bb - a) * (bb - a))
            .sum::<f64>()
            .sqrt()
    }

    /// Checks symmetry to an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        for (r, c, v) in self.iter() {
            if (t.get(r, c) - v).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Iterates over stored `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            matrix: self,
            row: 0,
            k: 0,
        }
    }

    /// Converts to a dense row-major `Vec<Vec<f64>>` (for small matrices and
    /// tests).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.cols]; self.rows];
        for (r, c, v) in self.iter() {
            d[r][c] += v;
        }
        d
    }
}

/// Iterator over the stored entries of a [`CsrMatrix`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    matrix: &'a CsrMatrix,
    row: usize,
    k: usize,
}

impl Iterator for Iter<'_> {
    type Item = (usize, usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.row < self.matrix.rows {
            if self.k < self.matrix.row_ptr[self.row + 1] {
                let item = (
                    self.row,
                    self.matrix.col_idx[self.k],
                    self.matrix.values[self.k],
                );
                self.k += 1;
                return Some(item);
            }
            self.row += 1;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 4.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 4.0),
            ],
        )
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.mul_vec(&x);
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, -2.0)]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), -2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn symmetric_detection() {
        assert!(sample().is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x.to_vec());
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sample().diagonal(), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn iter_visits_all_entries() {
        let m = sample();
        assert_eq!(m.iter().count(), 7);
        let total: f64 = m.iter().map(|(_, _, v)| v).sum();
        assert_eq!(total, 12.0 - 4.0);
    }

    #[test]
    fn residual_norm_of_exact_solution_is_zero() {
        let m = CsrMatrix::identity(3);
        let b = [1.0, 2.0, 3.0];
        assert_eq!(m.residual_norm(&b, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_wrong_len_panics() {
        sample().mul_vec(&[1.0, 2.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0)]);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0]);
        assert_eq!(m.row(1).0.len(), 0);
    }
}
