/// Compressed-sparse-row (CSR) matrix.
///
/// The workhorse storage format for all `vstack` solvers. Construct one from
/// a [`crate::TripletMatrix`] (duplicates summed) or directly from raw
/// triplets with [`CsrMatrix::from_triplets`].
///
/// # Example
///
/// ```
/// use vstack_sparse::CsrMatrix;
///
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, -1.0), (1, 1, 3.0)]);
/// let y = m.mul_vec(&[1.0, 1.0]);
/// assert_eq!(y, vec![1.0, 3.0]);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    /// Row pointers, length `rows + 1`.
    row_ptr: Vec<usize>,
    /// Column indices, sorted within each row.
    col_idx: Vec<usize>,
    /// Nonzero values, parallel to `col_idx`.
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from raw `(row, col, value)` triplets, summing
    /// duplicates. Column indices within each row end up sorted.
    ///
    /// Duplicates are summed **in insertion order** (the sort is stable),
    /// which keeps the result bit-identical to
    /// [`CsrMatrix::set_values_from_triplets`] re-stamping the same
    /// triplets onto this pattern.
    ///
    /// Each row is sorted and compacted in place over the scattered
    /// buffers; the only temporary is one shared scratch buffer, sized to
    /// the widest row and reused across rows.
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut counts = vec![0usize; rows + 1];
        for &(r, c, _) in triplets {
            assert!(r < rows && c < cols, "triplet ({r}, {c}) out of bounds");
            counts[r + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        // Scatter into row buckets (insertion order preserved per row).
        let mut next = counts.clone();
        let mut col_idx = vec![0usize; triplets.len()];
        let mut values = vec![0f64; triplets.len()];
        for &(r, c, v) in triplets {
            let slot = next[r];
            col_idx[slot] = c;
            values[slot] = v;
            next[r] += 1;
        }
        // Sort each row by column (stably) and compact duplicates, writing
        // back into the scattered buffers. The write cursor `w` never
        // overtakes the read cursor (compaction only shrinks), so no data
        // is clobbered before it is read.
        let mut row_ptr = vec![0usize; rows + 1];
        let mut scratch: Vec<(usize, f64)> = Vec::new();
        let mut w = 0usize;
        for r in 0..rows {
            let (lo, hi) = (counts[r], counts[r + 1]);
            sort_row_stable(&mut col_idx[lo..hi], &mut values[lo..hi], &mut scratch);
            let mut i = lo;
            while i < hi {
                let c = col_idx[i];
                let mut v = values[i];
                let mut j = i + 1;
                while j < hi && col_idx[j] == c {
                    v += values[j];
                    j += 1;
                }
                col_idx[w] = c;
                values[w] = v;
                w += 1;
                i = j;
            }
            row_ptr[r + 1] = w;
        }
        col_idx.truncate(w);
        values.truncate(w);
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Re-stamps this matrix's values from `triplets` without touching the
    /// sparsity pattern: every stored value is zeroed, then each triplet is
    /// added to its slot. Duplicates accumulate in triplet order, exactly
    /// as [`CsrMatrix::from_triplets`] sums them, so re-stamping the very
    /// triplets this matrix was built from reproduces it bit for bit.
    ///
    /// The triplets may cover a *subset* of the pattern (uncovered slots
    /// become explicit zeros) — this is what lets a PDN re-solve a faulted
    /// (entries removed) or re-loaded system on the cached pristine
    /// pattern, skipping the symbolic CSR rebuild.
    ///
    /// # Errors
    ///
    /// [`crate::SolveError::PatternMismatch`] if a triplet falls outside
    /// the stored pattern (or out of bounds). The pattern is intact after
    /// an error but the values are unspecified; rebuild with
    /// [`CsrMatrix::from_triplets`].
    pub fn set_values_from_triplets(
        &mut self,
        triplets: &[(usize, usize, f64)],
    ) -> Result<(), crate::SolveError> {
        self.values.fill(0.0);
        for &(r, c, v) in triplets {
            if r >= self.rows || c >= self.cols {
                return Err(crate::SolveError::PatternMismatch { row: r, col: c });
            }
            let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
            match self.col_idx[lo..hi].binary_search(&c) {
                Ok(k) => self.values[lo + k] += v,
                Err(_) => return Err(crate::SolveError::PatternMismatch { row: r, col: c }),
            }
        }
        Ok(())
    }

    /// Builds an `n × n` identity matrix.
    pub fn identity(n: usize) -> Self {
        CsrMatrix {
            rows: n,
            cols: n,
            row_ptr: (0..=n).collect(),
            col_idx: (0..n).collect(),
            values: vec![1.0; n],
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries (including explicit zeros).
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Returns the value at `(row, col)`, or `0.0` if not stored.
    ///
    /// # Panics
    ///
    /// Panics if `row` or `col` is out of bounds.
    pub fn get(&self, row: usize, col: usize) -> f64 {
        assert!(row < self.rows && col < self.cols, "index out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        match self.col_idx[lo..hi].binary_search(&col) {
            Ok(k) => self.values[lo + k],
            Err(_) => 0.0,
        }
    }

    /// Raw CSR arrays `(row_ptr, col_idx, values)` for in-crate consumers
    /// that stream the whole matrix (stencil extraction, f32 hierarchy
    /// conversion) without per-row bounds checks.
    pub(crate) fn raw_parts(&self) -> (&[usize], &[usize], &[f64]) {
        (&self.row_ptr, &self.col_idx, &self.values)
    }

    /// Returns `(column indices, values)` of the stored entries in `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of bounds.
    pub fn row(&self, row: usize) -> (&[usize], &[f64]) {
        assert!(row < self.rows, "row {row} out of bounds");
        let (lo, hi) = (self.row_ptr[row], self.row_ptr[row + 1]);
        (&self.col_idx[lo..hi], &self.values[lo..hi])
    }

    /// Computes `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.mul_vec_into(x, &mut y);
        y
    }

    /// Serial per-row kernel shared by the serial and parallel SpMV paths,
    /// so both produce identical bits for every row. Also the reference
    /// accumulation order the stencil operator (`crate::stencil`)
    /// reproduces for its regular rows and delegates to for its side-CSR
    /// rows.
    #[inline]
    pub(crate) fn row_dot(&self, r: usize, x: &[f64]) -> f64 {
        let (lo, hi) = (self.row_ptr[r], self.row_ptr[r + 1]);
        let mut acc = 0.0;
        for k in lo..hi {
            acc += self.values[k] * x[self.col_idx[k]];
        }
        acc
    }

    /// Computes `y = A x` into a caller-provided buffer (no allocation).
    ///
    /// Large matrices (≥ [`CsrMatrix::PAR_SPMV_MIN_NNZ`] stored entries)
    /// route through the active thread pool; each row's accumulation order
    /// is fixed, so the result is bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn mul_vec_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch (x)");
        assert_eq!(y.len(), self.rows, "mul_vec dimension mismatch (y)");
        if self.nnz() >= Self::PAR_SPMV_MIN_NNZ {
            crate::pool::active(|p| self.par_mul_vec_into(p, x, y));
            return;
        }
        for (r, yr) in y.iter_mut().enumerate() {
            *yr = self.row_dot(r, x);
        }
    }

    /// Stored-entry count above which [`CsrMatrix::mul_vec_into`] runs on
    /// the active thread pool. Below it, a pool broadcast costs more than
    /// the product itself.
    pub const PAR_SPMV_MIN_NNZ: usize = 32_768;

    /// Computes `y = A x` on an explicit pool, partitioning rows so each
    /// context gets a contiguous range of roughly equal stored-entry count.
    /// Bit-identical to the serial [`CsrMatrix::mul_vec_into`] for any
    /// context count.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()` or `y.len() != self.rows()`.
    pub fn par_mul_vec_into(&self, pool: &crate::pool::ThreadPool, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "mul_vec dimension mismatch (x)");
        assert_eq!(y.len(), self.rows, "mul_vec dimension mismatch (y)");
        let contexts = pool.contexts();
        if contexts == 1 || self.rows < 2 {
            for (r, yr) in y.iter_mut().enumerate() {
                *yr = self.row_dot(r, x);
            }
            return;
        }
        // Row boundaries balancing stored entries: context t starts at the
        // first row whose entries begin at or after t/contexts of the nnz.
        let nnz = self.nnz();
        let mut starts: Vec<usize> = (0..=contexts)
            .map(|t| {
                let target = nnz * t / contexts;
                self.row_ptr.partition_point(|&p| p < target).min(self.rows)
            })
            .collect();
        // Trailing empty rows share row_ptr == nnz; force the last
        // boundary to cover them so every y element is written.
        starts[contexts] = self.rows;
        let out = crate::pool::SharedSliceMut::new(y);
        pool.run(&|ctx| {
            for r in starts[ctx]..starts[ctx + 1] {
                // SAFETY: the row ranges are disjoint across contexts and
                // `r < self.rows = out.len()`.
                #[allow(unsafe_code)]
                unsafe {
                    out.set(r, self.row_dot(r, x))
                };
            }
        });
    }

    /// Returns the transpose `Aᵀ`.
    pub fn transpose(&self) -> CsrMatrix {
        let triplets: Vec<(usize, usize, f64)> = self.iter().map(|(r, c, v)| (c, r, v)).collect();
        CsrMatrix::from_triplets(self.cols, self.rows, &triplets)
    }

    /// Sparse matrix-matrix product `A · B`.
    ///
    /// Classic row-wise SpGEMM with a dense accumulator per output row.
    /// Accumulation order is fixed by the CSR storage order of both
    /// operands and output columns are emitted sorted, so the result is
    /// bit-identical across runs — the AMG Galerkin triple-product
    /// `Pᵀ (A P)` relies on this for cross-thread determinism.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != other.rows()`.
    pub fn matmul(&self, other: &CsrMatrix) -> CsrMatrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        row_ptr.push(0usize);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        // Dense accumulator + last-seen-row markers, reused across rows.
        let mut acc = vec![0.0f64; other.cols];
        let mut marker = vec![usize::MAX; other.cols];
        let mut touched: Vec<usize> = Vec::new();
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let a_val = self.values[k];
                let mid = self.col_idx[k];
                for kk in other.row_ptr[mid]..other.row_ptr[mid + 1] {
                    let c = other.col_idx[kk];
                    if marker[c] != r {
                        marker[c] = r;
                        touched.push(c);
                        acc[c] = 0.0;
                    }
                    acc[c] += a_val * other.values[kk];
                }
            }
            touched.sort_unstable();
            for &c in &touched {
                col_idx.push(c);
                values.push(acc[c]);
            }
            touched.clear();
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: other.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Returns the main diagonal as a dense vector (zeros where unset).
    pub fn diagonal(&self) -> Vec<f64> {
        let n = self.rows.min(self.cols);
        (0..n).map(|i| self.get(i, i)).collect()
    }

    /// `‖b − A x‖₂` — handy for verifying solver output.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn residual_norm(&self, x: &[f64], b: &[f64]) -> f64 {
        assert_eq!(b.len(), self.rows, "residual dimension mismatch");
        let ax = self.mul_vec(x);
        ax.iter()
            .zip(b)
            .map(|(a, bb)| (bb - a) * (bb - a))
            .sum::<f64>()
            .sqrt()
    }

    /// Checks symmetry to an absolute tolerance.
    pub fn is_symmetric(&self, tol: f64) -> bool {
        if self.rows != self.cols {
            return false;
        }
        let t = self.transpose();
        for (r, c, v) in self.iter() {
            if (t.get(r, c) - v).abs() > tol {
                return false;
            }
        }
        true
    }

    /// Iterates over stored `(row, col, value)` entries in row-major order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            matrix: self,
            row: 0,
            k: 0,
        }
    }

    /// Converts to a dense row-major `Vec<Vec<f64>>` (for small matrices and
    /// tests).
    pub fn to_dense(&self) -> Vec<Vec<f64>> {
        let mut d = vec![vec![0.0; self.cols]; self.rows];
        for (r, c, v) in self.iter() {
            d[r][c] += v;
        }
        d
    }
}

/// Iterator over the stored entries of a [`CsrMatrix`].
#[derive(Debug, Clone)]
pub struct Iter<'a> {
    matrix: &'a CsrMatrix,
    row: usize,
    k: usize,
}

impl Iterator for Iter<'_> {
    type Item = (usize, usize, f64);

    fn next(&mut self) -> Option<Self::Item> {
        while self.row < self.matrix.rows {
            if self.k < self.matrix.row_ptr[self.row + 1] {
                let item = (
                    self.row,
                    self.matrix.col_idx[self.k],
                    self.matrix.values[self.k],
                );
                self.k += 1;
                return Some(item);
            }
            self.row += 1;
        }
        None
    }
}

/// Stably co-sorts one row's `(column, value)` pairs by column, in place.
///
/// Narrow rows (the overwhelmingly common case for nodal matrices, whose
/// rows hold a handful of neighbor couplings) use an in-place insertion
/// sort — stable, allocation-free, and fast at these widths. Wide rows
/// spill into `scratch`, the single buffer shared across all rows of a
/// [`CsrMatrix::from_triplets`] call, and use the standard (stable) sort.
///
/// Stability is load-bearing: duplicate columns must stay in insertion
/// order so duplicate summation matches
/// [`CsrMatrix::set_values_from_triplets`] bit for bit.
fn sort_row_stable(cols: &mut [usize], vals: &mut [f64], scratch: &mut Vec<(usize, f64)>) {
    const INSERTION_MAX: usize = 32;
    debug_assert_eq!(cols.len(), vals.len());
    if cols.len() <= INSERTION_MAX {
        for i in 1..cols.len() {
            let (c, v) = (cols[i], vals[i]);
            let mut j = i;
            while j > 0 && cols[j - 1] > c {
                cols[j] = cols[j - 1];
                vals[j] = vals[j - 1];
                j -= 1;
            }
            cols[j] = c;
            vals[j] = v;
        }
    } else {
        scratch.clear();
        scratch.extend(cols.iter().copied().zip(vals.iter().copied()));
        scratch.sort_by_key(|&(c, _)| c);
        for (k, &(c, v)) in scratch.iter().enumerate() {
            cols[k] = c;
            vals[k] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 0, 4.0),
                (0, 1, -1.0),
                (1, 0, -1.0),
                (1, 1, 4.0),
                (1, 2, -1.0),
                (2, 1, -1.0),
                (2, 2, 4.0),
            ],
        )
    }

    #[test]
    fn duplicates_are_summed() {
        let m = CsrMatrix::from_triplets(1, 1, &[(0, 0, 1.0), (0, 0, 2.5)]);
        assert_eq!(m.get(0, 0), 3.5);
        assert_eq!(m.nnz(), 1);
    }

    #[test]
    fn mul_vec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let y = m.mul_vec(&x);
        assert_eq!(y, vec![2.0, 4.0, 10.0]);
    }

    #[test]
    fn transpose_roundtrip() {
        let m = CsrMatrix::from_triplets(2, 3, &[(0, 2, 5.0), (1, 0, -2.0)]);
        let t = m.transpose();
        assert_eq!(t.rows(), 3);
        assert_eq!(t.cols(), 2);
        assert_eq!(t.get(2, 0), 5.0);
        assert_eq!(t.get(0, 1), -2.0);
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn symmetric_detection() {
        assert!(sample().is_symmetric(0.0));
        let asym = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0)]);
        assert!(!asym.is_symmetric(1e-12));
    }

    #[test]
    fn identity_behaves() {
        let i = CsrMatrix::identity(4);
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(i.mul_vec(&x), x.to_vec());
        assert_eq!(i.nnz(), 4);
    }

    #[test]
    fn diagonal_extraction() {
        assert_eq!(sample().diagonal(), vec![4.0, 4.0, 4.0]);
    }

    #[test]
    fn iter_visits_all_entries() {
        let m = sample();
        assert_eq!(m.iter().count(), 7);
        let total: f64 = m.iter().map(|(_, _, v)| v).sum();
        assert_eq!(total, 12.0 - 4.0);
    }

    #[test]
    fn residual_norm_of_exact_solution_is_zero() {
        let m = CsrMatrix::identity(3);
        let b = [1.0, 2.0, 3.0];
        assert_eq!(m.residual_norm(&b, &b), 0.0);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn mul_vec_wrong_len_panics() {
        sample().mul_vec(&[1.0, 2.0]);
    }

    #[test]
    fn empty_rows_are_fine() {
        let m = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0)]);
        assert_eq!(m.mul_vec(&[1.0, 1.0, 1.0]), vec![1.0, 0.0, 0.0]);
        assert_eq!(m.row(1).0.len(), 0);
    }

    /// Pseudo-random triplets (LCG; no external rand in unit tests).
    fn scrambled_triplets(rows: usize, cols: usize, n: usize) -> Vec<(usize, usize, f64)> {
        let mut state = 0x2545F4914F6CDD1Du64;
        (0..n)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let r = (state >> 33) as usize % rows;
                let c = (state >> 17) as usize % cols;
                let v = ((state >> 11) & 0xFFFF) as f64 / 1024.0 - 32.0;
                (r, c, v)
            })
            .collect()
    }

    #[test]
    fn wide_rows_take_the_scratch_path_and_stay_sorted() {
        // One row with > 32 entries (forcing the shared-scratch sort) plus
        // duplicates; verify sorted columns and correct sums.
        let mut t: Vec<(usize, usize, f64)> = (0..40).rev().map(|c| (0, c, c as f64)).collect();
        t.push((0, 7, 100.0));
        let m = CsrMatrix::from_triplets(1, 40, &t);
        let (cols, _) = m.row(0);
        assert!(cols.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(m.get(0, 7), 107.0);
        assert_eq!(m.get(0, 39), 39.0);
    }

    #[test]
    fn set_values_from_triplets_reproduces_from_triplets_bitwise() {
        let triplets = scrambled_triplets(60, 60, 900);
        let reference = CsrMatrix::from_triplets(60, 60, &triplets);
        let mut restamped = reference.clone();
        // Perturb, then re-stamp the same triplets: must match bit for bit,
        // including insertion-order duplicate summation.
        restamped.values.iter_mut().for_each(|v| *v = f64::NAN);
        restamped.set_values_from_triplets(&triplets).unwrap();
        assert_eq!(restamped, reference);
    }

    #[test]
    fn set_values_accepts_subset_pattern() {
        let full = &[(0, 0, 2.0), (0, 1, -1.0), (1, 0, -1.0), (1, 1, 2.0)];
        let mut m = CsrMatrix::from_triplets(2, 2, full);
        m.set_values_from_triplets(&[(0, 0, 5.0), (1, 1, 7.0)])
            .unwrap();
        assert_eq!(m.get(0, 0), 5.0);
        assert_eq!(m.get(0, 1), 0.0);
        assert_eq!(m.get(1, 1), 7.0);
        assert_eq!(m.nnz(), 4, "pattern must be preserved");
    }

    #[test]
    fn set_values_rejects_pattern_violations() {
        let mut m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (1, 1, 1.0)]);
        let err = m.set_values_from_triplets(&[(0, 1, 3.0)]).unwrap_err();
        assert!(matches!(
            err,
            crate::SolveError::PatternMismatch { row: 0, col: 1 }
        ));
        let err = m.set_values_from_triplets(&[(5, 0, 3.0)]).unwrap_err();
        assert!(matches!(
            err,
            crate::SolveError::PatternMismatch { row: 5, .. }
        ));
    }

    #[test]
    fn par_mul_vec_is_bit_identical_to_serial() {
        let triplets = scrambled_triplets(200, 200, 3000);
        let m = CsrMatrix::from_triplets(200, 200, &triplets);
        let x: Vec<f64> = (0..200)
            .map(|i| ((i * 37 + 11) % 53) as f64 * 0.1 - 2.0)
            .collect();
        let mut serial = vec![0.0; 200];
        for (r, yr) in serial.iter_mut().enumerate() {
            *yr = m.row_dot(r, &x);
        }
        for contexts in [1, 2, 4] {
            let pool = crate::pool::ThreadPool::new(contexts);
            let mut y = vec![f64::NAN; 200];
            m.par_mul_vec_into(&pool, &x, &mut y);
            let same = y
                .iter()
                .zip(&serial)
                .all(|(a, b)| a.to_bits() == b.to_bits());
            assert!(same, "contexts = {contexts}");
        }
    }

    #[test]
    fn matmul_matches_dense_product() {
        let a =
            CsrMatrix::from_triplets(2, 3, &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, -3.0), (1, 2, 0.5)]);
        let b =
            CsrMatrix::from_triplets(3, 2, &[(0, 0, 4.0), (0, 1, 1.0), (1, 0, -1.0), (2, 1, 2.0)]);
        let c = a.matmul(&b);
        assert_eq!(c.to_dense(), vec![vec![4.0, 5.0], vec![3.0, 1.0]]);
        // Columns sorted within each row.
        for r in 0..c.rows() {
            let (cols, _) = c.row(r);
            assert!(cols.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn matmul_with_empty_rows_and_cancellation() {
        // Row 1 of `a` is empty; the (0,0) product entry cancels to 0.0
        // but stays stored (pattern, not value, decides storage).
        let a = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, 1.0)]);
        let b = CsrMatrix::from_triplets(2, 1, &[(0, 0, 1.0), (1, 0, -1.0)]);
        let c = a.matmul(&b);
        assert_eq!(c.rows(), 2);
        assert_eq!(c.cols(), 1);
        assert_eq!(c.to_dense(), vec![vec![0.0], vec![0.0]]);
        let (cols, vals) = c.row(0);
        assert_eq!(cols, &[0]);
        assert_eq!(vals, &[0.0]);
        assert_eq!(c.row(1).0.len(), 0);
    }

    #[test]
    fn par_mul_vec_writes_trailing_empty_rows() {
        // Rows 2..8 are empty; the partition must still zero them.
        let m = CsrMatrix::from_triplets(8, 8, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let pool = crate::pool::ThreadPool::new(4);
        let mut y = vec![f64::NAN; 8];
        m.par_mul_vec_into(&pool, &[1.0; 8], &mut y);
        assert_eq!(y, vec![1.0, 2.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0]);
    }
}
